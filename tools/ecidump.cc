/**
 * @file
 * ecidump: command-line decoder for ECI trace captures.
 *
 * The interoperability story of paper section 4.1: traces written by
 * any tool in the ecosystem (the simulator, an FPGA ILA exporter, the
 * Wireshark plugin) share one serialization format; this utility
 * decodes, summarizes, and checks them.
 *
 * Usage:
 *   ecidump <trace.ecit>            decode to text
 *   ecidump --summary <trace.ecit>  per-opcode/VC summary
 *   ecidump --check <trace.ecit>    run the protocol checker
 *   ecidump --chrome <trace.ecit>   Chrome/Perfetto trace JSON to stdout
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "obs/span_tracer.hh"
#include "trace/checker.hh"
#include "trace/decoder.hh"
#include "trace/eci_pcap.hh"

using namespace enzian;

int
main(int argc, char **argv)
{
    bool summary = false, check = false, chrome = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--summary") == 0)
            summary = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--chrome") == 0)
            chrome = true;
        else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: ecidump [--summary] [--check] "
                        "[--chrome] <trace.ecit>\n");
            return 0;
        } else {
            path = argv[i];
        }
    }
    if (!path) {
        std::fprintf(stderr, "ecidump: no trace file given "
                             "(--help for usage)\n");
        return 2;
    }

    trace::EciTrace tr;
    tr.load(path);

    if (check) {
        trace::ProtocolChecker checker;
        checker.check(tr);
        checker.finalize();
        if (checker.clean()) {
            std::printf("%s: %zu messages, protocol-clean\n", path,
                        tr.size());
            return 0;
        }
        std::printf("%s: %zu violations\n", path,
                    checker.violations().size());
        for (const auto &v : checker.violations())
            std::printf("  %s\n", v.c_str());
        return 1;
    }
    if (chrome) {
        obs::SpanTracer tracer;
        trace::toChromeTrace(tr, tracer);
        tracer.writeChromeJson(std::cout);
        return 0;
    }
    if (summary) {
        trace::dumpSummary(trace::summarize(tr), std::cout);
        return 0;
    }
    trace::dumpText(tr, std::cout);
    return 0;
}
