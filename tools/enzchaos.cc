/**
 * @file
 * enzchaos: run a fault-injection chaos scenario from the command
 * line and report what was injected and what recovered.
 *
 * Loads a FaultPlan from a text spec (or generates one from a seed),
 * runs the shared chaos scenario — a small Enzian machine under
 * randomized coherent, TCP and RDMA traffic with the invariant
 * monitor attached — and dumps per-fault injection/recovery counts.
 * Exits non-zero if any invariant was violated, any acked write read
 * back wrong, or any traffic failed to complete.
 *
 * Usage:
 *   enzchaos --plan FILE         run the plan in FILE
 *   enzchaos --seed N            run FaultPlan::random(N)
 *   enzchaos --ops N             coherent line ops (default 400)
 *   enzchaos --lines N           lines per pool (default 32)
 *   enzchaos --traffic-seed N    traffic stream seed (default: plan seed)
 *   enzchaos --no-net            skip TCP side traffic
 *   enzchaos --no-rdma           skip RDMA side traffic
 *   enzchaos --with-bmc          attach the BMC for rail glitches
 *   enzchaos --threads N         run the machine as parallel timing
 *                                domains on N threads (also honors
 *                                ENZIAN_THREADS; needs a domain-safe
 *                                plan, else falls back to the legacy
 *                                single-queue run with a warning)
 *   enzchaos --dump-plan         print the effective plan and exit
 *   enzchaos --json [FILE]       also dump the full stats registry JSON
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "fault/chaos_scenario.hh"
#include "fault/fault_plan.hh"

using namespace enzian;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: enzchaos [--plan FILE | --seed N] [--ops N] "
                 "[--lines N]\n"
                 "                [--traffic-seed N] [--no-net] "
                 "[--no-rdma] [--with-bmc]\n"
                 "                [--protocol NAME] [--threads N] "
                 "[--dump-plan] [--json [FILE]]\n");
    std::exit(2);
}

std::uint64_t
parseU64(const char *s, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s, &end, 0);
    if (!end || *end) {
        std::fprintf(stderr, "enzchaos: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::optional<fault::FaultPlan> plan;
    std::uint64_t seed = 1;
    bool have_seed = false;
    fault::ChaosConfig cfg;
    bool traffic_seed_set = false;
    bool dump_plan = false;
    bool want_json = false;
    std::string json_path;
    std::uint32_t threads = 0;
    if (const char *env = std::getenv("ENZIAN_THREADS");
        env && *env)
        threads = static_cast<std::uint32_t>(
            std::strtoul(env, nullptr, 10));

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--plan") && i + 1 < argc) {
            std::string err;
            plan = fault::FaultPlan::parseFile(argv[++i], err);
            if (!plan) {
                std::fprintf(stderr, "enzchaos: %s\n", err.c_str());
                return 2;
            }
        } else if (!std::strcmp(arg, "--seed") && i + 1 < argc) {
            seed = parseU64(argv[++i], "seed");
            have_seed = true;
        } else if (!std::strcmp(arg, "--ops") && i + 1 < argc) {
            cfg.ops = static_cast<std::uint32_t>(
                parseU64(argv[++i], "ops"));
        } else if (!std::strcmp(arg, "--lines") && i + 1 < argc) {
            cfg.lines = static_cast<std::uint32_t>(
                parseU64(argv[++i], "lines"));
        } else if (!std::strcmp(arg, "--traffic-seed") &&
                   i + 1 < argc) {
            cfg.seed = parseU64(argv[++i], "traffic seed");
            traffic_seed_set = true;
        } else if (!std::strcmp(arg, "--protocol") && i + 1 < argc) {
            cfg.protocol = argv[++i];
        } else if (!std::strcmp(arg, "--no-net")) {
            cfg.with_net = false;
        } else if (!std::strcmp(arg, "--no-rdma")) {
            cfg.with_rdma = false;
        } else if (!std::strcmp(arg, "--with-bmc")) {
            cfg.with_bmc = true;
        } else if (!std::strcmp(arg, "--threads") && i + 1 < argc) {
            threads = static_cast<std::uint32_t>(
                parseU64(argv[++i], "threads"));
        } else if (!std::strcmp(arg, "--dump-plan")) {
            dump_plan = true;
        } else if (!std::strcmp(arg, "--json")) {
            want_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else {
            usage();
        }
    }

    if (!plan)
        plan = fault::FaultPlan::random(have_seed ? seed : 1);
    if (!traffic_seed_set)
        cfg.seed = plan->seed;

    if (dump_plan) {
        std::fputs(plan->toString().c_str(), stdout);
        return 0;
    }

    std::printf("enzchaos: plan seed %llu, %zu fault(s); traffic seed "
                "%llu, %u ops x %u lines%s%s%s\n",
                static_cast<unsigned long long>(plan->seed),
                plan->faults.size(),
                static_cast<unsigned long long>(cfg.seed), cfg.ops,
                cfg.lines, cfg.with_net ? ", tcp" : "",
                cfg.with_rdma ? ", rdma" : "",
                cfg.with_bmc ? ", bmc" : "");
    for (const auto &s : plan->faults)
        std::printf("  %s\n", s.toString().c_str());

    if (threads > 0 && !fault::planParallelSafe(*plan)) {
        std::fprintf(stderr,
                     "enzchaos: plan is not domain-safe (only ECI "
                     "msg drop/corrupt can run in parallel); "
                     "falling back to the single-queue machine\n");
        threads = 0;
    }
    if (threads > 0)
        std::printf("parallel: %u thread(s), timing-domain machine\n",
                    threads);

    const fault::ChaosResult r =
        threads > 0 ? fault::runChaosParallel(*plan, cfg, threads)
                    : fault::runChaos(*plan, cfg);

    std::printf("\n%s\n", r.report.c_str());
    std::printf("ops: %llu issued, %llu completed\n",
                static_cast<unsigned long long>(r.opsIssued),
                static_cast<unsigned long long>(r.opsCompleted));

    if (want_json) {
        if (json_path.empty() || json_path == "-") {
            std::cout << r.registryJson;
        } else {
            std::ofstream f(json_path, std::ios::trunc);
            if (!f) {
                std::fprintf(stderr, "enzchaos: cannot open '%s'\n",
                             json_path.c_str());
                return 2;
            }
            f << r.registryJson;
            std::fprintf(stderr, "enzchaos: wrote %s\n",
                         json_path.c_str());
        }
    }

    if (!r.ok) {
        std::printf("\nFAIL: %zu violation(s)\n", r.violations.size());
        for (const auto &v : r.violations)
            std::printf("  %s\n", v.c_str());
        return 1;
    }
    std::printf("\nOK: no invariant violations, all writes readable, "
                "all traffic delivered\n");
    return 0;
}
