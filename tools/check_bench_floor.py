#!/usr/bin/env python3
"""Guard bench metrics against a checked-in baseline floor.

Usage: check_bench_floor.py BENCH_<name>.json bench/baselines/<name>_floor.json

The floor file holds per-metric baselines plus a relative tolerance;
a metric regressing more than the tolerance below its baseline fails
the check (exit 1). Metrics in the bench output but not in the floor
file are ignored; metrics in the floor file but missing from the
bench output fail (a silently dropped metric is a regression too).
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(sys.argv[1], encoding="utf-8") as f:
        bench = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        floor = json.load(f)

    metrics = bench.get("metrics", {})
    tolerance = float(floor.get("tolerance", 0.20))
    baselines = floor["baselines"]

    failed = False
    for name, baseline in sorted(baselines.items()):
        limit = float(baseline) * (1.0 - tolerance)
        value = metrics.get(name)
        if value is None:
            print(f"FAIL {name}: missing from {sys.argv[1]}")
            failed = True
            continue
        verdict = "ok" if value >= limit else "FAIL"
        print(f"{verdict:4s} {name}: {value:.3g} "
              f"(baseline {baseline:.3g}, floor {limit:.3g})")
        if value < limit:
            failed = True

    if failed:
        print(f"bench floor check failed for {bench.get('bench', '?')}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
