/**
 * @file
 * enzrack: boot a described Enzian rack and run a canonical
 * replicated-KV workload over it.
 *
 * The rack is data: a plain-text topology (nodes, ports, per-node
 * cable latencies, service placement) either read from a file or
 * generated uniform. The tool instantiates the cluster — on the
 * legacy shared queue or on a DomainScheduler — places the KV
 * service the topology asks for (or a default one), runs every node
 * through puts plus cross-node gets, and reports the rack's shape,
 * the derived epoch lookahead, and the service counters.
 *
 * Usage:
 *   enzrack --topology FILE   rack description (see DESIGN.md §11)
 *   enzrack --nodes N         uniform rack of N nodes (default 4)
 *   enzrack --ports N         ports per node for --nodes (default 4)
 *   enzrack --threads N       parallel timing domains on N threads
 *                             (0 = legacy shared queue; also honors
 *                             ENZIAN_THREADS)
 *   enzrack --adaptive        adaptive epochs: grow past the fixed
 *                             lookahead step to the provable delivery
 *                             bound when the rack is quiescent
 *                             (parallel mode only; results stay
 *                             bit-identical at any thread count)
 *   enzrack --ops N           puts per node (default 4)
 *   enzrack --describe        print the canonical topology and exit
 *   enzrack --check-determinism
 *                             run the workload at 1 thread and at
 *                             --threads threads and byte-compare the
 *                             stats registries; exit non-zero on any
 *                             divergence
 *   enzrack --json [FILE]     also dump the stats registry JSON
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cluster/enzian_cluster.hh"
#include "cluster/replicated_kv.hh"
#include "obs/registry.hh"
#include "sim/domain_scheduler.hh"

using namespace enzian;
using namespace enzian::cluster;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: enzrack [--topology FILE | --nodes N "
                 "[--ports N]]\n"
                 "               [--threads N] [--adaptive] [--ops N]\n"
                 "               [--describe]\n"
                 "               [--check-determinism] [--json "
                 "[FILE]]\n");
    std::exit(2);
}

std::uint32_t
parseU32(const char *s, const char *what)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 0);
    if (!end || *end) {
        std::fprintf(stderr, "enzrack: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return static_cast<std::uint32_t>(v);
}

struct RackResult
{
    std::uint64_t events = 0;
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t acks = 0;
    std::uint64_t localReads = 0;
    std::uint64_t remoteReads = 0;
    Tick lookahead = 0;
    std::uint64_t epochs = 0;
    std::uint64_t grows = 0;
    std::uint64_t shrinks = 0;
    std::string registryJson;
};

RackResult
runRack(const ClusterTopology &topo, std::uint32_t threads,
        std::uint32_t ops, bool adaptive)
{
    EnzianCluster::Config cfg;
    cfg.topology = topo;
    cfg.threads = threads;
    cfg.adaptive_epochs = adaptive;
    EnzianCluster rack(cfg);

    // The topology's kv service, or a sensible default placement.
    ReplicatedKv::Config kcfg;
    const auto kv_svcs = topo.servicesOf("kv");
    if (!kv_svcs.empty()) {
        kcfg = ReplicatedKv::configFromService(kv_svcs.front(), topo);
    } else if (topo.nodeCount() > 1) {
        kcfg.replicas = {1 % topo.nodeCount()};
    }
    ReplicatedKv kv("rackkv", rack, kcfg);

    const std::uint32_t n = rack.nodeCount();
    std::vector<std::uint8_t> val(kv.config().value_bytes, 0x5c);
    for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t k = 0; k < ops; ++k)
            kv.put(i, static_cast<std::uint64_t>(i) * ops + k,
                   val.data(), [](Tick) {});
    RackResult res;
    res.events = rack.run();

    // Cross-node reads at a fixed tick: node i fetches a key written
    // by its neighbour.
    std::vector<std::vector<std::uint8_t>> outs(
        n, std::vector<std::uint8_t>(kv.config().value_bytes));
    const Tick phase2 = units::us(2000.0);
    for (std::uint32_t i = 0; i < n; ++i) {
        rack.node(i).fpgaEventq().schedule(phase2, [&kv, &outs, i, n,
                                                    ops]() {
            kv.get(i,
                   static_cast<std::uint64_t>((i + 1) % n) * ops,
                   outs[i].data(), [](Tick) {});
        });
    }
    res.events += rack.run();

    res.puts = kv.puts();
    res.gets = kv.gets();
    res.acks = kv.replicaAcks();
    res.localReads = kv.localReads();
    res.remoteReads = kv.remoteReads();
    res.lookahead = EnzianCluster::deriveLookahead(cfg, rack.topology());
    if (sim::DomainScheduler *sched = rack.scheduler()) {
        res.epochs = sched->epochs();
        res.grows = sched->adaptiveGrows();
        res.shrinks = sched->adaptiveShrinks();
    }
    std::ostringstream os;
    obs::Registry::global().exportJson(os);
    res.registryJson = os.str();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string topo_file;
    std::uint32_t nodes = 4, ports = 4, ops = 4;
    std::uint32_t threads = 0;
    if (const char *s = std::getenv("ENZIAN_THREADS"); s && *s)
        threads = parseU32(s, "ENZIAN_THREADS");
    bool describe = false, check = false, json = false;
    bool adaptive = false;
    std::string json_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--topology")
            topo_file = next();
        else if (arg == "--nodes")
            nodes = parseU32(next(), "--nodes");
        else if (arg == "--ports")
            ports = parseU32(next(), "--ports");
        else if (arg == "--threads")
            threads = parseU32(next(), "--threads");
        else if (arg == "--ops")
            ops = parseU32(next(), "--ops");
        else if (arg == "--adaptive")
            adaptive = true;
        else if (arg == "--describe")
            describe = true;
        else if (arg == "--check-determinism")
            check = true;
        else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_file = argv[++i];
        } else
            usage();
    }

    const ClusterTopology topo =
        topo_file.empty() ? ClusterTopology::uniform(nodes, ports)
                          : ClusterTopology::parseFile(topo_file);
    if (describe) {
        std::fputs(topo.describe().c_str(), stdout);
        return 0;
    }

    if (check) {
        // The same rack must simulate identically — down to the
        // exported registry bytes — at 1 thread and at N.
        const std::uint32_t n_threads = threads ? threads : 4;
        const auto r1 = runRack(topo, 1, ops, adaptive);
        const auto rn = runRack(topo, n_threads, ops, adaptive);
        const bool same = r1.registryJson == rn.registryJson &&
                          r1.events == rn.events;
        std::printf("determinism: %u nodes%s, 1 vs %u threads: %s "
                    "(%llu events, %zu registry bytes)\n",
                    topo.nodeCount(),
                    adaptive ? " (adaptive epochs)" : "", n_threads,
                    same ? "byte-identical" : "DIVERGED",
                    static_cast<unsigned long long>(r1.events),
                    r1.registryJson.size());
        if (!same)
            return 1;
    }

    if (adaptive && threads == 0) {
        std::fprintf(stderr,
                     "enzrack: --adaptive requires --threads >= 1\n");
        return 2;
    }
    const auto res = runRack(topo, threads, ops, adaptive);
    std::printf("rack '%s': %u nodes, %u switch ports, %s\n",
                topo.name.c_str(), topo.nodeCount(), topo.totalPorts(),
                threads ? "parallel timing domains" : "legacy queue");
    if (threads) {
        std::printf("  threads: %u, epoch lookahead: %.0f ns "
                    "(derived from topology)\n",
                    threads, units::toNanos(res.lookahead));
        std::printf("  epochs: %llu%s\n",
                    static_cast<unsigned long long>(res.epochs),
                    adaptive ? " (adaptive)" : " (fixed)");
        if (adaptive)
            std::printf("  adaptive: %llu grown epochs, %llu shrinks "
                        "back to the fixed step\n",
                        static_cast<unsigned long long>(res.grows),
                        static_cast<unsigned long long>(res.shrinks));
    }
    std::printf("  events: %llu\n",
                static_cast<unsigned long long>(res.events));
    std::printf("  kv: %llu puts (%llu replica acks), %llu gets "
                "(%llu local, %llu remote)\n",
                static_cast<unsigned long long>(res.puts),
                static_cast<unsigned long long>(res.acks),
                static_cast<unsigned long long>(res.gets),
                static_cast<unsigned long long>(res.localReads),
                static_cast<unsigned long long>(res.remoteReads));

    if (json) {
        if (json_file.empty()) {
            std::fputs(res.registryJson.c_str(), stdout);
        } else {
            std::ofstream f(json_file, std::ios::trunc);
            f << res.registryJson;
            std::printf("  registry: %s\n", json_file.c_str());
        }
    }
    return 0;
}
