/**
 * @file
 * ecicheck: exhaustive model checker for the simulator's ECI
 * coherence protocols.
 *
 * Explores every reachable state of one or more cache lines shared
 * between a home and a remote node, driving the abstract machine with
 * the same pluggable protocol table (eci::proto::ProtocolTable) the
 * event-driven engines execute, and checks SWMR, directory coverage,
 * dirty-data conservation, deadlock freedom, and quiescence liveness
 * (src/verif/).
 *
 * Usage:
 *   ecicheck                     check cached + uncached, FIFO links
 *   ecicheck --protocol NAME     select the table (--list-protocols)
 *   ecicheck --list-protocols    print the registered tables
 *   ecicheck --unordered         model reordering link policies too
 *   ecicheck --mode cached       only the coherent-cached configuration
 *   ecicheck --mutation NAME     inject a seeded bug (must be caught)
 *   ecicheck --list-mutations    seeded bugs applicable to --protocol
 *   ecicheck --lines N           explore N concurrent lines (default 1)
 *   ecicheck --symmetry          canonicalize modulo line permutation
 *   ecicheck --por               partial-order-reduce pure completions
 *   ecicheck --threads N         parallel BFS workers (default 1)
 *   ecicheck --compare-reduction run unreduced and reduced, report the
 *                                state-count drop, fail on any
 *                                violation-set mismatch
 *   ecicheck --max-states N      state-explosion abort threshold
 *   ecicheck --json              machine-readable summary on stdout
 *   ecicheck --verbose           print coverage and unreached states
 *
 * Exit status 0 iff every explored configuration is clean (or, with
 * --mutation, nonzero when the bug is detected as it should be).
 * Usage errors — including unknown protocol or mutation names — exit
 * with status 2; there is no silent fallback to the default table.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eci/protocol_table.hh"
#include "verif/explorer.hh"

using namespace enzian;

namespace {

struct JsonRun
{
    std::string config;
    verif::Report rep;
    std::uint64_t unreducedStates = 0; // 0 = no comparison ran
};

std::vector<std::string>
sortedWhats(const verif::Report &rep)
{
    std::vector<std::string> whats;
    for (const auto *vs :
         {&rep.violations, &rep.deadlocks, &rep.livenessViolations,
          &rep.dirtyTraps}) {
        for (const verif::Violation &v : *vs)
            whats.push_back(v.what);
    }
    std::sort(whats.begin(), whats.end());
    return whats;
}

int
runOne(const verif::Options &opt, const std::string &what,
       bool verbose, bool compare, bool json,
       std::vector<JsonRun> &jsonRuns)
{
    const verif::Report rep = verif::explore(opt);
    JsonRun jr;
    jr.config = what;
    jr.rep = rep;
    int rc = rep.clean() ? 0 : 1;

    if (!json) {
        std::printf("%-36s %8llu states %9llu transitions "
                    "max-in-flight %zu : %s\n",
                    what.c_str(),
                    static_cast<unsigned long long>(rep.states),
                    static_cast<unsigned long long>(rep.transitions),
                    rep.maxInFlight,
                    rep.clean() ? "clean" : "VIOLATIONS");
        if (!rep.clean() || verbose)
            std::printf("%s", rep.toString().c_str());
    }

    if (compare) {
        // Reference run with both reductions off; everything else
        // (protocol, mutation, ordering, lines) identical.
        verif::Options full = opt;
        full.symmetry = false;
        full.por = false;
        const verif::Report ref = verif::explore(full);
        jr.unreducedStates = ref.states;
        const double drop =
            ref.states
                ? 100.0 * (1.0 - static_cast<double>(rep.states) /
                                     static_cast<double>(ref.states))
                : 0.0;
        const bool match = sortedWhats(ref) == sortedWhats(rep);
        if (!json) {
            std::printf("%-36s %8llu states unreduced -> %llu "
                        "reduced (%.1f%% fewer), violation sets %s\n",
                        (what + " [reduction]").c_str(),
                        static_cast<unsigned long long>(ref.states),
                        static_cast<unsigned long long>(rep.states),
                        drop, match ? "identical" : "DIFFER");
        }
        if (!match)
            rc |= 1;
    }
    jsonRuns.push_back(std::move(jr));
    return rc;
}

void
printJson(const std::vector<JsonRun> &runs, const std::string &protocol)
{
    std::printf("[\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const JsonRun &r = runs[i];
        std::printf(
            "  {\"config\": \"%s\", \"protocol\": \"%s\", "
            "\"states\": %llu, \"transitions\": %llu, "
            "\"maxInFlight\": %zu, \"clean\": %s, "
            "\"violations\": %zu, \"deadlocks\": %zu, "
            "\"livenessViolations\": %zu, \"dirtyTraps\": %zu",
            r.config.c_str(), protocol.c_str(),
            static_cast<unsigned long long>(r.rep.states),
            static_cast<unsigned long long>(r.rep.transitions),
            r.rep.maxInFlight, r.rep.clean() ? "true" : "false",
            r.rep.violations.size(), r.rep.deadlocks.size(),
            r.rep.livenessViolations.size(), r.rep.dirtyTraps.size());
        if (r.unreducedStates) {
            std::printf(", \"unreducedStates\": %llu",
                        static_cast<unsigned long long>(
                            r.unreducedStates));
        }
        std::printf("}%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::printf("]\n");
}

void
listProtocols(std::FILE *to)
{
    for (const auto *p : eci::proto::allProtocols())
        std::fprintf(to, "%s\n", p->name());
}

} // namespace

int
main(int argc, char **argv)
{
    bool unordered = false, verbose = false, json = false;
    bool symmetry = false, por = false, compare = false;
    std::string mode = "both";
    std::string protocol = "moesi";
    unsigned lines = 1, threads = 1;
    std::size_t maxStates = 0; // 0 = library default
    verif::Mutation mutation = verif::Mutation::None;
    std::string mutationName;

    auto intArg = [&](int &i, const char *flag,
                      unsigned long &out) -> bool {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "ecicheck: %s requires a value\n",
                         flag);
            return false;
        }
        out = std::strtoul(argv[++i], nullptr, 10);
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        unsigned long v = 0;
        if (std::strcmp(argv[i], "--unordered") == 0) {
            unordered = true;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--symmetry") == 0) {
            symmetry = true;
        } else if (std::strcmp(argv[i], "--por") == 0) {
            por = true;
        } else if (std::strcmp(argv[i], "--compare-reduction") == 0) {
            compare = true;
            symmetry = true;
            por = true;
        } else if (std::strcmp(argv[i], "--lines") == 0) {
            if (!intArg(i, "--lines", v))
                return 2;
            lines = static_cast<unsigned>(v);
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (!intArg(i, "--threads", v))
                return 2;
            threads = static_cast<unsigned>(v);
        } else if (std::strcmp(argv[i], "--max-states") == 0) {
            if (!intArg(i, "--max-states", v))
                return 2;
            maxStates = v;
        } else if (std::strcmp(argv[i], "--mode") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ecicheck: --mode requires a value\n");
                return 2;
            }
            mode = argv[++i];
        } else if (std::strcmp(argv[i], "--protocol") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ecicheck: --protocol requires a value "
                             "(--list-protocols)\n");
                return 2;
            }
            protocol = argv[++i];
        } else if (std::strcmp(argv[i], "--list-protocols") == 0) {
            listProtocols(stdout);
            return 0;
        } else if (std::strcmp(argv[i], "--mutation") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ecicheck: --mutation requires a value "
                             "(--list-mutations)\n");
                return 2;
            }
            mutationName = argv[++i];
        } else if (std::strcmp(argv[i], "--list-mutations") == 0) {
            // Deferred: filtered by --protocol, which may follow.
            mutationName = "--list--";
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: ecicheck [--protocol NAME | "
                "--list-protocols]\n"
                "                [--unordered] [--mode "
                "cached|uncached|both]\n"
                "                [--mutation NAME | "
                "--list-mutations]\n"
                "                [--lines N] [--symmetry] [--por] "
                "[--threads N]\n"
                "                [--compare-reduction] "
                "[--max-states N]\n"
                "                [--json] [--verbose]\n");
            return 0;
        } else {
            std::fprintf(stderr, "ecicheck: unknown option '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (mode != "cached" && mode != "uncached" && mode != "both") {
        std::fprintf(stderr, "ecicheck: bad --mode '%s'\n",
                     mode.c_str());
        return 2;
    }
    if (!eci::proto::protocolByName(protocol)) {
        std::fprintf(stderr,
                     "ecicheck: unknown protocol '%s'; registered "
                     "protocols are:\n",
                     protocol.c_str());
        listProtocols(stderr);
        return 2;
    }
    if (mutationName == "--list--") {
        for (verif::Mutation m : verif::allMutations) {
            if (verif::mutationApplies(m, protocol))
                std::printf("%s\n", verif::toString(m));
        }
        return 0;
    }
    if (!mutationName.empty()) {
        auto m = verif::mutationFromString(mutationName);
        if (!m) {
            std::fprintf(stderr,
                         "ecicheck: unknown mutation '%s' "
                         "(--list-mutations)\n",
                         mutationName.c_str());
            return 2;
        }
        if (!verif::mutationApplies(*m, protocol)) {
            std::fprintf(stderr,
                         "ecicheck: mutation '%s' does not apply to "
                         "protocol '%s'\n",
                         mutationName.c_str(), protocol.c_str());
            return 2;
        }
        mutation = *m;
    }

    int rc = 0;
    std::vector<JsonRun> jsonRuns;
    for (int cached = 1; cached >= 0; --cached) {
        if (cached && mode == "uncached")
            continue;
        if (!cached && mode == "cached")
            continue;
        verif::Options opt;
        opt.protocol = protocol;
        opt.uncachedRemote = !cached;
        opt.orderedDelivery = !unordered;
        opt.mutation = mutation;
        opt.lines = lines;
        opt.symmetry = symmetry;
        opt.por = por;
        opt.threads = threads;
        if (maxStates)
            opt.maxStates = maxStates;
        std::string what =
            protocol + " " + (cached ? "cached" : "uncached") +
            (unordered ? " unordered" : " ordered");
        if (lines > 1)
            what += " lines=" + std::to_string(lines);
        if (symmetry || por) {
            what += std::string(" [") + (symmetry ? "sym" : "") +
                    (symmetry && por ? "+" : "") + (por ? "por" : "") +
                    "]";
        }
        if (mutation != verif::Mutation::None)
            what += std::string(" +") + verif::toString(mutation);
        rc |= runOne(opt, what, verbose, compare, json, jsonRuns);
    }
    if (json)
        printJson(jsonRuns, protocol);
    return rc;
}
