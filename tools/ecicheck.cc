/**
 * @file
 * ecicheck: exhaustive model checker for the simulator's ECI
 * coherence protocol.
 *
 * Explores every reachable state of one cache line shared between a
 * home and a remote node, driving the abstract machine with the same
 * pure protocol kernels (eci::proto) the event-driven engines
 * execute, and checks SWMR, directory coverage, dirty-data
 * conservation, deadlock freedom, and quiescence liveness
 * (src/verif/).
 *
 * Usage:
 *   ecicheck                   check cached + uncached, FIFO links
 *   ecicheck --unordered       model reordering link policies too
 *   ecicheck --mode cached     only the coherent-cached configuration
 *   ecicheck --mutation NAME   inject a seeded bug (must be caught)
 *   ecicheck --list-mutations  print the available seeded bugs
 *   ecicheck --verbose         print coverage and unreached states
 *
 * Exit status 0 iff every explored configuration is clean (or, with
 * --mutation, nonzero when the bug is detected as it should be).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "verif/explorer.hh"

using namespace enzian;

namespace {

int
runOne(const verif::Options &opt, const char *what, bool verbose)
{
    const verif::Report rep = verif::explore(opt);
    std::printf("%-28s %6llu states %7llu transitions "
                "max-in-flight %zu : %s\n",
                what, static_cast<unsigned long long>(rep.states),
                static_cast<unsigned long long>(rep.transitions),
                rep.maxInFlight, rep.clean() ? "clean" : "VIOLATIONS");
    if (!rep.clean() || verbose)
        std::printf("%s", rep.toString().c_str());
    return rep.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool unordered = false, verbose = false;
    std::string mode = "both";
    verif::Mutation mutation = verif::Mutation::None;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--unordered") == 0) {
            unordered = true;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(argv[i], "--mode") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ecicheck: --mode requires a value\n");
                return 2;
            }
            mode = argv[++i];
        } else if (std::strcmp(argv[i], "--mutation") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ecicheck: --mutation requires a value "
                             "(--list-mutations)\n");
                return 2;
            }
            auto m = verif::mutationFromString(argv[++i]);
            if (!m) {
                std::fprintf(stderr,
                             "ecicheck: unknown mutation '%s' "
                             "(--list-mutations)\n",
                             argv[i]);
                return 2;
            }
            mutation = *m;
        } else if (std::strcmp(argv[i], "--list-mutations") == 0) {
            for (verif::Mutation m : verif::allMutations)
                std::printf("%s\n", verif::toString(m));
            return 0;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: ecicheck [--unordered] [--mode "
                "cached|uncached|both]\n"
                "                [--mutation NAME | "
                "--list-mutations] [--verbose]\n");
            return 0;
        } else {
            std::fprintf(stderr, "ecicheck: unknown option '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (mode != "cached" && mode != "uncached" && mode != "both") {
        std::fprintf(stderr, "ecicheck: bad --mode '%s'\n",
                     mode.c_str());
        return 2;
    }

    int rc = 0;
    for (int cached = 1; cached >= 0; --cached) {
        if (cached && mode == "uncached")
            continue;
        if (!cached && mode == "cached")
            continue;
        verif::Options opt;
        opt.uncachedRemote = !cached;
        opt.orderedDelivery = !unordered;
        opt.mutation = mutation;
        std::string what =
            std::string(cached ? "cached" : "uncached") +
            (unordered ? " unordered" : " ordered");
        if (mutation != verif::Mutation::None)
            what += std::string(" +") + verif::toString(mutation);
        rc |= runOne(opt, what.c_str(), verbose);
    }
    return rc;
}
