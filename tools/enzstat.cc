/**
 * @file
 * enzstat: run the observability demo scenario on a full Enzian
 * machine and export its statistics.
 *
 * The machine-readable face of the simulator: every SimObject's stat
 * group is in the global registry, so one run surfaces ECI link
 * latencies, home/remote agent occupancy, DRAM channel load, TCP and
 * vFPGA activity, and the CPU PMU in a single document.
 *
 * Usage:
 *   enzstat                      human-readable snapshot to stdout
 *   enzstat --json [FILE]        registry snapshot as JSON
 *   enzstat --prom [FILE]        Prometheus text exposition
 *   enzstat --csv  [FILE]        sampled time series (per-interval deltas)
 *   enzstat --trace [FILE]       Chrome/Perfetto span trace JSON
 *   enzstat --slo  [FILE]        windowed latency-percentile series from
 *                                a GBDT serving run at half capacity
 *   enzstat --interval-us N      sampling period for --csv (default 50000)
 *   enzstat --adaptive           adaptive epochs on the parallel
 *                                machine (implies 1 worker thread
 *                                unless ENZIAN_THREADS says more);
 *                                the scheduler's epoch_len histogram
 *                                and adaptive_grows/adaptive_shrinks
 *                                counters appear in every export
 *
 * FILE defaults to stdout ("-"). Options combine; each export runs
 * over the same single scenario.
 *
 * ENZIAN_THREADS=N runs the machine as parallel timing domains on N
 * worker threads (same stats, bit-identical simulation). --csv is the
 * exception: the sampler snapshots the registry mid-run, which would
 * observe other domains' half-folded counters, so csv runs stay on
 * the legacy single-queue machine.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "load/load_gen.hh"
#include "load/testbed.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/slo.hh"
#include "obs/span_tracer.hh"
#include "platform/obs_demo.hh"
#include "platform/platform_factory.hh"
#include "sim/domain_scheduler.hh"

using namespace enzian;

namespace {

/** Write via @p fn to @p path, or stdout for "-"/empty. */
template <typename Fn>
void
writeTo(const std::string &path, Fn fn)
{
    if (path.empty() || path == "-") {
        fn(std::cout);
        return;
    }
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "enzstat: cannot open '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    fn(f);
    std::fprintf(stderr, "enzstat: wrote %s\n", path.c_str());
}

/** Optional FILE operand: consume argv[i+1] unless it is a flag. */
std::string
fileOperand(int argc, char **argv, int &i)
{
    if (i + 1 < argc && argv[i + 1][0] != '-')
        return argv[++i];
    return "-";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false, prom = false, csv = false, trace = false;
    bool slo = false, adaptive = false;
    std::string json_path, prom_path, csv_path, trace_path, slo_path;
    double interval_us = 50000.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
            json_path = fileOperand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--prom") == 0) {
            prom = true;
            prom_path = fileOperand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            csv = true;
            csv_path = fileOperand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            trace = true;
            trace_path = fileOperand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--slo") == 0) {
            slo = true;
            slo_path = fileOperand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--interval-us") == 0 &&
                   i + 1 < argc) {
            interval_us = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--adaptive") == 0) {
            adaptive = true;
        } else {
            std::fprintf(stderr,
                         "usage: enzstat [--json [FILE]] "
                         "[--prom [FILE]] [--csv [FILE]] "
                         "[--trace [FILE]] [--slo [FILE]] "
                         "[--interval-us N] [--adaptive]\n");
            return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
        }
    }
    if (interval_us <= 0) {
        std::fprintf(stderr, "enzstat: bad --interval-us\n");
        return 2;
    }

    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    cfg.bitstream = "coyote-shell"; // demo schedules vFPGA apps
    if (const char *env = std::getenv("ENZIAN_THREADS");
        env && *env) {
        const auto threads = static_cast<std::uint32_t>(
            std::strtoul(env, nullptr, 10));
        if (threads > 0 && csv) {
            std::fprintf(stderr,
                         "enzstat: --csv samples the registry "
                         "mid-run; ignoring ENZIAN_THREADS=%u and "
                         "using the single-queue machine\n",
                         threads);
        } else if (threads > 0) {
            cfg.threads = threads;
        }
    }
    if (adaptive) {
        if (csv) {
            std::fprintf(stderr, "enzstat: --adaptive is ignored with "
                                 "--csv (single-queue machine)\n");
        } else {
            cfg.adaptive_epochs = true;
            if (cfg.threads == 0)
                cfg.threads = 1;
        }
    }
    platform::EnzianMachine m(cfg);
    platform::ObsDemo demo(m);

    obs::SpanTracer &tracer = obs::SpanTracer::global();
    tracer.setEnabled(trace);

    // The sampler pre-schedules its snapshot events; the demo's FPGA
    // phase runs into the seconds (partial reconfiguration), so cover
    // a generous window. Extra tail samples just record zero deltas.
    obs::Sampler sampler(obs::Registry::global(), m.eventq(),
                         units::us(interval_us));
    if (csv)
        sampler.run(m.now() + units::ms(3000.0));

    demo.run();

    std::fprintf(stderr,
                 "enzstat: scenario done at %.2f ms sim time: %llu ECI "
                 "lines, %llu TCP bytes, %llu vFPGA jobs\n",
                 units::toMicros(m.now()) / 1000.0,
                 static_cast<unsigned long long>(demo.eciLines()),
                 static_cast<unsigned long long>(demo.tcpBytes()),
                 static_cast<unsigned long long>(demo.fpgaJobs()));
    if (sim::DomainScheduler *sched = m.scheduler()) {
        std::fprintf(
            stderr,
            "enzstat: %llu epochs (%s), %llu adaptive grows, %llu "
            "shrinks\n",
            static_cast<unsigned long long>(sched->epochs()),
            sched->adaptive() ? "adaptive" : "fixed",
            static_cast<unsigned long long>(sched->adaptiveGrows()),
            static_cast<unsigned long long>(sched->adaptiveShrinks()));
    }

    if (slo) {
        // A second, independent run: Poisson arrivals into the GBDT
        // serving testbed at half its estimated capacity, reported as
        // tumbling-window percentile rows.
        load::ServingTestbed bed(load::TestbedConfig{});
        obs::SloRecorder::Config sc;
        sc.window = units::ms(5.0);
        obs::SloRecorder rec(sc);
        load::LoadGen::Config lc;
        lc.arrival.rate_rps = 0.5 * bed.estimatedCapacityRps();
        lc.duration = units::ms(50.0);
        load::LoadGen gen("serving.loadgen", bed.eventq(),
                          bed.driver(), rec, lc);
        gen.start();
        bed.run();
        rec.rollTo(bed.machine().now());
        writeTo(slo_path, [&](std::ostream &os) {
            rec.writeCsv(os);
        });
    }

    obs::Registry &reg = obs::Registry::global();
    if (json)
        writeTo(json_path, [&](std::ostream &os) {
            reg.exportJson(os);
        });
    if (prom)
        writeTo(prom_path, [&](std::ostream &os) {
            reg.exportPrometheus(os);
        });
    if (csv)
        writeTo(csv_path, [&](std::ostream &os) {
            sampler.writeCsv(os);
        });
    if (trace)
        writeTo(trace_path, [&](std::ostream &os) {
            tracer.writeChromeJson(os);
        });

    if (!json && !prom && !csv && !trace && !slo) {
        // Default: gem5-style text dump of every registered group.
        for (const StatGroup *g : reg.groups())
            g->dump(std::cout);
    }
    return 0;
}
