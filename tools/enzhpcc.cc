/**
 * @file
 * enzhpcc: run the HPCC accelerator suite (FFT / LU / PTRANS) on a
 * simulated Enzian from the command line.
 *
 * Runs the selected kernels either directly on the vFPGA fabric or
 * as multi-tenant jobs under the vFPGA scheduler (--sched), verifies
 * every output against the reference model unless --no-verify, and
 * reports GFLOP/s and GB/s per kernel. Exits non-zero on any
 * verification failure.
 *
 * Usage:
 *   enzhpcc [--kernel fft|lu|ptrans|all]  kernels to run (default all)
 *           [--n N]            FFT points / LU order (default 1024/256)
 *           [--rows R --cols C --tile T]  PTRANS geometry (256/256/64)
 *           [--block B]        LU panel width (default 32)
 *           [--jobs N]         timed jobs per kernel (default 4)
 *           [--seed N]         input RNG seed (default 1)
 *           [--sched]          run the jobs under the vFPGA scheduler
 *           [--policy fifo|rr] scheduler policy (default fifo)
 *           [--quantum-us N]   round-robin quantum (default 5)
 *           [--no-verify]      skip the reference checks
 *           [--trace FILE]     write a Chrome/Perfetto span trace
 *           [--json [FILE]]    dump the stats registry JSON
 */

#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "accel/hpcc/fft.hh"
#include "base/logging.hh"
#include "accel/hpcc/lu.hh"
#include "accel/hpcc/transpose.hh"
#include "base/rng.hh"
#include "fpga/scheduler.hh"
#include "mem/address_map.hh"
#include "obs/registry.hh"
#include "obs/span_tracer.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

using namespace enzian;
using namespace enzian::accel::hpcc;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: enzhpcc [--kernel fft|lu|ptrans|all] [--n N]\n"
        "               [--rows R] [--cols C] [--tile T] [--block B]\n"
        "               [--jobs N] [--seed N] [--sched]\n"
        "               [--policy fifo|rr] [--quantum-us N]\n"
        "               [--no-verify] [--trace FILE] [--json [FILE]]\n");
    std::exit(2);
}

std::uint64_t
parseU64(const char *s, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s, &end, 0);
    if (!end || *end) {
        std::fprintf(stderr, "enzhpcc: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return v;
}

struct Options
{
    bool fft = true, lu = true, ptrans = true;
    std::uint32_t n = 0; // 0 = per-kernel default
    std::uint32_t rows = 256, cols = 256, tile = 64, block = 32;
    std::uint32_t jobs = 4;
    std::uint64_t seed = 1;
    bool sched = false;
    fpga::SchedPolicy policy = fpga::SchedPolicy::Fifo;
    Tick quantum = units::us(5);
    bool verify = true;
    bool want_trace = false, want_json = false;
    std::string trace_path, json_path;
};

accel::Pipeline::Config
pipeConfig(platform::EnzianMachine &m)
{
    accel::Pipeline::Config cfg;
    cfg.mc = &m.fpgaMem();
    cfg.map = &m.map();
    cfg.clock = &m.fpga().clock();
    cfg.remote = &m.fpgaRemote();
    return cfg;
}

/** One kernel run: issue jobs, drive the machine, report rates. */
struct KernelRun
{
    const char *name;
    double gflops = 0.0, gbs = 0.0;
    bool verified = false;
};

template <typename MakeJob>
double
timeJobs(platform::EnzianMachine &m, accel::Pipeline &pipe,
         fpga::VfpgaScheduler *sched, const Options &opt,
         MakeJob make)
{
    const Tick start = m.now();
    Tick last = 0;
    std::uint32_t completed = 0;
    for (std::uint32_t i = 0; i < opt.jobs; ++i) {
        auto done = [&](Tick t) {
            last = std::max(last, t);
            ++completed;
        };
        if (sched)
            pipe.runUnder(*sched, make(), done);
        else
            pipe.process(start, make(), done);
    }
    m.run();
    if (completed != opt.jobs)
        fatal("enzhpcc: %s completed %u of %u jobs", pipe.name().c_str(),
              completed, opt.jobs);
    return units::toSeconds(last - start);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--kernel") && i + 1 < argc) {
            const std::string k = argv[++i];
            opt.fft = k == "fft" || k == "all";
            opt.lu = k == "lu" || k == "all";
            opt.ptrans = k == "ptrans" || k == "all";
            if (!opt.fft && !opt.lu && !opt.ptrans) {
                std::fprintf(stderr, "enzhpcc: unknown kernel '%s'\n",
                             k.c_str());
                return 2;
            }
        } else if (!std::strcmp(arg, "--n") && i + 1 < argc) {
            opt.n = static_cast<std::uint32_t>(parseU64(argv[++i], "n"));
        } else if (!std::strcmp(arg, "--rows") && i + 1 < argc) {
            opt.rows =
                static_cast<std::uint32_t>(parseU64(argv[++i], "rows"));
        } else if (!std::strcmp(arg, "--cols") && i + 1 < argc) {
            opt.cols =
                static_cast<std::uint32_t>(parseU64(argv[++i], "cols"));
        } else if (!std::strcmp(arg, "--tile") && i + 1 < argc) {
            opt.tile =
                static_cast<std::uint32_t>(parseU64(argv[++i], "tile"));
        } else if (!std::strcmp(arg, "--block") && i + 1 < argc) {
            opt.block = static_cast<std::uint32_t>(
                parseU64(argv[++i], "block"));
        } else if (!std::strcmp(arg, "--jobs") && i + 1 < argc) {
            opt.jobs =
                static_cast<std::uint32_t>(parseU64(argv[++i], "jobs"));
        } else if (!std::strcmp(arg, "--seed") && i + 1 < argc) {
            opt.seed = parseU64(argv[++i], "seed");
        } else if (!std::strcmp(arg, "--sched")) {
            opt.sched = true;
        } else if (!std::strcmp(arg, "--policy") && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "fifo") {
                opt.policy = fpga::SchedPolicy::Fifo;
            } else if (p == "rr" || p == "round-robin") {
                opt.policy = fpga::SchedPolicy::RoundRobin;
            } else {
                std::fprintf(stderr, "enzhpcc: unknown policy '%s'\n",
                             p.c_str());
                return 2;
            }
            opt.sched = true;
        } else if (!std::strcmp(arg, "--quantum-us") && i + 1 < argc) {
            opt.quantum = units::us(parseU64(argv[++i], "quantum"));
        } else if (!std::strcmp(arg, "--no-verify")) {
            opt.verify = false;
        } else if (!std::strcmp(arg, "--trace") && i + 1 < argc) {
            opt.want_trace = true;
            opt.trace_path = argv[++i];
        } else if (!std::strcmp(arg, "--json")) {
            opt.want_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opt.json_path = argv[++i];
        } else {
            usage();
        }
    }
    if (opt.jobs == 0)
        usage();

    if (opt.want_trace)
        obs::SpanTracer::global().setEnabled(true);

    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    platform::EnzianMachine m(cfg);

    fpga::VfpgaScheduler *sched = nullptr;
    std::unique_ptr<fpga::VfpgaScheduler> sched_holder;
    if (opt.sched) {
        m.loadBitstream("coyote-shell");
        fpga::VfpgaScheduler::Config scfg;
        scfg.policy = opt.policy;
        scfg.quantum = opt.quantum;
        sched_holder = std::make_unique<fpga::VfpgaScheduler>(
            "enzhpcc.sched", m.eventq(), m.shell(), scfg);
        sched = sched_holder.get();
    }

    const Addr in = mem::AddressMap::fpgaDramBase;
    const Addr out = mem::AddressMap::fpgaDramBase + (128ull << 20);
    auto &store = m.fpgaMem().store();
    const auto &map = m.map();

    std::printf("%-8s %10s %12s %12s %10s\n", "kernel", "size",
                "GFLOP/s", "GB/s", "verify");
    int failures = 0;
    std::vector<KernelRun> runs;

    if (opt.fft) {
        FftPipeline::Params p;
        p.n = opt.n ? opt.n : 1024;
        if (p.n < 2 || (p.n & (p.n - 1))) {
            std::fprintf(stderr,
                         "enzhpcc: FFT size must be a power of two\n");
            return 2;
        }
        FftPipeline fft("enzhpcc.fft", m.fpgaEventq(), pipeConfig(m),
                        p);
        Rng rng(opt.seed);
        std::vector<std::complex<float>> sig(p.n);
        for (auto &s : sig)
            s = {static_cast<float>(rng.uniform(-1.0, 1.0)),
                 static_cast<float>(rng.uniform(-1.0, 1.0))};
        store.write(map.offsetInRegion(in), sig.data(),
                    sig.size() * 8);
        const double secs =
            timeJobs(m, fft, sched, opt,
                     [&] { return fft.makeJob(in, out); });
        KernelRun r{"fft"};
        r.gflops = static_cast<double>(FftPipeline::flops(p.n)) *
                   opt.jobs / secs / 1e9;
        r.gbs = 2.0 * 8.0 * p.n * opt.jobs / secs / 1e9;
        r.verified = true;
        if (opt.verify) {
            std::vector<std::complex<float>> got(p.n);
            store.read(map.offsetInRegion(out), got.data(),
                       got.size() * 8);
            if (rmsError(got, dftReference(sig)) > 1e-6) {
                r.verified = false;
                ++failures;
            }
        }
        std::printf("%-8s %10u %12.2f %12.2f %10s\n", r.name, p.n,
                    r.gflops, r.gbs,
                    opt.verify ? (r.verified ? "ok" : "FAIL")
                               : "skipped");
        runs.push_back(r);
    }

    if (opt.lu) {
        LuPipeline::Params p;
        p.n = opt.n ? opt.n : 256;
        p.block = opt.block;
        if (p.block == 0 || p.block > p.n) {
            std::fprintf(stderr, "enzhpcc: bad LU block width\n");
            return 2;
        }
        LuPipeline lu("enzhpcc.lu", m.fpgaEventq(), pipeConfig(m), p);
        Rng rng(opt.seed + 1);
        std::vector<float> mat(static_cast<std::size_t>(p.n) * p.n);
        for (auto &v : mat)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        store.write(map.offsetInRegion(in), mat.data(),
                    mat.size() * 4);
        const double secs =
            timeJobs(m, lu, sched, opt,
                     [&] { return lu.makeJob(in, out); });
        KernelRun r{"lu"};
        r.gflops = static_cast<double>(LuPipeline::flops(p.n)) *
                   opt.jobs / secs / 1e9;
        r.gbs = static_cast<double>(lu.inputBytes() +
                                    lu.outputBytes()) *
                opt.jobs / secs / 1e9;
        r.verified = true;
        if (opt.verify) {
            std::vector<float> got(mat.size());
            store.read(map.offsetInRegion(out), got.data(),
                       got.size() * 4);
            auto want = mat;
            std::vector<std::int32_t> piv;
            luReference(want, piv, p.n);
            for (std::size_t i = 0; i < got.size(); ++i) {
                if (std::abs(got[i] - want[i]) >
                    1e-4f * static_cast<float>(p.n)) {
                    r.verified = false;
                    ++failures;
                    break;
                }
            }
        }
        std::printf("%-8s %10u %12.2f %12.2f %10s\n", r.name, p.n,
                    r.gflops, r.gbs,
                    opt.verify ? (r.verified ? "ok" : "FAIL")
                               : "skipped");
        runs.push_back(r);
    }

    if (opt.ptrans) {
        TransposePipeline::Params p;
        p.rows = opt.rows;
        p.cols = opt.cols;
        p.tile = opt.tile;
        if (p.tile == 0 || p.rows % p.tile || p.cols % p.tile) {
            std::fprintf(stderr,
                         "enzhpcc: tile must divide rows and cols\n");
            return 2;
        }
        TransposePipeline tr("enzhpcc.ptrans", m.fpgaEventq(),
                             pipeConfig(m), p);
        Rng rng(opt.seed + 2);
        std::vector<float> mat(static_cast<std::size_t>(p.rows) *
                               p.cols);
        for (auto &v : mat)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        store.write(map.offsetInRegion(in), mat.data(),
                    mat.size() * 4);
        const double secs =
            timeJobs(m, tr, sched, opt,
                     [&] { return tr.makeJob(in, out); });
        KernelRun r{"ptrans"};
        r.gbs = static_cast<double>(tr.bytesMoved()) * opt.jobs /
                secs / 1e9;
        r.verified = true;
        if (opt.verify) {
            std::vector<float> got(mat.size());
            store.read(map.offsetInRegion(out), got.data(),
                       got.size() * 4);
            const auto want = transposeReference(mat, p.rows, p.cols);
            if (std::memcmp(got.data(), want.data(),
                            want.size() * 4) != 0) {
                r.verified = false;
                ++failures;
            }
        }
        char size[32];
        std::snprintf(size, sizeof size, "%ux%u", p.rows, p.cols);
        std::printf("%-8s %10s %12s %12.2f %10s\n", r.name, size, "-",
                    r.gbs,
                    opt.verify ? (r.verified ? "ok" : "FAIL")
                               : "skipped");
        runs.push_back(r);
    }

    if (sched)
        std::printf("\nscheduler: %s, %llu job(s) completed, %llu "
                    "preemption(s)\n",
                    fpga::toString(opt.policy),
                    static_cast<unsigned long long>(
                        sched->jobsCompleted()),
                    static_cast<unsigned long long>(
                        sched->preemptions()));

    if (opt.want_trace) {
        obs::SpanTracer &tracer = obs::SpanTracer::global();
        tracer.setEnabled(false);
        std::ofstream f(opt.trace_path, std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "enzhpcc: cannot open '%s'\n",
                         opt.trace_path.c_str());
            return 2;
        }
        tracer.writeChromeJson(f);
        std::fprintf(stderr, "enzhpcc: wrote %s\n",
                     opt.trace_path.c_str());
    }

    if (opt.want_json) {
        if (opt.json_path.empty() || opt.json_path == "-") {
            obs::Registry::global().exportJson(std::cout);
        } else {
            std::ofstream f(opt.json_path, std::ios::trunc);
            if (!f) {
                std::fprintf(stderr, "enzhpcc: cannot open '%s'\n",
                             opt.json_path.c_str());
                return 2;
            }
            obs::Registry::global().exportJson(f);
            std::fprintf(stderr, "enzhpcc: wrote %s\n",
                         opt.json_path.c_str());
        }
    }

    if (failures) {
        std::printf("\nFAIL: %d kernel(s) diverged from the "
                    "reference\n",
                    failures);
        return 1;
    }
    return 0;
}
