/**
 * @file
 * enzload: open-loop load generation and capacity planning for the
 * simulated Enzian services.
 *
 * Drives one service (GBDT inference, RDMA reads, or TCP echo)
 * through the serving testbed at a single offered rate or across a
 * saturation sweep, and reports the knee: the highest offered load
 * whose p99 (or configured quantile) still meets the SLO. With a
 * fault plan the sweep runs twice — clean and faulted — and reports
 * the capacity the faults cost.
 *
 * Usage:
 *   enzload [--service gbdt|rdma|tcp] [--sweep [LO:HI:N]] [--rate R]
 *           [--process poisson|mmpp|diurnal] [--duration-ms X]
 *           [--window-ms X] [--slo-us X] [--slo-quantile Q]
 *           [--clients N] [--seed N] [--points N]
 *           [--batch N] [--engines N] [--bytes N]
 *           [--path dram|eci-host] [--flows N]
 *           [--plan FILE] [--protocol NAME] [--threads N]
 *           [--users-rps R] [--trace [FILE]] [--trace-requests N]
 *           [--json [FILE]] [--csv [FILE]]
 *
 * Default is an auto sweep (geometric ladder from 10% to 150% of the
 * testbed's estimated capacity). --rate runs one operating point
 * instead. ENZIAN_THREADS is honored like --threads (GBDT only; the
 * other services fall back to the single-queue machine).
 *
 * Exit status: 0 if a knee was found (or --rate met the SLO), 1 if no
 * operating point met the SLO, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "load/testbed.hh"
#include "obs/json.hh"
#include "obs/slo.hh"
#include "obs/span_tracer.hh"

using namespace enzian;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: enzload [--service gbdt|rdma|tcp] [--sweep [LO:HI:N]]\n"
        "               [--rate R] [--process poisson|mmpp|diurnal]\n"
        "               [--duration-ms X] [--window-ms X] [--slo-us X]\n"
        "               [--slo-quantile Q] [--clients N] [--seed N]\n"
        "               [--points N] [--batch N] [--engines N]\n"
        "               [--bytes N] [--path dram|eci-host] [--flows N]\n"
        "               [--plan FILE] [--protocol NAME] [--threads N]\n"
        "               [--users-rps R] [--trace [FILE]]\n"
        "               [--trace-requests N] [--json [FILE]]\n"
        "               [--csv [FILE]]\n");
    std::exit(2);
}

std::uint64_t
parseU64(const char *s, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s, &end, 0);
    if (!end || *end) {
        std::fprintf(stderr, "enzload: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return v;
}

double
parseF64(const char *s, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (!end || *end) {
        std::fprintf(stderr, "enzload: bad %s '%s'\n", what, s);
        std::exit(2);
    }
    return v;
}

/** Write via @p fn to @p path, or stdout for "-"/empty. */
template <typename Fn>
void
writeTo(const std::string &path, Fn fn)
{
    if (path.empty() || path == "-") {
        fn(std::cout);
        return;
    }
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "enzload: cannot open '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    fn(f);
    std::fprintf(stderr, "enzload: wrote %s\n", path.c_str());
}

/** Optional FILE operand: consume argv[i+1] unless it is a flag. */
std::string
fileOperand(int argc, char **argv, int &i)
{
    if (i + 1 < argc && argv[i + 1][0] != '-')
        return argv[++i];
    return "-";
}

/** Parse a LO:HI:N ladder spec. */
std::vector<double>
parseLadder(const std::string &spec)
{
    double lo = 0, hi = 0;
    unsigned long n = 0;
    char trailing = 0;
    if (std::sscanf(spec.c_str(), "%lf:%lf:%lu%c", &lo, &hi, &n,
                    &trailing) != 3 ||
        lo <= 0 || hi < lo || n < 1) {
        std::fprintf(stderr, "enzload: bad sweep spec '%s' "
                             "(want LO:HI:N)\n",
                     spec.c_str());
        std::exit(2);
    }
    return load::geometricRates(lo, hi, n);
}

void
printPoints(const load::SweepResult &r, const char *label)
{
    std::printf("\n%-12s %10s %10s %9s %9s %9s %9s %7s\n", label,
                "offered", "achieved", "p50us", "p99us", "p999us",
                "burn", "slo");
    for (const auto &p : r.points) {
        std::printf("%-12s %10.0f %10.0f %9.1f %9.1f %9.1f %9.4f "
                    "%7s\n",
                    "", p.offered_rps, p.achieved_rps, p.p50_us,
                    p.p99_us, p.p999_us, p.burn_rate,
                    p.slo_ok ? "ok" : "MISS");
    }
    if (r.knee >= 0)
        std::printf("%-12s knee at point %d: %.0f req/s\n", "",
                    r.knee, r.knee_rps);
    else
        std::printf("%-12s no operating point met the SLO\n", "");
}

void
jsonPoints(std::ostream &os, const load::SweepResult &r,
           const char *indent)
{
    os << "[";
    bool first = true;
    for (const auto &p : r.points) {
        os << (first ? "\n" : ",\n") << indent << "  {"
           << "\"offered_rps\": " << obs::json::number(p.offered_rps)
           << ", \"offered\": " << p.offered
           << ", \"completed\": " << p.completed
           << ", \"achieved_rps\": "
           << obs::json::number(p.achieved_rps)
           << ", \"p50_us\": " << obs::json::number(p.p50_us)
           << ", \"p99_us\": " << obs::json::number(p.p99_us)
           << ", \"p999_us\": " << obs::json::number(p.p999_us)
           << ", \"mean_us\": " << obs::json::number(p.mean_us)
           << ", \"max_us\": " << obs::json::number(p.max_us)
           << ", \"burn_rate\": " << obs::json::number(p.burn_rate)
           << ", \"slo_ok\": " << (p.slo_ok ? "true" : "false")
           << "}";
        first = false;
    }
    os << "\n" << indent << "]";
}

} // namespace

int
main(int argc, char **argv)
{
    load::SweepConfig cfg;
    std::optional<fault::FaultPlan> plan;
    double rate = 0.0;
    bool sweep = false;
    double users_rps = 0.0;
    bool want_json = false, want_csv = false, want_trace = false;
    std::string json_path, csv_path, trace_path;
    std::uint64_t trace_requests = 0;

    if (const char *env = std::getenv("ENZIAN_THREADS"); env && *env)
        cfg.testbed.threads = static_cast<std::uint32_t>(
            std::strtoul(env, nullptr, 10));

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--service") && i + 1 < argc) {
            cfg.testbed.service =
                load::serviceKindFromString(argv[++i]);
        } else if (!std::strcmp(arg, "--sweep")) {
            sweep = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                cfg.rates = parseLadder(argv[++i]);
        } else if (!std::strcmp(arg, "--rate") && i + 1 < argc) {
            rate = parseF64(argv[++i], "rate");
        } else if (!std::strcmp(arg, "--process") && i + 1 < argc) {
            cfg.arrival.kind =
                load::arrivalKindFromString(argv[++i]);
        } else if (!std::strcmp(arg, "--duration-ms") &&
                   i + 1 < argc) {
            cfg.duration =
                units::ms(parseF64(argv[++i], "duration"));
        } else if (!std::strcmp(arg, "--window-ms") && i + 1 < argc) {
            cfg.window = units::ms(parseF64(argv[++i], "window"));
        } else if (!std::strcmp(arg, "--slo-us") && i + 1 < argc) {
            cfg.slo_latency_us = parseF64(argv[++i], "slo");
        } else if (!std::strcmp(arg, "--slo-quantile") &&
                   i + 1 < argc) {
            cfg.slo_quantile = parseF64(argv[++i], "quantile");
        } else if (!std::strcmp(arg, "--clients") && i + 1 < argc) {
            cfg.clients = parseU64(argv[++i], "clients");
        } else if (!std::strcmp(arg, "--seed") && i + 1 < argc) {
            cfg.testbed.seed = parseU64(argv[++i], "seed");
            cfg.arrival.seed = cfg.testbed.seed;
        } else if (!std::strcmp(arg, "--points") && i + 1 < argc) {
            cfg.auto_points = parseU64(argv[++i], "points");
        } else if (!std::strcmp(arg, "--batch") && i + 1 < argc) {
            cfg.testbed.gbdt_batch = parseU64(argv[++i], "batch");
        } else if (!std::strcmp(arg, "--engines") && i + 1 < argc) {
            cfg.testbed.gbdt_engines = static_cast<std::uint32_t>(
                parseU64(argv[++i], "engines"));
        } else if (!std::strcmp(arg, "--bytes") && i + 1 < argc) {
            cfg.testbed.rdma_bytes = parseU64(argv[++i], "bytes");
            cfg.testbed.tcp_bytes = cfg.testbed.rdma_bytes;
        } else if (!std::strcmp(arg, "--path") && i + 1 < argc) {
            cfg.testbed.rdma_path = argv[++i];
        } else if (!std::strcmp(arg, "--flows") && i + 1 < argc) {
            cfg.testbed.tcp_flows = static_cast<std::uint32_t>(
                parseU64(argv[++i], "flows"));
        } else if (!std::strcmp(arg, "--plan") && i + 1 < argc) {
            std::string err;
            plan = fault::FaultPlan::parseFile(argv[++i], err);
            if (!plan) {
                std::fprintf(stderr, "enzload: %s\n", err.c_str());
                return 2;
            }
        } else if (!std::strcmp(arg, "--protocol") && i + 1 < argc) {
            cfg.testbed.protocol = argv[++i];
        } else if (!std::strcmp(arg, "--threads") && i + 1 < argc) {
            cfg.testbed.threads = static_cast<std::uint32_t>(
                parseU64(argv[++i], "threads"));
        } else if (!std::strcmp(arg, "--users-rps") && i + 1 < argc) {
            users_rps = parseF64(argv[++i], "users-rps");
        } else if (!std::strcmp(arg, "--trace")) {
            want_trace = true;
            trace_path = fileOperand(argc, argv, i);
        } else if (!std::strcmp(arg, "--trace-requests") &&
                   i + 1 < argc) {
            trace_requests = parseU64(argv[++i], "trace-requests");
        } else if (!std::strcmp(arg, "--json")) {
            want_json = true;
            json_path = fileOperand(argc, argv, i);
        } else if (!std::strcmp(arg, "--csv")) {
            want_csv = true;
            csv_path = fileOperand(argc, argv, i);
        } else {
            if (std::strcmp(arg, "--help"))
                std::fprintf(stderr, "enzload: unknown option '%s'\n",
                             arg);
            usage();
        }
    }
    if (rate > 0.0 && sweep) {
        std::fprintf(stderr,
                     "enzload: --rate and --sweep are exclusive\n");
        return 2;
    }
    if (rate > 0.0)
        cfg.rates = {rate};

    const char *svc = load::toString(cfg.testbed.service);
    std::printf("enzload: %s service, %s arrivals, SLO p%g <= %.0f us",
                svc, load::toString(cfg.arrival.kind),
                cfg.slo_quantile * 100.0, cfg.slo_latency_us);
    if (plan)
        std::printf(", %zu faults planned", plan->faults.size());
    std::printf("\n");

    const load::SweepResult base = load::runSweep(cfg);
    printPoints(base, "clean");

    std::optional<load::SweepResult> faulted;
    if (plan) {
        load::SweepConfig fcfg = cfg;
        // Reuse the clean ladder so the two runs share rates.
        if (fcfg.rates.empty())
            for (const auto &p : base.points)
                fcfg.rates.push_back(p.offered_rps);
        fcfg.testbed.plan = &*plan;
        faulted = load::runSweep(fcfg);
        printPoints(*faulted, "faulted");
        if (base.knee >= 0 && faulted->knee >= 0)
            std::printf("\nfault cost: knee %.0f -> %.0f req/s "
                        "(%.1f%% capacity lost)\n",
                        base.knee_rps, faulted->knee_rps,
                        100.0 * (1.0 - faulted->knee_rps /
                                           base.knee_rps));
    }

    if (users_rps > 0.0 && base.knee >= 0)
        std::printf("supported users at %.2f req/s each: %.0f\n",
                    users_rps, base.knee_rps / users_rps);

    // Per-request tracing: rerun the knee point (or the lightest
    // point if nothing met the SLO) with the tracer on.
    if (want_trace && !base.points.empty()) {
        const int idx = base.knee >= 0 ? base.knee : 0;
        load::TestbedConfig tbc = cfg.testbed;
        tbc.plan = nullptr;
        load::ServingTestbed bed(tbc);
        obs::SloRecorder::Config sc;
        sc.name = "trace";
        sc.window = cfg.window;
        sc.slo_latency_us = cfg.slo_latency_us;
        sc.slo_quantile = cfg.slo_quantile;
        obs::SloRecorder slo(sc);
        load::LoadGen::Config lc;
        lc.arrival = cfg.arrival;
        lc.arrival.rate_rps = base.points[idx].offered_rps;
        lc.duration = cfg.duration;
        lc.clients = cfg.clients;
        lc.trace_requests =
            trace_requests > 0 ? trace_requests : 32;
        obs::SpanTracer &tracer = obs::SpanTracer::global();
        tracer.setEnabled(true);
        load::LoadGen gen("serving.loadgen", bed.eventq(),
                          bed.driver(), slo, lc);
        gen.start();
        bed.run();
        tracer.setEnabled(false);
        writeTo(trace_path, [&](std::ostream &os) {
            tracer.writeChromeJson(os);
        });
    }

    if (want_json)
        writeTo(json_path, [&](std::ostream &os) {
            os << "{\n  \"service\": " << obs::json::quote(svc)
               << ",\n  \"process\": "
               << obs::json::quote(
                      load::toString(cfg.arrival.kind))
               << ",\n  \"protocol\": "
               << obs::json::quote(cfg.testbed.protocol)
               << ",\n  \"slo_us\": "
               << obs::json::number(cfg.slo_latency_us)
               << ",\n  \"slo_quantile\": "
               << obs::json::number(cfg.slo_quantile)
               << ",\n  \"duration_ms\": "
               << obs::json::number(units::toMicros(cfg.duration) /
                                    1000.0)
               << ",\n  \"points\": ";
            jsonPoints(os, base, "  ");
            os << ",\n  \"knee\": " << base.knee
               << ",\n  \"knee_rps\": "
               << obs::json::number(base.knee_rps);
            if (users_rps > 0.0)
                os << ",\n  \"knee_users\": "
                   << obs::json::number(
                          base.knee >= 0
                              ? base.knee_rps / users_rps
                              : 0.0);
            if (faulted) {
                os << ",\n  \"faulted_points\": ";
                jsonPoints(os, *faulted, "  ");
                os << ",\n  \"faulted_knee\": " << faulted->knee
                   << ",\n  \"faulted_knee_rps\": "
                   << obs::json::number(faulted->knee_rps)
                   << ",\n  \"knee_delta_rps\": "
                   << obs::json::number(base.knee_rps -
                                        faulted->knee_rps);
            }
            os << "\n}\n";
        });

    if (want_csv)
        writeTo(csv_path, [&](std::ostream &os) {
            os << "run,offered_rps,offered,completed,achieved_rps,"
                  "p50_us,p99_us,p999_us,mean_us,max_us,burn_rate,"
                  "slo_ok\n";
            auto rows = [&](const load::SweepResult &r,
                            const char *tag) {
                for (const auto &p : r.points) {
                    char line[320];
                    std::snprintf(
                        line, sizeof(line),
                        "%s,%.3f,%llu,%llu,%.3f,%.3f,%.3f,%.3f,"
                        "%.3f,%.3f,%.4f,%d\n",
                        tag, p.offered_rps,
                        static_cast<unsigned long long>(p.offered),
                        static_cast<unsigned long long>(p.completed),
                        p.achieved_rps, p.p50_us, p.p99_us,
                        p.p999_us, p.mean_us, p.max_us, p.burn_rate,
                        p.slo_ok ? 1 : 0);
                    os << line;
                }
            };
            rows(base, "clean");
            if (faulted)
                rows(*faulted, "faulted");
        });

    return base.knee >= 0 ? 0 : 1;
}
