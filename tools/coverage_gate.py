#!/usr/bin/env python3
"""Per-directory line-coverage report + floor gate over an lcov trace.

Reads an lcov .info file (as produced by `lcov --capture`), aggregates
DA: line records per source directory, prints a coverage table, and
enforces minimum line-coverage floors on selected directories. Used by
the CI coverage job; no dependencies beyond the standard library.

Usage:
    coverage_gate.py coverage.info [--min DIR=PCT ...] [--prefix P]

    --min src/fault=80   fail (exit 1) if src/fault is below 80% lines
    --prefix /root/repo  strip this prefix from SF: paths first

A floor on a directory covers its whole subtree: `--min src/accel=80`
aggregates src/accel together with src/accel/hpcc and any other
nested directory. The printed table stays per-directory.
"""

import argparse
import collections
import os
import sys


def parse_info(path):
    """Return {source_file: {line: max_hits}} from an lcov trace."""
    per_file = collections.defaultdict(dict)
    current = None
    with open(path, encoding="utf-8", errors="replace") as f:
        for raw in f:
            line = raw.strip()
            if line.startswith("SF:"):
                current = line[3:]
            elif line == "end_of_record":
                current = None
            elif current and line.startswith("DA:"):
                try:
                    lineno_s, hits_s = line[3:].split(",")[:2]
                    lineno, hits = int(lineno_s), int(hits_s)
                except ValueError:
                    continue
                prev = per_file[current].get(lineno, 0)
                per_file[current][lineno] = max(prev, hits)
    return per_file


def directory_of(source, prefix):
    if prefix and source.startswith(prefix):
        source = source[len(prefix):].lstrip("/")
    return os.path.dirname(source) or "."


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("info", help="lcov .info trace")
    ap.add_argument("--min", action="append", default=[],
                    metavar="DIR=PCT",
                    help="minimum line coverage for a directory")
    ap.add_argument("--prefix", default="",
                    help="path prefix to strip from SF: records")
    args = ap.parse_args()

    floors = {}
    for spec in args.min:
        try:
            d, pct = spec.rsplit("=", 1)
            floors[d.rstrip("/")] = float(pct)
        except ValueError:
            ap.error(f"bad --min spec '{spec}' (want DIR=PCT)")

    per_file = parse_info(args.info)
    if not per_file:
        print(f"coverage_gate: no records in {args.info}",
              file=sys.stderr)
        return 1

    hit = collections.Counter()
    total = collections.Counter()
    for source, lines in per_file.items():
        d = directory_of(source, args.prefix)
        total[d] += len(lines)
        hit[d] += sum(1 for h in lines.values() if h > 0)

    width = max(len(d) for d in total)
    print(f"{'directory'.ljust(width)}    lines     hit   cover")
    for d in sorted(total):
        pct = 100.0 * hit[d] / total[d] if total[d] else 0.0
        print(f"{d.ljust(width)}  {total[d]:7d} {hit[d]:7d} "
              f"{pct:6.1f}%")

    failed = False
    for d, floor in sorted(floors.items()):
        # A gate aggregates the directory's whole subtree, so nested
        # directories (src/accel/hpcc under src/accel) can't dodge
        # their parent's floor.
        subtree = [x for x in total
                   if x == d or x.startswith(d + "/")]
        sub_total = sum(total[x] for x in subtree)
        sub_hit = sum(hit[x] for x in subtree)
        if sub_total == 0:
            print(f"coverage_gate: no lines recorded for '{d}'",
                  file=sys.stderr)
            failed = True
            continue
        pct = 100.0 * sub_hit / sub_total
        status = "OK" if pct >= floor else "FAIL"
        print(f"gate {d}: {pct:.1f}% (floor {floor:.0f}%) {status}")
        if pct < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
