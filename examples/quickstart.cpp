/**
 * @file
 * Quickstart: build an Enzian, move data coherently between the CPU
 * and FPGA nodes, ring a doorbell, fire an IPI.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/registry.hh"
#include "obs/span_tracer.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

using namespace enzian;

int
main()
{
    // 0. Turn on span tracing: every instrumented component (ECI
    //    links, agents, DRAM channels, ...) will emit Chrome-trace
    //    spans as the workload runs.
    obs::SpanTracer::global().setEnabled(true);

    // 1. Build the machine of the paper's Figure 4 (sizes shrunk for
    //    a demo; the address map is identical).
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    platform::EnzianMachine m(cfg);
    std::printf("machine up: %u cores, %u ECI links, FPGA @ %.0f MHz, "
                "%zu regulators\n",
                m.cluster().coreCount(), m.fabric().linkCount(),
                m.fpga().clock().frequencyHz() / 1e6,
                m.bmc().regulatorCount());

    // 2. The CPU writes a line of FPGA-homed memory, coherently. The
    //    write allocates Modified in the CPU's L2.
    const Addr fpga_line = mem::AddressMap::fpgaDramBase + 0x1000;
    std::uint8_t data[cache::lineSize];
    std::memset(data, 0x42, sizeof(data));
    m.cpuRemote().writeLine(fpga_line, data, [&](Tick t) {
        std::printf("CPU wrote FPGA-homed line at %.0f ns, L2 state "
                    "%s\n",
                    units::toNanos(t),
                    cache::toString(m.l2().probe(fpga_line)));
    });
    m.eventq().run();

    // 3. The FPGA reads CPU-homed memory uncached over ECI; the home
    //    agent snoops the L2 if needed, so the FPGA always sees the
    //    latest data.
    const Addr cpu_line = 0x2000;
    m.cpuMem().store().fill(cpu_line, 0x77, cache::lineSize);
    std::uint8_t got[cache::lineSize];
    const Tick read_start = m.now();
    m.fpgaRemote().readLineUncached(cpu_line, got, [&](Tick t) {
        std::printf("FPGA read host line in %.0f ns: byte0=0x%02x\n",
                    units::toNanos(t - read_start), got[0]);
    });
    m.eventq().run();

    // 4. Uncached I/O: the CPU rings a doorbell register the FPGA
    //    application mapped into its I/O window.
    eci::IoDevice doorbell;
    doorbell.write = [](Addr, std::uint64_t v, std::uint32_t) {
        std::printf("FPGA doorbell rang with value 0x%llx\n",
                    static_cast<unsigned long long>(v));
    };
    doorbell.read = [](Addr, std::uint32_t) { return 0ull; };
    m.fpgaIo().map("doorbell", 0x0, 8, doorbell);
    m.cpuRemote().ioWrite(0x0, 0xbeef, 8, [](Tick) {});
    m.eventq().run();

    // 5. And an inter-processor interrupt the other way.
    m.cpuHome().setIpiHandler([](std::uint32_t vec) {
        std::printf("CPU received IPI vector %u from the FPGA\n", vec);
    });
    m.fpgaRemote().sendIpi(7);
    m.eventq().run();

    // 6. Protocol statistics.
    std::printf("\nlink statistics:\n");
    for (std::uint32_t i = 0; i < m.fabric().linkCount(); ++i) {
        std::printf("  link%u: %llu messages, %llu bytes\n", i,
                    static_cast<unsigned long long>(
                        m.fabric().link(i).messagesSent()),
                    static_cast<unsigned long long>(
                        m.fabric().link(i).bytesSent()));
    }
    std::printf("simulated time: %.2f us\n",
                units::toMicros(m.now()));

    // 7. The same numbers machine-readably: every component's stats
    //    sit in the global registry, and the spans recorded above load
    //    straight into Perfetto / chrome://tracing.
    obs::Registry &reg = obs::Registry::global();
    std::printf("\nobservability: %zu stat groups in the registry\n",
                reg.groupCount());
    {
        std::ofstream f("/tmp/enzian_quickstart_stats.json");
        reg.exportJson(f);
    }
    {
        std::ofstream f("/tmp/enzian_quickstart_trace.json");
        obs::SpanTracer::global().writeChromeJson(f);
    }
    std::printf("wrote /tmp/enzian_quickstart_stats.json and "
                "/tmp/enzian_quickstart_trace.json\n");
    return 0;
}
