/**
 * @file
 * The FPGA as a custom memory controller (paper section 5.4).
 *
 * Raw RGBA frames live in FPGA DRAM. The coherent data-reduction
 * pipeline (Figure 10) serves the CPU a "logical view" of the frames
 * as packed luminance: the CPU just points its blur filter at the
 * view addresses - loads look exactly like NUMA-remote refills.
 * Nothing else changes.
 *
 * Build & run:  ./build/examples/custom_memory_controller
 */

#include <cstdio>

#include "accel/frame.hh"
#include "accel/rgb2y_pipeline.hh"
#include "accel/vision_pipeline.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

using namespace enzian;

int
main()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    platform::EnzianMachine m(cfg);

    // A (reduced-height) video frame preloaded into FPGA DRAM.
    accel::Frame frame = accel::makeFrame(2026, 0, 1024, 32);
    accel::preloadFrame(m.fpgaMem().store(), 0, frame);
    std::printf("frame: %ux%u RGBA (%llu KiB) in FPGA DRAM\n",
                frame.width, frame.height,
                static_cast<unsigned long long>(frame.bytes() >> 10));

    // Install the RGB2Y pipeline behind the FPGA home agent.
    accel::Rgb2yLineSource::Config pcfg;
    pcfg.reduction = accel::Reduction::Y8;
    pcfg.input_base = mem::AddressMap::fpgaDramBase;
    pcfg.view_base = mem::AddressMap::fpgaDramBase + (64ull << 20);
    pcfg.view_size = frame.pixels();
    accel::Rgb2yLineSource pipeline(m.fpgaMem(), m.map(),
                                    m.fpga().clock(), pcfg);
    m.fpgaHome().setLineSource(&pipeline);

    // The CPU reads the luminance view; every miss is an RLDD that
    // the pipeline answers with a transformed PEMD.
    std::vector<std::uint8_t> y(frame.pixels());
    const std::uint64_t lines = y.size() / cache::lineSize;
    std::uint64_t done = 0;
    Tick first_latency = 0;
    const Tick start = m.now();
    for (std::uint64_t l = 0; l < lines; ++l) {
        m.cpuRemote().readLine(
            pcfg.view_base + l * cache::lineSize,
            y.data() + l * cache::lineSize, [&, l](Tick t) {
                if (l == 0)
                    first_latency = t - start;
                ++done;
            });
    }
    m.eventq().run();
    std::printf("read %llu view lines (%llu transformed refills), "
                "first refill latency %.0f ns\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(
                    pipeline.linesTransformed()),
                units::toNanos(first_latency));

    // Blur the hardware-produced luminance and verify the whole
    // pipeline against pure software.
    std::vector<std::uint8_t> blurred(y.size());
    accel::gaussianBlur3x3(y.data(), frame.width, frame.height,
                           blurred.data());
    const bool ok = blurred == accel::softwarePipeline(frame);
    std::printf("hardware-view pipeline vs software reference: %s\n",
                ok ? "bit-exact" : "MISMATCH");

    // Figure 11 headline numbers from the calibrated timing model.
    std::printf("\nprojected full-machine throughput (48 cores):\n");
    for (auto r : {accel::Reduction::None, accel::Reduction::Y8,
                   accel::Reduction::Y4}) {
        const auto res = m.cluster().runParallel(
            accel::fig11Kernel(r), 48, 1024ull * 576 * 100,
            m.fabric().effectiveBandwidth());
        std::printf("  %-5s %.2f GPixel/s, %.2f GiB/s interconnect, "
                    "%.3f stalls/cycle\n",
                    accel::toString(r), res.itemRate / 1e9,
                    res.interconnectRate /
                        static_cast<double>(units::GiB),
                    res.pmu.memStallsPerCycle());
    }
    return ok ? 0 : 1;
}
