/**
 * @file
 * BMC power management and instrumentation (paper sections 4.2-4.3,
 * 5.5).
 *
 * Walks the artifact's power-manager flow: common_power_up(), the
 * declaratively solved CPU and FPGA domain sequences, PMBus readback
 * of every rail (print_current_all()), live telemetry while a
 * workload runs, undervolting a rail, and a fault injection showing
 * the OCP machinery.
 *
 * Build & run:  ./build/examples/power_monitor
 */

#include <cstdio>
#include <sstream>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

using namespace enzian;

int
main()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);
    bmc::Bmc &bmc = m.bmc();
    EventQueue &eq = m.eventq();

    // The solved power-up schedule for the whole tree.
    std::printf("=== declarative power sequencing ===\n");
    const auto schedule = bmc.solver().powerUpSequence();
    std::string err;
    std::printf("solver produced %zu steps; validator says %s\n",
                schedule.size(),
                bmc.solver().validate(schedule, err) ? "CORRECT"
                                                     : err.c_str());
    for (std::size_t i = 0; i < 5; ++i) {
        std::printf("  t=%5.1f ms  enable %s\n", schedule[i].at_ms,
                    schedule[i].rail.c_str());
    }
    std::printf("  ... (%zu more)\n", schedule.size() - 5);

    // Power the board like the artifact does.
    eq.runUntil(bmc.commonPowerUp() + units::ms(1));
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    eq.runUntil(bmc.fpgaPowerUp() + units::ms(1));
    bmc.power().setCpuOn(true);
    bmc.power().setFpgaOn(true);
    bmc.power().setFpgaConfigured(true);

    // A busy workload, instrumented.
    bmc.power().setActiveCores(48);
    bmc.power().setDramActivity(0, 0.8);
    bmc.power().setDramActivity(1, 0.8);
    bmc.power().setFpgaActivity(0.5);

    std::printf("\n=== print_current_all() ===\n%s",
                bmc.printCurrentAll().c_str());
    eq.run();

    std::printf("\n=== telemetry: 1 s @ 20 ms over 4 rails ===\n");
    bmc.telemetry().watch("CPU", 0x20);
    bmc.telemetry().watch("FPGA", 0x30);
    bmc.telemetry().watch("DRAM0", 0x25);
    bmc.telemetry().watch("DRAM1", 0x28);
    bmc.telemetry().start(units::ms(20));
    eq.runUntil(eq.now() + units::sec(1));
    bmc.telemetry().stop();
    eq.run();
    std::printf("collected %zu samples; last: CPU %.1f W, FPGA %.1f "
                "W\n",
                bmc.telemetry().samples().size(),
                bmc.telemetry().latest("CPU")->watts,
                bmc.telemetry().latest("FPGA")->watts);

    // Undervolting study (section 4.3): margin VDD_CORE down 5%.
    std::printf("\n=== undervolt VDD_CORE by 5%% over PMBus ===\n");
    bmc.pmbus().writeWord(
        0x20, bmc::PmbusCmd::VoutCommand,
        bmc::linear16Encode(0.98 * 0.95, bmc::voutModeExponent));
    eq.run();
    std::printf("VDD_CORE now %.3f V (faults: 0x%04x)\n",
                bmc.regulator("VDD_CORE").vout(),
                bmc.regulator("VDD_CORE").faults());

    // Fault injection: what the 150 A bring-up hazard looks like.
    std::printf("\n=== inject over-current on VCCINT ===\n");
    bmc.regulator("VCCINT").injectFault(bmc::statusIoutOc);
    auto status =
        bmc.pmbus().readWord(0x30, bmc::PmbusCmd::StatusWord);
    eq.run();
    std::printf("VCCINT STATUS_WORD=0x%04x, rail %s\n",
                status ? *status : 0,
                bmc.regulator("VCCINT").powerGood() ? "still up"
                                                    : "shut down");
    return 0;
}
