/**
 * @file
 * Coherence-protocol tracing and checking (paper section 4.1).
 *
 * One part of Enzian can instrument the rest: tap the ECI links,
 * capture every message in the open serialization format, decode it
 * Wireshark-style, and replay it through the generated-from-spec
 * assertion checker. Also demonstrates catching a deliberately
 * corrupted trace.
 *
 * Build & run:  ./build/examples/coherence_tracing
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/span_tracer.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/checker.hh"
#include "trace/decoder.hh"

using namespace enzian;

int
main()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);

    // Tap both links.
    trace::EciTrace tr;
    tr.attach(m.fabric());

    // A small coherent workload: cached write, snooped read-back by
    // the home node, flush.
    const Addr line = mem::AddressMap::fpgaDramBase + 0x1000;
    std::vector<std::uint8_t> data(cache::lineSize, 0x11);
    m.cpuRemote().writeLine(line, data.data(), [](Tick) {});
    m.eventq().run();
    std::uint8_t buf[cache::lineSize];
    m.fpgaHome().localRead(line, buf, [](Tick) {});
    m.eventq().run();
    m.cpuRemote().flushAll([](Tick) {});
    m.eventq().run();

    // Decode the conversation.
    std::printf("=== decoded trace (%zu messages) ===\n", tr.size());
    std::ostringstream text;
    trace::dumpText(tr, text);
    std::printf("%s", text.str().c_str());

    std::printf("\n=== summary ===\n");
    std::ostringstream sum;
    trace::dumpSummary(trace::summarize(tr), sum);
    std::printf("%s", sum.str().c_str());

    // Replay through the protocol checker.
    trace::ProtocolChecker checker;
    checker.check(tr);
    checker.finalize();
    std::printf("\nchecker: %s\n",
                checker.clean() ? "trace is protocol-clean"
                                : checker.violations()[0].c_str());

    // Round-trip through the interoperability format.
    tr.save("/tmp/enzian_example.ecit");
    trace::EciTrace loaded;
    loaded.load("/tmp/enzian_example.ecit");
    std::printf("serialization round trip: %zu -> %zu records\n",
                tr.size(), loaded.size());

    // And out to Perfetto: render the capture as Chrome-trace JSON
    // (per-VC instant tracks plus a wire-bytes counter), loadable in
    // https://ui.perfetto.dev or chrome://tracing. `ecidump --chrome`
    // does the same from the command line.
    {
        obs::SpanTracer viz;
        trace::toChromeTrace(loaded, viz);
        std::ofstream f("/tmp/enzian_coherence_trace.json");
        viz.writeChromeJson(f);
        std::printf("Perfetto trace: /tmp/enzian_coherence_trace.json "
                    "(%zu messages)\n",
                    loaded.size());
    }

    // Now corrupt the trace: drop the response to the first request.
    trace::EciTrace corrupted;
    bool dropped_one = false;
    for (const auto &rec : tr.records()) {
        if (!dropped_one && rec.msg.op == eci::Opcode::PEMD) {
            dropped_one = true;
            continue;
        }
        corrupted.record(rec.when, rec.msg);
    }
    trace::ProtocolChecker checker2;
    checker2.check(corrupted);
    checker2.finalize();
    std::printf("\ncorrupted trace (dropped one PEMD): checker found "
                "%zu violation(s)\n  e.g. %s\n",
                checker2.violations().size(),
                checker2.violations().empty()
                    ? "(none?)"
                    : checker2.violations()[0].c_str());
    return checker.clean() && !checker2.clean() ? 0 : 1;
}
