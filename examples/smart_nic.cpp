/**
 * @file
 * Enzian as a smart NIC (paper section 5.2).
 *
 * Two scenarios:
 *  1. The FPGA TCP stack terminates a 100 GbE flow in the fabric and
 *     lands the payload in CPU host memory over ECI - the CPU never
 *     touches a packet (FlexNIC/Dagger-style offload).
 *  2. A remote initiator performs one-sided RDMA into host memory
 *     through the FPGA (StRoM-style), coherent with the CPU's L2.
 *
 * Build & run:  ./build/examples/smart_nic
 */

#include <cstdio>
#include <cstring>

#include "net/rdma_engine.hh"
#include "net/tcp_stack.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

using namespace enzian;

int
main()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    platform::EnzianMachine enzian(cfg);
    EventQueue &eq = enzian.eventq();

    net::Switch::Config sw_cfg;
    sw_cfg.port = platform::params::eth100Config();
    net::Switch sw("lab.switch", eq, 4, sw_cfg);

    // --- scenario 1: TCP termination in the fabric ------------------
    std::printf("=== TCP offload: FPGA stack -> host memory ===\n");
    net::TcpStack enzian_stack("enzian.tcp", eq, sw,
                               net::fpgaTcpConfig(0, 250e6));
    net::TcpStack peer_stack("peer.tcp", eq, sw,
                             net::hostTcpConfig(1));
    const auto flow = peer_stack.connect(enzian_stack);

    // As payload arrives, the FPGA writes it to a host ring buffer
    // over ECI (simplified: one line per delivery notification).
    const Addr ring_base = 0x100000;
    auto ring_off = std::make_shared<Addr>(0);
    std::vector<std::uint8_t> line(cache::lineSize, 0xd0);
    enzian_stack.setReceiveCallback(
        [&, ring_off](std::uint32_t, std::uint64_t bytes) {
            line[0] = static_cast<std::uint8_t>(bytes & 0xff);
            enzian.fpgaRemote().writeLineUncached(
                ring_base + *ring_off, line.data(), [](Tick) {});
            *ring_off = (*ring_off + cache::lineSize) % (1 << 20);
        });

    const std::uint64_t stream_bytes = 8ull << 20;
    Tick tcp_done = 0;
    peer_stack.send(flow, stream_bytes, [&](Tick t) { tcp_done = t; });
    eq.run();
    std::printf("streamed %llu MiB into the FPGA stack in %.2f ms "
                "(%.1f Gb/s), %llu bytes landed in host memory\n",
                static_cast<unsigned long long>(stream_bytes >> 20),
                units::toSeconds(tcp_done) * 1e3,
                units::toGbps(static_cast<double>(stream_bytes) /
                              units::toSeconds(tcp_done)),
                static_cast<unsigned long long>(
                    enzian_stack.bytesReceived(flow)));

    // --- scenario 2: one-sided RDMA into coherent host memory -------
    std::printf("\n=== RDMA: one-sided writes into host memory ===\n");
    net::EciHostPath host_path(enzian.fpgaRemote(), 0x200000);
    net::RdmaTarget target("enzian.rdma", eq, sw, host_path,
                           net::RdmaTarget::Config{.port = 2});
    net::RdmaInitiator initiator("peer.rdma", eq, sw, 3, 2);

    // The CPU holds one of the target lines dirty in its L2; RDMA
    // stays coherent with it.
    std::vector<std::uint8_t> dirty(cache::lineSize, 0xaa);
    enzian.l2().fill(0x200000, cache::MoesiState::Modified,
                     dirty.data());

    std::vector<std::uint8_t> payload(4096);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    Tick write_done = 0;
    const Tick rdma_start = eq.now();
    initiator.write(0, payload.data(), payload.size(),
                    [&](Tick t) { write_done = t - rdma_start; });
    eq.run();

    std::uint8_t check[16];
    enzian.cpuMem().store().read(0x200000, check, sizeof(check));
    std::printf("RDMA wrote 4 KiB in %.2f us; host memory starts "
                "%02x %02x %02x; stale L2 copy is now %s\n",
                units::toMicros(write_done), check[0], check[1],
                check[2],
                cache::toString(enzian.l2().probe(0x200000)));

    std::vector<std::uint8_t> readback(4096);
    Tick read_done = 0;
    const Tick read_start = eq.now();
    initiator.read(0, readback.data(), readback.size(),
                   [&](Tick t) { read_done = t - read_start; });
    eq.run();
    std::printf("RDMA read it back in %.2f us: %s\n",
                units::toMicros(read_done),
                readback == payload ? "payload intact"
                                    : "DATA CORRUPTION");
    return readback == payload ? 0 : 1;
}
