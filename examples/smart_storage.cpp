/**
 * @file
 * The FPGA as a smart programmable storage controller (paper
 * section 6): an NVMe device behind the fabric, a block cache in
 * FPGA DRAM, and an in-storage table scan that ships only matching
 * records to the host.
 *
 * Build & run:  ./build/examples/smart_storage
 */

#include <cstdio>
#include <cstring>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "storage/smart_storage.hh"

using namespace enzian;
using namespace enzian::storage;

int
main()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    platform::EnzianMachine m(cfg);

    NvmeDevice ssd("ssd", m.eventq(), NvmeDevice::Config{});
    SmartStorageController::Config scfg;
    scfg.cache_blocks = 4096;
    SmartStorageController ctrl("smart", m.eventq(), ssd, m.fpgaMem(),
                                scfg);

    // A table of 64-byte records on flash: {u64 key, payload}.
    constexpr std::uint32_t rec = 64;
    const std::uint64_t blocks = 2048; // 8 MiB
    {
        std::vector<std::uint8_t> data(blocks * blockBytes, 0);
        for (std::uint64_t r = 0; r < data.size() / rec; ++r) {
            const std::uint64_t k = (r % 4096 == 17) ? 0xcafe : r + 1;
            std::memcpy(&data[r * rec], &k, 8);
        }
        ssd.media().write(0, data.data(), data.size());
        std::printf("table: %llu records (%llu MiB) on flash\n",
                    static_cast<unsigned long long>(data.size() / rec),
                    static_cast<unsigned long long>(data.size() >> 20));
    }

    // 1. In-storage scan: SELECT * WHERE key = 0xcafe.
    ScanResult res;
    Tick scan_t = 0;
    const Tick t0 = m.now();
    ctrl.scan(0, blocks, rec, 0, 0xcafe, 1000,
              [&](Tick t, ScanResult r) {
                  res = std::move(r);
                  scan_t = t - t0;
              });
    m.eventq().run();
    std::printf("\nin-storage scan: %llu matches of %llu records in "
                "%.2f ms; %llu B shipped to host (vs %llu MiB raw)\n",
                static_cast<unsigned long long>(res.matches),
                static_cast<unsigned long long>(res.records_scanned),
                units::toSeconds(scan_t) * 1e3,
                static_cast<unsigned long long>(res.bytes_to_host),
                static_cast<unsigned long long>(
                    blocks * blockBytes >> 20));

    // 2. Block cache: re-read a hot block.
    std::vector<std::uint8_t> out(blockBytes);
    Tick miss_t = 0, hit_t = 0;
    Tick s1 = m.now();
    ctrl.readBlock(100, out.data(), [&](Tick t) { miss_t = t - s1; });
    m.eventq().run();
    Tick s2 = m.now();
    ctrl.readBlock(100, out.data(), [&](Tick t) { hit_t = t - s2; });
    m.eventq().run();
    std::printf("\nblock cache: cold read %.0f us (flash), hot read "
                "%.2f us (FPGA DRAM); %llu hits / %llu misses\n",
                units::toMicros(miss_t), units::toMicros(hit_t),
                static_cast<unsigned long long>(ctrl.cacheHits()),
                static_cast<unsigned long long>(ctrl.cacheMisses()));

    // 3. DRAM-emulated NVM (the paper's alternative when no SSD is
    //    attached): same interface, storage-class-memory timing.
    NvmeDevice nvm("nvm", m.eventq(),
                   NvmeDevice::dramEmulated(1ull << 30));
    Tick nvm_t = 0;
    Tick s3 = m.now();
    std::uint8_t b[blockBytes] = {};
    nvm.read(0, 1, b, [&](Tick t) { nvm_t = t - s3; });
    m.eventq().run();
    std::printf("\nDRAM-emulated NVM read: %.2f us (vs %.0f us "
                "flash)\n",
                units::toMicros(nvm_t), units::toMicros(miss_t));
    return 0;
}
