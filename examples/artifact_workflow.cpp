/**
 * @file
 * The paper's artifact workflow (Appendix A.5), end to end:
 *
 *   1. take the BMC and CPU consoles
 *   2. common_power_up()
 *   3. cpu_power_up(); break into the BDK boot menu
 *   4. program the experiment bitstream
 *   5. resume boot: BDK brings the ECI link up
 *   6. boot into Linux (with the special asymmetric DeviceTree)
 *
 * Every step runs against the real models: the sequenced regulators,
 * the fabric image, the per-lane link training, and the generated
 * DeviceTree.
 *
 * Build & run:  ./build/examples/artifact_workflow
 */

#include <cstdio>

#include "platform/bdk.hh"
#include "platform/device_tree.hh"
#include "platform/platform_factory.hh"

using namespace enzian;
using namespace enzian::platform;

int
main()
{
    auto cfg = enzianDefaultConfig();
    cfg.cpu_dram_bytes = 128ull << 20;
    cfg.fpga_dram_bytes = 128ull << 20;
    cfg.bitstream = "eci-bench"; // step 5's experiment image
    EnzianMachine m(cfg);
    EventQueue &eq = m.eventq();
    bmc::Bmc &bmc = m.bmc();

    std::printf("zuestoll01-bmc> common_power_up()\n");
    const Tick standby = bmc.commonPowerUp();
    eq.runUntil(standby + units::ms(1));
    std::printf("  standby + clock rails settled at %.1f ms\n",
                units::toSeconds(standby) * 1e3);

    std::printf("zuestoll01-bmc> fpga_power_up()\n");
    eq.runUntil(bmc.fpgaPowerUp() + units::ms(1));
    bmc.power().setFpgaOn(true);

    std::printf("zuestoll01-bmc> cpu_power_up()\n");
    eq.runUntil(bmc.cpuPowerUp() + units::ms(1));
    bmc.power().setCpuOn(true);
    std::printf("  all %zu regulators up; print_current_all():\n",
                bmc.regulatorCount());
    // Show a slice of the table.
    const std::string table = bmc.printCurrentAll();
    std::printf("%.*s  ...\n", 240, table.c_str());
    eq.run();

    std::printf("\n(CPU console) BDK boot menu: break with 'B'\n");
    std::printf("zuestoll01> program bitstream '%s' (%.0f MHz, ECI "
                "layers: %s)\n",
                m.fpga().loaded()->name.c_str(),
                m.fpga().clock().frequencyHz() / 1e6,
                m.fpga().eciReady() ? "yes" : "NO");

    std::printf("(CPU console) resuming boot; training ECI...\n");
    BdkEciBringup::Config bcfg;
    bcfg.retrain_chance = 0.08;
    BdkEciBringup bdk("bdk", eq, m, bcfg);
    Tick trained = 0;
    bdk.start([&](Tick t) { trained = t; });
    eq.run();
    std::printf("  link0: %u/12 lanes, link1: %u/12 lanes, %llu "
                "retrains, up at +%.0f us\n",
                bdk.lanesUp(0), bdk.lanesUp(1),
                static_cast<unsigned long long>(bdk.retrains()),
                units::toMicros(trained));

    std::printf("\n(CPU console) booting Linux with the generated "
                "DeviceTree:\n");
    const std::string dts = generateDeviceTree(m);
    std::string err;
    const bool ok = validateDeviceTree(dts, m, err);
    std::printf("  dts: %zu bytes, %u cpus in node 0, FPGA memory as "
                "node 1, validator: %s\n",
                dts.size(), m.config().cores,
                ok ? "OK" : err.c_str());

    // "Linux" is up: prove the machine works end to end with one
    // coherent round trip.
    std::vector<std::uint8_t> line(cache::lineSize, 0xeb);
    bool done = false;
    m.cpuRemote().writeLine(mem::AddressMap::fpgaDramBase, line.data(),
                            [&](Tick) { done = true; });
    eq.run();
    std::printf("\nubuntu@zuestoll01:~$ eci-selftest: %s\n",
                done ? "coherent write to FPGA memory OK" : "FAILED");
    return ok && done ? 0 : 1;
}
