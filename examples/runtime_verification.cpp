/**
 * @file
 * Runtime verification with the FPGA as test harness (paper sections
 * 3 and 6): temporal-logic assertions compiled into the fabric watch
 * the live machine with zero software overhead.
 *
 * Build & run:  ./build/examples/runtime_verification
 */

#include <cstdio>

#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"
#include "trace/rtv.hh"

using namespace enzian;
using trace::RtvEvent;

int
main()
{
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    platform::EnzianMachine m(cfg);

    trace::RtvEngine engine("rtv", m.eventq(),
                            trace::RtvEngine::Config{});
    auto opcode = [](eci::Opcode op) {
        return [id = static_cast<std::uint32_t>(op)](
                   const RtvEvent &e) { return e.id == id; };
    };

    // Three properties about the machine, compiled into monitors:
    auto &liveness = engine.addMonitor(
        std::make_unique<trace::ResponseWithinMonitor>(
            "every RLDD answered by PEMD within 5us",
            opcode(eci::Opcode::RLDD), opcode(eci::Opcode::PEMD),
            units::us(5)));
    auto &safety = engine.addMonitor(
        std::make_unique<trace::NeverMonitor>(
            "no PNAK on a healthy machine",
            opcode(eci::Opcode::PNAK)));
    auto &align = engine.addMonitor(
        std::make_unique<trace::AlwaysMonitor>(
            "coherent addresses line-aligned", [](const RtvEvent &e) {
                const auto op = static_cast<eci::Opcode>(e.id);
                if (op == eci::Opcode::IOBLD ||
                    op == eci::Opcode::IOBST ||
                    op == eci::Opcode::IOBACK ||
                    op == eci::Opcode::IPI)
                    return true;
                return cache::isLineAligned(e.arg);
            }));
    engine.attachEciTap(m.fabric());

    // Run a real workload under observation.
    std::uint32_t done = 0;
    std::vector<std::uint8_t> data(cache::lineSize, 0x66);
    for (int i = 0; i < 200; ++i) {
        m.cpuRemote().writeLine(mem::AddressMap::fpgaDramBase +
                                    static_cast<Addr>(i) * 128,
                                data.data(), [&](Tick) { ++done; });
        m.fpgaRemote().readLineUncached(static_cast<Addr>(i) * 128,
                                        nullptr,
                                        [&](Tick) { ++done; });
    }
    m.eventq().run();
    engine.finish();

    std::printf("workload: %u coherent operations observed as %llu "
                "events (0 dropped: %s)\n",
                done,
                static_cast<unsigned long long>(
                    engine.eventsProcessed()),
                engine.eventsDropped() == 0 ? "yes" : "NO");
    for (const trace::RtvMonitor *mon :
         {static_cast<const trace::RtvMonitor *>(&liveness), 
          static_cast<const trace::RtvMonitor *>(&safety),
          static_cast<const trace::RtvMonitor *>(&align)}) {
        std::printf("  [%s] %s\n",
                    mon->clean() ? "HOLDS" : "VIOLATED",
                    mon->name().c_str());
    }
    if (!engine.clean()) {
        for (const auto &v : engine.violations())
            std::printf("    %s\n", v.c_str());
        return 1;
    }
    return 0;
}
