/**
 * @file
 * Smart disaggregated memory on an Enzian cluster (paper section 6).
 *
 * Node 0 exports its FPGA DRAM as network-attached memory with
 * operator pushdown (the Farview idea: a database buffer cache where
 * selection runs *at the memory*); node 1 is the compute node. The
 * example also extends cache coherence across the rack: node 1's CPU
 * caches node 0's memory through the FPGA bridge.
 *
 * Build & run:  ./build/examples/disaggregated_memory
 */

#include <cstdio>
#include <cstring>

#include "cluster/disagg_memory.hh"
#include "cluster/eci_bridge.hh"
#include "cluster/enzian_cluster.hh"

using namespace enzian;
using namespace enzian::cluster;

int
main()
{
    EnzianCluster::Config ccfg;
    ccfg.nodes = 2;
    EnzianCluster rack(ccfg);
    std::printf("cluster: %u Enzians, %u-port 100 GbE switch\n",
                rack.nodeCount(), rack.network().portCount());

    // --- Farview-style: operator pushdown to remote memory ---------
    DisaggMemoryServer::Config scfg;
    scfg.port = rack.portOf(0);
    scfg.region_size = 64ull << 20;
    DisaggMemoryServer server("farview", rack.eventq(), rack.network(),
                              rack.node(0).fpgaMem(), scfg);
    DisaggMemoryClient db("db", rack.eventq(), rack.network(),
                          rack.portOf(1), server);

    // A 1M-row table of {key, payload} pairs in remote memory.
    constexpr std::uint32_t row = 16;
    constexpr std::uint64_t rows = 1u << 20;
    {
        std::vector<std::uint8_t> table(rows * row);
        for (std::uint64_t k = 0; k < rows; ++k) {
            std::memcpy(&table[k * row], &k, 8);
            std::memcpy(&table[k * row + 8], &k, 8);
        }
        bool loaded = false;
        db.write(0, table.data(), table.size(),
                 [&](Tick) { loaded = true; });
        rack.eventq().run();
        std::printf("loaded %llu MiB table into node0's FPGA DRAM: %s\n",
                    static_cast<unsigned long long>(table.size() >> 20),
                    loaded ? "ok" : "FAILED");
    }

    // SELECT * WHERE key >= 0.99 * rows: pushdown vs full read.
    Predicate pred;
    pred.column_offset = 0;
    pred.op = FilterOp::Ge;
    pred.operand = rows - rows / 100;

    Tick scan_t = 0;
    std::uint64_t scan_wire = 0, match_rows = 0;
    const Tick t0 = rack.eventq().now();
    db.scanFilter(0, row, rows, pred,
                  [&](Tick t, std::vector<std::uint8_t> m,
                      std::uint64_t wire) {
                      scan_t = t - t0;
                      scan_wire = wire;
                      match_rows = m.size() / row;
                  });
    rack.eventq().run();

    std::vector<std::uint8_t> full(rows * row);
    Tick read_t = 0;
    const Tick t1 = rack.eventq().now();
    db.read(0, full.data(), full.size(),
            [&](Tick t) { read_t = t - t1; });
    rack.eventq().run();

    std::printf("\nselect 1%% of %llu rows:\n",
                static_cast<unsigned long long>(rows));
    std::printf("  pushdown: %8.0f us, %6.2f MiB on the wire, %llu "
                "rows\n",
                units::toMicros(scan_t), scan_wire / 1048576.0,
                static_cast<unsigned long long>(match_rows));
    std::printf("  full read:%8.0f us, %6.2f MiB on the wire\n",
                units::toMicros(read_t), full.size() / 1048576.0);
    std::printf("  => pushdown moves %.0fx less data\n",
                static_cast<double>(full.size()) /
                    static_cast<double>(scan_wire));

    // --- coherence across the rack ----------------------------------
    std::printf("\ncoherence bridge: node1's CPU caches node0's "
                "memory\n");
    EciBridgeTarget::Config tcfg;
    tcfg.port = rack.portOf(0, 1);
    EciBridgeTarget bridge_t("bridge.t", rack.eventq(), rack.network(),
                             rack.node(0).cpuHome(), tcfg);
    eci::DramLineSource fb(rack.node(1).fpgaMem(), rack.node(1).map());
    EciBridgeSource::Config bscfg;
    bscfg.port = rack.portOf(1, 1);
    bscfg.window_base = mem::AddressMap::fpgaDramBase + (128ull << 20);
    bscfg.window_size = 16ull << 20;
    EciBridgeSource bridge_s("bridge.s", rack.eventq(), rack.network(),
                             fb, bridge_t, bscfg);
    rack.node(1).fpgaHome().setLineSource(&bridge_s);

    std::vector<std::uint8_t> secret(cache::lineSize, 0x42);
    rack.node(0).l2().fill(0x8000, cache::MoesiState::Modified,
                           secret.data()); // dirty on node 0!
    std::uint8_t got[cache::lineSize] = {};
    const Tick t2 = rack.eventq().now();
    Tick lat = 0;
    rack.node(1).cpuRemote().readLine(
        bscfg.window_base + 0x8000, got,
        [&](Tick t) { lat = t - t2; });
    rack.eventq().run();
    std::printf("  node1 read a line DIRTY in node0's L2 in %.2f us: "
                "0x%02x (%s), now cached %s on node1\n",
                units::toMicros(lat), got[0],
                got[0] == 0x42 ? "coherent" : "STALE",
                cache::toString(rack.node(1).l2().probe(
                    bscfg.window_base + 0x8000)));
    return got[0] == 0x42 ? 0 : 1;
}
