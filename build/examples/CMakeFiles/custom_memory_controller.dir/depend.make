# Empty dependencies file for custom_memory_controller.
# This may be replaced when dependencies are built.
