file(REMOVE_RECURSE
  "CMakeFiles/custom_memory_controller.dir/custom_memory_controller.cpp.o"
  "CMakeFiles/custom_memory_controller.dir/custom_memory_controller.cpp.o.d"
  "custom_memory_controller"
  "custom_memory_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_memory_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
