file(REMOVE_RECURSE
  "CMakeFiles/disaggregated_memory.dir/disaggregated_memory.cpp.o"
  "CMakeFiles/disaggregated_memory.dir/disaggregated_memory.cpp.o.d"
  "disaggregated_memory"
  "disaggregated_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
