# Empty dependencies file for disaggregated_memory.
# This may be replaced when dependencies are built.
