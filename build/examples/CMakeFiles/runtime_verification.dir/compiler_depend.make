# Empty compiler generated dependencies file for runtime_verification.
# This may be replaced when dependencies are built.
