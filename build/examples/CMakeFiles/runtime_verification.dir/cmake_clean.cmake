file(REMOVE_RECURSE
  "CMakeFiles/runtime_verification.dir/runtime_verification.cpp.o"
  "CMakeFiles/runtime_verification.dir/runtime_verification.cpp.o.d"
  "runtime_verification"
  "runtime_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
