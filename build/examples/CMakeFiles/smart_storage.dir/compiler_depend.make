# Empty compiler generated dependencies file for smart_storage.
# This may be replaced when dependencies are built.
