file(REMOVE_RECURSE
  "CMakeFiles/smart_storage.dir/smart_storage.cpp.o"
  "CMakeFiles/smart_storage.dir/smart_storage.cpp.o.d"
  "smart_storage"
  "smart_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
