# Empty dependencies file for smart_nic.
# This may be replaced when dependencies are built.
