file(REMOVE_RECURSE
  "CMakeFiles/smart_nic.dir/smart_nic.cpp.o"
  "CMakeFiles/smart_nic.dir/smart_nic.cpp.o.d"
  "smart_nic"
  "smart_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
