file(REMOVE_RECURSE
  "CMakeFiles/power_monitor.dir/power_monitor.cpp.o"
  "CMakeFiles/power_monitor.dir/power_monitor.cpp.o.d"
  "power_monitor"
  "power_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
