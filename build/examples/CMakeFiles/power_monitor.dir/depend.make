# Empty dependencies file for power_monitor.
# This may be replaced when dependencies are built.
