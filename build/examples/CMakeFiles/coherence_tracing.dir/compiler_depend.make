# Empty compiler generated dependencies file for coherence_tracing.
# This may be replaced when dependencies are built.
