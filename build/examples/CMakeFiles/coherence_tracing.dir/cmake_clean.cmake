file(REMOVE_RECURSE
  "CMakeFiles/coherence_tracing.dir/coherence_tracing.cpp.o"
  "CMakeFiles/coherence_tracing.dir/coherence_tracing.cpp.o.d"
  "coherence_tracing"
  "coherence_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
