file(REMOVE_RECURSE
  "CMakeFiles/artifact_workflow.dir/artifact_workflow.cpp.o"
  "CMakeFiles/artifact_workflow.dir/artifact_workflow.cpp.o.d"
  "artifact_workflow"
  "artifact_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artifact_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
