# Empty compiler generated dependencies file for artifact_workflow.
# This may be replaced when dependencies are built.
