file(REMOVE_RECURSE
  "CMakeFiles/ecidump.dir/ecidump.cc.o"
  "CMakeFiles/ecidump.dir/ecidump.cc.o.d"
  "ecidump"
  "ecidump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecidump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
