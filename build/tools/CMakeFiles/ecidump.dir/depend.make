# Empty dependencies file for ecidump.
# This may be replaced when dependencies are built.
