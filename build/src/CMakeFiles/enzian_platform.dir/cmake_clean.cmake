file(REMOVE_RECURSE
  "CMakeFiles/enzian_platform.dir/platform/bdk.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/bdk.cc.o.d"
  "CMakeFiles/enzian_platform.dir/platform/boot_sequencer.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/boot_sequencer.cc.o.d"
  "CMakeFiles/enzian_platform.dir/platform/device_tree.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/device_tree.cc.o.d"
  "CMakeFiles/enzian_platform.dir/platform/enzian_machine.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/enzian_machine.cc.o.d"
  "CMakeFiles/enzian_platform.dir/platform/link_models.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/link_models.cc.o.d"
  "CMakeFiles/enzian_platform.dir/platform/params.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/params.cc.o.d"
  "CMakeFiles/enzian_platform.dir/platform/platform_factory.cc.o"
  "CMakeFiles/enzian_platform.dir/platform/platform_factory.cc.o.d"
  "libenzian_platform.a"
  "libenzian_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
