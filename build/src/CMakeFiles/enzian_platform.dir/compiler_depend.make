# Empty compiler generated dependencies file for enzian_platform.
# This may be replaced when dependencies are built.
