file(REMOVE_RECURSE
  "libenzian_platform.a"
)
