
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/bdk.cc" "src/CMakeFiles/enzian_platform.dir/platform/bdk.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/bdk.cc.o.d"
  "/root/repo/src/platform/boot_sequencer.cc" "src/CMakeFiles/enzian_platform.dir/platform/boot_sequencer.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/boot_sequencer.cc.o.d"
  "/root/repo/src/platform/device_tree.cc" "src/CMakeFiles/enzian_platform.dir/platform/device_tree.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/device_tree.cc.o.d"
  "/root/repo/src/platform/enzian_machine.cc" "src/CMakeFiles/enzian_platform.dir/platform/enzian_machine.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/enzian_machine.cc.o.d"
  "/root/repo/src/platform/link_models.cc" "src/CMakeFiles/enzian_platform.dir/platform/link_models.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/link_models.cc.o.d"
  "/root/repo/src/platform/params.cc" "src/CMakeFiles/enzian_platform.dir/platform/params.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/params.cc.o.d"
  "/root/repo/src/platform/platform_factory.cc" "src/CMakeFiles/enzian_platform.dir/platform/platform_factory.cc.o" "gcc" "src/CMakeFiles/enzian_platform.dir/platform/platform_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_eci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
