# Empty dependencies file for enzian_eci.
# This may be replaced when dependencies are built.
