
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eci/eci_link.cc" "src/CMakeFiles/enzian_eci.dir/eci/eci_link.cc.o" "gcc" "src/CMakeFiles/enzian_eci.dir/eci/eci_link.cc.o.d"
  "/root/repo/src/eci/eci_msg.cc" "src/CMakeFiles/enzian_eci.dir/eci/eci_msg.cc.o" "gcc" "src/CMakeFiles/enzian_eci.dir/eci/eci_msg.cc.o.d"
  "/root/repo/src/eci/eci_serialize.cc" "src/CMakeFiles/enzian_eci.dir/eci/eci_serialize.cc.o" "gcc" "src/CMakeFiles/enzian_eci.dir/eci/eci_serialize.cc.o.d"
  "/root/repo/src/eci/home_agent.cc" "src/CMakeFiles/enzian_eci.dir/eci/home_agent.cc.o" "gcc" "src/CMakeFiles/enzian_eci.dir/eci/home_agent.cc.o.d"
  "/root/repo/src/eci/io_space.cc" "src/CMakeFiles/enzian_eci.dir/eci/io_space.cc.o" "gcc" "src/CMakeFiles/enzian_eci.dir/eci/io_space.cc.o.d"
  "/root/repo/src/eci/remote_agent.cc" "src/CMakeFiles/enzian_eci.dir/eci/remote_agent.cc.o" "gcc" "src/CMakeFiles/enzian_eci.dir/eci/remote_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
