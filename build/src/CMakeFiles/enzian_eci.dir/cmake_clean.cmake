file(REMOVE_RECURSE
  "CMakeFiles/enzian_eci.dir/eci/eci_link.cc.o"
  "CMakeFiles/enzian_eci.dir/eci/eci_link.cc.o.d"
  "CMakeFiles/enzian_eci.dir/eci/eci_msg.cc.o"
  "CMakeFiles/enzian_eci.dir/eci/eci_msg.cc.o.d"
  "CMakeFiles/enzian_eci.dir/eci/eci_serialize.cc.o"
  "CMakeFiles/enzian_eci.dir/eci/eci_serialize.cc.o.d"
  "CMakeFiles/enzian_eci.dir/eci/home_agent.cc.o"
  "CMakeFiles/enzian_eci.dir/eci/home_agent.cc.o.d"
  "CMakeFiles/enzian_eci.dir/eci/io_space.cc.o"
  "CMakeFiles/enzian_eci.dir/eci/io_space.cc.o.d"
  "CMakeFiles/enzian_eci.dir/eci/remote_agent.cc.o"
  "CMakeFiles/enzian_eci.dir/eci/remote_agent.cc.o.d"
  "libenzian_eci.a"
  "libenzian_eci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_eci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
