file(REMOVE_RECURSE
  "libenzian_eci.a"
)
