
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmc/bmc.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/bmc.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/bmc.cc.o.d"
  "/root/repo/src/bmc/i2c_bus.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/i2c_bus.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/i2c_bus.cc.o.d"
  "/root/repo/src/bmc/pmbus.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/pmbus.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/pmbus.cc.o.d"
  "/root/repo/src/bmc/power_model.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/power_model.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/power_model.cc.o.d"
  "/root/repo/src/bmc/regulator.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/regulator.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/regulator.cc.o.d"
  "/root/repo/src/bmc/sequence_solver.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/sequence_solver.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/sequence_solver.cc.o.d"
  "/root/repo/src/bmc/telemetry.cc" "src/CMakeFiles/enzian_bmc.dir/bmc/telemetry.cc.o" "gcc" "src/CMakeFiles/enzian_bmc.dir/bmc/telemetry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
