file(REMOVE_RECURSE
  "CMakeFiles/enzian_bmc.dir/bmc/bmc.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/bmc.cc.o.d"
  "CMakeFiles/enzian_bmc.dir/bmc/i2c_bus.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/i2c_bus.cc.o.d"
  "CMakeFiles/enzian_bmc.dir/bmc/pmbus.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/pmbus.cc.o.d"
  "CMakeFiles/enzian_bmc.dir/bmc/power_model.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/power_model.cc.o.d"
  "CMakeFiles/enzian_bmc.dir/bmc/regulator.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/regulator.cc.o.d"
  "CMakeFiles/enzian_bmc.dir/bmc/sequence_solver.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/sequence_solver.cc.o.d"
  "CMakeFiles/enzian_bmc.dir/bmc/telemetry.cc.o"
  "CMakeFiles/enzian_bmc.dir/bmc/telemetry.cc.o.d"
  "libenzian_bmc.a"
  "libenzian_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
