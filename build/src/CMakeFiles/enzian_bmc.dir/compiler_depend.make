# Empty compiler generated dependencies file for enzian_bmc.
# This may be replaced when dependencies are built.
