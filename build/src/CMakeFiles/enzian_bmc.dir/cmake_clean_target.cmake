file(REMOVE_RECURSE
  "libenzian_bmc.a"
)
