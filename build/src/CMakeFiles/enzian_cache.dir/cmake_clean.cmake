file(REMOVE_RECURSE
  "CMakeFiles/enzian_cache.dir/cache/cache.cc.o"
  "CMakeFiles/enzian_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/enzian_cache.dir/cache/moesi.cc.o"
  "CMakeFiles/enzian_cache.dir/cache/moesi.cc.o.d"
  "libenzian_cache.a"
  "libenzian_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
