file(REMOVE_RECURSE
  "libenzian_cache.a"
)
