# Empty dependencies file for enzian_cache.
# This may be replaced when dependencies are built.
