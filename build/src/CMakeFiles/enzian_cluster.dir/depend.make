# Empty dependencies file for enzian_cluster.
# This may be replaced when dependencies are built.
