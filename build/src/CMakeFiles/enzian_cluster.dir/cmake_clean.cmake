file(REMOVE_RECURSE
  "CMakeFiles/enzian_cluster.dir/cluster/disagg_memory.cc.o"
  "CMakeFiles/enzian_cluster.dir/cluster/disagg_memory.cc.o.d"
  "CMakeFiles/enzian_cluster.dir/cluster/eci_bridge.cc.o"
  "CMakeFiles/enzian_cluster.dir/cluster/eci_bridge.cc.o.d"
  "CMakeFiles/enzian_cluster.dir/cluster/enzian_cluster.cc.o"
  "CMakeFiles/enzian_cluster.dir/cluster/enzian_cluster.cc.o.d"
  "libenzian_cluster.a"
  "libenzian_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
