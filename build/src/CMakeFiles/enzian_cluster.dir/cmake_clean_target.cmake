file(REMOVE_RECURSE
  "libenzian_cluster.a"
)
