# Empty dependencies file for enzian_accel.
# This may be replaced when dependencies are built.
