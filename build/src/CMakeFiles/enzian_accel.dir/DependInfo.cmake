
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/frame.cc" "src/CMakeFiles/enzian_accel.dir/accel/frame.cc.o" "gcc" "src/CMakeFiles/enzian_accel.dir/accel/frame.cc.o.d"
  "/root/repo/src/accel/gbdt.cc" "src/CMakeFiles/enzian_accel.dir/accel/gbdt.cc.o" "gcc" "src/CMakeFiles/enzian_accel.dir/accel/gbdt.cc.o.d"
  "/root/repo/src/accel/gbdt_engine.cc" "src/CMakeFiles/enzian_accel.dir/accel/gbdt_engine.cc.o" "gcc" "src/CMakeFiles/enzian_accel.dir/accel/gbdt_engine.cc.o.d"
  "/root/repo/src/accel/kv_store.cc" "src/CMakeFiles/enzian_accel.dir/accel/kv_store.cc.o" "gcc" "src/CMakeFiles/enzian_accel.dir/accel/kv_store.cc.o.d"
  "/root/repo/src/accel/rgb2y_pipeline.cc" "src/CMakeFiles/enzian_accel.dir/accel/rgb2y_pipeline.cc.o" "gcc" "src/CMakeFiles/enzian_accel.dir/accel/rgb2y_pipeline.cc.o.d"
  "/root/repo/src/accel/vision_pipeline.cc" "src/CMakeFiles/enzian_accel.dir/accel/vision_pipeline.cc.o" "gcc" "src/CMakeFiles/enzian_accel.dir/accel/vision_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_eci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
