file(REMOVE_RECURSE
  "CMakeFiles/enzian_accel.dir/accel/frame.cc.o"
  "CMakeFiles/enzian_accel.dir/accel/frame.cc.o.d"
  "CMakeFiles/enzian_accel.dir/accel/gbdt.cc.o"
  "CMakeFiles/enzian_accel.dir/accel/gbdt.cc.o.d"
  "CMakeFiles/enzian_accel.dir/accel/gbdt_engine.cc.o"
  "CMakeFiles/enzian_accel.dir/accel/gbdt_engine.cc.o.d"
  "CMakeFiles/enzian_accel.dir/accel/kv_store.cc.o"
  "CMakeFiles/enzian_accel.dir/accel/kv_store.cc.o.d"
  "CMakeFiles/enzian_accel.dir/accel/rgb2y_pipeline.cc.o"
  "CMakeFiles/enzian_accel.dir/accel/rgb2y_pipeline.cc.o.d"
  "CMakeFiles/enzian_accel.dir/accel/vision_pipeline.cc.o"
  "CMakeFiles/enzian_accel.dir/accel/vision_pipeline.cc.o.d"
  "libenzian_accel.a"
  "libenzian_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
