file(REMOVE_RECURSE
  "libenzian_accel.a"
)
