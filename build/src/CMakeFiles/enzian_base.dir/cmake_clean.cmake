file(REMOVE_RECURSE
  "CMakeFiles/enzian_base.dir/base/logging.cc.o"
  "CMakeFiles/enzian_base.dir/base/logging.cc.o.d"
  "CMakeFiles/enzian_base.dir/base/rng.cc.o"
  "CMakeFiles/enzian_base.dir/base/rng.cc.o.d"
  "CMakeFiles/enzian_base.dir/base/stats.cc.o"
  "CMakeFiles/enzian_base.dir/base/stats.cc.o.d"
  "libenzian_base.a"
  "libenzian_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
