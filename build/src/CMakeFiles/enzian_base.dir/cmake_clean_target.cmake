file(REMOVE_RECURSE
  "libenzian_base.a"
)
