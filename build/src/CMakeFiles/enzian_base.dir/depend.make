# Empty dependencies file for enzian_base.
# This may be replaced when dependencies are built.
