file(REMOVE_RECURSE
  "CMakeFiles/enzian_trace.dir/trace/checker.cc.o"
  "CMakeFiles/enzian_trace.dir/trace/checker.cc.o.d"
  "CMakeFiles/enzian_trace.dir/trace/decoder.cc.o"
  "CMakeFiles/enzian_trace.dir/trace/decoder.cc.o.d"
  "CMakeFiles/enzian_trace.dir/trace/eci_pcap.cc.o"
  "CMakeFiles/enzian_trace.dir/trace/eci_pcap.cc.o.d"
  "CMakeFiles/enzian_trace.dir/trace/rtv.cc.o"
  "CMakeFiles/enzian_trace.dir/trace/rtv.cc.o.d"
  "libenzian_trace.a"
  "libenzian_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
