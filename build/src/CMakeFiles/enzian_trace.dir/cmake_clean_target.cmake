file(REMOVE_RECURSE
  "libenzian_trace.a"
)
