
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/checker.cc" "src/CMakeFiles/enzian_trace.dir/trace/checker.cc.o" "gcc" "src/CMakeFiles/enzian_trace.dir/trace/checker.cc.o.d"
  "/root/repo/src/trace/decoder.cc" "src/CMakeFiles/enzian_trace.dir/trace/decoder.cc.o" "gcc" "src/CMakeFiles/enzian_trace.dir/trace/decoder.cc.o.d"
  "/root/repo/src/trace/eci_pcap.cc" "src/CMakeFiles/enzian_trace.dir/trace/eci_pcap.cc.o" "gcc" "src/CMakeFiles/enzian_trace.dir/trace/eci_pcap.cc.o.d"
  "/root/repo/src/trace/rtv.cc" "src/CMakeFiles/enzian_trace.dir/trace/rtv.cc.o" "gcc" "src/CMakeFiles/enzian_trace.dir/trace/rtv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_eci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
