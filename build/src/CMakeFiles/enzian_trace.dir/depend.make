# Empty dependencies file for enzian_trace.
# This may be replaced when dependencies are built.
