# Empty dependencies file for enzian_cpu.
# This may be replaced when dependencies are built.
