
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/enzian_cpu.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/enzian_cpu.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/core_cluster.cc" "src/CMakeFiles/enzian_cpu.dir/cpu/core_cluster.cc.o" "gcc" "src/CMakeFiles/enzian_cpu.dir/cpu/core_cluster.cc.o.d"
  "/root/repo/src/cpu/pmu.cc" "src/CMakeFiles/enzian_cpu.dir/cpu/pmu.cc.o" "gcc" "src/CMakeFiles/enzian_cpu.dir/cpu/pmu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
