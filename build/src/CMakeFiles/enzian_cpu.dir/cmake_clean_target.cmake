file(REMOVE_RECURSE
  "libenzian_cpu.a"
)
