file(REMOVE_RECURSE
  "CMakeFiles/enzian_cpu.dir/cpu/core.cc.o"
  "CMakeFiles/enzian_cpu.dir/cpu/core.cc.o.d"
  "CMakeFiles/enzian_cpu.dir/cpu/core_cluster.cc.o"
  "CMakeFiles/enzian_cpu.dir/cpu/core_cluster.cc.o.d"
  "CMakeFiles/enzian_cpu.dir/cpu/pmu.cc.o"
  "CMakeFiles/enzian_cpu.dir/cpu/pmu.cc.o.d"
  "libenzian_cpu.a"
  "libenzian_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
