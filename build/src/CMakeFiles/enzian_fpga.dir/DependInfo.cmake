
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bitstream.cc" "src/CMakeFiles/enzian_fpga.dir/fpga/bitstream.cc.o" "gcc" "src/CMakeFiles/enzian_fpga.dir/fpga/bitstream.cc.o.d"
  "/root/repo/src/fpga/fabric.cc" "src/CMakeFiles/enzian_fpga.dir/fpga/fabric.cc.o" "gcc" "src/CMakeFiles/enzian_fpga.dir/fpga/fabric.cc.o.d"
  "/root/repo/src/fpga/scheduler.cc" "src/CMakeFiles/enzian_fpga.dir/fpga/scheduler.cc.o" "gcc" "src/CMakeFiles/enzian_fpga.dir/fpga/scheduler.cc.o.d"
  "/root/repo/src/fpga/shell.cc" "src/CMakeFiles/enzian_fpga.dir/fpga/shell.cc.o" "gcc" "src/CMakeFiles/enzian_fpga.dir/fpga/shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_eci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
