file(REMOVE_RECURSE
  "libenzian_fpga.a"
)
