file(REMOVE_RECURSE
  "CMakeFiles/enzian_fpga.dir/fpga/bitstream.cc.o"
  "CMakeFiles/enzian_fpga.dir/fpga/bitstream.cc.o.d"
  "CMakeFiles/enzian_fpga.dir/fpga/fabric.cc.o"
  "CMakeFiles/enzian_fpga.dir/fpga/fabric.cc.o.d"
  "CMakeFiles/enzian_fpga.dir/fpga/scheduler.cc.o"
  "CMakeFiles/enzian_fpga.dir/fpga/scheduler.cc.o.d"
  "CMakeFiles/enzian_fpga.dir/fpga/shell.cc.o"
  "CMakeFiles/enzian_fpga.dir/fpga/shell.cc.o.d"
  "libenzian_fpga.a"
  "libenzian_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
