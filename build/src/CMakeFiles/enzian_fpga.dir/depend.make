# Empty dependencies file for enzian_fpga.
# This may be replaced when dependencies are built.
