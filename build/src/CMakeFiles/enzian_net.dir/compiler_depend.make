# Empty compiler generated dependencies file for enzian_net.
# This may be replaced when dependencies are built.
