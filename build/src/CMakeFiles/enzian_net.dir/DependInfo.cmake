
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bump_in_wire.cc" "src/CMakeFiles/enzian_net.dir/net/bump_in_wire.cc.o" "gcc" "src/CMakeFiles/enzian_net.dir/net/bump_in_wire.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/CMakeFiles/enzian_net.dir/net/ethernet.cc.o" "gcc" "src/CMakeFiles/enzian_net.dir/net/ethernet.cc.o.d"
  "/root/repo/src/net/rdma_engine.cc" "src/CMakeFiles/enzian_net.dir/net/rdma_engine.cc.o" "gcc" "src/CMakeFiles/enzian_net.dir/net/rdma_engine.cc.o.d"
  "/root/repo/src/net/rnic_model.cc" "src/CMakeFiles/enzian_net.dir/net/rnic_model.cc.o" "gcc" "src/CMakeFiles/enzian_net.dir/net/rnic_model.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/CMakeFiles/enzian_net.dir/net/switch.cc.o" "gcc" "src/CMakeFiles/enzian_net.dir/net/switch.cc.o.d"
  "/root/repo/src/net/tcp_stack.cc" "src/CMakeFiles/enzian_net.dir/net/tcp_stack.cc.o" "gcc" "src/CMakeFiles/enzian_net.dir/net/tcp_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
