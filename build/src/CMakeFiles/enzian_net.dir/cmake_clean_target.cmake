file(REMOVE_RECURSE
  "libenzian_net.a"
)
