file(REMOVE_RECURSE
  "CMakeFiles/enzian_net.dir/net/bump_in_wire.cc.o"
  "CMakeFiles/enzian_net.dir/net/bump_in_wire.cc.o.d"
  "CMakeFiles/enzian_net.dir/net/ethernet.cc.o"
  "CMakeFiles/enzian_net.dir/net/ethernet.cc.o.d"
  "CMakeFiles/enzian_net.dir/net/rdma_engine.cc.o"
  "CMakeFiles/enzian_net.dir/net/rdma_engine.cc.o.d"
  "CMakeFiles/enzian_net.dir/net/rnic_model.cc.o"
  "CMakeFiles/enzian_net.dir/net/rnic_model.cc.o.d"
  "CMakeFiles/enzian_net.dir/net/switch.cc.o"
  "CMakeFiles/enzian_net.dir/net/switch.cc.o.d"
  "CMakeFiles/enzian_net.dir/net/tcp_stack.cc.o"
  "CMakeFiles/enzian_net.dir/net/tcp_stack.cc.o.d"
  "libenzian_net.a"
  "libenzian_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
