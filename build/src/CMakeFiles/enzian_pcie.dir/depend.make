# Empty dependencies file for enzian_pcie.
# This may be replaced when dependencies are built.
