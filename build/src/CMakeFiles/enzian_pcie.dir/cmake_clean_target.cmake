file(REMOVE_RECURSE
  "libenzian_pcie.a"
)
