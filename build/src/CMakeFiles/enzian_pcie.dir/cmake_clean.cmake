file(REMOVE_RECURSE
  "CMakeFiles/enzian_pcie.dir/pcie/dma_engine.cc.o"
  "CMakeFiles/enzian_pcie.dir/pcie/dma_engine.cc.o.d"
  "CMakeFiles/enzian_pcie.dir/pcie/pcie_link.cc.o"
  "CMakeFiles/enzian_pcie.dir/pcie/pcie_link.cc.o.d"
  "CMakeFiles/enzian_pcie.dir/pcie/tlp.cc.o"
  "CMakeFiles/enzian_pcie.dir/pcie/tlp.cc.o.d"
  "libenzian_pcie.a"
  "libenzian_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
