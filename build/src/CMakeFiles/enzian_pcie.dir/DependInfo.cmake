
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/dma_engine.cc" "src/CMakeFiles/enzian_pcie.dir/pcie/dma_engine.cc.o" "gcc" "src/CMakeFiles/enzian_pcie.dir/pcie/dma_engine.cc.o.d"
  "/root/repo/src/pcie/pcie_link.cc" "src/CMakeFiles/enzian_pcie.dir/pcie/pcie_link.cc.o" "gcc" "src/CMakeFiles/enzian_pcie.dir/pcie/pcie_link.cc.o.d"
  "/root/repo/src/pcie/tlp.cc" "src/CMakeFiles/enzian_pcie.dir/pcie/tlp.cc.o" "gcc" "src/CMakeFiles/enzian_pcie.dir/pcie/tlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
