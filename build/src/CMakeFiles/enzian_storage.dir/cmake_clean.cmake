file(REMOVE_RECURSE
  "CMakeFiles/enzian_storage.dir/storage/nvme_device.cc.o"
  "CMakeFiles/enzian_storage.dir/storage/nvme_device.cc.o.d"
  "CMakeFiles/enzian_storage.dir/storage/smart_storage.cc.o"
  "CMakeFiles/enzian_storage.dir/storage/smart_storage.cc.o.d"
  "libenzian_storage.a"
  "libenzian_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
