
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/nvme_device.cc" "src/CMakeFiles/enzian_storage.dir/storage/nvme_device.cc.o" "gcc" "src/CMakeFiles/enzian_storage.dir/storage/nvme_device.cc.o.d"
  "/root/repo/src/storage/smart_storage.cc" "src/CMakeFiles/enzian_storage.dir/storage/smart_storage.cc.o" "gcc" "src/CMakeFiles/enzian_storage.dir/storage/smart_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
