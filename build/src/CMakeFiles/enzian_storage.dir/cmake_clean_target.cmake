file(REMOVE_RECURSE
  "libenzian_storage.a"
)
