# Empty compiler generated dependencies file for enzian_storage.
# This may be replaced when dependencies are built.
