file(REMOVE_RECURSE
  "libenzian_sim.a"
)
