# Empty compiler generated dependencies file for enzian_sim.
# This may be replaced when dependencies are built.
