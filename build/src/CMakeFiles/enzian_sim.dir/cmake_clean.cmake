file(REMOVE_RECURSE
  "CMakeFiles/enzian_sim.dir/sim/clock_domain.cc.o"
  "CMakeFiles/enzian_sim.dir/sim/clock_domain.cc.o.d"
  "CMakeFiles/enzian_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/enzian_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/enzian_sim.dir/sim/sim_object.cc.o"
  "CMakeFiles/enzian_sim.dir/sim/sim_object.cc.o.d"
  "libenzian_sim.a"
  "libenzian_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
