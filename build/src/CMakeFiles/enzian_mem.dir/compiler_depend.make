# Empty compiler generated dependencies file for enzian_mem.
# This may be replaced when dependencies are built.
