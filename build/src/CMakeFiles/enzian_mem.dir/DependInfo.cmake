
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/CMakeFiles/enzian_mem.dir/mem/address_map.cc.o" "gcc" "src/CMakeFiles/enzian_mem.dir/mem/address_map.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/enzian_mem.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/enzian_mem.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/dram_channel.cc" "src/CMakeFiles/enzian_mem.dir/mem/dram_channel.cc.o" "gcc" "src/CMakeFiles/enzian_mem.dir/mem/dram_channel.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/CMakeFiles/enzian_mem.dir/mem/memory_controller.cc.o" "gcc" "src/CMakeFiles/enzian_mem.dir/mem/memory_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
