file(REMOVE_RECURSE
  "libenzian_mem.a"
)
