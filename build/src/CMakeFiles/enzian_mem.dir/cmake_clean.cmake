file(REMOVE_RECURSE
  "CMakeFiles/enzian_mem.dir/mem/address_map.cc.o"
  "CMakeFiles/enzian_mem.dir/mem/address_map.cc.o.d"
  "CMakeFiles/enzian_mem.dir/mem/backing_store.cc.o"
  "CMakeFiles/enzian_mem.dir/mem/backing_store.cc.o.d"
  "CMakeFiles/enzian_mem.dir/mem/dram_channel.cc.o"
  "CMakeFiles/enzian_mem.dir/mem/dram_channel.cc.o.d"
  "CMakeFiles/enzian_mem.dir/mem/memory_controller.cc.o"
  "CMakeFiles/enzian_mem.dir/mem/memory_controller.cc.o.d"
  "libenzian_mem.a"
  "libenzian_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzian_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
