file(REMOVE_RECURSE
  "CMakeFiles/test_eci_protocol.dir/test_eci_protocol.cc.o"
  "CMakeFiles/test_eci_protocol.dir/test_eci_protocol.cc.o.d"
  "test_eci_protocol"
  "test_eci_protocol.pdb"
  "test_eci_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eci_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
