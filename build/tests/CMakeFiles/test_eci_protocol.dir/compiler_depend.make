# Empty compiler generated dependencies file for test_eci_protocol.
# This may be replaced when dependencies are built.
