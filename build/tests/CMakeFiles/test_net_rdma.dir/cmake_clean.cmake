file(REMOVE_RECURSE
  "CMakeFiles/test_net_rdma.dir/test_net_rdma.cc.o"
  "CMakeFiles/test_net_rdma.dir/test_net_rdma.cc.o.d"
  "test_net_rdma"
  "test_net_rdma.pdb"
  "test_net_rdma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
