# Empty dependencies file for test_net_rdma.
# This may be replaced when dependencies are built.
