file(REMOVE_RECURSE
  "CMakeFiles/test_rtv.dir/test_rtv.cc.o"
  "CMakeFiles/test_rtv.dir/test_rtv.cc.o.d"
  "test_rtv"
  "test_rtv.pdb"
  "test_rtv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
