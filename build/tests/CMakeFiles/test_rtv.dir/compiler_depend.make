# Empty compiler generated dependencies file for test_rtv.
# This may be replaced when dependencies are built.
