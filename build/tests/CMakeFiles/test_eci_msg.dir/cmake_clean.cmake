file(REMOVE_RECURSE
  "CMakeFiles/test_eci_msg.dir/test_eci_msg.cc.o"
  "CMakeFiles/test_eci_msg.dir/test_eci_msg.cc.o.d"
  "test_eci_msg"
  "test_eci_msg.pdb"
  "test_eci_msg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eci_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
