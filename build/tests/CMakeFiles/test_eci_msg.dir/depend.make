# Empty dependencies file for test_eci_msg.
# This may be replaced when dependencies are built.
