# Empty compiler generated dependencies file for test_eci_link.
# This may be replaced when dependencies are built.
