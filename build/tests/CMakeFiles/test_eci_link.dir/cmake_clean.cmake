file(REMOVE_RECURSE
  "CMakeFiles/test_eci_link.dir/test_eci_link.cc.o"
  "CMakeFiles/test_eci_link.dir/test_eci_link.cc.o.d"
  "test_eci_link"
  "test_eci_link.pdb"
  "test_eci_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eci_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
