# Empty dependencies file for test_pcie.
# This may be replaced when dependencies are built.
