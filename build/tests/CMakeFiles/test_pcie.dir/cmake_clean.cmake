file(REMOVE_RECURSE
  "CMakeFiles/test_pcie.dir/test_pcie.cc.o"
  "CMakeFiles/test_pcie.dir/test_pcie.cc.o.d"
  "test_pcie"
  "test_pcie.pdb"
  "test_pcie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
