# Empty dependencies file for test_boot.
# This may be replaced when dependencies are built.
