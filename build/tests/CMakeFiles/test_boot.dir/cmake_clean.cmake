file(REMOVE_RECURSE
  "CMakeFiles/test_boot.dir/test_boot.cc.o"
  "CMakeFiles/test_boot.dir/test_boot.cc.o.d"
  "test_boot"
  "test_boot.pdb"
  "test_boot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
