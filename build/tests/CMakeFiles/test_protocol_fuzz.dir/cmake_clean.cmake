file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_fuzz.dir/test_protocol_fuzz.cc.o"
  "CMakeFiles/test_protocol_fuzz.dir/test_protocol_fuzz.cc.o.d"
  "test_protocol_fuzz"
  "test_protocol_fuzz.pdb"
  "test_protocol_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
