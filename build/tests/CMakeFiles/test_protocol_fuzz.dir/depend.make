# Empty dependencies file for test_protocol_fuzz.
# This may be replaced when dependencies are built.
