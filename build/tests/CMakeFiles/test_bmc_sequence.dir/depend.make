# Empty dependencies file for test_bmc_sequence.
# This may be replaced when dependencies are built.
