file(REMOVE_RECURSE
  "CMakeFiles/test_bmc_sequence.dir/test_bmc_sequence.cc.o"
  "CMakeFiles/test_bmc_sequence.dir/test_bmc_sequence.cc.o.d"
  "test_bmc_sequence"
  "test_bmc_sequence.pdb"
  "test_bmc_sequence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmc_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
