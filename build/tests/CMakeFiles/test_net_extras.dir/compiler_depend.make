# Empty compiler generated dependencies file for test_net_extras.
# This may be replaced when dependencies are built.
