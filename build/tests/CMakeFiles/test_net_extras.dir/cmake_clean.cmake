file(REMOVE_RECURSE
  "CMakeFiles/test_net_extras.dir/test_net_extras.cc.o"
  "CMakeFiles/test_net_extras.dir/test_net_extras.cc.o.d"
  "test_net_extras"
  "test_net_extras.pdb"
  "test_net_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
