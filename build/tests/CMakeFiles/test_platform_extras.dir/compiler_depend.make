# Empty compiler generated dependencies file for test_platform_extras.
# This may be replaced when dependencies are built.
