file(REMOVE_RECURSE
  "CMakeFiles/test_platform_extras.dir/test_platform_extras.cc.o"
  "CMakeFiles/test_platform_extras.dir/test_platform_extras.cc.o.d"
  "test_platform_extras"
  "test_platform_extras.pdb"
  "test_platform_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
