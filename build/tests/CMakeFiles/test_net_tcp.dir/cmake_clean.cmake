file(REMOVE_RECURSE
  "CMakeFiles/test_net_tcp.dir/test_net_tcp.cc.o"
  "CMakeFiles/test_net_tcp.dir/test_net_tcp.cc.o.d"
  "test_net_tcp"
  "test_net_tcp.pdb"
  "test_net_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
