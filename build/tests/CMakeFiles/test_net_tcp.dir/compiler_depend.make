# Empty compiler generated dependencies file for test_net_tcp.
# This may be replaced when dependencies are built.
