file(REMOVE_RECURSE
  "CMakeFiles/test_bmc_power.dir/test_bmc_power.cc.o"
  "CMakeFiles/test_bmc_power.dir/test_bmc_power.cc.o.d"
  "test_bmc_power"
  "test_bmc_power.pdb"
  "test_bmc_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
