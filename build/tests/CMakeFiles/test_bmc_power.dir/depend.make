# Empty dependencies file for test_bmc_power.
# This may be replaced when dependencies are built.
