# Empty compiler generated dependencies file for test_bmc_i2c.
# This may be replaced when dependencies are built.
