# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for test_bmc_i2c.
