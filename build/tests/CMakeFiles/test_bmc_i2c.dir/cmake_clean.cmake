file(REMOVE_RECURSE
  "CMakeFiles/test_bmc_i2c.dir/test_bmc_i2c.cc.o"
  "CMakeFiles/test_bmc_i2c.dir/test_bmc_i2c.cc.o.d"
  "test_bmc_i2c"
  "test_bmc_i2c.pdb"
  "test_bmc_i2c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmc_i2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
