# Empty compiler generated dependencies file for test_accel_gbdt.
# This may be replaced when dependencies are built.
