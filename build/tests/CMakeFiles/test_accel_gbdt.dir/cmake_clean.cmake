file(REMOVE_RECURSE
  "CMakeFiles/test_accel_gbdt.dir/test_accel_gbdt.cc.o"
  "CMakeFiles/test_accel_gbdt.dir/test_accel_gbdt.cc.o.d"
  "test_accel_gbdt"
  "test_accel_gbdt.pdb"
  "test_accel_gbdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
