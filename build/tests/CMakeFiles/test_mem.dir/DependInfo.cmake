
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/test_mem.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_mem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enzian_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_eci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/enzian_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
