file(REMOVE_RECURSE
  "CMakeFiles/test_accel_kv.dir/test_accel_kv.cc.o"
  "CMakeFiles/test_accel_kv.dir/test_accel_kv.cc.o.d"
  "test_accel_kv"
  "test_accel_kv.pdb"
  "test_accel_kv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
