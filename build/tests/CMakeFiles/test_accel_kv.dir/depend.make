# Empty dependencies file for test_accel_kv.
# This may be replaced when dependencies are built.
