file(REMOVE_RECURSE
  "CMakeFiles/test_platform.dir/test_platform.cc.o"
  "CMakeFiles/test_platform.dir/test_platform.cc.o.d"
  "test_platform"
  "test_platform.pdb"
  "test_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
