# Empty compiler generated dependencies file for test_platform.
# This may be replaced when dependencies are built.
