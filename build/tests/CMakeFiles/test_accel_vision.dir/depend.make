# Empty dependencies file for test_accel_vision.
# This may be replaced when dependencies are built.
