file(REMOVE_RECURSE
  "CMakeFiles/test_accel_vision.dir/test_accel_vision.cc.o"
  "CMakeFiles/test_accel_vision.dir/test_accel_vision.cc.o.d"
  "test_accel_vision"
  "test_accel_vision.pdb"
  "test_accel_vision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
