# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_eci_msg[1]_include.cmake")
include("/root/repo/build/tests/test_eci_link[1]_include.cmake")
include("/root/repo/build/tests/test_eci_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_pcie[1]_include.cmake")
include("/root/repo/build/tests/test_net_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_net_rdma[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_accel_gbdt[1]_include.cmake")
include("/root/repo/build/tests/test_accel_vision[1]_include.cmake")
include("/root/repo/build/tests/test_bmc_i2c[1]_include.cmake")
include("/root/repo/build/tests/test_bmc_sequence[1]_include.cmake")
include("/root/repo/build/tests/test_bmc_power[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_boot[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_accel_kv[1]_include.cmake")
include("/root/repo/build/tests/test_rtv[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_platform_extras[1]_include.cmake")
include("/root/repo/build/tests/test_net_extras[1]_include.cmake")
