file(REMOVE_RECURSE
  "CMakeFiles/fig03_platform_landscape.dir/fig03_platform_landscape.cc.o"
  "CMakeFiles/fig03_platform_landscape.dir/fig03_platform_landscape.cc.o.d"
  "fig03_platform_landscape"
  "fig03_platform_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_platform_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
