# Empty compiler generated dependencies file for fig03_platform_landscape.
# This may be replaced when dependencies are built.
