file(REMOVE_RECURSE
  "CMakeFiles/ablation_eci.dir/ablation_eci.cc.o"
  "CMakeFiles/ablation_eci.dir/ablation_eci.cc.o.d"
  "ablation_eci"
  "ablation_eci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
