# Empty dependencies file for ablation_eci.
# This may be replaced when dependencies are built.
