# Empty dependencies file for fig11_memory_controller.
# This may be replaced when dependencies are built.
