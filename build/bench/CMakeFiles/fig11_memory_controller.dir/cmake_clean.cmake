file(REMOVE_RECURSE
  "CMakeFiles/fig11_memory_controller.dir/fig11_memory_controller.cc.o"
  "CMakeFiles/fig11_memory_controller.dir/fig11_memory_controller.cc.o.d"
  "fig11_memory_controller"
  "fig11_memory_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memory_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
