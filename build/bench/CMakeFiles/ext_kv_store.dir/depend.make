# Empty dependencies file for ext_kv_store.
# This may be replaced when dependencies are built.
