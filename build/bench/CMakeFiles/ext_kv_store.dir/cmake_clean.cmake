file(REMOVE_RECURSE
  "CMakeFiles/ext_kv_store.dir/ext_kv_store.cc.o"
  "CMakeFiles/ext_kv_store.dir/ext_kv_store.cc.o.d"
  "ext_kv_store"
  "ext_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
