file(REMOVE_RECURSE
  "CMakeFiles/ext_undervolt.dir/ext_undervolt.cc.o"
  "CMakeFiles/ext_undervolt.dir/ext_undervolt.cc.o.d"
  "ext_undervolt"
  "ext_undervolt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_undervolt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
