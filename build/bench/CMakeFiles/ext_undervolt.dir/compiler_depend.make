# Empty compiler generated dependencies file for ext_undervolt.
# This may be replaced when dependencies are built.
