# Empty compiler generated dependencies file for fig08_rdma.
# This may be replaced when dependencies are built.
