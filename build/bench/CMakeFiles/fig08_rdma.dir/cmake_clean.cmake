file(REMOVE_RECURSE
  "CMakeFiles/fig08_rdma.dir/fig08_rdma.cc.o"
  "CMakeFiles/fig08_rdma.dir/fig08_rdma.cc.o.d"
  "fig08_rdma"
  "fig08_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
