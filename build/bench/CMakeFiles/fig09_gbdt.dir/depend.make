# Empty dependencies file for fig09_gbdt.
# This may be replaced when dependencies are built.
