file(REMOVE_RECURSE
  "CMakeFiles/fig09_gbdt.dir/fig09_gbdt.cc.o"
  "CMakeFiles/fig09_gbdt.dir/fig09_gbdt.cc.o.d"
  "fig09_gbdt"
  "fig09_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
