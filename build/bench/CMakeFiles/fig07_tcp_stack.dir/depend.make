# Empty dependencies file for fig07_tcp_stack.
# This may be replaced when dependencies are built.
