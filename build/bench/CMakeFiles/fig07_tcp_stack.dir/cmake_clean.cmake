file(REMOVE_RECURSE
  "CMakeFiles/fig07_tcp_stack.dir/fig07_tcp_stack.cc.o"
  "CMakeFiles/fig07_tcp_stack.dir/fig07_tcp_stack.cc.o.d"
  "fig07_tcp_stack"
  "fig07_tcp_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tcp_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
