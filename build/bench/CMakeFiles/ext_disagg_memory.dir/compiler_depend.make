# Empty compiler generated dependencies file for ext_disagg_memory.
# This may be replaced when dependencies are built.
