file(REMOVE_RECURSE
  "CMakeFiles/ext_disagg_memory.dir/ext_disagg_memory.cc.o"
  "CMakeFiles/ext_disagg_memory.dir/ext_disagg_memory.cc.o.d"
  "ext_disagg_memory"
  "ext_disagg_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_disagg_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
