file(REMOVE_RECURSE
  "CMakeFiles/fig06_link_performance.dir/fig06_link_performance.cc.o"
  "CMakeFiles/fig06_link_performance.dir/fig06_link_performance.cc.o.d"
  "fig06_link_performance"
  "fig06_link_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_link_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
