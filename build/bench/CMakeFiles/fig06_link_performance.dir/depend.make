# Empty dependencies file for fig06_link_performance.
# This may be replaced when dependencies are built.
