file(REMOVE_RECURSE
  "CMakeFiles/fig12_power_instrumentation.dir/fig12_power_instrumentation.cc.o"
  "CMakeFiles/fig12_power_instrumentation.dir/fig12_power_instrumentation.cc.o.d"
  "fig12_power_instrumentation"
  "fig12_power_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_power_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
