# Empty compiler generated dependencies file for fig12_power_instrumentation.
# This may be replaced when dependencies are built.
