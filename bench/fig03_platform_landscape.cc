/**
 * @file
 * Figure 3: CPU-FPGA performance landscape (latency vs bandwidth).
 *
 * Follows the paper's method: the non-Enzian interconnect points are
 * the published Choi et al. reference data; the Enzian points (one
 * ECI link, full ECI, FPGA DRAM) and the PCIe-card point are measured
 * on the simulated substrates.
 */

#include "bench_common.hh"

#include "platform/link_models.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

/** FPGA-local DRAM transfer (the "Enzian DRAM" point). */
TransferFn
fpgaDramTransfer(platform::EnzianMachine &m)
{
    return [&m](std::uint64_t bytes, std::function<void(Tick)> done) {
        const Tick ready =
            m.fpgaMem().dram().access(m.eventq().now(), bytes);
        m.eventq().schedule(ready, [done = std::move(done), ready]() {
            done(ready);
        });
    };
}

void
row(BenchReport &rep, const char *key, const char *name, double lat_us,
    double bw_gib, bool reference)
{
    std::printf("%-28s %10.2f %10.1f   %s\n", name, lat_us, bw_gib,
                reference ? "(cited reference)" : "(measured here)");
    if (!reference) {
        rep.add(std::string(key) + "_latency_us", lat_us);
        rep.add(std::string(key) + "_bw_gib", bw_gib);
    }
}

} // namespace

int
main()
{
    header("Figure 3: CPU-FPGA landscape, latency vs bandwidth");
    BenchReport rep("fig03_platform_landscape");
    std::printf("%-28s %10s %10s\n", "platform", "lat_us", "BW_GiB/s");

    for (const auto &p : platform::fig3ReferencePoints())
        row(rep, "", p.name.c_str(), p.latency_us, p.bandwidth_gib,
            true);

    // Enzian, one ECI link.
    {
        auto cfg = platform::enzianDefaultConfig();
        cfg.policy = eci::BalancePolicy::SingleLink;
        auto m = makeBenchMachine(cfg);
        const double lat =
            measureLatencyUs(m->eventq(), 128, eciTransfer(*m, false));
        auto m2 = makeBenchMachine(cfg);
        const double bw = measureThroughputGiB(
            m2->eventq(), 16384, 300, 8, eciTransfer(*m2, true));
        row(rep, "enzian_1link", "Enzian (1 ECI link)", lat, bw,
            false);
    }
    // Enzian, full ECI (both links, hardware-style balancing).
    {
        auto cfg = platform::enzianDefaultConfig();
        cfg.policy = eci::BalancePolicy::LeastLoaded;
        auto m = makeBenchMachine(cfg);
        const double lat =
            measureLatencyUs(m->eventq(), 128, eciTransfer(*m, false));
        auto m2 = makeBenchMachine(cfg);
        const double bw = measureThroughputGiB(
            m2->eventq(), 16384, 300, 8, eciTransfer(*m2, true));
        row(rep, "enzian_full_eci", "Enzian (full ECI)", lat, bw,
            false);
    }
    // Enzian FPGA-side DRAM.
    {
        auto m = makeBenchMachine(platform::enzianDefaultConfig());
        const double lat =
            measureLatencyUs(m->eventq(), 128, fpgaDramTransfer(*m));
        auto m2 = makeBenchMachine(platform::enzianDefaultConfig());
        const double bw = measureThroughputGiB(
            m2->eventq(), 1 << 20, 100, 4, fpgaDramTransfer(*m2));
        row(rep, "enzian_dram", "Enzian DRAM", lat, bw, false);
    }
    // Measured PCIe card for scale (Alveo u250, Gen3 x16).
    {
        auto sys = platform::makePcieAccelerator("alveo-u250");
        const double lat =
            measureLatencyUs(*sys.eq, 128, dmaTransfer(sys, false));
        auto sys2 = platform::makePcieAccelerator("alveo-u250");
        const double bw = measureThroughputGiB(*sys2.eq, 1 << 20, 100,
                                               4,
                                               dmaTransfer(sys2, true));
        row(rep, "alveo_u250_pcie", "Alveo u250 PCIe (measured)",
            lat, bw, false);
    }
    std::printf("\nShape check: Enzian's coherent link sits in the "
                "sub-microsecond latency regime of QPI/UPI systems\n"
                "while sustaining PCIe-class (or better) bandwidth, "
                "and the full fabric roughly doubles one link.\n");
    return 0;
}
