/**
 * @file
 * Ablation bench for the ECI design choices DESIGN.md calls out,
 * built on google-benchmark. Each benchmark runs a fixed simulated
 * workload; the reported counter `sim_GiBps` is the *simulated*
 * throughput achieved under that configuration (wall time measures
 * simulator speed and is incidental).
 *
 *  - link balancing policy (single / round-robin / hash / adaptive)
 *  - lane count (the BDK's 4-lane bring-up vs the full 12 per link)
 *  - requester MSHR depth (outstanding line transactions)
 *  - FPGA fabric clock (200 vs 300 MHz protocol-engine latency)
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

/** Shared report; each benchmark adds its simulated-throughput point. */
BenchReport &
report()
{
    static BenchReport rep("ablation_eci");
    return rep;
}

double
runWorkload(platform::EnzianMachine::Config cfg,
            std::uint64_t transfer = 16384, std::uint32_t runs = 100)
{
    auto m = makeBenchMachine(cfg);
    return measureThroughputGiB(m->eventq(), transfer, runs, 4,
                                eciTransfer(*m, true));
}

void
BM_BalancePolicy(benchmark::State &state)
{
    const auto policy =
        static_cast<eci::BalancePolicy>(state.range(0));
    double gib = 0;
    for (auto _ : state) {
        auto cfg = platform::enzianDefaultConfig();
        cfg.policy = policy;
        gib = runWorkload(cfg);
        benchmark::DoNotOptimize(gib);
    }
    state.counters["sim_GiBps"] = gib;
    state.SetLabel(toString(policy));
    report().add(format("balance_%s_gibps", toString(policy)), gib);
}

void
BM_LaneCount(benchmark::State &state)
{
    double gib = 0;
    for (auto _ : state) {
        auto cfg = platform::enzianDefaultConfig();
        cfg.link.lanes = static_cast<std::uint32_t>(state.range(0));
        cfg.policy = eci::BalancePolicy::SingleLink;
        gib = runWorkload(cfg);
        benchmark::DoNotOptimize(gib);
    }
    state.counters["sim_GiBps"] = gib;
    report().add(format("lanes_%lld_gibps",
                        static_cast<long long>(state.range(0))),
                 gib);
}

void
BM_MshrDepth(benchmark::State &state)
{
    double gib = 0;
    for (auto _ : state) {
        auto cfg = platform::enzianDefaultConfig();
        cfg.remote_agent.max_outstanding =
            static_cast<std::uint32_t>(state.range(0));
        cfg.policy = eci::BalancePolicy::SingleLink;
        gib = runWorkload(cfg);
        benchmark::DoNotOptimize(gib);
    }
    state.counters["sim_GiBps"] = gib;
    report().add(format("mshr_%lld_gibps",
                        static_cast<long long>(state.range(0))),
                 gib);
}

void
BM_FabricClock(benchmark::State &state)
{
    // The FPGA protocol engine latency scales with the fabric clock;
    // model a 200 MHz image as 1.5x the 300 MHz engine latency.
    const double mhz = static_cast<double>(state.range(0));
    double gib = 0;
    for (auto _ : state) {
        auto cfg = platform::enzianDefaultConfig();
        cfg.link.fpga_proc_ns =
            platform::params::eciFpgaProcNs * (300.0 / mhz);
        cfg.policy = eci::BalancePolicy::SingleLink;
        gib = runWorkload(cfg, 128, 400);
        benchmark::DoNotOptimize(gib);
    }
    state.counters["sim_GiBps"] = gib;
    report().add(format("fabric_%lldmhz_gibps",
                        static_cast<long long>(state.range(0))),
                 gib);
}

BENCHMARK(BM_BalancePolicy)->DenseRange(0, 3)->Iterations(1);
BENCHMARK(BM_LaneCount)->Arg(4)->Arg(8)->Arg(12)->Iterations(1);
BENCHMARK(BM_MshrDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1);
BENCHMARK(BM_FabricClock)->Arg(200)->Arg(250)->Arg(300)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report().write();
    return 0;
}
