/**
 * @file
 * Pure event-kernel throughput: how many events per second the DES
 * kernel can schedule, dispatch and cancel, with no model attached.
 *
 * Every reproduced figure runs through sim::EventQueue, so dispatch
 * cost is the floor on simulator speed. Three mixes:
 *
 *  - dispatch: N periodic actors, each handler re-arms itself (the
 *    link-pacing / TCP-pump / scheduler-slice shape). This is the
 *    hot-path mix the kernel is optimized for.
 *  - oneshot: schedule-then-drain batches of fresh lambdas at random
 *    offsets (the request/response shape of the protocol agents).
 *  - cancel: schedule batches, cancel half before they run (timeout
 *    shape), drain the rest; includes stale cancels of already-run
 *    ids, which must be no-ops.
 *
 * Emits BENCH_kernel_events.json via bench_common.hh; CI guards
 * events-per-second against bench/baselines/kernel_events_floor.json.
 */

#include "bench_common.hh"

#include <chrono>
#include <queue>
#include <unordered_set>

#include "base/rng.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The pre-overhaul kernel (std::priority_queue of std::function +
 * lazy-cancellation hash set), kept verbatim inside the bench so the
 * speedup is measured in-process, against the same box and load —
 * wall-clock ratios across separate runs are too noisy to gate CI on.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    std::uint64_t
    schedule(Tick when, Callback cb)
    {
        const std::uint64_t id = nextId_++;
        queue_.push(Pending{when, id, std::move(cb)});
        return id;
    }

    std::uint64_t
    scheduleDelta(Tick delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    void cancel(std::uint64_t id) { cancelled_.insert(id); }

    bool
    runOne()
    {
        while (!queue_.empty()) {
            Pending ev = queue_.top();
            queue_.pop();
            if (auto it = cancelled_.find(ev.id);
                it != cancelled_.end()) {
                cancelled_.erase(it);
                continue;
            }
            now_ = ev.when;
            ev.cb();
            return true;
        }
        return false;
    }

    void
    run()
    {
        while (runOne()) {
        }
    }

  private:
    struct Pending
    {
        Tick when;
        std::uint64_t id;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Pending &a, const Pending &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };
    Tick now_ = 0;
    std::uint64_t nextId_ = 1;
    std::priority_queue<Pending, std::vector<Pending>, Later> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
};

/**
 * Dispatch-heavy mix: @p actors periodic self-rescheduling reusable
 * events (the link-pacing / TCP-pump shape after the kernel
 * overhaul), run until @p total dispatches.
 */
double
runDispatchMix(std::uint64_t actors, std::uint64_t total)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<Event>> evs;
    evs.reserve(actors);
    for (std::uint64_t i = 0; i < actors; ++i) {
        auto ev = std::make_unique<Event>();
        Event *self = ev.get();
        ev->init(
            eq,
            [&fired, total, self, i]() {
                if (++fired < total)
                    self->scheduleDelta(100 + (i % 7));
            },
            "bench-actor");
        ev->schedule(i % 97);
        evs.push_back(std::move(ev));
    }
    const auto t0 = std::chrono::steady_clock::now();
    eq.run();
    const double secs = secondsSince(t0);
    if (fired < total)
        fatal("dispatch mix fired %llu of %llu",
              static_cast<unsigned long long>(fired),
              static_cast<unsigned long long>(total));
    return static_cast<double>(fired) / secs;
}

/**
 * The same mix on @p eq with the pre-overhaul idiom — a fresh
 * function object copied into the queue per occurrence. Runs on
 * either kernel, so it doubles as the legacy-vs-new A/B probe.
 */
template <typename Queue>
double
runDispatchLambdaMix(Queue &eq, std::uint64_t actors,
                     std::uint64_t total)
{
    std::uint64_t fired = 0;
    std::vector<std::function<void()>> handlers(actors);
    for (std::uint64_t i = 0; i < actors; ++i) {
        handlers[i] = [&eq, &fired, &handlers, total, i]() {
            if (++fired < total)
                eq.scheduleDelta(100 + (i % 7), handlers[i]);
        };
    }
    for (std::uint64_t i = 0; i < actors; ++i)
        eq.schedule(i % 97, handlers[i]);
    const auto t0 = std::chrono::steady_clock::now();
    eq.run();
    const double secs = secondsSince(t0);
    if (fired < total)
        fatal("dispatch mix fired %llu of %llu",
              static_cast<unsigned long long>(fired),
              static_cast<unsigned long long>(total));
    return static_cast<double>(fired) / secs;
}

/** Legacy kernel running the one-shot mix. */
double
runLegacyOneshotMix(std::uint64_t batch, std::uint64_t rounds)
{
    LegacyEventQueue eq;
    Rng rng(42);
    std::uint64_t fired = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < batch; ++i)
            eq.scheduleDelta(rng.below(1000), [&fired]() { ++fired; });
        eq.run();
    }
    const double secs = secondsSince(t0);
    if (fired != batch * rounds)
        fatal("legacy oneshot fired %llu",
              static_cast<unsigned long long>(fired));
    return static_cast<double>(fired) / secs;
}

/** Legacy kernel running the cancel mix. */
double
runLegacyCancelMix(std::uint64_t batch, std::uint64_t rounds)
{
    LegacyEventQueue eq;
    Rng rng(1337);
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> ids(batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < batch; ++i) {
            ids[i] = eq.scheduleDelta(rng.below(1000),
                                      [&fired]() { ++fired; });
        }
        for (std::uint64_t i = 0; i < batch; i += 2)
            eq.cancel(ids[i]);
        eq.run();
    }
    const double secs = secondsSince(t0);
    if (fired != batch / 2 * rounds)
        fatal("legacy cancel fired %llu",
              static_cast<unsigned long long>(fired));
    return static_cast<double>(batch * rounds) / secs;
}

/** One-shot mix: batches of fresh lambdas at seeded random offsets. */
double
runOneshotMix(std::uint64_t batch, std::uint64_t rounds)
{
    EventQueue eq;
    Rng rng(42);
    std::uint64_t fired = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < batch; ++i) {
            eq.scheduleDelta(rng.below(1000),
                             [&fired]() { ++fired; }, "bench-oneshot");
        }
        eq.run();
    }
    const double secs = secondsSince(t0);
    if (fired != batch * rounds)
        fatal("oneshot mix fired %llu of %llu",
              static_cast<unsigned long long>(fired),
              static_cast<unsigned long long>(batch * rounds));
    return static_cast<double>(fired) / secs;
}

/**
 * Cancel mix: schedule a batch, cancel every other event (plus a
 * stale cancel of an already-executed id), drain the remainder.
 * Counts scheduled events per second (work = schedule + cancel +
 * dispatch of survivors).
 */
double
runCancelMix(std::uint64_t batch, std::uint64_t rounds)
{
    EventQueue eq;
    Rng rng(1337);
    std::uint64_t fired = 0;
    std::vector<EventId> ids(batch);
    EventId stale = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < batch; ++i) {
            ids[i] = eq.scheduleDelta(rng.below(1000),
                                      [&fired]() { ++fired; },
                                      "bench-cancel");
        }
        for (std::uint64_t i = 0; i < batch; i += 2)
            eq.cancel(ids[i]);
        if (stale)
            eq.cancel(stale); // already executed: must be a no-op
        eq.run();
        stale = ids[1];
    }
    const double secs = secondsSince(t0);
    if (fired != batch / 2 * rounds)
        fatal("cancel mix fired %llu, expected %llu",
              static_cast<unsigned long long>(fired),
              static_cast<unsigned long long>(batch / 2 * rounds));
    return static_cast<double>(batch * rounds) / secs;
}

} // namespace

int
main()
{
    header("Event kernel throughput (no model attached)");
    BenchReport rep("kernel_events");

    // Interleave legacy and new kernels, best of kReps, so the
    // reported speedups are ratios between same-box, same-load runs.
    //
    // 64 actors is the representative live-event set (the fig06/07
    // benches keep tens of events in flight); 1024 is a stress point
    // where pure heap depth dominates both kernels.
    constexpr int kReps = 3;
    constexpr std::uint64_t kActorsTypical = 64;
    constexpr std::uint64_t kActorsStress = 1024;
    constexpr std::uint64_t kDispatchTotal = 2'000'000;
    constexpr std::uint64_t kBatch = 4096;
    constexpr std::uint64_t kRounds = 300;

    double dispatch = 0, legacy_dispatch = 0, lambda = 0;
    double dispatch1k = 0, legacy_dispatch1k = 0;
    double oneshot = 0, legacy_oneshot = 0;
    double cancel = 0, legacy_cancel = 0;
    for (int r = 0; r < kReps; ++r) {
        {
            LegacyEventQueue lq;
            legacy_dispatch = std::max(
                legacy_dispatch,
                runDispatchLambdaMix(lq, kActorsTypical,
                                     kDispatchTotal));
        }
        dispatch = std::max(dispatch, runDispatchMix(kActorsTypical,
                                                     kDispatchTotal));
        {
            EventQueue nq;
            lambda = std::max(lambda,
                              runDispatchLambdaMix(nq, kActorsTypical,
                                                   kDispatchTotal));
        }
        {
            LegacyEventQueue lq;
            legacy_dispatch1k = std::max(
                legacy_dispatch1k,
                runDispatchLambdaMix(lq, kActorsStress,
                                     kDispatchTotal));
        }
        dispatch1k = std::max(dispatch1k,
                              runDispatchMix(kActorsStress,
                                             kDispatchTotal));
        legacy_oneshot =
            std::max(legacy_oneshot, runLegacyOneshotMix(kBatch,
                                                         kRounds));
        oneshot = std::max(oneshot, runOneshotMix(kBatch, kRounds));
        legacy_cancel =
            std::max(legacy_cancel, runLegacyCancelMix(kBatch,
                                                       kRounds));
        cancel = std::max(cancel, runCancelMix(kBatch, kRounds));
    }

    std::printf("%-26s %10s %10s %8s\n", "mix (M events/s)", "legacy",
                "new", "speedup");
    std::printf("%-26s %10.2f %10.2f %7.2fx\n", "dispatch (64 actors)",
                legacy_dispatch / 1e6, dispatch / 1e6,
                dispatch / legacy_dispatch);
    std::printf("%-26s %10.2f %10.2f %7.2fx\n",
                "dispatch (fresh lambda)", legacy_dispatch / 1e6,
                lambda / 1e6, lambda / legacy_dispatch);
    std::printf("%-26s %10.2f %10.2f %7.2fx\n",
                "dispatch (1024 actors)", legacy_dispatch1k / 1e6,
                dispatch1k / 1e6, dispatch1k / legacy_dispatch1k);
    std::printf("%-26s %10.2f %10.2f %7.2fx\n",
                "oneshot schedule+drain", legacy_oneshot / 1e6,
                oneshot / 1e6, oneshot / legacy_oneshot);
    std::printf("%-26s %10.2f %10.2f %7.2fx\n", "schedule+cancel half",
                legacy_cancel / 1e6, cancel / 1e6,
                cancel / legacy_cancel);

    rep.add("dispatch_eps", dispatch);
    rep.add("legacy_dispatch_eps", legacy_dispatch);
    rep.add("dispatch_speedup", dispatch / legacy_dispatch);
    rep.add("dispatch_lambda_eps", lambda);
    rep.add("dispatch1024_eps", dispatch1k);
    rep.add("legacy_dispatch1024_eps", legacy_dispatch1k);
    rep.add("dispatch1024_speedup", dispatch1k / legacy_dispatch1k);
    rep.add("oneshot_eps", oneshot);
    rep.add("legacy_oneshot_eps", legacy_oneshot);
    rep.add("oneshot_speedup", oneshot / legacy_oneshot);
    rep.add("cancel_eps", cancel);
    rep.add("legacy_cancel_eps", legacy_cancel);
    rep.add("cancel_speedup", cancel / legacy_cancel);

    return 0;
}
