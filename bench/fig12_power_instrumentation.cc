/**
 * @file
 * Figure 12: power measurements of the primary components during a
 * boot, diagnostic, and stress test.
 *
 * Runs the full scripted scenario (~255 simulated seconds): BMC
 * common power-up, FPGA power + programming, CPU power-on (with the
 * inrush spike), BDK DRAM check, data/address bus tests, marching
 * rows and random-data memtests, CPU power-down, and the FPGA
 * power-burn staircase in 1/24-area steps. All power numbers come
 * from PMBus telemetry sampled every 20 ms through the I2C model.
 * Prints the four Figure 12 traces downsampled to 2 s plus the phase
 * annotations and memtest verdicts.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>

#include "bench_common.hh"
#include "platform/boot_sequencer.hh"

using namespace enzian;

int
main()
{
    std::printf("\n=== Figure 12: boot / diagnostic / stress power "
                "trace ===\n");
    bench::BenchReport rep("fig12_power_instrumentation");
    auto cfg = platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 2ull << 30;
    cfg.fpga_dram_bytes = 1ull << 30;
    platform::EnzianMachine machine(cfg);
    platform::BootSequencer seq(machine);
    seq.runFullSequence();

    rep.add("memtests_passed",
            static_cast<double>(seq.memtests().dram_check) +
                seq.memtests().data_bus + seq.memtests().address_bus +
                seq.memtests().marching_rows +
                seq.memtests().random_data);
    std::printf("\nmemtests: dram_check=%s data_bus=%s address_bus=%s "
                "marching_rows=%s random_data=%s\n",
                seq.memtests().dram_check ? "PASS" : "FAIL",
                seq.memtests().data_bus ? "PASS" : "FAIL",
                seq.memtests().address_bus ? "PASS" : "FAIL",
                seq.memtests().marching_rows ? "PASS" : "FAIL",
                seq.memtests().random_data ? "PASS" : "FAIL");

    std::printf("\nphases:\n");
    for (const auto &p : seq.phases()) {
        std::printf("  %6.1f - %6.1f s  %s\n",
                    units::toSeconds(p.start), units::toSeconds(p.end),
                    p.name.c_str());
    }

    // Downsample the 20 ms telemetry to 2 s buckets per rail.
    const auto &samples = machine.bmc().telemetry().samples();
    std::map<int, std::map<std::string, std::pair<double, int>>> rows;
    for (const auto &s : samples) {
        const int bucket =
            static_cast<int>(units::toSeconds(s.when) / 2.0);
        auto &[sum, n] = rows[bucket][s.rail];
        sum += s.watts;
        ++n;
    }
    std::printf("\n%6s %10s %10s %10s %10s   (rail powers, W; "
                "VDD_CORE/VCCINT/DDR groups)\n",
                "t_s", "CPU", "FPGA", "DRAM0", "DRAM1");
    for (const auto &[bucket, rails] : rows) {
        auto get = [&](const char *r) {
            auto it = rails.find(r);
            return it == rails.end() || it->second.second == 0
                       ? 0.0
                       : it->second.first / it->second.second;
        };
        std::printf("%6d %10.1f %10.1f %10.1f %10.1f\n", bucket * 2,
                    get("CPU"), get("FPGA"), get("DRAM0"),
                    get("DRAM1"));
    }
    std::printf("\ntelemetry samples: %zu (4 rails @ 20 ms over the "
                "run)\n",
                samples.size());
    rep.add("telemetry_samples", static_cast<double>(samples.size()));
    rep.add("run_seconds", units::toSeconds(machine.now()));
    std::map<std::string, std::pair<double, double>> peak_mean;
    for (const auto &s2 : samples) {
        auto &[peak, sum] = peak_mean[s2.rail];
        peak = std::max(peak, s2.watts);
        sum += s2.watts;
    }
    for (const auto &[rail, pm] : peak_mean) {
        std::string key = rail;
        for (char &c : key)
            c = static_cast<char>(std::tolower(c));
        rep.add(key + "_peak_w", pm.first);
        rep.add(key + "_mean_w",
                pm.second / static_cast<double>(samples.size() / 4));
    }
    std::printf("Shape check: CPU power-on spike, elevated CPU+DRAM "
                "power through the memtests, CPU-off step, and the "
                "24-step FPGA power-burn staircase.\n");
    return 0;
}
