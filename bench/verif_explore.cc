/**
 * @file
 * Model-checker throughput: states explored per second, with and
 * without reductions, at one and several BFS workers.
 *
 * The verification workflow (ecicheck over every protocol x mutation
 * in CI) is bounded by raw exploration speed, so this bench guards
 * it the same way kernel_events guards the DES kernel. Reported
 * metrics:
 *
 *  - explore_sps_t1 / explore_sps_t4: states per second on the
 *    two-line MOESI product space (symmetry + POR on) with 1 and 4
 *    worker threads. Absolute, machine-dependent — the floor file
 *    keeps conservative CI-class baselines.
 *  - reduction_pct: percentage of states the reductions remove from
 *    the unreduced two-line space. A property of the algorithm, not
 *    the machine; it regresses only if symmetry/POR break.
 *
 * Emits BENCH_verif_explore.json via bench_common.hh; CI guards the
 * metrics against bench/baselines/verif_explore_floor.json.
 */

#include "bench_common.hh"

#include <chrono>

#include "verif/explorer.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Explore repeatedly for >= ~0.5 s; return states per second. */
double
statesPerSecond(const verif::Options &opt)
{
    // Warm-up run (page-faults the allocator, sizes the tables).
    std::uint64_t states = verif::explore(opt).states;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t explored = 0;
    int reps = 0;
    do {
        explored += verif::explore(opt).states;
        ++reps;
    } while (secondsSince(t0) < 0.5);
    (void)states;
    return static_cast<double>(explored) / secondsSince(t0);
}

} // namespace

int
main()
{
    BenchReport report("verif_explore");
    header("Model-checker throughput (two-line MOESI product space)");

    verif::Options opt;
    opt.lines = 2;
    opt.symmetry = true;
    opt.por = true;

    opt.threads = 1;
    const double t1 = statesPerSecond(opt);
    opt.threads = 4;
    const double t4 = statesPerSecond(opt);

    verif::Options full = opt;
    full.symmetry = false;
    full.por = false;
    full.threads = 1;
    const verif::Report reduced = verif::explore(opt);
    const verif::Report unreduced = verif::explore(full);
    const double reduction =
        100.0 * (1.0 - static_cast<double>(reduced.states) /
                           static_cast<double>(unreduced.states));

    std::printf("%-28s %12.0f states/s\n", "sym+por, 1 thread", t1);
    std::printf("%-28s %12.0f states/s\n", "sym+por, 4 threads", t4);
    std::printf("%-28s %8llu -> %llu states (%.1f%% fewer)\n",
                "reduction",
                static_cast<unsigned long long>(unreduced.states),
                static_cast<unsigned long long>(reduced.states),
                reduction);

    report.add("explore_sps_t1", t1);
    report.add("explore_sps_t4", t4);
    report.add("reduction_pct", reduction);
    return 0;
}
