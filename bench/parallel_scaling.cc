/**
 * @file
 * Parallel simulation scaling: events/sec vs worker thread count.
 *
 * Two Enzian machines (four timing domains) share one conservative
 * domain scheduler and run a fig06-style bidirectional ECI workload:
 * each machine's CPU streams cached writes into FPGA-homed lines
 * while its FPGA streams uncached reads of CPU memory, with a fixed
 * number of transfers in flight per direction. The identical workload
 * runs at 1, 2 and 4 threads; simulated end time and event count must
 * match bit-for-bit (conservative PDES is deterministic), only wall
 * time may differ. Emits BENCH_parallel_scaling.json with events/sec
 * per thread count and the t2/t4 speedups the CI floor guards.
 *
 * Note: speedups here reflect the host the bench runs on; on a
 * single-core container every thread count measures ~1x.
 */

#include "bench_common.hh"

#include <chrono>

#include "sim/domain_scheduler.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

constexpr std::uint32_t kOpsPerDirection = 60000;
constexpr std::uint32_t kInflight = 512;
constexpr std::uint32_t kPoolLines = 4096;

struct RunResult
{
    double wallMs = 0.0;
    std::uint64_t events = 0;
    Tick simEnd = 0;
};

/**
 * One self-reissuing direction of traffic. All bookkeeping lives in
 * the domain the completions fire on (CPU domain for cpuRemote ops,
 * FPGA domain for fpgaRemote ops), so no state crosses threads.
 */
struct Direction
{
    std::uint32_t issued = 0;
    std::uint32_t completed = 0;
    std::function<void()> issue;
};

void
startTraffic(platform::EnzianMachine &m, Direction &cpu_dir,
             Direction &fpga_dir)
{
    static std::vector<std::uint8_t> payload(cache::lineSize, 0xa5);

    cpu_dir.issue = [&m, &cpu_dir]() {
        if (cpu_dir.issued >= kOpsPerDirection)
            return;
        const std::uint32_t i = cpu_dir.issued++ % kPoolLines;
        const Addr line = mem::AddressMap::fpgaDramBase +
                          static_cast<Addr>(i) * cache::lineSize;
        m.cpuRemote().writeLine(line, payload.data(),
                                [&cpu_dir](Tick) {
                                    ++cpu_dir.completed;
                                    cpu_dir.issue();
                                });
    };
    fpga_dir.issue = [&m, &fpga_dir]() {
        if (fpga_dir.issued >= kOpsPerDirection)
            return;
        const std::uint32_t i = fpga_dir.issued++ % kPoolLines;
        const Addr line = static_cast<Addr>(i) * cache::lineSize;
        m.fpgaRemote().readLineUncached(line, nullptr,
                                        [&fpga_dir](Tick) {
                                            ++fpga_dir.completed;
                                            fpga_dir.issue();
                                        });
    };
    for (std::uint32_t i = 0; i < kInflight; ++i) {
        cpu_dir.issue();
        fpga_dir.issue();
    }
}

RunResult
runAt(std::uint32_t threads)
{
    auto cfg = platform::enzianDefaultConfig();
    // Deep request pipelining: more live transactions per epoch means
    // more work between barriers, which is what the threads share.
    cfg.remote_agent.max_outstanding = kInflight;
    const Tick lookahead = eci::EciLink::minCrossLatency(cfg.link);
    sim::DomainScheduler sched("par.sched", lookahead, threads);

    cfg.shared_scheduler = &sched;
    cfg.name = "par0";
    auto m0 = makeBenchMachine(cfg);
    cfg.name = "par1";
    auto m1 = makeBenchMachine(cfg);

    Direction dirs[4];
    startTraffic(*m0, dirs[0], dirs[1]);
    startTraffic(*m1, dirs[2], dirs[3]);

    const auto t0 = std::chrono::steady_clock::now();
    sched.run();
    const auto t1 = std::chrono::steady_clock::now();

    for (const auto &d : dirs) {
        if (d.completed != kOpsPerDirection)
            fatal("scaling bench: %u of %u transfers completed",
                  d.completed, kOpsPerDirection);
    }
    RunResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    r.events = sched.eventsExecuted();
    r.simEnd = sched.now();
    return r;
}

} // namespace

int
main()
{
    header("Parallel scaling: shared-scheduler ECI workload");
    BenchReport rep("parallel_scaling");

    const std::uint32_t counts[] = {1, 2, 4};
    RunResult res[3];
    std::printf("%8s %14s %12s %12s\n", "threads", "events", "wall_ms",
                "events/s");
    for (int i = 0; i < 3; ++i) {
        res[i] = runAt(counts[i]);
        const double eps = res[i].events / (res[i].wallMs / 1e3);
        std::printf("%8u %14llu %12.1f %12.3g\n", counts[i],
                    static_cast<unsigned long long>(res[i].events),
                    res[i].wallMs, eps);
        rep.add(format("eps_t%u", counts[i]), eps);
        rep.add(format("wall_ms_t%u", counts[i]), res[i].wallMs);
    }
    // Determinism: the same simulation must have happened each time.
    for (int i = 1; i < 3; ++i) {
        if (res[i].events != res[0].events ||
            res[i].simEnd != res[0].simEnd) {
            fatal("scaling bench diverged at %u threads: %llu events "
                  "@ %llu vs %llu @ %llu",
                  counts[i],
                  static_cast<unsigned long long>(res[i].events),
                  static_cast<unsigned long long>(res[i].simEnd),
                  static_cast<unsigned long long>(res[0].events),
                  static_cast<unsigned long long>(res[0].simEnd));
        }
    }
    rep.add("events_total", static_cast<double>(res[0].events));
    rep.add("speedup_t2", res[0].wallMs / res[1].wallMs);
    rep.add("speedup_t4", res[0].wallMs / res[2].wallMs);
    std::printf("\nspeedup: t2 %.2fx, t4 %.2fx (identical simulation: "
                "%llu events to t=%llu at every thread count)\n",
                res[0].wallMs / res[1].wallMs,
                res[0].wallMs / res[2].wallMs,
                static_cast<unsigned long long>(res[0].events),
                static_cast<unsigned long long>(res[0].simEnd));
    return 0;
}
