/**
 * @file
 * Parallel simulation scaling: events/sec vs worker thread count.
 *
 * Two Enzian machines (four timing domains) share one conservative
 * domain scheduler and run a fig06-style bidirectional ECI workload:
 * each machine's CPU streams cached writes into FPGA-homed lines
 * while its FPGA streams uncached reads of CPU memory, with a fixed
 * number of transfers in flight per direction. The identical workload
 * runs at 1, 2 and 4 threads; simulated end time and event count must
 * match bit-for-bit (conservative PDES is deterministic), only wall
 * time may differ. Emits BENCH_parallel_scaling.json with events/sec
 * per thread count and the t2/t4 speedups the CI floor guards.
 *
 * Note: speedups here reflect the host the bench runs on; on a
 * single-core container every thread count measures ~1x.
 */

#include "bench_common.hh"

#include <chrono>

#include "sim/domain_scheduler.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

constexpr std::uint32_t kOpsPerDirection = 60000;
constexpr std::uint32_t kInflight = 512;
constexpr std::uint32_t kPoolLines = 4096;

struct RunResult
{
    double wallMs = 0.0;
    double barrierMs = 0.0;
    std::uint64_t events = 0;
    Tick simEnd = 0;
    std::size_t domains = 0;
};

/**
 * One self-reissuing direction of traffic. All bookkeeping lives in
 * the domain the completions fire on (CPU domain for cpuRemote ops,
 * FPGA domain for fpgaRemote ops), so no state crosses threads.
 */
struct Direction
{
    std::uint32_t issued = 0;
    std::uint32_t completed = 0;
    std::function<void()> issue;
};

void
startTraffic(platform::EnzianMachine &m, Direction &cpu_dir,
             Direction &fpga_dir)
{
    static std::vector<std::uint8_t> payload(cache::lineSize, 0xa5);

    cpu_dir.issue = [&m, &cpu_dir]() {
        if (cpu_dir.issued >= kOpsPerDirection)
            return;
        const std::uint32_t i = cpu_dir.issued++ % kPoolLines;
        const Addr line = mem::AddressMap::fpgaDramBase +
                          static_cast<Addr>(i) * cache::lineSize;
        m.cpuRemote().writeLine(line, payload.data(),
                                [&cpu_dir](Tick) {
                                    ++cpu_dir.completed;
                                    cpu_dir.issue();
                                });
    };
    fpga_dir.issue = [&m, &fpga_dir]() {
        if (fpga_dir.issued >= kOpsPerDirection)
            return;
        const std::uint32_t i = fpga_dir.issued++ % kPoolLines;
        const Addr line = static_cast<Addr>(i) * cache::lineSize;
        m.fpgaRemote().readLineUncached(line, nullptr,
                                        [&fpga_dir](Tick) {
                                            ++fpga_dir.completed;
                                            fpga_dir.issue();
                                        });
    };
    for (std::uint32_t i = 0; i < kInflight; ++i) {
        cpu_dir.issue();
        fpga_dir.issue();
    }
}

RunResult
runAt(std::uint32_t threads)
{
    auto cfg = platform::enzianDefaultConfig();
    // Deep request pipelining: more live transactions per epoch means
    // more work between barriers, which is what the threads share.
    cfg.remote_agent.max_outstanding = kInflight;
    const Tick lookahead = eci::EciLink::minCrossLatency(cfg.link);
    sim::DomainScheduler sched("par.sched", lookahead, threads);

    cfg.shared_scheduler = &sched;
    cfg.name = "par0";
    auto m0 = makeBenchMachine(cfg);
    cfg.name = "par1";
    auto m1 = makeBenchMachine(cfg);

    Direction dirs[4];
    startTraffic(*m0, dirs[0], dirs[1]);
    startTraffic(*m1, dirs[2], dirs[3]);

    const auto t0 = std::chrono::steady_clock::now();
    sched.run();
    const auto t1 = std::chrono::steady_clock::now();

    for (const auto &d : dirs) {
        if (d.completed != kOpsPerDirection)
            fatal("scaling bench: %u of %u transfers completed",
                  d.completed, kOpsPerDirection);
    }
    RunResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    r.barrierMs = sched.barrierWallNs() / 1e6;
    r.events = sched.eventsExecuted();
    r.simEnd = sched.now();
    r.domains = sched.domainCount();
    return r;
}

// --- adaptive vs fixed epochs on a quiescent-heavy rack ------------

constexpr Tick kQLookahead = 100;
constexpr int kQDomains = 4;
constexpr int kQRounds = 60;
constexpr Tick kQPeriod = 12800; ///< ticks between cross sends
constexpr Tick kQStep = 16;      ///< polling-event spacing

struct QuiescentResult
{
    double wallMs = 0.0;
    std::uint64_t events = 0;
    std::uint64_t epochs = 0;
    std::uint64_t grows = 0;
    std::vector<Tick> deliveries;
};

/**
 * A ring of domains running continuous cycle-driven local work
 * (polling events every few ticks, under a no-sends promise) with one
 * cross-domain send per period — the workload shape where fixed
 * lockstep epochs pay a barrier every lookahead for nothing. The
 * simulation is identical in both modes; only the epoch schedule (and
 * with it the barrier count) may differ.
 */
QuiescentResult
runQuiescent(bool adaptive, std::uint32_t threads)
{
    sim::DomainScheduler::Options opts;
    opts.adaptive = adaptive;
    opts.max_grow = 64;
    sim::DomainScheduler sched(format("quiesce_%s_t%u",
                                      adaptive ? "a" : "f", threads),
                               kQLookahead, threads, opts);
    std::vector<sim::TimingDomain *> doms;
    std::vector<sim::CrossDomainChannel *> chans;
    for (int d = 0; d < kQDomains; ++d)
        doms.push_back(&sched.addDomain(format("q%d", d)));
    for (int d = 0; d < kQDomains; ++d)
        chans.push_back(
            &sched.channel(*doms[d], *doms[(d + 1) % kQDomains]));

    // Per-destination-domain delivery traces: single writer each.
    std::vector<std::vector<Tick>> trace(kQDomains);
    for (int d = 0; d < kQDomains; ++d) {
        EventQueue &q = doms[d]->queue();
        for (int r = 0; r < kQRounds; ++r) {
            const Tick base = static_cast<Tick>(r) * kQPeriod;
            const Tick send_at = base + kQPeriod - 2 * kQLookahead;
            q.schedule(base, [&, d, send_at]() {
                doms[d]->promiseNoSendsBefore(send_at);
            });
            for (Tick t = kQStep; base + t < send_at; t += kQStep)
                q.schedule(base + t, []() {});
            q.schedule(send_at, [&, d]() {
                const int to = (d + 1) % kQDomains;
                chans[d]->push(doms[d]->queue().now() + kQLookahead,
                               [&, to]() {
                                   trace[to].push_back(
                                       doms[to]->queue().now());
                               });
            });
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    sched.run();
    const auto t1 = std::chrono::steady_clock::now();

    QuiescentResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    r.events = sched.eventsExecuted();
    r.epochs = sched.epochs();
    r.grows = sched.adaptiveGrows();
    for (const auto &t : trace)
        r.deliveries.insert(r.deliveries.end(), t.begin(), t.end());
    return r;
}

} // namespace

int
main()
{
    header("Parallel scaling: shared-scheduler ECI workload");
    BenchReport rep("parallel_scaling");

    const std::uint32_t counts[] = {1, 2, 4};
    RunResult res[3];
    std::printf("%8s %14s %12s %12s %12s\n", "threads", "events",
                "wall_ms", "barrier_ms", "events/s");
    for (int i = 0; i < 3; ++i) {
        res[i] = runAt(counts[i]);
        const double eps = res[i].events / (res[i].wallMs / 1e3);
        std::printf("%8u %14llu %12.1f %12.1f %12.3g\n", counts[i],
                    static_cast<unsigned long long>(res[i].events),
                    res[i].wallMs, res[i].barrierMs, eps);
        rep.add(format("eps_t%u", counts[i]), eps);
        rep.add(format("wall_ms_t%u", counts[i]), res[i].wallMs);
        rep.add(format("barrier_ms_t%u", counts[i]), res[i].barrierMs);
    }
    rep.add("domains", static_cast<double>(res[0].domains));
    // Determinism: the same simulation must have happened each time.
    for (int i = 1; i < 3; ++i) {
        if (res[i].events != res[0].events ||
            res[i].simEnd != res[0].simEnd) {
            fatal("scaling bench diverged at %u threads: %llu events "
                  "@ %llu vs %llu @ %llu",
                  counts[i],
                  static_cast<unsigned long long>(res[i].events),
                  static_cast<unsigned long long>(res[i].simEnd),
                  static_cast<unsigned long long>(res[0].events),
                  static_cast<unsigned long long>(res[0].simEnd));
        }
    }
    rep.add("events_total", static_cast<double>(res[0].events));
    rep.add("speedup_t2", res[0].wallMs / res[1].wallMs);
    rep.add("speedup_t4", res[0].wallMs / res[2].wallMs);
    std::printf("\nspeedup: t2 %.2fx, t4 %.2fx (identical simulation: "
                "%llu events to t=%llu at every thread count)\n",
                res[0].wallMs / res[1].wallMs,
                res[0].wallMs / res[2].wallMs,
                static_cast<unsigned long long>(res[0].events),
                static_cast<unsigned long long>(res[0].simEnd));

    // Adaptive-vs-fixed A/B on the quiescent-heavy ring. At 1 thread
    // the gain isolates coordinator barrier work; at 4 threads it
    // includes the epoch handshake the grown epochs eliminate.
    header("Adaptive epochs: quiescent-heavy A/B");
    std::printf("%8s %10s %12s %12s %10s\n", "threads", "mode",
                "epochs", "wall_ms", "grows");
    QuiescentResult base1;
    for (const std::uint32_t t : {1u, 4u}) {
        const QuiescentResult fixed = runQuiescent(false, t);
        const QuiescentResult adaptive = runQuiescent(true, t);
        if (fixed.deliveries != adaptive.deliveries ||
            fixed.events != adaptive.events ||
            (t > 1 && fixed.deliveries != base1.deliveries)) {
            fatal("adaptive A/B diverged at %u threads: %llu events "
                  "/ %zu deliveries vs %llu / %zu",
                  t, static_cast<unsigned long long>(fixed.events),
                  fixed.deliveries.size(),
                  static_cast<unsigned long long>(adaptive.events),
                  adaptive.deliveries.size());
        }
        if (adaptive.grows == 0)
            fatal("adaptive A/B: no epoch ever grew");
        if (t == 1)
            base1 = fixed;
        const double gain = fixed.wallMs / adaptive.wallMs;
        std::printf("%8u %10s %12llu %12.1f %10s\n", t, "fixed",
                    static_cast<unsigned long long>(fixed.epochs),
                    fixed.wallMs, "-");
        std::printf("%8u %10s %12llu %12.1f %10llu\n", t, "adaptive",
                    static_cast<unsigned long long>(adaptive.epochs),
                    adaptive.wallMs,
                    static_cast<unsigned long long>(adaptive.grows));
        std::printf("adaptive gain at %u threads: %.2fx wall, %.1fx "
                    "fewer epochs (identical %llu-event simulation)\n",
                    t, gain,
                    static_cast<double>(fixed.epochs) /
                        adaptive.epochs,
                    static_cast<unsigned long long>(fixed.events));
        rep.add(format("epochs_fixed_t%u", t),
                static_cast<double>(fixed.epochs));
        rep.add(format("epochs_adaptive_t%u", t),
                static_cast<double>(adaptive.epochs));
        rep.add(format("wall_ms_fixed_t%u", t), fixed.wallMs);
        rep.add(format("wall_ms_adaptive_t%u", t), adaptive.wallMs);
        rep.add(format("adaptive_gain_t%u", t), gain);
        // Deterministic (host-independent) floor anchor: how many
        // barriers the adaptive policy provably eliminates.
        rep.add(format("epoch_reduction_t%u", t),
                static_cast<double>(fixed.epochs) / adaptive.epochs);
    }
    return 0;
}
