/**
 * @file
 * Extension bench (paper section 6 use-case): smart disaggregated
 * memory with operator pushdown vs RDMA-style full reads, across
 * selectivities. Not a paper figure - the paper sketches this
 * use-case (Farview) as enabled future work; the bench quantifies the
 * crossover the design argument predicts: pushdown wins whenever the
 * selected fraction is small enough that scan time at the memory
 * beats shipping the table.
 */

#include "bench_common.hh"

#include <cstring>

#include "cluster/disagg_memory.hh"
#include "cluster/enzian_cluster.hh"

using namespace enzian;
using namespace enzian::cluster;

int
main()
{
    bench::header(
        "Extension: disaggregated memory, pushdown vs full read");
    bench::BenchReport rep("ext_disagg_memory");

    constexpr std::uint32_t row = 16;
    constexpr std::uint64_t rows = 1u << 20;
    std::printf("table: %llu rows x %u B = %llu MiB on the remote "
                "node\n\n",
                static_cast<unsigned long long>(rows), row,
                static_cast<unsigned long long>(rows * row >> 20));
    std::printf("%14s %14s %14s %14s %14s\n", "selectivity",
                "pushdown_us", "fullread_us", "wire_KiB",
                "data_saving");

    for (const double sel : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}) {
        EnzianCluster::Config ccfg;
        ccfg.nodes = 2;
        EnzianCluster rack(ccfg);
        DisaggMemoryServer::Config scfg;
        scfg.port = rack.portOf(0);
        scfg.region_size = 64ull << 20;
        DisaggMemoryServer server("srv", rack.eventq(), rack.network(),
                                  rack.node(0).fpgaMem(), scfg);
        DisaggMemoryClient client("cli", rack.eventq(), rack.network(),
                                  rack.portOf(1), server);

        std::vector<std::uint8_t> table(rows * row);
        for (std::uint64_t k = 0; k < rows; ++k)
            std::memcpy(&table[k * row], &k, 8);
        bool loaded = false;
        client.write(0, table.data(), table.size(),
                     [&](Tick) { loaded = true; });
        rack.eventq().run();
        if (!loaded)
            fatal("table load failed");

        Predicate pred;
        pred.column_offset = 0;
        pred.op = FilterOp::Lt;
        pred.operand =
            static_cast<std::uint64_t>(sel * static_cast<double>(rows));

        Tick scan_t = 0;
        std::uint64_t wire = 0;
        const Tick t0 = rack.eventq().now();
        client.scanFilter(0, row, rows, pred,
                          [&](Tick t, std::vector<std::uint8_t>,
                              std::uint64_t w) {
                              scan_t = t - t0;
                              wire = w;
                          });
        rack.eventq().run();

        std::vector<std::uint8_t> full(rows * row);
        Tick read_t = 0;
        const Tick t1 = rack.eventq().now();
        client.read(0, full.data(), full.size(),
                    [&](Tick t) { read_t = t - t1; });
        rack.eventq().run();

        std::printf("%13.2f%% %14.0f %14.0f %14.1f %13.1fx\n",
                    sel * 100.0, units::toMicros(scan_t),
                    units::toMicros(read_t), wire / 1024.0,
                    static_cast<double>(full.size()) /
                        static_cast<double>(wire));
        const std::string key = format("sel_%g", sel);
        rep.add(key + "_pushdown_us", units::toMicros(scan_t));
        rep.add(key + "_fullread_us", units::toMicros(read_t));
        rep.add(key + "_wire_kib", wire / 1024.0);
    }
    std::printf("\nShape check: at low selectivity pushdown wins on "
                "both wall time and (dramatically) data moved; at "
                "selectivity 1.0 it degenerates to a full read plus "
                "scan cost.\n");
    return 0;
}
