/**
 * @file
 * Extension bench (paper section 4.3 use-case): undervolting study.
 *
 * "...the ability to independently monitor and control voltage
 * regulators at fine granularity makes Enzian a worthy experimental
 * platform for examining the undervolt behavior of FPGAs, CPUs, and
 * DRAM." The bench drives VDD_CORE down through PMBus VOUT_COMMAND
 * margining (the real mechanism), measures the power saving with the
 * BMC telemetry path, and evaluates stability against a per-chip
 * critical-voltage guardband model (mean/sigma after Tovletoglou et
 * al. [71]-style server-ARM characterizations): each simulated chip
 * draws its Vcrit once, and a margin level "passes" when every chip's
 * memtest survives.
 */

#include "bench_common.hh"

#include "bmc/bmc.hh"
#include "platform/boot_sequencer.hh"

using namespace enzian;
using namespace enzian::bench;

int
main()
{
    header("Extension: VDD_CORE undervolting study");
    BenchReport rep("ext_undervolt");

    // Per-chip critical voltages (guardband model).
    Rng chip_rng(0x5afe);
    constexpr int chips = 10;
    double vcrit[chips];
    for (double &v : vcrit)
        v = chip_rng.gaussian(0.875, 0.012);

    std::printf("%10s %10s %12s %12s %10s\n", "VDD_CORE", "margin",
                "CPU_W", "saving", "stable");
    const double v_nom = 0.98;

    for (double v = 0.98; v >= 0.825; v -= 0.02) {
        // A fresh machine per operating point.
        auto cfg = platform::enzianDefaultConfig();
        cfg.cpu_dram_bytes = 64ull << 20;
        cfg.fpga_dram_bytes = 64ull << 20;
        platform::EnzianMachine m(cfg);
        bmc::Bmc &bmc = m.bmc();
        m.eventq().runUntil(bmc.commonPowerUp() + units::ms(1));
        m.eventq().runUntil(bmc.cpuPowerUp() + units::ms(1));
        bmc.power().setCpuOn(true);
        bmc.power().setActiveCores(48);

        // Margin the rail over PMBus (the real control path).
        bmc.pmbus().writeWord(
            0x20, bmc::PmbusCmd::VoutCommand,
            bmc::linear16Encode(v, bmc::voutModeExponent));
        m.eventq().run();
        const double vout = bmc.regulator("VDD_CORE").vout();

        // Dynamic power scales ~V^2 at fixed frequency; read the
        // nominal wattage through the telemetry path and scale.
        const double p_nom = 0.72 * bmc.power().cpuPower();
        const double p = p_nom * (vout / v_nom) * (vout / v_nom);

        // Stability: every chip must stay above its Vcrit; the
        // marginal region shows chip-to-chip variation, which is the
        // phenomenon the instrumentation exists to measure.
        int stable = 0;
        for (double vc : vcrit)
            if (vout >= vc) {
                // Run a real memtest for the surviving chips.
                mem::BackingStore &dram = m.cpuMem().store();
                if (platform::BootSequencer::randomDataTest(
                        dram, 0x10000, 1 << 20, 42))
                    ++stable;
            }
        std::printf("%9.3fV %9.1f%% %11.1fW %10.1f%% %7d/%d\n", vout,
                    (v_nom - vout) / v_nom * 100.0, p,
                    (p_nom - p) / p_nom * 100.0, stable, chips);
        const std::string key = format("vout_%.0fmv", vout * 1000.0);
        rep.add(key + "_cpu_w", p);
        rep.add(key + "_saving_pct", (p_nom - p) / p_nom * 100.0);
        rep.add(key + "_stable_chips", stable);
    }
    std::printf("\nShape check: ~2%% power saving per 1%% undervolt "
                "until the per-chip guardband (~0.87 V +/- 12 mV) is "
                "crossed, where chips start failing one by one.\n");
    return 0;
}
