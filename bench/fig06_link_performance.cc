/**
 * @file
 * Figure 6: link performance, ECI (one link) vs PCIe x16 Gen3.
 *
 * Reproduces the paper's microbenchmark: the FPGA reads and writes
 * host (CPU) memory with uncached, coherent, cache-line-sized
 * transactions over a single ECI link; the Alveo u250 baseline moves
 * the same bytes with descriptor-ring DMA over PCIe Gen3 x16.
 * Latency is time-to-last-byte of one transfer; throughput keeps the
 * engines' natural pipelining. Also prints the 2-socket ThunderX
 * CPU-CPU reference from section 5.1 (19 GiB/s, 150 ns).
 */

#include "bench_common.hh"

using namespace enzian;
using namespace enzian::bench;

int
main()
{
    header("Figure 6: ECI (one link) vs PCIe x16 Gen3");
    BenchReport rep("fig06_link_performance");
    std::printf("%8s %12s %12s %12s %12s %12s %12s %12s %12s\n",
                "size_B", "EnzRD_us", "EnzWR_us", "AlvRD_us",
                "AlvWR_us", "EnzRD_GiB", "EnzWR_GiB", "AlvRD_GiB",
                "AlvWR_GiB");

    for (std::uint32_t p = 7; p <= 14; ++p) {
        const std::uint64_t size = 1ull << p;
        double lat[4], thr[4];
        int idx = 0;
        for (const bool write : {false, true}) {
            // Fresh machine per cell keeps queues quiet.
            auto cfg = platform::enzianDefaultConfig();
            cfg.policy = eci::BalancePolicy::SingleLink; // one link
            auto m = makeBenchMachine(cfg);
            lat[idx] = measureLatencyUs(*m, size,
                                        eciTransfer(*m, write));
            auto m2 = makeBenchMachine(cfg);
            thr[idx] = measureThroughputGiB(*m2, size, 200, 4,
                                            eciTransfer(*m2, write));
            ++idx;
        }
        for (const bool to_host : {true, false}) {
            // Alveo read (device<-host): hostToDevice; write: d->h.
            auto sys = platform::makePcieAccelerator("alveo-u250");
            lat[idx] = measureLatencyUs(*sys.eq, size,
                                        dmaTransfer(sys, to_host));
            auto sys2 = platform::makePcieAccelerator("alveo-u250");
            thr[idx] = measureThroughputGiB(*sys2.eq, size, 200, 4,
                                            dmaTransfer(sys2, to_host));
            ++idx;
        }
        // Column order: Enzian RD, Enzian WR, Alveo RD, Alveo WR.
        const char *cols[] = {"enzian_rd", "enzian_wr", "alveo_wr",
                              "alveo_rd"};
        for (int c = 0; c < 4; ++c) {
            const std::string key =
                format("%s_%lluB", cols[c],
                       static_cast<unsigned long long>(size));
            rep.add(key + "_latency_us", lat[c]);
            rep.add(key + "_bw_gib", thr[c]);
        }
        std::printf("%8llu %12.3f %12.3f %12.3f %12.3f %12.2f %12.2f "
                    "%12.2f %12.2f\n",
                    static_cast<unsigned long long>(size), lat[0],
                    lat[1], lat[3], lat[2], thr[0], thr[1], thr[3],
                    thr[2]);
    }

    // Section 5.1 reference: 2-socket ThunderX-1 NUMA server with
    // hardware balancing over both links.
    {
        auto cfg = platform::twoSocketThunderXConfig();
        auto m = makeBenchMachine(cfg);
        const double lat_ns =
            measureLatencyUs(*m, 128, eciTransfer(*m, false)) *
            1000.0;
        auto m2 = makeBenchMachine(cfg);
        const double thr = measureThroughputGiB(
            *m2, 16384, 400, 8, eciTransfer(*m2, true));
        std::printf("\n2-socket ThunderX-1 reference: %.0f ns latency, "
                    "%.1f GiB/s (paper: ~150 ns, 19 GiB/s)\n",
                    lat_ns, thr);
        rep.add("thunderx_latency_ns", lat_ns);
        rep.add("thunderx_bw_gib", thr);
    }
    return 0;
}
