/**
 * @file
 * Extension bench (paper section 5.2 use-case): hardware-accelerated
 * key-value store throughput and latency.
 *
 * A KV-Direct-style store lives in Enzian's FPGA DRAM and serves
 * GET/PUT over 100 GbE without touching the CPU. The bench sweeps the
 * GET fraction of a YCSB-like mix and reports ops/s and latency, and
 * contrasts the FPGA-DRAM capacity argument the paper makes (512 GiB
 * behind the FPGA vs tens of GiB on PCIe cards).
 */

#include "bench_common.hh"

#include "accel/kv_store.hh"

using namespace enzian;
using namespace enzian::bench;

int
main()
{
    header("Extension: FPGA-resident key-value store (KV-Direct)");
    BenchReport rep("ext_kv_store");

    for (const double get_frac : {0.50, 0.95, 1.00}) {
        auto mcfg = platform::enzianDefaultConfig();
        mcfg.cpu_dram_bytes = 64ull << 20;
        mcfg.fpga_dram_bytes = 512ull << 20;
        platform::EnzianMachine m(mcfg);
        net::Switch::Config scfg;
        scfg.port = platform::params::eth100Config();
        net::Switch sw("sw", m.eventq(), 2, scfg);
        accel::KvStoreServer::Config kcfg;
        kcfg.port = 0;
        kcfg.slots = 1 << 22; // 4M slots x 64 B = 256 MiB table
        accel::KvStoreServer server("kv", m.eventq(), sw, m.fpgaMem(),
                                    kcfg);
        accel::KvClient client("cli", m.eventq(), sw, 1, 0);

        // Preload.
        Rng rng(0xcafe);
        std::uint8_t v[32];
        for (auto &b : v)
            b = 0x5a;
        const std::uint64_t keys = 100000;
        for (std::uint64_t k = 0; k < keys; ++k)
            server.put(k, v, sizeof(v));

        // Mixed workload with a bounded number of requests in flight
        // (a real client's request window).
        const std::uint64_t ops = 20000;
        const std::uint32_t window = 32;
        std::uint64_t issued_n = 0, done = 0;
        Tick last = 0;
        Accumulator lat_us;
        const Tick t0 = m.eventq().now();
        std::function<void()> issue = [&]() {
            if (issued_n >= ops)
                return;
            ++issued_n;
            const std::uint64_t key = rng.below(keys);
            const Tick issued = m.eventq().now();
            auto complete = [&, issued](Tick t, bool ok) {
                if (!ok)
                    fatal("kv operation failed");
                ++done;
                last = std::max(last, t);
                lat_us.sample(units::toMicros(t - issued));
                issue();
            };
            if (rng.uniform() < get_frac) {
                client.get(key,
                           [complete](Tick t, bool ok,
                                      std::vector<std::uint8_t>) {
                               complete(t, ok);
                           });
            } else {
                client.put(key, v, sizeof(v), complete);
            }
        };
        for (std::uint32_t i = 0; i < window; ++i)
            issue();
        m.eventq().run();
        if (done != ops)
            fatal("kv bench incomplete");
        const double mops =
            static_cast<double>(ops) / units::toSeconds(last - t0) /
            1e6;
        std::printf("GET %.0f%% : %6.2f Mops/s, mean latency %5.2f us "
                    "(max %.2f), %.2f probes/op\n",
                    get_frac * 100, mops, lat_us.mean(), lat_us.max(),
                    static_cast<double>(server.probes()) /
                        static_cast<double>(ops + keys));
        const std::string key =
            format("get%.0f", get_frac * 100);
        rep.add(key + "_mops", mops);
        rep.add(key + "_mean_lat_us", lat_us.mean());
        rep.add(key + "_max_lat_us", lat_us.max());
    }
    std::printf("\nShape check: line-rate-limited small-op service "
                "from the fabric with single-digit-microsecond "
                "latency, host CPU idle; the 512 GiB FPGA DRAM holds "
                "tables no PCIe card can.\n");
    return 0;
}
