/**
 * @file
 * Replicated-KV placement experiment: where should the values live?
 *
 * The same replicated store (primary + 1 replica on a 4-node rack)
 * serves gets/puts with its slots placed three ways:
 *
 *  - dram:      the serving FPGA's own DDR4 — the network is the
 *               whole cost;
 *  - eci-host:  CPU host memory reached coherently over ECI — adds
 *               the ECI round trip per line;
 *  - pcie-host: CPU host memory reached by PCIe DMA — adds DMA
 *               descriptor + staging cost.
 *
 * For each placement the bench reports the remote-get latency (client
 * with no co-located replica: network + placement path), the
 * local-get latency (client on a replica node: placement path only —
 * zero network), and the all-ack put latency (fan-out to primary +
 * replica). This quantifies the paper's memory-hierarchy argument at
 * rack scale: placement is a latency knob the topology description
 * can turn per service.
 *
 * Runs on the legacy shared queue because the pcie-host path's DMA
 * engine bridges the CPU and FPGA queues directly (illegal under
 * parallel timing domains).
 */

#include "bench_common.hh"

#include "cluster/enzian_cluster.hh"
#include "cluster/replicated_kv.hh"

using namespace enzian;
using namespace enzian::bench;
using namespace enzian::cluster;

namespace {

constexpr std::uint32_t kValueBytes = 4096;
constexpr std::uint32_t kOps = 32;

struct PlacementResult
{
    double remoteGetUs = 0.0;
    double localGetUs = 0.0;
    double putUs = 0.0;
};

PlacementResult
runPlacement(const std::string &placement)
{
    EnzianCluster::Config cfg;
    cfg.nodes = 4;
    EnzianCluster rack(cfg);

    ReplicatedKv::Config kcfg;
    kcfg.primary = 0;
    kcfg.replicas = {1};
    kcfg.placement = placement;
    kcfg.slots = 256;
    kcfg.value_bytes = kValueBytes;
    ReplicatedKv kv("kv_" + placement, rack, kcfg);

    std::vector<std::uint8_t> val(kValueBytes, 0x6b);
    std::vector<std::uint8_t> out(kValueBytes);
    PlacementResult res;

    auto measure = [&](auto op) {
        double total = 0.0;
        for (std::uint32_t k = 0; k < kOps; ++k) {
            const Tick start = rack.eventq().now();
            Tick end = 0;
            op(k, [&end](Tick t) { end = t; });
            rack.run();
            if (!end)
                fatal("kv op %u never completed", k);
            total += units::toMicros(end - start);
        }
        return total / kOps;
    };

    res.putUs = measure([&](std::uint64_t k, ReplicatedKv::Done done) {
        kv.put(3, k, val.data(), std::move(done));
    });
    // Node 3 holds no replica: network to the nearest store.
    res.remoteGetUs =
        measure([&](std::uint64_t k, ReplicatedKv::Done done) {
            kv.get(3, k, out.data(), std::move(done));
        });
    // Node 1 is a replica: placement path only, no network.
    res.localGetUs =
        measure([&](std::uint64_t k, ReplicatedKv::Done done) {
            kv.get(1, k, out.data(), std::move(done));
        });
    if (out != val)
        fatal("kv bench read back the wrong bytes");
    return res;
}

} // namespace

int
main()
{
    header("Replicated KV: value placement, 4 KiB values, "
           "primary + 1 replica");
    BenchReport rep("cluster_kv");

    std::printf("%12s %16s %16s %16s\n", "placement", "remote_get_us",
                "local_get_us", "put_allack_us");
    for (const std::string placement :
         {"dram", "eci-host", "pcie-host"}) {
        const auto r = runPlacement(placement);
        std::printf("%12s %16.2f %16.2f %16.2f\n", placement.c_str(),
                    r.remoteGetUs, r.localGetUs, r.putUs);
        const std::string key =
            placement == "eci-host"
                ? "eci"
                : (placement == "pcie-host" ? "pcie" : "dram");
        rep.add(key + "_remote_get_us", r.remoteGetUs);
        rep.add(key + "_local_get_us", r.localGetUs);
        rep.add(key + "_put_us", r.putUs);
    }
    std::printf("\nShape check: dram is the floor (network only); "
                "eci-host adds the coherent ECI hop per line; "
                "pcie-host adds DMA staging on top. Local gets drop "
                "the network entirely, so placement choice dominates "
                "them.\n");
    return 0;
}
