/**
 * @file
 * Figure 8: RDMA performance.
 *
 * A VCU118-style request generator issues 1-sided copy requests over
 * 100 GbE to five targets: the Alveo card serving its own DRAM and
 * host memory (via PCIe DMA), a Mellanox-class RNIC serving host
 * memory, and Enzian serving FPGA DRAM and host memory (over ECI,
 * coherent with the CPU's L2). Read/write latency and throughput
 * against transfer size.
 */

#include "bench_common.hh"

#include "net/rdma_engine.hh"
#include "net/rnic_model.hh"

using namespace enzian;
using namespace enzian::bench;
using namespace enzian::net;

namespace {

Switch::Config
switchConfig()
{
    Switch::Config cfg;
    cfg.port = platform::params::eth100Config();
    cfg.port.mtu = 4096;
    return cfg;
}

/** One measurement rig: built fresh per (target, op, metric) cell. */
struct Rig
{
    std::unique_ptr<platform::EnzianMachine> machine;
    platform::PcieAccelSystem pcie;
    std::unique_ptr<EventQueue> own_eq;
    std::unique_ptr<mem::MemoryController> host_mem;
    EventQueue *eq = nullptr;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<MemoryPath> path;
    std::unique_ptr<RdmaTarget> target;
    std::unique_ptr<RdmaInitiator> init;
    std::vector<std::uint8_t> buf;

    explicit Rig(const std::string &kind)
    {
        if (kind == "enzian-dram" || kind == "enzian-host") {
            auto cfg = platform::enzianDefaultConfig();
            machine = makeBenchMachine(cfg);
            eq = &machine->eventq();
            if (kind == "enzian-dram")
                path = std::make_unique<DirectDramPath>(
                    machine->fpgaMem());
            else
                path = std::make_unique<EciHostPath>(
                    machine->fpgaRemote(), 0);
        } else if (kind == "alveo-dram" || kind == "alveo-host") {
            pcie = platform::makePcieAccelerator("alveo-u280");
            eq = pcie.eq.get();
            if (kind == "alveo-dram")
                path = std::make_unique<DirectDramPath>(*pcie.device);
            else
                path = std::make_unique<PcieHostPath>(
                    *pcie.dma, 0, 0x2000000);
        } else { // mellanox-host
            own_eq = std::make_unique<EventQueue>();
            eq = own_eq.get();
            host_mem = std::make_unique<mem::MemoryController>(
                "host.mem", *eq, 256ull << 20, 6,
                platform::params::cpuDramConfig());
            path = std::make_unique<NicDmaPath>(*host_mem,
                                                NicDmaPath::Config{});
        }
        sw = std::make_unique<Switch>("sw", *eq, 2, switchConfig());
        target = std::make_unique<RdmaTarget>("t", *eq, *sw, *path,
                                              RdmaTarget::Config{});
        init = std::make_unique<RdmaInitiator>("i", *eq, *sw, 1, 0);
        buf.resize(1 << 20, 0x5a);
    }

    TransferFn
    transfer(bool write)
    {
        return [this, write](std::uint64_t bytes,
                             std::function<void(Tick)> done) {
            static std::uint64_t off = 0;
            off = (off + 16384) % (64ull << 20);
            if (write)
                init->write(off, buf.data(), bytes, std::move(done));
            else
                init->read(off, buf.data(), bytes, std::move(done));
        };
    }
};

} // namespace

int
main()
{
    header("Figure 8: RDMA performance");
    BenchReport rep("fig08_rdma");
    const char *kinds[] = {"alveo-dram", "alveo-host", "mellanox-host",
                           "enzian-dram", "enzian-host"};
    for (const bool write : {false, true}) {
        std::printf("\n-- %s --\n", write ? "WRITE" : "READ");
        std::printf("%8s", "size_B");
        for (const char *k : kinds)
            std::printf(" %11.11s_us %11.11s_GiB", k, k);
        std::printf("\n");
        for (std::uint32_t p = 7; p <= 14; ++p) {
            const std::uint64_t size = 1ull << p;
            std::printf("%8llu",
                        static_cast<unsigned long long>(size));
            for (const char *k : kinds) {
                Rig lat_rig(k);
                const double lat = measureLatencyUs(
                    *lat_rig.eq, size, lat_rig.transfer(write));
                Rig thr_rig(k);
                const double thr = measureThroughputGiB(
                    *thr_rig.eq, size, 150, 8,
                    thr_rig.transfer(write));
                std::printf(" %14.2f %15.2f", lat, thr);
                std::string key = format(
                    "%s_%s_%lluB", k, write ? "write" : "read",
                    static_cast<unsigned long long>(size));
                for (char &c : key)
                    if (c == '-')
                        c = '_';
                rep.add(key + "_lat_us", lat);
                rep.add(key + "_gib", thr);
            }
            std::printf("\n");
        }
    }
    std::printf("\nShape check: Enzian DRAM has the best throughput "
                "and latency at large sizes (512 GiB of DDR4 behind "
                "the FPGA); Enzian host access is coherent with the "
                "CPU L2 and competitive with the Mellanox RNIC; the "
                "Alveo host path pays PCIe DMA setup costs.\n");
    return 0;
}
