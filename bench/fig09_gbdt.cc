/**
 * @file
 * Figure 9: gradient boosting decision tree inference throughput on
 * HARPv2, Amazon F1, VCU118, and Enzian, with one and two engines.
 *
 * Real ensembles (32 trees, depth 5) score a 64 KB tuple batch (the
 * paper's saturation point); outputs are verified against the scalar
 * reference before throughput is reported.
 */

#include "bench_common.hh"

#include "accel/gbdt_engine.hh"

using namespace enzian;
using namespace enzian::bench;

int
main()
{
    header("Figure 9: GBDT inference throughput (Mtuples/s)");
    BenchReport rep("fig09_gbdt");
    auto ensemble = accel::makeEnsemble(
        0xd7ee5, platform::params::gbdtTrees,
        platform::params::gbdtDepth, platform::params::gbdtFeatures);
    // 64 KB of 32-byte tuples = 2048 tuples per batch.
    const std::uint64_t count =
        (64 * 1024) / (platform::params::gbdtFeatures * sizeof(float));
    auto tuples =
        accel::makeTuples(0x7ab1e, count,
                          platform::params::gbdtFeatures);

    std::printf("%-12s %12s %12s\n", "platform", "1-engine",
                "2-engines");
    const double paper[4][2] = {
        {33, 66}, {24, 48}, {41, 81}, {48, 96}};
    int row = 0;
    for (const auto &name : platform::gbdtPlatformNames()) {
        double mtps[2];
        for (std::uint32_t engines = 1; engines <= 2; ++engines) {
            EventQueue eq;
            accel::GbdtEngine engine(
                "gbdt", eq, ensemble,
                platform::gbdtPlatformConfig(name, engines));
            auto r = engine.infer(tuples.data(), count);
            // Verify functional output against the reference.
            for (std::uint64_t i = 0; i < count; ++i) {
                const float expect = ensemble.predict(
                    &tuples[i * platform::params::gbdtFeatures]);
                if (r.scores[i] != expect)
                    fatal("engine output mismatch at tuple %llu",
                          static_cast<unsigned long long>(i));
            }
            mtps[engines - 1] = r.tuplesPerSecond / 1e6;
        }
        std::printf("%-12s %12.1f %12.1f   (paper: %.0f / %.0f)\n",
                    name.c_str(), mtps[0], mtps[1], paper[row][0],
                    paper[row][1]);
        rep.add(name + "_1engine_mtps", mtps[0]);
        rep.add(name + "_2engine_mtps", mtps[1]);
        ++row;
    }
    std::printf("\nShape check: Enzian outperforms all boards because "
                "it runs the highest speed grade of the same FPGA; "
                "two engines double throughput (VCU118 slightly "
                "clipped by its host link in the paper).\n");
    return 0;
}
