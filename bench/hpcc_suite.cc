/**
 * @file
 * HPCC-style accelerator suite on the vFPGA shell: streaming FFT,
 * blocked LU with partial pivoting, and blocked transpose (PTRANS),
 * each verified against its reference model before any number is
 * reported, then timed over a batch of back-to-back jobs.
 *
 * Figures of merit follow HPCC conventions: GFLOP/s for FFT
 * (5 n log2 n per transform) and LU ((2/3) n^3 per factorization),
 * GB/s moved for the bandwidth-bound transpose. The transpose is
 * measured twice: tile-walking strided reads from FPGA DRAM, and
 * the ECI line-pull path from host memory.
 */

#include "bench_common.hh"

#include <complex>
#include <cstring>

#include "accel/hpcc/fft.hh"
#include "accel/hpcc/lu.hh"
#include "accel/hpcc/transpose.hh"
#include "base/rng.hh"
#include "mem/address_map.hh"

using namespace enzian;
using namespace enzian::bench;
using namespace enzian::accel::hpcc;

namespace {

constexpr Addr kIn = mem::AddressMap::fpgaDramBase;
constexpr Addr kOut = mem::AddressMap::fpgaDramBase + (64ull << 20);
constexpr Addr kHostIn = 1ull << 20;

accel::Pipeline::Config
pipeConfig(platform::EnzianMachine &m)
{
    accel::Pipeline::Config cfg;
    cfg.mc = &m.fpgaMem();
    cfg.map = &m.map();
    cfg.clock = &m.fpga().clock();
    cfg.remote = &m.fpgaRemote();
    return cfg;
}

/** Makespan of @p jobs identical back-to-back jobs (seconds). */
double
measureJobsSec(platform::EnzianMachine &m, accel::Pipeline &pipe,
               const accel::Pipeline::Job &job, std::uint32_t jobs)
{
    const Tick start = m.now();
    Tick last = 0;
    std::uint32_t completed = 0;
    for (std::uint32_t i = 0; i < jobs; ++i) {
        pipe.process(start, job, [&](Tick t) {
            last = std::max(last, t);
            ++completed;
        });
    }
    m.run();
    if (completed != jobs)
        fatal("hpcc bench completed %u of %u jobs", completed, jobs);
    return units::toSeconds(last - start);
}

double
runFft(BenchReport &rep)
{
    auto m = makeBenchMachine(platform::enzianDefaultConfig());
    FftPipeline::Params p; // n = 1024, 8 lanes
    FftPipeline fft("hpcc.fft", m->fpgaEventq(), pipeConfig(*m), p);

    Rng rng(0xfff7);
    std::vector<std::complex<float>> sig(p.n);
    for (auto &s : sig)
        s = {static_cast<float>(rng.uniform(-1.0, 1.0)),
             static_cast<float>(rng.uniform(-1.0, 1.0))};
    m->fpgaMem().store().write(m->map().offsetInRegion(kIn),
                               sig.data(), sig.size() * 8);

    // Verify before timing.
    bool done = false;
    fft.process(0, fft.makeJob(kIn, kOut), [&](Tick) { done = true; });
    m->run();
    std::vector<std::complex<float>> got(p.n);
    m->fpgaMem().store().read(m->map().offsetInRegion(kOut),
                              got.data(), got.size() * 8);
    if (!done || rmsError(got, dftReference(sig)) > 1e-6)
        fatal("FFT output fails the DFT oracle check");

    const std::uint64_t transforms = 16;
    const std::uint32_t jobs = 8;
    const double secs =
        measureJobsSec(*m, fft, fft.makeJob(kIn, kOut, transforms),
                       jobs);
    const double total =
        static_cast<double>(FftPipeline::flops(p.n)) * transforms *
        jobs;
    const double gflops = total / secs / 1e9;
    const double gbs = 2.0 * 8.0 * p.n * transforms * jobs / secs /
                       1e9;
    std::printf("%-10s %8u %12.2f %12.2f\n", "fft", p.n, gflops, gbs);
    rep.add("fft_gflops", gflops);
    rep.add("fft_gbs", gbs);
    return gflops;
}

double
runLu(BenchReport &rep)
{
    auto m = makeBenchMachine(platform::enzianDefaultConfig());
    LuPipeline::Params p; // n = 256, block 32, 64 MACs
    LuPipeline lu("hpcc.lu", m->fpgaEventq(), pipeConfig(*m), p);

    Rng rng(0x10);
    std::vector<float> mat(static_cast<std::size_t>(p.n) * p.n);
    for (auto &v : mat)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    m->fpgaMem().store().write(m->map().offsetInRegion(kIn),
                               mat.data(), mat.size() * 4);

    bool done = false;
    lu.process(0, lu.makeJob(kIn, kOut), [&](Tick) { done = true; });
    m->run();
    std::vector<float> factors(mat.size());
    m->fpgaMem().store().read(m->map().offsetInRegion(kOut),
                              factors.data(), factors.size() * 4);
    auto want = mat;
    std::vector<std::int32_t> piv;
    luReference(want, piv, p.n);
    if (!done)
        fatal("LU job never completed");
    for (std::size_t i = 0; i < factors.size(); ++i)
        if (std::abs(factors[i] - want[i]) > 1e-4f)
            fatal("LU factors diverge from the reference at %zu", i);

    const std::uint32_t jobs = 4;
    const double secs =
        measureJobsSec(*m, lu, lu.makeJob(kIn, kOut), jobs);
    const double gflops = static_cast<double>(LuPipeline::flops(p.n)) *
                          jobs / secs / 1e9;
    const double gbs =
        static_cast<double>(lu.inputBytes() + lu.outputBytes()) *
        jobs / secs / 1e9;
    std::printf("%-10s %8u %12.2f %12.2f\n", "lu", p.n, gflops, gbs);
    rep.add("lu_gflops", gflops);
    rep.add("lu_gbs", gbs);
    return gflops;
}

void
runTranspose(BenchReport &rep)
{
    auto m = makeBenchMachine(platform::enzianDefaultConfig());
    TransposePipeline::Params p; // 256 x 256, tile 64
    TransposePipeline tr("hpcc.ptrans", m->fpgaEventq(),
                         pipeConfig(*m), p);

    Rng rng(0x44);
    std::vector<float> mat(static_cast<std::size_t>(p.rows) * p.cols);
    for (auto &v : mat)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto &store = m->fpgaMem().store();
    store.write(m->map().offsetInRegion(kIn), mat.data(),
                mat.size() * 4);
    m->cpuMem().store().write(m->map().offsetInRegion(kHostIn),
                              mat.data(), mat.size() * 4);

    bool done = false;
    tr.process(0, tr.makeJob(kIn, kOut), [&](Tick) { done = true; });
    m->run();
    std::vector<float> got(mat.size());
    store.read(m->map().offsetInRegion(kOut), got.data(),
               got.size() * 4);
    const auto want = transposeReference(mat, p.rows, p.cols);
    if (!done ||
        std::memcmp(got.data(), want.data(), want.size() * 4) != 0)
        fatal("transpose output is not bit-exact");

    const std::uint32_t jobs = 8;
    const double local_secs =
        measureJobsSec(*m, tr, tr.makeJob(kIn, kOut), jobs);
    const double local_gbs = static_cast<double>(tr.bytesMoved()) *
                             jobs / local_secs / 1e9;
    auto remote_job = tr.makeJob(kHostIn, kOut);
    remote_job.input_remote = true;
    const double remote_secs =
        measureJobsSec(*m, tr, remote_job, jobs);
    const double remote_gbs = static_cast<double>(tr.bytesMoved()) *
                              jobs / remote_secs / 1e9;
    std::printf("%-10s %4ux%-4u %11s %12.2f   (ECI pull: %.2f GB/s)\n",
                "ptrans", p.rows, p.cols, "-", local_gbs, remote_gbs);
    rep.add("ptrans_gbs", local_gbs);
    rep.add("ptrans_eci_gbs", remote_gbs);
}

} // namespace

int
main()
{
    header("HPCC accelerator suite on the vFPGA shell");
    BenchReport rep("hpcc_suite");
    std::printf("%-10s %8s %12s %12s\n", "kernel", "size", "GFLOP/s",
                "GB/s");
    runFft(rep);
    runLu(rep);
    runTranspose(rep);
    std::printf("\nShape check: FFT sustains the butterfly-array rate "
                "(lanes-bound), LU is MAC-array-bound, and PTRANS "
                "lands near the DRAM bandwidth limit with the ECI "
                "pull path below the local tile walk.\n");
    return 0;
}
