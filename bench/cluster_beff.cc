/**
 * @file
 * Rack-scale effective bandwidth (b_eff-style): an all-pairs RDMA
 * write sweep over message sizes on an N-node Enzian cluster.
 *
 * Every ordered node pair (i, j) streams one message of each size
 * concurrently (12 flows on the default 4-node rack), so the switch,
 * the per-port Ethernet links, and the per-node RDMA engines are all
 * loaded at once; the aggregate effective bandwidth is total bytes
 * over the phase makespan, and b_eff is the mean across sizes —
 * the structure of the HPC Challenge b_eff metric, scoped to one
 * switch hop.
 *
 * The whole sweep runs twice, on a 1-thread and a 4-thread
 * DomainScheduler, and the stats-registry exports are compared BYTE
 * FOR BYTE: the rack must simulate identically at any thread count
 * (epoch lookahead is derived from the topology, never hard-coded).
 * The CI floor guards the aggregate bandwidth and the determinism
 * bit.
 */

#include "bench_common.hh"

#include <array>
#include <iterator>
#include <sstream>

#include "cluster/enzian_cluster.hh"
#include "net/rdma_engine.hh"
#include "obs/registry.hh"
#include "sim/domain_scheduler.hh"

using namespace enzian;
using namespace enzian::bench;
using namespace enzian::cluster;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kSizesKiB[] = {4, 32, 256, 1024};
constexpr std::uint64_t kMaxMsg = 1024 * 1024;
/** Phase spacing: far beyond any phase's makespan, so each size
 *  measures a quiet rack. */
constexpr double kPhaseUs = 5000.0;

struct SweepResult
{
    /** Aggregate effective bandwidth per message size (GiB/s). */
    std::vector<double> aggregateGiB;
    double beff = 0.0;
    std::string registryJson;
    Tick lookahead = 0;
};

SweepResult
runSweep(std::uint32_t threads)
{
    EnzianCluster::Config cfg;
    cfg.nodes = kNodes;
    cfg.threads = threads;
    EnzianCluster rack(cfg);
    SweepResult res;
    res.lookahead = EnzianCluster::deriveLookahead(cfg, rack.topology());

    // Per-node serving target (link 0) and initiator (link 1).
    std::vector<std::unique_ptr<net::RdmaTarget>> targets;
    std::vector<std::unique_ptr<net::DirectDramPath>> paths;
    std::vector<std::unique_ptr<net::RdmaInitiator>> inis;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
        auto &m = rack.node(n);
        paths.push_back(
            std::make_unique<net::DirectDramPath>(m.fpgaMem()));
        net::RdmaTarget::Config tcfg;
        tcfg.port = rack.portOf(n, 0);
        targets.push_back(std::make_unique<net::RdmaTarget>(
            "beff.t" + std::to_string(n), m.fpgaEventq(),
            rack.network(), *paths.back(), tcfg));
        inis.push_back(std::make_unique<net::RdmaInitiator>(
            "beff.i" + std::to_string(n), m.fpgaEventq(),
            rack.network(), rack.portOf(n, 1), tcfg.port));
    }

    // Schedule every phase up front at its absolute start tick;
    // completion ticks land in per-node traces (single writer per
    // timing domain).
    const std::size_t phases = std::size(kSizesKiB);
    std::vector<std::array<std::vector<Tick>, kNodes>> done(phases);
    static std::vector<std::uint8_t> payload(kMaxMsg, 0xb7);
    for (std::size_t s = 0; s < phases; ++s) {
        const std::uint64_t bytes = kSizesKiB[s] * 1024;
        const Tick start = units::us((s + 1) * kPhaseUs);
        for (std::uint32_t i = 0; i < kNodes; ++i) {
            rack.node(i).fpgaEventq().schedule(start, [&rack, &inis,
                                                       &done, s, i,
                                                       bytes]() {
                for (std::uint32_t j = 0; j < kNodes; ++j) {
                    if (j == i)
                        continue;
                    const Addr off =
                        (static_cast<Addr>(i) * kNodes + j) * kMaxMsg;
                    inis[i]->writeTo(rack.portOf(j, 0), off,
                                     payload.data(), bytes,
                                     [&done, s, i](Tick t) {
                                         done[s][i].push_back(t);
                                     });
                }
            });
        }
    }
    rack.run();

    const double pairs = kNodes * (kNodes - 1);
    for (std::size_t s = 0; s < phases; ++s) {
        const Tick start = units::us((s + 1) * kPhaseUs);
        Tick end = 0;
        std::size_t flows = 0;
        for (const auto &trace : done[s]) {
            flows += trace.size();
            for (const Tick t : trace)
                end = std::max(end, t);
        }
        if (flows != pairs)
            fatal("phase %zu completed %zu of %.0f flows", s, flows,
                  pairs);
        const double bytes_total =
            pairs * static_cast<double>(kSizesKiB[s] * 1024);
        res.aggregateGiB.push_back(
            bytes_total / units::toSeconds(end - start) /
            static_cast<double>(units::GiB));
    }
    for (const double g : res.aggregateGiB)
        res.beff += g;
    res.beff /= static_cast<double>(res.aggregateGiB.size());

    std::ostringstream os;
    obs::Registry::global().exportJson(os);
    res.registryJson = os.str();
    return res;
}

} // namespace

int
main()
{
    header("Rack b_eff: all-pairs RDMA sweep, 4-node cluster");
    BenchReport rep("cluster_beff");

    const auto r1 = runSweep(1);
    const auto r4 = runSweep(4);
    const bool identical = r1.registryJson == r4.registryJson &&
                           !r1.registryJson.empty();

    std::printf("nodes: %u, all-pairs flows: %u, epoch lookahead: "
                "%.0f ns (derived)\n\n",
                kNodes, kNodes * (kNodes - 1),
                units::toNanos(r1.lookahead));
    std::printf("%12s %18s\n", "msg_KiB", "aggregate_GiB_s");
    for (std::size_t s = 0; s < std::size(kSizesKiB); ++s) {
        std::printf("%12llu %18.2f\n",
                    static_cast<unsigned long long>(kSizesKiB[s]),
                    r1.aggregateGiB[s]);
        rep.add(format("agg_gibs_%lluk",
                       static_cast<unsigned long long>(kSizesKiB[s])),
                r1.aggregateGiB[s]);
    }
    std::printf("\nb_eff (mean over sizes): %.2f GiB/s\n", r1.beff);
    std::printf("registry byte-identical at 1 vs 4 threads: %s\n",
                identical ? "yes" : "NO");
    rep.add("beff_gibs", r1.beff);
    rep.add("determinism_ok", identical ? 1.0 : 0.0);
    rep.add("lookahead_ns", units::toNanos(r1.lookahead));
    return identical ? 0 : 1;
}
