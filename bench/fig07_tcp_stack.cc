/**
 * @file
 * Figure 7: FPGA TCP stack (Enzian, 1 flow) vs CPU/Linux kernel
 * stack, latency and throughput against transfer size.
 *
 * Two Enzians are connected through their FPGA-side 100 GbE links via
 * a switch; the baseline is two Xeon hosts with 100 G NICs. Latency
 * is half the ping-pong round trip (the artifact's method); the
 * throughput series adds the 4-flow Linux column the paper mentions
 * (4 flows are needed to saturate the link from the CPU).
 */

#include "bench_common.hh"

#include "net/tcp_stack.hh"

using namespace enzian;
using namespace enzian::bench;
using namespace enzian::net;

namespace {

Switch::Config
switchConfig()
{
    Switch::Config cfg;
    cfg.port = platform::params::eth100Config();
    return cfg;
}

struct TcpRig
{
    EventQueue eq;
    Switch sw{"sw", eq, 2, switchConfig()};
    std::unique_ptr<TcpStack> a, b;

    TcpRig(const TcpStack::Config &ca, const TcpStack::Config &cb)
    {
        a = std::make_unique<TcpStack>("a", eq, sw, ca);
        b = std::make_unique<TcpStack>("b", eq, sw, cb);
    }
};

double
pingPongUs(bool fpga, std::uint64_t bytes)
{
    TcpRig rig(fpga ? fpgaTcpConfig(0, 250e6) : hostTcpConfig(0),
               fpga ? fpgaTcpConfig(1, 250e6) : hostTcpConfig(1));
    const auto id = rig.a->connect(*rig.b);
    Tick end = 0;
    rig.b->setReceiveCallback([&](std::uint32_t f, std::uint64_t) {
        if (rig.b->bytesReceived(f) >= bytes)
            rig.b->send(f, bytes, [](Tick) {});
    });
    rig.a->setReceiveCallback([&](std::uint32_t f, std::uint64_t) {
        if (rig.a->bytesReceived(f) >= bytes && end == 0)
            end = rig.eq.now();
    });
    rig.a->send(id, bytes, [](Tick) {});
    rig.eq.run();
    return units::toMicros(end) / 2.0;
}

double
streamGbps(bool fpga, std::uint64_t bytes, std::uint32_t flows)
{
    TcpRig rig(fpga ? fpgaTcpConfig(0, 250e6) : hostTcpConfig(0),
               fpga ? fpgaTcpConfig(1, 250e6) : hostTcpConfig(1));
    // Amplify small transfers so the measurement covers many RTTs.
    const std::uint64_t total =
        std::max<std::uint64_t>(bytes * 64, 8ull << 20);
    Tick last = 0;
    std::uint32_t done = 0;
    for (std::uint32_t i = 0; i < flows; ++i) {
        const auto id = rig.a->connect(*rig.b);
        rig.a->send(id, total / flows, [&](Tick t) {
            last = std::max(last, t);
            ++done;
        });
    }
    rig.eq.run();
    if (done != flows)
        fatal("tcp bench incomplete");
    return units::toGbps(static_cast<double>(total) /
                         units::toSeconds(last));
}

} // namespace

int
main()
{
    header("Figure 7: FPGA TCP (Enzian) vs Linux kernel stack");
    BenchReport rep("fig07_tcp_stack");
    std::printf("%9s %12s %12s %14s %14s %14s\n", "size_KB",
                "Enz_lat_us", "Lnx_lat_us", "Enz1f_Gbps",
                "Lnx1f_Gbps", "Lnx4f_Gbps");
    for (std::uint32_t p = 1; p <= 10; ++p) {
        const std::uint64_t kb = 1ull << p;
        const std::uint64_t bytes = kb * 1000; // paper axis is KB
        const double enz_lat = pingPongUs(true, bytes);
        const double lnx_lat = pingPongUs(false, bytes);
        const double enz_1f = streamGbps(true, bytes, 1);
        const double lnx_1f = streamGbps(false, bytes, 1);
        const double lnx_4f = streamGbps(false, bytes, 4);
        std::printf("%9llu %12.1f %12.1f %14.1f %14.1f %14.1f\n",
                    static_cast<unsigned long long>(kb), enz_lat,
                    lnx_lat, enz_1f, lnx_1f, lnx_4f);
        const std::string sz =
            format("%lluKB", static_cast<unsigned long long>(kb));
        rep.add("enzian_lat_us_" + sz, enz_lat);
        rep.add("linux_lat_us_" + sz, lnx_lat);
        rep.add("enzian_1flow_gbps_" + sz, enz_1f);
        rep.add("linux_1flow_gbps_" + sz, lnx_1f);
        rep.add("linux_4flow_gbps_" + sz, lnx_4f);
    }
    std::printf("\nShape check: the FPGA stack saturates ~100 Gb/s "
                "with one flow (MTU 2 KiB); the Linux stack needs 4 "
                "flows and has several times the latency.\n");
    return 0;
}
