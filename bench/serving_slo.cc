/**
 * @file
 * Serving-workload capacity: SLO knees for the three services.
 *
 * Runs the enzload saturation sweep (open-loop Poisson arrivals,
 * fresh testbed per operating point) against GBDT inference, RDMA
 * reads from FPGA DRAM, and TCP echo between the host and FPGA
 * stacks, and reports per service the knee — the highest offered load
 * whose p99 still meets the SLO — plus the light-load p99 headroom.
 * Emits BENCH_serving_slo.json; the CI floor guards both families of
 * metrics, so a latency regression anywhere on the serving path shows
 * up as a lower knee.
 */

#include "bench_common.hh"

#include "load/testbed.hh"

using namespace enzian;
using namespace enzian::bench;

int
main()
{
    header("Serving SLO knees (open-loop Poisson, p99 <= SLO)");
    BenchReport rep("serving_slo");

    struct Row
    {
        load::ServiceKind service;
        double slo_us;
    };
    // TCP echo pays two software stacks per request, so its SLO is
    // looser than the all-hardware services'.
    const Row rows[] = {
        {load::ServiceKind::Gbdt, 1000.0},
        {load::ServiceKind::Rdma, 500.0},
        {load::ServiceKind::Tcp, 2000.0},
    };

    std::printf("%-8s %12s %12s %12s %10s\n", "service",
                "knee (krps)", "light p99", "SLO (us)", "headroom");
    for (const Row &row : rows) {
        load::SweepConfig cfg;
        cfg.testbed.service = row.service;
        // Only the GBDT testbed is domain-safe (see TestbedConfig).
        if (row.service == load::ServiceKind::Gbdt)
            cfg.testbed.threads = envThreads();
        cfg.duration = units::ms(20.0);
        cfg.window = units::ms(5.0);
        cfg.slo_latency_us = row.slo_us;
        cfg.auto_points = 6;
        const load::SweepResult r = load::runSweep(cfg);
        if (r.knee < 0)
            fatal("serving_slo: no %s operating point met the SLO",
                  load::toString(row.service));

        const double light_p99 = r.points.front().p99_us;
        const double headroom = row.slo_us / light_p99;
        std::printf("%-8s %12.1f %12.1f %12.0f %9.1fx\n",
                    load::toString(row.service), r.knee_rps / 1e3,
                    light_p99, row.slo_us, headroom);

        const std::string svc = load::toString(row.service);
        rep.add(svc + "_knee_krps", r.knee_rps / 1e3);
        rep.add(svc + "_light_p99_headroom", headroom);
    }
    return 0;
}
