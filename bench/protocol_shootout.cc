/**
 * @file
 * Protocol / LLC-policy shootout: the same synchronization-shaped
 * workloads run under every registered coherence table, and the same
 * capacity-contention stream run under every LLC policy.
 *
 * Part 1 drives the full timed machine (CPU remote agent vs FPGA
 * home agent, read-allocate on so a resident home copy exists for
 * update protocols to refresh) through three classic sharing
 * patterns and counts ECI messages per operation with a fabric tap
 * (taps chain, so this coexists with any monitor):
 *
 *  - lock: both sides read-then-write one line (acquire/release
 *    ping-pong) — the invalidation-heavy worst case.
 *  - false-sharing: both sides blindly write one line they never
 *    read — update protocols (dragon) pay a payload per write but
 *    avoid refetch round-trips.
 *  - producer-consumer: one side writes, the other reads — the
 *    pattern write-update protocols are built for.
 *
 * Messages per operation is a deterministic property of the protocol
 * table, not of the host machine, so the floors are tight.
 *
 * Part 2 replays a fixed interleaved access stream (a resident local
 * working set + a remote streaming scan) against the standalone L2
 * model under lru / way-partition / adaptive and reports the local
 * stream's hit rate: partitioning must isolate the local set from
 * the scan.
 *
 * Emits BENCH_protocol_shootout.json; CI guards it against
 * bench/baselines/protocol_shootout_floor.json. EXPERIMENTS.md
 * explains how to regenerate the table.
 */

#include "bench_common.hh"

#include <cstring>
#include <map>

#include "cache/cache.hh"
#include "eci/protocol_table.hh"

using namespace enzian;
using namespace enzian::bench;

namespace {

/** Run the queue until @p flag is set. */
void
runUntilDone(EventQueue &eq, const bool &flag)
{
    for (int i = 0; i < 1000000 && !flag; ++i) {
        if (!eq.runOne())
            break;
    }
    ENZIAN_ASSERT(flag, "operation never completed");
}

struct ShapeResult
{
    double msgsPerOp;
    double usPerOp;
};

enum class Shape { Lock, FalseSharing, ProducerConsumer };

const char *
toString(Shape s)
{
    switch (s) {
      case Shape::Lock:
        return "lock";
      case Shape::FalseSharing:
        return "false_sharing";
      case Shape::ProducerConsumer:
        return "producer_consumer";
    }
    return "?";
}

/**
 * Run @p rounds of one sharing shape; count fabric messages.
 *
 * The contended line is CPU-homed: the CPU home agent fronts the L2
 * (so a resident home copy exists for update protocols to refresh)
 * and the FPGA remote agent caches the line across the fabric — the
 * direction where the protocol tables genuinely diverge. The first
 * few rounds are warmup; only the steady state is measured.
 */
ShapeResult
runShape(const std::string &protocol, Shape shape, int rounds)
{
    platform::EnzianMachine::Config cfg =
        platform::enzianDefaultConfig();
    cfg.cpu_dram_bytes = 64ull << 20;
    cfg.fpga_dram_bytes = 64ull << 20;
    cfg.protocol = protocol;
    cfg.home_read_allocate = true; // keep a resident home copy
    cfg.name = "shootout";
    platform::EnzianMachine m(cfg);
    cache::Cache fpgaCache("shootout.fpga.cache", m.fpgaEventq(),
                           cache::Cache::Config{});
    m.fpgaRemote().attachCache(&fpgaCache);

    std::uint64_t msgs = 0;
    m.fabric().addTap(
        [&](Tick, const eci::EciMsg &) { ++msgs; });

    const Addr line = 0x20000; // CPU-homed
    std::uint8_t buf[cache::lineSize] = {};

    EventQueue &eq = m.eventq();
    std::uint64_t ops = 0;

    auto fpgaRead = [&]() {
        bool done = false;
        m.fpgaRemote().readLine(line, buf, [&](Tick) { done = true; });
        runUntilDone(eq, done);
        ++ops;
    };
    auto fpgaWrite = [&]() {
        bool done = false;
        m.fpgaRemote().writeLine(line, buf,
                                 [&](Tick) { done = true; });
        runUntilDone(eq, done);
        ++ops;
    };
    auto cpuRead = [&]() {
        bool done = false;
        m.cpuHome().localRead(line, buf, [&](Tick) { done = true; });
        runUntilDone(eq, done);
        ++ops;
    };
    auto cpuWrite = [&]() {
        bool done = false;
        m.cpuHome().localWrite(line, buf, [&](Tick) { done = true; });
        runUntilDone(eq, done);
        ++ops;
    };

    Tick t0 = 0;
    for (int r = -4; r < rounds; ++r) {
        if (r == 0) { // warmup done; measure the steady state
            msgs = 0;
            ops = 0;
            t0 = eq.now();
        }
        switch (shape) {
          case Shape::Lock:
            fpgaRead();
            fpgaWrite();
            cpuRead();
            cpuWrite();
            break;
          case Shape::FalseSharing:
            fpgaWrite();
            cpuWrite();
            break;
          case Shape::ProducerConsumer:
            fpgaWrite();
            cpuRead();
            break;
        }
    }
    const double us = units::toMicros(eq.now() - t0);
    return ShapeResult{static_cast<double>(msgs) /
                           static_cast<double>(ops),
                       us / static_cast<double>(ops)};
}

/**
 * Local-stream hit rate for one LLC policy: an 8-line resident set
 * (one way's worth of a 4-way x 8-set cache, so even the adaptive
 * policy's 1-way floor can hold it) interleaved with a remote scan
 * that never reuses a line but misses 4x as often.
 */
double
localHitRate(cache::ReplPolicy policy)
{
    EventQueue eq;
    cache::Cache::Config cfg;
    cfg.size_bytes = 4 * 1024; // 4 ways x 8 sets
    cfg.ways = 4;
    cfg.policy = policy;
    cfg.adapt_epoch = 64;
    cache::Cache c("llc", eq, cfg);

    std::uint8_t zero[cache::lineSize] = {};
    std::uint64_t localRefs = 0, localHits = 0;
    for (int i = 0; i < 4096; ++i) {
        const Addr local = (static_cast<Addr>(i) % 8) * 128;
        ++localRefs;
        if (c.access(local)) {
            ++localHits;
        } else {
            c.fill(local, cache::MoesiState::Shared, zero,
                   cache::ownerLocal);
        }
        // The scan runs 4x hotter than the local stream, so under
        // global LRU the resident set is steadily flushed.
        for (int k = 0; k < 4; ++k) {
            const Addr remote =
                0x100000 +
                static_cast<Addr>(i * 4 + k) * 128; // never reused
            if (!c.access(remote)) {
                c.fill(remote, cache::MoesiState::Shared, zero,
                       cache::ownerRemote);
            }
        }
    }
    return static_cast<double>(localHits) /
           static_cast<double>(localRefs);
}

} // namespace

int
main()
{
    BenchReport report("protocol_shootout");
    header("Protocol shootout: ECI messages per operation");

    std::printf("%-18s", "shape");
    for (const auto *p : eci::proto::allProtocols())
        std::printf(" %10s", p->name());
    std::printf("\n");
    std::map<std::string, double> msgsPerOp;
    for (Shape shape : {Shape::Lock, Shape::FalseSharing,
                        Shape::ProducerConsumer}) {
        std::printf("%-18s", toString(shape));
        for (const auto *p : eci::proto::allProtocols()) {
            const ShapeResult r = runShape(p->name(), shape, 50);
            std::printf(" %10.2f", r.msgsPerOp);
            const std::string key = std::string(toString(shape)) +
                                    "_" + p->name();
            msgsPerOp[key] = r.msgsPerOp;
            report.add(key + "_msgs_per_op", r.msgsPerOp);
        }
        std::printf("  msgs/op\n");
    }
    // Higher-is-better derived metric for the CI floor check: how
    // many times fewer messages the write-update protocol needs on
    // the pattern it is built for.
    const double advantage = msgsPerOp["producer_consumer_moesi"] /
                             msgsPerOp["producer_consumer_dragon"];
    std::printf("\ndragon producer-consumer advantage: %.2fx fewer "
                "messages than moesi\n",
                advantage);
    report.add("producer_consumer_update_advantage", advantage);

    header("LLC policy: local hit rate under a remote scan");
    for (cache::ReplPolicy policy :
         {cache::ReplPolicy::Lru, cache::ReplPolicy::WayPartition,
          cache::ReplPolicy::Adaptive}) {
        const double hr = localHitRate(policy);
        std::printf("%-18s %6.1f%%\n", cache::toString(policy),
                    hr * 100.0);
        std::string name = cache::toString(policy);
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        report.add("llc_local_hitrate_" + name, hr);
    }
    return 0;
}
