/**
 * @file
 * Figure 11 + Table 1: the FPGA as a custom memory controller.
 *
 * The machine-vision pipeline (RGB2Y + 3x3 gaussian blur over
 * 1024x576 RGBA frames preloaded in FPGA DRAM) runs in three
 * configurations: all-software (None), and with the coherent
 * data-reduction pipeline serving 8 bpp or packed 4 bpp luminance
 * views. Before the sweep, the hardware view is verified bit-exact
 * against the software reference through the real ECI protocol.
 * Prints throughput (GPixel/s) and interconnect bandwidth (GiB/s)
 * against active core count, plus the Table 1 PMU rows at 48 threads.
 */

#include "bench_common.hh"

#include "accel/frame.hh"
#include "accel/rgb2y_pipeline.hh"
#include "accel/vision_pipeline.hh"

using namespace enzian;
using namespace enzian::bench;
using accel::Reduction;

namespace {

/** Functional verification through the protocol (small frame). */
void
verifyHardwareView()
{
    auto m = makeBenchMachine(platform::enzianDefaultConfig());
    accel::Frame frame = accel::makeFrame(3, 0, 1024, 2);
    accel::preloadFrame(m->fpgaMem().store(), 0, frame);
    accel::Rgb2yLineSource::Config pcfg;
    pcfg.reduction = Reduction::Y8;
    pcfg.input_base = mem::AddressMap::fpgaDramBase;
    pcfg.view_base = mem::AddressMap::fpgaDramBase + (32ull << 20);
    pcfg.view_size = frame.pixels();
    accel::Rgb2yLineSource src(m->fpgaMem(), m->map(),
                               m->fpga().clock(), pcfg);
    m->fpgaHome().setLineSource(&src);

    std::vector<std::uint8_t> hw(frame.pixels());
    std::uint32_t done = 0;
    for (std::uint64_t l = 0; l < hw.size() / cache::lineSize; ++l) {
        m->cpuRemote().readLine(pcfg.view_base + l * cache::lineSize,
                                hw.data() + l * cache::lineSize,
                                [&](Tick) { ++done; });
    }
    m->run();
    std::vector<std::uint8_t> sw(frame.pixels());
    accel::rgb2yReference(frame.rgba.data(), frame.pixels(),
                          sw.data());
    if (hw != sw)
        fatal("hardware RGB2Y view mismatches software reference");
    std::printf("functional check: hardware Y8 view bit-exact over "
                "%llu ECI refills\n",
                static_cast<unsigned long long>(done));
}

} // namespace

int
main()
{
    header("Figure 11: pipeline throughput vs active cores");
    BenchReport rep("fig11_memory_controller");
    verifyHardwareView();

    auto m = makeBenchMachine(platform::enzianDefaultConfig());
    const double interconnect_bw = m->fabric().effectiveBandwidth();
    const std::uint64_t frame_px = 1024ull * 576;
    const std::uint64_t items = frame_px * 200; // 200 frames

    std::printf("\n%6s %10s %10s %10s %12s %12s %12s\n", "cores",
                "None_GPx", "8bpp_GPx", "4bpp_GPx", "None_GiB",
                "8bpp_GiB", "4bpp_GiB");
    const std::uint32_t core_counts[] = {1, 6, 12, 18, 24, 30, 36, 42,
                                         48};
    for (std::uint32_t cores : core_counts) {
        double gpx[3], gib[3];
        int i = 0;
        for (Reduction r :
             {Reduction::None, Reduction::Y8, Reduction::Y4}) {
            const auto res = m->cluster().runParallel(
                accel::fig11Kernel(r), cores, items, interconnect_bw);
            gpx[i] = res.itemRate / 1e9;
            gib[i] = res.interconnectRate /
                     static_cast<double>(units::GiB);
            ++i;
        }
        std::printf("%6u %10.3f %10.3f %10.3f %12.2f %12.2f %12.2f\n",
                    cores, gpx[0], gpx[1], gpx[2], gib[0], gib[1],
                    gib[2]);
        const char *reductions[] = {"none", "y8", "y4"};
        for (int c = 0; c < 3; ++c) {
            const std::string key =
                format("%s_%uc", reductions[c], cores);
            rep.add(key + "_gpx", gpx[c]);
            rep.add(key + "_interconnect_gib", gib[c]);
        }
    }

    std::printf("\nTable 1: pipeline PMU counts (48 threads)\n");
    std::printf("%-28s %10s %10s %10s\n", "reduction", "None", "8bpp",
                "4bpp");
    double stalls[3], refill_kcycles[3];
    int i = 0;
    for (Reduction r :
         {Reduction::None, Reduction::Y8, Reduction::Y4}) {
        const auto res = m->cluster().runParallel(
            accel::fig11Kernel(r), 48, items, interconnect_bw);
        stalls[i] = res.pmu.memStallsPerCycle();
        refill_kcycles[i] = res.pmu.cyclesPerL1Refill() / 1e3;
        ++i;
    }
    std::printf("%-28s %10.3f %10.3f %10.3f   (paper: 0.025/0.005/"
                "0.005)\n",
                "Memory stalls per cycle", stalls[0], stalls[1],
                stalls[2]);
    std::printf("%-28s %10.2f %10.2f %10.2f   (paper: 1.84/5.16/"
                "10.50)\n",
                "Cycles per L1 refill (/1e3)", refill_kcycles[0],
                refill_kcycles[1], refill_kcycles[2]);
    const char *reductions[] = {"none", "y8", "y4"};
    for (int c = 0; c < 3; ++c) {
        rep.add(format("%s_48c_mem_stalls_per_cycle", reductions[c]),
                stalls[c]);
        rep.add(format("%s_48c_cycles_per_l1_refill_k", reductions[c]),
                refill_kcycles[c]);
    }
    std::printf("\nShape check: linear scaling to 48 cores; hardware "
                "RGB2Y lifts per-core throughput ~39%% (8bpp) / ~33%% "
                "(4bpp) while cutting interconnect bandwidth ~3x/6x.\n");
    return 0;
}
