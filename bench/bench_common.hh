/**
 * @file
 * Shared measurement harness for the figure benches.
 *
 * Latency is measured as the paper does (section 5.1): time to last
 * byte of one transfer issued on a quiet machine. Throughput keeps a
 * small number of transfers in flight (the benchmark engines on real
 * Enzian double-buffer the same way) and divides bytes moved by the
 * makespan, averaging over many runs.
 */

#ifndef ENZIAN_BENCH_COMMON_HH
#define ENZIAN_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "obs/json.hh"
#include "platform/enzian_machine.hh"
#include "platform/platform_factory.hh"

namespace enzian::bench {

/**
 * Thread count requested via ENZIAN_THREADS (0 = unset = the classic
 * single-queue machine). Every bench binary honors it through
 * makeBenchMachine(), and BenchReport stamps it into the metrics JSON
 * so a scaling sweep's artifacts are self-describing.
 */
inline std::uint32_t
envThreads()
{
    const char *s = std::getenv("ENZIAN_THREADS");
    if (!s || !*s)
        return 0;
    const long v = std::strtol(s, nullptr, 10);
    return v > 0 ? static_cast<std::uint32_t>(v) : 0;
}

/**
 * Coherence protocol requested via ENZIAN_PROTOCOL (empty = unset =
 * the config's default). Mirrors ENZIAN_THREADS: makeBenchMachine()
 * applies it and BenchReport stamps it into the metrics JSON, so a
 * protocol shootout's artifacts are self-describing while default
 * runs stay byte-identical to their golden files.
 */
inline std::string
envProtocol()
{
    const char *s = std::getenv("ENZIAN_PROTOCOL");
    return s && *s ? std::string(s) : std::string();
}

/**
 * Machine-readable companion to a bench's text output: named scalar
 * metrics accumulated during the run and written as
 * `BENCH_<name>.json` (into $ENZIAN_BENCH_DIR if set, else the
 * working directory) when the report goes out of scope. This is what
 * the perf trajectory ingests; the text tables stay for humans.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    ~BenchReport() { write(); }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** Record one metric; insertion order is preserved in the file. */
    void add(const std::string &metric, double value)
    {
        metrics_.emplace_back(metric, value);
    }

    /** Destination path for the JSON document. */
    std::string path() const
    {
        const char *dir = std::getenv("ENZIAN_BENCH_DIR");
        std::string p =
            dir && *dir ? std::string(dir) + "/" : std::string();
        return p + "BENCH_" + name_ + ".json";
    }

    /** Write the report now (idempotent; the dtor calls this too). */
    void write()
    {
        if (written_)
            return;
        written_ = true;
        const std::string file = path();
        std::ofstream f(file, std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         file.c_str());
            return;
        }
        f << "{\n  " << obs::json::quote("bench") << ": "
          << obs::json::quote(name_) << ",\n  ";
        // Only stamped when explicitly requested, so default runs
        // stay byte-identical to their golden files.
        if (envThreads() > 0)
            f << obs::json::quote("threads") << ": " << envThreads()
              << ",\n  ";
        if (const std::string proto = envProtocol(); !proto.empty())
            f << obs::json::quote("protocol") << ": "
              << obs::json::quote(proto) << ",\n  ";
        f << obs::json::quote("metrics") << ": {";
        bool first = true;
        for (const auto &[metric, value] : metrics_) {
            f << (first ? "\n" : ",\n") << "    "
              << obs::json::quote(metric) << ": "
              << obs::json::number(value);
            first = false;
        }
        f << "\n  }\n}\n";
        std::fprintf(stderr, "bench: wrote %s (%zu metrics)\n",
                     file.c_str(), metrics_.size());
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> metrics_;
    bool written_ = false;
};

/** Print a section header for a figure. */
inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * A transfer primitive: move @p bytes once, call done(t) at the last
 * byte. The harness measures latency/throughput on top of it.
 */
using TransferFn =
    std::function<void(std::uint64_t bytes, std::function<void(Tick)>)>;

/** Latency of one transfer on a quiet queue (microseconds). */
inline double
measureLatencyUs(EventQueue &eq, std::uint64_t bytes,
                 const TransferFn &fn)
{
    const Tick start = eq.now();
    Tick end = 0;
    bool done = false;
    fn(bytes, [&](Tick t) {
        end = t;
        done = true;
    });
    eq.run();
    if (!done)
        fatal("bench transfer never completed");
    return units::toMicros(end - start);
}

/**
 * Sustained throughput with @p inflight transfers in flight (GiB/s).
 */
inline double
measureThroughputGiB(EventQueue &eq, std::uint64_t bytes,
                     std::uint32_t runs, std::uint32_t inflight,
                     const TransferFn &fn)
{
    const Tick start = eq.now();
    Tick last = 0;
    std::uint32_t issued = 0, completed = 0;
    std::function<void()> issue = [&]() {
        if (issued >= runs)
            return;
        ++issued;
        fn(bytes, [&](Tick t) {
            last = std::max(last, t);
            ++completed;
            issue();
        });
    };
    for (std::uint32_t i = 0; i < inflight && i < runs; ++i)
        issue();
    eq.run();
    if (completed != runs)
        fatal("bench completed %u of %u transfers", completed, runs);
    const double secs = units::toSeconds(last - start);
    return static_cast<double>(bytes) * runs / secs /
           static_cast<double>(units::GiB);
}

/**
 * Latency of one transfer on a quiet machine (microseconds); drives
 * the domain scheduler when the machine is parallel.
 */
inline double
measureLatencyUs(platform::EnzianMachine &m, std::uint64_t bytes,
                 const TransferFn &fn)
{
    const Tick start = m.now();
    Tick end = 0;
    bool done = false;
    fn(bytes, [&](Tick t) {
        end = t;
        done = true;
    });
    m.run();
    if (!done)
        fatal("bench transfer never completed");
    return units::toMicros(end - start);
}

/** Machine-driving variant of measureThroughputGiB (GiB/s). */
inline double
measureThroughputGiB(platform::EnzianMachine &m, std::uint64_t bytes,
                     std::uint32_t runs, std::uint32_t inflight,
                     const TransferFn &fn)
{
    const Tick start = m.now();
    Tick last = 0;
    std::uint32_t issued = 0, completed = 0;
    std::function<void()> issue = [&]() {
        if (issued >= runs)
            return;
        ++issued;
        fn(bytes, [&](Tick t) {
            last = std::max(last, t);
            ++completed;
            issue();
        });
    };
    for (std::uint32_t i = 0; i < inflight && i < runs; ++i)
        issue();
    m.run();
    if (completed != runs)
        fatal("bench completed %u of %u transfers", completed, runs);
    const double secs = units::toSeconds(last - start);
    return static_cast<double>(bytes) * runs / secs /
           static_cast<double>(units::GiB);
}

/**
 * Fresh small-memory Enzian for a measurement. ENZIAN_THREADS turns
 * the machine parallel unless the caller already chose a mode.
 */
inline std::unique_ptr<platform::EnzianMachine>
makeBenchMachine(platform::EnzianMachine::Config cfg)
{
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    if (cfg.threads == 0 && !cfg.shared_scheduler &&
        !cfg.shared_eventq)
        cfg.threads = envThreads();
    if (const std::string proto = envProtocol();
        !proto.empty() && cfg.protocol == "moesi")
        cfg.protocol = proto;
    return std::make_unique<platform::EnzianMachine>(cfg);
}

/**
 * ECI line-transfer primitive: the FPGA reads (RLDI) or writes (RSTT)
 * CPU host memory with cache-line transactions, as the Figure 6
 * microbenchmark does.
 */
inline TransferFn
eciTransfer(platform::EnzianMachine &m, bool write)
{
    // Consecutive transfers walk disjoint buffers (as a benchmark
    // engine's ring would), so in-flight transfers never contend on
    // the same line at the home agent.
    auto next_base = std::make_shared<Addr>(0);
    return [&m, write, next_base](std::uint64_t bytes,
                                  std::function<void(Tick)> done) {
        const std::uint64_t lines = (bytes + cache::lineSize - 1) /
                                    cache::lineSize;
        const Addr base = *next_base;
        *next_base = (base + lines * cache::lineSize) % (192ull << 20);
        auto remaining = std::make_shared<std::uint64_t>(lines);
        auto last = std::make_shared<Tick>(0);
        auto cb = [remaining, last,
                   done = std::move(done)](Tick t) {
            *last = std::max(*last, t);
            if (--*remaining == 0)
                done(*last);
        };
        static std::vector<std::uint8_t> payload(cache::lineSize, 0xa5);
        for (std::uint64_t i = 0; i < lines; ++i) {
            const Addr line = base + i * cache::lineSize;
            if (write)
                m.fpgaRemote().writeLineUncached(line, payload.data(),
                                                 cb);
            else
                m.fpgaRemote().readLineUncached(line, nullptr, cb);
        }
    };
}

/** PCIe DMA transfer primitive on an accelerator system. */
inline TransferFn
dmaTransfer(platform::PcieAccelSystem &sys, bool to_host)
{
    return [&sys, to_host](std::uint64_t bytes,
                           std::function<void(Tick)> done) {
        if (to_host)
            sys.dma->deviceToHost(0, 0x1000000, bytes,
                                  std::move(done));
        else
            sys.dma->hostToDevice(0x1000000, 0, bytes,
                                  std::move(done));
    };
}

} // namespace enzian::bench

#endif // ENZIAN_BENCH_COMMON_HH
