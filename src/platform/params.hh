/**
 * @file
 * Single source of truth for every paper-derived constant.
 *
 * Each value cites where it comes from: the paper section, the part
 * datasheet, or a calibration derivation recorded in DESIGN.md /
 * EXPERIMENTS.md. Benches and the machine composition use these
 * defaults so an experiment's parameters can be audited in one place.
 */

#ifndef ENZIAN_PLATFORM_PARAMS_HH
#define ENZIAN_PLATFORM_PARAMS_HH

#include "base/units.hh"
#include "eci/eci_link.hh"
#include "mem/dram_channel.hh"
#include "net/ethernet.hh"
#include "pcie/pcie_link.hh"

namespace enzian::platform {

namespace params {

// --- CPU node (Marvell Cavium ThunderX-1, paper section 4) ---------
constexpr std::uint32_t cpuCores = 48;
constexpr double cpuClockHz = 2.0e9;
/** ThunderX-1 shared L2 (16 MiB). */
constexpr std::uint64_t cpuL2Bytes = 16ull * 1024 * 1024;
constexpr std::uint32_t cpuDramChannels = 4;
/** CPU DDR4-2133 per Figure 4. */
constexpr double cpuDramMTs = 2133.0;
/** CPU node DRAM capacity: 128 GiB (Figure 4). */
constexpr std::uint64_t cpuDramBytes = 128ull << 30;

// --- FPGA node (Xilinx XCVU9P, paper section 4) ---------------------
constexpr std::uint32_t fpgaDramChannels = 4;
/** FPGA DDR4-2400 per Figure 4. */
constexpr double fpgaDramMTs = 2400.0;
/** FPGA node DRAM: 512 GiB build (Figure 4; up to 1 TiB). */
constexpr std::uint64_t fpgaDramBytes = 512ull << 30;
/** Fabric clock range (section 4). */
constexpr double fpgaClockMinHz = 200e6;
constexpr double fpgaClockMaxHz = 300e6;

// --- ECI (section 4.1, 5.1) -----------------------------------------
/** 24 lanes total, 2 links x 12 lanes, 10 Gb/s each. */
constexpr std::uint32_t eciLinks = 2;
constexpr std::uint32_t eciLanesPerLink = 12;
constexpr double eciLaneGbps = 10.0;
/**
 * Framing efficiency: 64b/66b line coding (0.97) plus flit/credit
 * framing. Together with the 32-byte per-message header this leaves
 * one link sustaining ~10-11 GiB/s of payload, matching the Figure 6
 * large-transfer write throughput.
 */
constexpr double eciEfficiency = 0.92;
/** One-way SerDes + wire latency (ns). */
constexpr double eciWireLatencyNs = 80.0;
/** CPU-side protocol engine latency (ns). */
constexpr double eciCpuProcNs = 60.0;
/**
 * FPGA-side protocol engine latency (ns): several pipeline stages at
 * the 300 MHz fabric clock. The paper attributes ECI's latency gap
 * versus the 150 ns CPU-CPU baseline to exactly this (section 5.1).
 */
constexpr double eciFpgaProcNs = 150.0;
/** Requester MSHRs (outstanding line transactions). */
constexpr std::uint32_t eciMaxOutstanding = 128;

/** 2-socket ThunderX-1 reference: 19 GiB/s, 150 ns (section 5.1). */
constexpr double twoSocketBandwidthGiB = 19.0;
constexpr double twoSocketLatencyNs = 150.0;

// --- PCIe baselines (sections 5.1, 5.3) ------------------------------
/** Alveo u250 host link: PCIe Gen3 x16 (16 GiB/s theoretical). */
constexpr std::uint32_t alveoPcieLanes = 16;
constexpr double pcieGen3GTs = 8.0;

// --- Networking (section 5.2) ----------------------------------------
constexpr double fpgaEthGbps = 100.0;
constexpr double cpuEthGbps = 40.0;
/** Paper: FPGA TCP saturates 100G with an MTU as low as 2 KiB. */
constexpr std::uint32_t tcpMtu = 2048;

// --- GBDT (section 5.3, Figure 9) -------------------------------------
/**
 * Pipeline retirement interval. Derived: Enzian reaches 48 Mtuples/s
 * with one engine at the 300 MHz top-speed-grade clock
 * => 300e6 / 48e6 = 6.25 cycles/tuple; the same interval with each
 * platform's achievable clock reproduces HARPv2 (206 MHz -> 33),
 * F1 (150 MHz -> 24) and VCU118 (256 MHz -> 41).
 */
constexpr double gbdtCyclesPerTuple = 6.25;
constexpr std::uint32_t gbdtFeatures = 8;
constexpr std::uint32_t gbdtTrees = 32;
constexpr std::uint32_t gbdtDepth = 5;

// --- Boot / power (sections 4.2-4.4, 5.5) -----------------------------
/** Regulator query time dominated by firmware path (~5 ms, §4.3). */
constexpr double pmbusQueryMs = 5.0;
/** Telemetry sampling period in Figure 12 (20 ms). */
constexpr double telemetryPeriodMs = 20.0;

/** Default ECI link configuration. */
eci::EciLink::Config eciLinkConfig();

/** ECI link configuration for a 2-socket CPU-CPU machine. */
eci::EciLink::Config twoSocketLinkConfig();

/** CPU-side DDR4-2133 channel configuration. */
mem::DramChannel::Config cpuDramConfig();

/** FPGA-side DDR4-2400 channel configuration. */
mem::DramChannel::Config fpgaDramConfig();

/** Alveo-style PCIe Gen3 x16 link configuration. */
pcie::PcieLink::Config alveoPcieConfig();

/** 100 GbE link configuration used by the Fig 7/8 experiments. */
net::EthernetLink::Config eth100Config();

} // namespace params
} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_PARAMS_HH
