/**
 * @file
 * EnzianMachine composition.
 */

#include "platform/enzian_machine.hh"

#include "base/logging.hh"
#include "fpga/bitstream.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::platform {

EnzianMachine::Config::Config()
    : link(params::eciLinkConfig()), remote_agent()
{
    remote_agent.max_outstanding = params::eciMaxOutstanding;
}

EnzianMachine::EnzianMachine(const Config &cfg) : cfg_(cfg)
{
    if ((cfg_.split.bmc || cfg_.split.net || cfg_.split.mem) &&
        cfg_.threads == 0 && !cfg_.shared_scheduler) {
        fatal("machine '%s': domain splits require parallel mode",
              cfg_.name.c_str());
    }
    if (cfg_.threads > 0 || cfg_.shared_scheduler) {
        if (cfg_.shared_eventq) {
            fatal("machine '%s': shared_eventq and parallel domains "
                  "are mutually exclusive",
                  cfg_.name.c_str());
        }
        // The epoch length is the platform's own latency floor:
        // nothing can cross the ECI faster than engine + wire +
        // engine, so an epoch that long can never miss a message.
        const Tick lookahead = eci::EciLink::minCrossLatency(cfg_.link);
        if (cfg_.shared_scheduler) {
            schedPtr_ = cfg_.shared_scheduler;
            if (schedPtr_->lookahead() > lookahead) {
                fatal("machine '%s': shared scheduler lookahead %llu "
                      "exceeds this machine's link floor %llu",
                      cfg_.name.c_str(),
                      static_cast<unsigned long long>(
                          schedPtr_->lookahead()),
                      static_cast<unsigned long long>(lookahead));
            }
        } else {
            sim::DomainScheduler::Options opts;
            opts.adaptive = cfg_.adaptive_epochs;
            opts.max_grow = cfg_.adaptive_max_grow;
            sched_ = std::make_unique<sim::DomainScheduler>(
                cfg_.name + ".sched", lookahead, cfg_.threads, opts);
            schedPtr_ = sched_.get();
        }
        cpuDomain_ = &schedPtr_->addDomain(cfg_.name + ".cpu");
        fpgaDomain_ = &schedPtr_->addDomain(cfg_.name + ".fpga");
        if (cfg_.split.bmc)
            bmcDomain_ = &schedPtr_->addDomain(cfg_.name + ".bmc");
        if (cfg_.split.net)
            netDomain_ = &schedPtr_->addDomain(cfg_.name + ".net");
        if (cfg_.split.mem)
            memDomain_ = &schedPtr_->addDomain(cfg_.name + ".mem");
        eqPtr_ = &cpuDomain_->queue();
        fpgaEqPtr_ = &fpgaDomain_->queue();
    } else if (cfg_.shared_eventq) {
        eqPtr_ = cfg_.shared_eventq;
        fpgaEqPtr_ = eqPtr_;
    } else {
        eq_ = std::make_unique<EventQueue>();
        eqPtr_ = eq_.get();
        fpgaEqPtr_ = eqPtr_;
    }
    map_ = std::make_unique<mem::AddressMap>(cfg_.cpu_dram_bytes,
                                             cfg_.fpga_dram_bytes);

    // With split.mem both DRAM systems (and their refresh machinery)
    // live in the memory domain; the home agents reach them through
    // cross-domain line sources installed below.
    EventQueue &cpuMemQ = memDomain_ ? memDomain_->queue() : *eqPtr_;
    EventQueue &fpgaMemQ =
        memDomain_ ? memDomain_->queue() : *fpgaEqPtr_;
    cpuMem_ = std::make_unique<mem::MemoryController>(
        cfg_.name + ".cpu.mem", cpuMemQ, cfg_.cpu_dram_bytes,
        params::cpuDramChannels, params::cpuDramConfig());
    fpgaMem_ = std::make_unique<mem::MemoryController>(
        cfg_.name + ".fpga.mem", fpgaMemQ, cfg_.fpga_dram_bytes,
        params::fpgaDramChannels, params::fpgaDramConfig());

    cache::Cache::Config l2cfg;
    l2cfg.size_bytes = params::cpuL2Bytes;
    l2cfg.ways = 16;
    l2cfg.policy = cfg_.l2_policy;
    l2cfg.partitions = 2; // local (home) vs remote-agent fills
    l2cfg.adapt_epoch = cfg_.l2_adapt_epoch;
    l2_ = std::make_unique<cache::Cache>(cfg_.name + ".cpu.l2", *eqPtr_, l2cfg);

    fabric_ = std::make_unique<eci::EciFabric>(
        cfg_.name + ".eci", *eqPtr_, cfg_.link, cfg_.links, cfg_.policy);
    if (schedPtr_)
        fabric_->bindDomains(*schedPtr_, *cpuDomain_, *fpgaDomain_);

    cpuIoSpace_ = std::make_unique<eci::IoSpace>();
    fpgaIoSpace_ = std::make_unique<eci::IoSpace>();

    cpuHome_ = std::make_unique<eci::HomeAgent>(
        cfg_.name + ".cpu.home", *eqPtr_, mem::NodeId::Cpu, *map_, *cpuMem_,
        *fabric_);
    fpgaHome_ = std::make_unique<eci::HomeAgent>(
        cfg_.name + ".fpga.home", *fpgaEqPtr_, mem::NodeId::Fpga, *map_,
        *fpgaMem_, *fabric_);
    cpuRemote_ = std::make_unique<eci::RemoteAgent>(
        cfg_.name + ".cpu.remote", *eqPtr_, mem::NodeId::Cpu, *map_, *fabric_,
        cfg_.remote_agent);
    fpgaRemote_ = std::make_unique<eci::RemoteAgent>(
        cfg_.name + ".fpga.remote", *fpgaEqPtr_, mem::NodeId::Fpga, *map_,
        *fabric_, cfg_.remote_agent);

    const eci::proto::ProtocolTable *table =
        eci::proto::protocolByName(cfg_.protocol);
    if (!table) {
        std::string known;
        for (const auto *p : eci::proto::allProtocols())
            known += std::string(known.empty() ? "" : ", ") + p->name();
        fatal("machine '%s': unknown protocol '%s' (registered: %s)",
              cfg_.name.c_str(), cfg_.protocol.c_str(), known.c_str());
    }
    cpuHome_->setProtocol(table);
    fpgaHome_->setProtocol(table);
    cpuRemote_->setProtocol(table);
    fpgaRemote_->setProtocol(table);

    if (memDomain_) {
        const Tick hop = units::ns(cfg_.mem_hop_ns);
        cpuDramSource_ = std::make_unique<eci::DomainDramSource>(
            *cpuMem_, *map_, *schedPtr_, *cpuDomain_, *memDomain_,
            hop);
        fpgaDramSource_ = std::make_unique<eci::DomainDramSource>(
            *fpgaMem_, *map_, *schedPtr_, *fpgaDomain_, *memDomain_,
            hop);
        cpuHome_->setLineSource(cpuDramSource_.get());
        fpgaHome_->setLineSource(fpgaDramSource_.get());
    }

    // The CPU's L2 caches its own node's lines (snooped by the home
    // agent) and, in cached mode, remote FPGA-homed lines too.
    cpuHome_->attachLocalCache(l2_.get());
    cpuHome_->setReadAllocate(cfg_.home_read_allocate);
    if (cfg_.cpu_caches_remote)
        cpuRemote_->attachCache(l2_.get());
    cpuHome_->attachIoSpace(cpuIoSpace_.get());
    fpgaHome_->attachIoSpace(fpgaIoSpace_.get());

    fabric_->setReceiver(mem::NodeId::Cpu,
                         [this](const eci::EciMsg &msg) {
                             eci::dispatch(*cpuHome_, *cpuRemote_, msg);
                         });
    fabric_->setReceiver(mem::NodeId::Fpga,
                         [this](const eci::EciMsg &msg) {
                             eci::dispatch(*fpgaHome_, *fpgaRemote_,
                                           msg);
                         });

    fpga::Fabric::Config fab_cfg;
    fpga_ = std::make_unique<fpga::Fabric>(cfg_.name + ".fpga.fabric",
                                           *fpgaEqPtr_, fab_cfg);
    fpga_->loadBitstream(fpga::findBitstream(cfg_.bitstream));

    fpga::Shell::Config shell_cfg;
    shell_ = std::make_unique<fpga::Shell>(cfg_.name + ".fpga.shell",
                                           *fpgaEqPtr_, *fpga_, shell_cfg);

    cluster_ = std::make_unique<cpu::CoreCluster>(
        cfg_.name + ".cpu.cluster", *eqPtr_, cfg_.cores, params::cpuClockHz);

    bmc_ = std::make_unique<bmc::Bmc>(
        cfg_.name + ".bmc",
        bmcDomain_ ? bmcDomain_->queue() : *eqPtr_);
}

EnzianMachine::~EnzianMachine() = default;

std::uint64_t
EnzianMachine::run()
{
    return schedPtr_ ? schedPtr_->run() : eqPtr_->run();
}

std::uint64_t
EnzianMachine::runUntil(Tick limit)
{
    return schedPtr_ ? schedPtr_->runUntil(limit)
                     : eqPtr_->runUntil(limit);
}

void
EnzianMachine::dumpStats(std::ostream &os)
{
    os << "---------- " << cfg_.name << " statistics @ "
       << units::toMicros(now()) << " us ----------\n";
    l2_->stats().dump(os);
    for (std::uint32_t i = 0; i < fabric_->linkCount(); ++i)
        fabric_->link(i).stats().dump(os);
    cpuHome_->stats().dump(os);
    fpgaHome_->stats().dump(os);
    cpuRemote_->stats().dump(os);
    fpgaRemote_->stats().dump(os);
    for (std::uint32_t ch = 0; ch < cpuMem_->dram().channelCount();
         ++ch)
        cpuMem_->dram().channel(ch).stats().dump(os);
    for (std::uint32_t ch = 0; ch < fpgaMem_->dram().channelCount();
         ++ch)
        fpgaMem_->dram().channel(ch).stats().dump(os);
    shell_->stats().dump(os);
    bmc_->bus().stats().dump(os);
}

Tick
EnzianMachine::loadBitstream(const std::string &name)
{
    return fpga_->loadBitstream(fpga::findBitstream(name));
}

} // namespace enzian::platform
