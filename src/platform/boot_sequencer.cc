/**
 * @file
 * Boot sequencer implementation.
 */

#include "platform/boot_sequencer.hh"

#include "base/logging.hh"
#include "base/rng.hh"
#include "fpga/bitstream.hh"

namespace enzian::platform {

BootSequencer::BootSequencer(EnzianMachine &machine) : machine_(machine)
{
}

void
BootSequencer::mark(const std::string &name, Tick start, Tick end)
{
    phases_.push_back(BootPhase{name, start, end});
}

bool
BootSequencer::dataBusTest(mem::BackingStore &store, Addr base)
{
    for (std::uint32_t bit = 0; bit < 64; ++bit) {
        const std::uint64_t pattern = 1ull << bit;
        store.store<std::uint64_t>(base, pattern);
        if (store.load<std::uint64_t>(base) != pattern)
            return false;
    }
    return true;
}

bool
BootSequencer::addressBusTest(mem::BackingStore &store, Addr base,
                              std::uint64_t size)
{
    // Write a distinct stamp at each power-of-two offset, then verify
    // none aliased (a stuck/shorted address line would collide them).
    std::vector<Addr> offsets{0};
    for (std::uint64_t off = 8; off < size; off <<= 1)
        offsets.push_back(off);
    for (std::size_t i = 0; i < offsets.size(); ++i)
        store.store<std::uint64_t>(base + offsets[i],
                                   0xA5A5000000000000ull | i);
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        if (store.load<std::uint64_t>(base + offsets[i]) !=
            (0xA5A5000000000000ull | i))
            return false;
    }
    return true;
}

bool
BootSequencer::marchingRowsTest(mem::BackingStore &store, Addr base,
                                std::uint64_t size)
{
    // March C- (word granularity): up(w0); up(r0,w1); down(r1,w0);
    // down(r0).
    const std::uint64_t words = size / 8;
    for (std::uint64_t i = 0; i < words; ++i)
        store.store<std::uint64_t>(base + i * 8, 0);
    for (std::uint64_t i = 0; i < words; ++i) {
        if (store.load<std::uint64_t>(base + i * 8) != 0)
            return false;
        store.store<std::uint64_t>(base + i * 8, ~0ull);
    }
    for (std::uint64_t i = words; i-- > 0;) {
        if (store.load<std::uint64_t>(base + i * 8) != ~0ull)
            return false;
        store.store<std::uint64_t>(base + i * 8, 0);
    }
    for (std::uint64_t i = words; i-- > 0;) {
        if (store.load<std::uint64_t>(base + i * 8) != 0)
            return false;
    }
    return true;
}

bool
BootSequencer::randomDataTest(mem::BackingStore &store, Addr base,
                              std::uint64_t size, std::uint64_t seed)
{
    Rng w(seed);
    const std::uint64_t words = size / 8;
    for (std::uint64_t i = 0; i < words; ++i)
        store.store<std::uint64_t>(base + i * 8, w.next());
    Rng r(seed);
    for (std::uint64_t i = 0; i < words; ++i) {
        if (store.load<std::uint64_t>(base + i * 8) != r.next())
            return false;
    }
    return true;
}

void
BootSequencer::runFullSequence()
{
    EventQueue &eq = machine_.eventq();
    bmc::Bmc &bmc = machine_.bmc();
    bmc::PowerModel &pm = bmc.power();
    auto &fabric = machine_.fpga();
    mem::BackingStore &dram = machine_.cpuMem().store();

    // Telemetry watch list: the Figure 12 traces.
    bmc.telemetry().watch("CPU", 0x20);   // VDD_CORE
    bmc.telemetry().watch("FPGA", 0x30);  // VCCINT
    bmc.telemetry().watch("DRAM0", 0x25); // VDD_DDR_C01
    bmc.telemetry().watch("DRAM1", 0x28); // VDD_DDR_C23

    // Phase timeline (seconds), shaped after Figure 12.
    const double t_psu = 0.5;
    const double t_fpga_on = 4.0;
    const double t_fpga_prog = 6.0;     // 8 s programming
    const double t_cpu_on = 18.0;
    const double t_bdk_check = 24.0;    // BDK DRAM check
    const double t_data_bus = 38.0;
    const double t_addr_bus = 50.0;
    const double t_march = 62.0;        // marching rows
    const double t_random = 106.0;      // random data
    const double t_idle1 = 160.0;
    const double t_cpu_off = 170.0;
    const double t_burn = 178.0;        // 24 steps x 2.5 s
    const double t_burn_end = 238.0;
    const double t_fpga_off = 246.0;
    const double t_end = 255.0;

    auto at = [&](double secs, EventQueue::Callback cb,
                  const char *what) {
        eq.schedule(units::sec(secs), std::move(cb), what);
    };

    at(t_psu, [&]() { bmc.commonPowerUp(); }, "psu-on");
    bmc.telemetry().start(units::ms(params::telemetryPeriodMs));
    mark("idle", 0, units::sec(t_fpga_on));

    at(t_fpga_on, [&]() {
        bmc.fpgaPowerUp();
        pm.setFpgaOn(true);
    }, "fpga-on");
    mark("FPGA on", units::sec(t_fpga_on), units::sec(t_fpga_prog));

    at(t_fpga_prog, [&]() {
        fabric.loadBitstream(fpga::findBitstream("power-burn"));
    }, "fpga-prog");
    at(t_fpga_prog + 8.0, [&]() { pm.setFpgaConfigured(true); },
       "fpga-configured");
    mark("FPGA prog", units::sec(t_fpga_prog),
         units::sec(t_fpga_prog + 8.0));

    at(t_cpu_on, [&]() {
        bmc.cpuPowerUp();
        pm.setCpuOn(true);
        pm.setCpuSpike(true);
    }, "cpu-on");
    at(t_cpu_on + 2.0, [&]() { pm.setCpuSpike(false); }, "spike-end");
    mark("CPU on", units::sec(t_cpu_on), units::sec(t_bdk_check));

    at(t_bdk_check, [&]() {
        pm.setActiveCores(4);
        pm.setDramActivity(0, 0.35);
        pm.setDramActivity(1, 0.35);
        memtests_.dram_check = dataBusTest(dram, 0x1000);
    }, "bdk-dram-check");
    mark("BDK DRAM check", units::sec(t_bdk_check),
         units::sec(t_data_bus));

    at(t_data_bus, [&]() {
        pm.setActiveCores(8);
        pm.setDramActivity(0, 0.5);
        pm.setDramActivity(1, 0.5);
        memtests_.data_bus = dataBusTest(dram, 0x2000);
    }, "data-bus-test");
    mark("Data bus test", units::sec(t_data_bus),
         units::sec(t_addr_bus));

    at(t_addr_bus, [&]() {
        memtests_.address_bus =
            addressBusTest(dram, 0, 1ull << 30);
    }, "addr-bus-test");
    mark("Address bus test", units::sec(t_addr_bus),
         units::sec(t_march));

    at(t_march, [&]() {
        pm.setActiveCores(48);
        pm.setDramActivity(0, 0.9);
        pm.setDramActivity(1, 0.9);
        memtests_.marching_rows =
            marchingRowsTest(dram, 0x100000, 4ull << 20);
    }, "memtest-marching");
    mark("memtest: marching rows", units::sec(t_march),
         units::sec(t_random));

    at(t_random, [&]() {
        pm.setDramActivity(0, 0.8);
        pm.setDramActivity(1, 0.8);
        memtests_.random_data =
            randomDataTest(dram, 0x500000, 4ull << 20, 0x1234);
    }, "memtest-random");
    mark("memtest: random data", units::sec(t_random),
         units::sec(t_idle1));

    at(t_idle1, [&]() {
        pm.setActiveCores(0);
        pm.setDramActivity(0, 0.05);
        pm.setDramActivity(1, 0.05);
    }, "idle");
    mark("idle", units::sec(t_idle1), units::sec(t_cpu_off));

    at(t_cpu_off, [&]() {
        bmc.cpuPowerDown();
        pm.setCpuOn(false);
    }, "cpu-off");
    mark("CPU off", units::sec(t_cpu_off), units::sec(t_burn));

    // FPGA power burn: switch one more 1/24 region block on every
    // step ("switching blocks of flip-flops on every clock cycle").
    const double step = (t_burn_end - t_burn) / 24.0;
    for (std::uint32_t i = 0; i < 24; ++i) {
        at(t_burn + i * step, [&, i]() {
            fabric.setRegionActivity(i, 1.0);
            pm.setFpgaActivity(fabric.meanActivity());
        }, "burn-step");
    }
    mark("FPGA power burn", units::sec(t_burn),
         units::sec(t_burn_end));

    at(t_burn_end, [&]() {
        fabric.setAllActivity(0.0);
        pm.setFpgaActivity(0.0);
    }, "burn-end");
    mark("FPGA idle", units::sec(t_burn_end), units::sec(t_fpga_off));

    at(t_fpga_off, [&]() {
        bmc.fpgaPowerDown();
        pm.setFpgaOn(false);
        pm.setFpgaConfigured(false);
    }, "fpga-off");
    mark("FPGA off / idle", units::sec(t_fpga_off),
         units::sec(t_end));

    at(t_end, [&]() { bmc.telemetry().stop(); }, "telemetry-stop");

    eq.runUntil(units::sec(t_end) + units::ms(50));
}

} // namespace enzian::platform
