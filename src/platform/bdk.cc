/**
 * @file
 * BDK ECI bring-up implementation.
 */

#include "platform/bdk.hh"

#include "base/logging.hh"

namespace enzian::platform {

const char *
toString(LaneState s)
{
    switch (s) {
      case LaneState::Down:
        return "down";
      case LaneState::Detecting:
        return "detecting";
      case LaneState::Aligning:
        return "aligning";
      case LaneState::Training:
        return "training";
      case LaneState::Up:
        return "up";
      case LaneState::Failed:
        return "failed";
    }
    return "?";
}

BdkEciBringup::BdkEciBringup(std::string name, EventQueue &eq,
                             EnzianMachine &machine, const Config &cfg)
    : SimObject(std::move(name), eq), machine_(machine), cfg_(cfg),
      rng_(cfg.seed)
{
    if (cfg_.lanes_per_link == 0 || cfg_.lanes_per_link > 12)
        fatal("BDK: %u lanes per link out of range",
              cfg_.lanes_per_link);
    lanes_.assign(machine_.fabric().linkCount(),
                  std::vector<LaneState>(cfg_.lanes_per_link,
                                         LaneState::Down));
    stats().addCounter("retrains", &retrains_);
}

void
BdkEciBringup::start(std::function<void(Tick)> done)
{
    // "the initial image must exist on the FPGA before the CPU starts
    // to boot, since CPU firmware attempts to detect the other NUMA
    // node, train the links, etc. at startup" (section 4.5).
    if (!machine_.fpga().eciReady())
        fatal("BDK: FPGA image '%s' has no ECI layers; link training "
              "cannot start",
              machine_.fpga().loaded()
                  ? machine_.fpga().loaded()->name.c_str()
                  : "(none)");
    done_ = std::move(done);
    for (std::uint32_t l = 0; l < lanes_.size(); ++l) {
        for (std::uint32_t ln = 0; ln < cfg_.lanes_per_link; ++ln) {
            ++pending_;
            trainLane(l, ln, 0);
        }
    }
}

void
BdkEciBringup::trainLane(std::uint32_t link, std::uint32_t lane,
                         std::uint32_t attempt)
{
    lanes_[link][lane] = LaneState::Training;
    eventq().scheduleDelta(
        units::us(cfg_.lane_train_us),
        [this, link, lane, attempt]() {
            if (rng_.chance(cfg_.retrain_chance) &&
                attempt < cfg_.max_retrains) {
                retrains_.inc();
                trainLane(link, lane, attempt + 1);
                return;
            }
            lanes_[link][lane] = attempt >= cfg_.max_retrains
                                     ? LaneState::Failed
                                     : LaneState::Up;
            --pending_;
            maybeFinish();
        },
        "bdk-lane-train");
}

void
BdkEciBringup::maybeFinish()
{
    if (pending_ != 0 || complete_)
        return;
    complete_ = true;
    // Reconfigure the fabric to the trained lane counts.
    for (std::uint32_t l = 0; l < lanes_.size(); ++l) {
        const std::uint32_t up = lanesUp(l);
        if (up == 0)
            fatal("BDK: link %u trained no lanes", l);
        machine_.fabric().link(l).setLanes(up);
        inform("BDK: link %u up with %u/%u lanes", l, up,
               cfg_.lanes_per_link);
    }
    if (done_)
        done_(now());
}

std::uint32_t
BdkEciBringup::lanesUp(std::uint32_t link) const
{
    std::uint32_t n = 0;
    for (const auto s : lanes_.at(link))
        if (s == LaneState::Up)
            ++n;
    return n;
}

LaneState
BdkEciBringup::laneState(std::uint32_t link, std::uint32_t lane) const
{
    return lanes_.at(link).at(lane);
}

} // namespace enzian::platform
