/**
 * @file
 * Factory for the platforms the paper compares against.
 *
 * Enzian's evaluation measures itself beside commercial systems:
 * PCIe-attached accelerator cards (Alveo u250/u280, Amazon F1,
 * VCU118), Intel's coherent HARP-family machines, a Mellanox RNIC
 * host, and a 2-socket ThunderX-1 server. Each preset reuses the same
 * substrate models with that platform's parameters, which is the
 * point of the exercise: one codebase, many machines.
 */

#ifndef ENZIAN_PLATFORM_PLATFORM_FACTORY_HH
#define ENZIAN_PLATFORM_PLATFORM_FACTORY_HH

#include <memory>
#include <string>

#include "accel/gbdt_engine.hh"
#include "pcie/dma_engine.hh"
#include "platform/enzian_machine.hh"

namespace enzian::platform {

/** A PCIe accelerator card in a host: the Alveo/F1 baseline. */
struct PcieAccelSystem
{
    std::unique_ptr<EventQueue> eq;
    std::unique_ptr<mem::MemoryController> host;
    std::unique_ptr<mem::MemoryController> device;
    std::unique_ptr<pcie::PcieLink> link;
    std::unique_ptr<pcie::DmaEngine> dma;
};

/**
 * Build a PCIe accelerator system.
 * @param name one of "alveo-u250", "alveo-u280", "f1", "vcu118"
 */
PcieAccelSystem makePcieAccelerator(const std::string &name);

/** Default Enzian configuration (Figure 4 machine). */
EnzianMachine::Config enzianDefaultConfig();

/**
 * Small-memory Enzian for the serving/load harness: the full machine
 * topology with simulation-friendly DRAM windows and a small core
 * count, so a saturation sweep can build a fresh machine per
 * operating point cheaply.
 */
EnzianMachine::Config servingMachineConfig();

/**
 * The 2-socket ThunderX-1 commercial NUMA server of section 5.1:
 * symmetric CPU silicon on both ends, hardware balancing over both
 * links (19 GiB/s, ~150 ns).
 */
EnzianMachine::Config twoSocketThunderXConfig();

/** GBDT engine configuration for a Figure 9 platform. */
accel::GbdtEngine::Config gbdtPlatformConfig(const std::string &name,
                                             std::uint32_t engines);

/** The Figure 9 platform names in paper order. */
const std::vector<std::string> &gbdtPlatformNames();

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_PLATFORM_FACTORY_HH
