/**
 * @file
 * CPU-FPGA link landscape (Figure 3).
 *
 * The paper's Figure 3 is adapted from Choi et al. [14]: published
 * latency/bandwidth points for existing CPU-FPGA interconnects, with
 * Enzian's measured points added. We follow the same method: the
 * non-Enzian points are cited reference data (they were not measured
 * by the paper's authors either); the Enzian and PCIe-card points are
 * measured on our simulated substrates by the fig03 bench.
 */

#ifndef ENZIAN_PLATFORM_LINK_MODELS_HH
#define ENZIAN_PLATFORM_LINK_MODELS_HH

#include <string>
#include <vector>

#include "base/units.hh"

namespace enzian::platform {

/** One point in the latency/bandwidth landscape. */
struct LinkPoint
{
    std::string name;
    /** Small-transfer round-trip latency in microseconds. */
    double latency_us = 0.0;
    /** Large-transfer bandwidth in GiB/s. */
    double bandwidth_gib = 0.0;
    /** True if the point is cited reference data, not measured here. */
    bool reference = false;
};

/**
 * The cited (Choi et al.) reference points of Figure 3; the measured
 * Enzian / Alveo / 2-socket points are produced by the fig03 bench
 * and appended to these.
 */
std::vector<LinkPoint> fig3ReferencePoints();

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_LINK_MODELS_HH
