/**
 * @file
 * DeviceTree generation.
 */

#include "platform/device_tree.hh"

#include <sstream>

#include "base/logging.hh"

namespace enzian::platform {

namespace {

std::string
hex(std::uint64_t v)
{
    return format("0x%llx", static_cast<unsigned long long>(v));
}

/** Render a 64-bit reg as the DT's <hi lo> cell pair. */
std::string
cells64(std::uint64_t v)
{
    return format("0x%x 0x%x",
                  static_cast<std::uint32_t>(v >> 32),
                  static_cast<std::uint32_t>(v & 0xffffffffu));
}

} // namespace

std::string
generateDeviceTree(EnzianMachine &machine,
                   const DeviceTreeOptions &opts)
{
    std::ostringstream os;
    const auto &cfg = machine.config();

    os << "/dts-v1/;\n\n/ {\n";
    os << "    model = \"ETH Zurich Enzian\";\n";
    os << "    compatible = \"ethz,enzian\", \"cavium,thunder-88xx\";\n";
    os << "    #address-cells = <2>;\n    #size-cells = <2>;\n\n";

    // CPUs: all cores in NUMA node 0 (the asymmetric part).
    os << "    cpus {\n";
    os << "        #address-cells = <2>;\n        #size-cells = <0>;\n";
    for (std::uint32_t c = 0; c < cfg.cores; ++c) {
        os << "        cpu@" << c << " {\n";
        os << "            device_type = \"cpu\";\n";
        os << "            compatible = \"cavium,thunder\", "
              "\"arm,armv8\";\n";
        os << "            reg = <0x0 " << hex(c) << ">;\n";
        os << "            numa-node-id = <0>;\n";
        os << "        };\n";
    }
    os << "    };\n\n";

    // CPU-node memory.
    os << "    memory@0 {\n";
    os << "        device_type = \"memory\";\n";
    os << "        reg = <" << cells64(0) << " "
       << cells64(cfg.cpu_dram_bytes) << ">;\n";
    os << "        numa-node-id = <0>;\n";
    os << "    };\n\n";

    // FPGA-node memory: only when the shell exposes it ("the other
    // may or may not appear to have memory").
    if (opts.expose_fpga_memory) {
        os << "    memory@" << hex(mem::AddressMap::fpgaDramBase)
           << " {\n";
        os << "        device_type = \"memory\";\n";
        os << "        reg = <" << cells64(mem::AddressMap::fpgaDramBase)
           << " " << cells64(cfg.fpga_dram_bytes) << ">;\n";
        os << "        numa-node-id = <1>;\n";
        os << "    };\n\n";
    }

    os << "    distance-map {\n";
    os << "        compatible = \"numa-distance-map-v1\";\n";
    os << "        distance-matrix = <0 0 10>, <0 1 "
       << opts.numa_distance << ">, <1 0 " << opts.numa_distance
       << ">, <1 1 10>;\n";
    os << "    };\n\n";

    // The ECI link as a platform device.
    os << "    eci@" << hex(mem::AddressMap::cpuIoBase) << " {\n";
    os << "        compatible = \"ethz,enzian-eci\";\n";
    os << "        reg = <" << cells64(mem::AddressMap::cpuIoBase)
       << " " << cells64(mem::AddressMap::ioWindowSize) << ">;\n";
    os << "        ethz,links = <" << machine.fabric().linkCount()
       << ">;\n";
    os << "        ethz,lanes-per-link = <"
       << machine.fabric().link(0).lanes() << ">;\n";
    os << "    };\n\n";

    // FPGA I/O window (shell control registers, doorbells).
    os << "    fpga-io@" << hex(mem::AddressMap::fpgaIoBase) << " {\n";
    os << "        compatible = \"ethz,enzian-fpga-io\";\n";
    os << "        reg = <" << cells64(mem::AddressMap::fpgaIoBase)
       << " " << cells64(mem::AddressMap::ioWindowSize) << ">;\n";
    os << "    };\n";

    os << "};\n";
    return os.str();
}

bool
validateDeviceTree(const std::string &dts, EnzianMachine &machine,
                   std::string &error)
{
    int depth = 0;
    for (char c : dts) {
        if (c == '{')
            ++depth;
        if (c == '}') {
            --depth;
            if (depth < 0) {
                error = "unbalanced braces";
                return false;
            }
        }
    }
    if (depth != 0) {
        error = "unbalanced braces";
        return false;
    }
    const char *required[] = {"/dts-v1/;", "cpus {", "memory@0",
                              "numa-node-id = <0>", "distance-map",
                              "ethz,enzian-eci"};
    for (const char *r : required) {
        if (dts.find(r) == std::string::npos) {
            error = std::string("missing node: ") + r;
            return false;
        }
    }
    // Every core appears.
    const std::string last_cpu =
        "cpu@" + std::to_string(machine.config().cores - 1);
    if (dts.find(last_cpu) == std::string::npos) {
        error = "missing " + last_cpu;
        return false;
    }
    return true;
}

} // namespace enzian::platform
