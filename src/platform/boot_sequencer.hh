/**
 * @file
 * Boot, diagnostic, and stress-test sequencer (Figures 5/12).
 *
 * Scripts the paper's section 5.5 run: the BMC powers the standby
 * rails, brings the FPGA up and programs it, releases the CPU, the
 * BDK checks DRAM, a series of memory tests runs (data bus, address
 * bus, marching rows, random data - all executed functionally against
 * the simulated DRAM), the CPU powers off, and the FPGA power-burn
 * design walks its switching activity up in 1/24-area steps. The BMC
 * telemetry service samples the primary regulators every 20 ms
 * throughout, producing the Figure 12 time series.
 */

#ifndef ENZIAN_PLATFORM_BOOT_SEQUENCER_HH
#define ENZIAN_PLATFORM_BOOT_SEQUENCER_HH

#include <string>
#include <vector>

#include "platform/enzian_machine.hh"

namespace enzian::platform {

/** A labeled phase of the scripted run. */
struct BootPhase
{
    std::string name;
    Tick start = 0;
    Tick end = 0;
};

/** Drives the Figure 12 scenario on a machine. */
class BootSequencer
{
  public:
    explicit BootSequencer(EnzianMachine &machine);

    /**
     * Schedule and run the complete boot + diagnostic + stress
     * scenario; returns when the event queue drains (~255 simulated
     * seconds). Telemetry samples accumulate in
     * machine().bmc().telemetry().
     */
    void runFullSequence();

    /** Phase markers (for the Figure 12 annotations). */
    const std::vector<BootPhase> &phases() const { return phases_; }

    /** Results of the functional memory tests (all must pass). */
    struct MemtestResults
    {
        bool dram_check = false;
        bool data_bus = false;
        bool address_bus = false;
        bool marching_rows = false;
        bool random_data = false;

        bool allPassed() const
        {
            return dram_check && data_bus && address_bus &&
                   marching_rows && random_data;
        }
    };

    const MemtestResults &memtests() const { return memtests_; }

    EnzianMachine &machine() { return machine_; }

    // --- individual functional memory tests (also used by tests) ----
    /** Walking-ones data bus test over one word. */
    static bool dataBusTest(mem::BackingStore &store, Addr base);
    /** Walking address-bit test over a power-of-two window. */
    static bool addressBusTest(mem::BackingStore &store, Addr base,
                               std::uint64_t size);
    /** March C- style row test over a window. */
    static bool marchingRowsTest(mem::BackingStore &store, Addr base,
                                 std::uint64_t size);
    /** Seeded random write/verify pass. */
    static bool randomDataTest(mem::BackingStore &store, Addr base,
                               std::uint64_t size, std::uint64_t seed);

  private:
    void mark(const std::string &name, Tick start, Tick end);

    EnzianMachine &machine_;
    std::vector<BootPhase> phases_;
    MemtestResults memtests_;
};

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_BOOT_SEQUENCER_HH
