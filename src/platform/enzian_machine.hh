/**
 * @file
 * The complete Enzian machine: composition root.
 *
 * Builds the two-socket asymmetric NUMA system of Figure 4: the
 * 48-core ThunderX-1 node (L2 + 4 DDR4-2133 channels) and the
 * XCVU9P node (4 DDR4-2400 channels, Coyote shell) connected by the
 * two-link ECI fabric, plus the BMC with the board's power tree.
 * Also configurable into the 2-socket CPU-CPU machine the paper uses
 * as its interconnect reference.
 */

#ifndef ENZIAN_PLATFORM_ENZIAN_MACHINE_HH
#define ENZIAN_PLATFORM_ENZIAN_MACHINE_HH

#include <memory>
#include <ostream>
#include <string>

#include "bmc/bmc.hh"
#include "cpu/core_cluster.hh"
#include "eci/domain_dram_source.hh"
#include "eci/home_agent.hh"
#include "eci/remote_agent.hh"
#include "fpga/shell.hh"
#include "platform/params.hh"

namespace enzian::sim {
class DomainScheduler;
class TimingDomain;
} // namespace enzian::sim

namespace enzian::platform {

/** The simulated machine. */
class EnzianMachine
{
  public:
    /** Machine configuration. */
    struct Config
    {
        /**
         * DRAM sizes: defaults are simulation-friendly windows; the
         * address map is identical to the full-size machine, only
         * the modelled capacity differs (the store is sparse anyway).
         */
        std::uint64_t cpu_dram_bytes = 4ull << 30;
        std::uint64_t fpga_dram_bytes = 4ull << 30;
        std::uint32_t cores = params::cpuCores;
        eci::EciLink::Config link;
        std::uint32_t links = params::eciLinks;
        eci::BalancePolicy policy = eci::BalancePolicy::AddressHash;
        eci::RemoteAgent::Config remote_agent;
        /** Attach the L2 to the CPU remote agent (cached mode). */
        bool cpu_caches_remote = true;
        /**
         * L2 victim-selection policy. Lru is the classic shared
         * cache; WayPartition / Adaptive split the ways between
         * locally-homed fills (home agent, owner 0) and peer-homed
         * fills (remote agent, owner 1) — see cache/llc_policy.hh.
         */
        cache::ReplPolicy l2_policy = cache::ReplPolicy::Lru;
        /** Adaptive L2 only: misses per repartition epoch. */
        std::uint64_t l2_adapt_epoch = 1024;
        /**
         * CPU home agent read-allocate: local reads that miss the L2
         * install the line there as Shared (free frames only). Gives
         * write-update protocols a resident home copy to refresh.
         * Off by default — reference timing runs are unchanged.
         */
        bool home_read_allocate = false;
        /**
         * Coherence protocol table for all four agents; one of the
         * names registered in eci::proto::allProtocols() ("moesi",
         * "mesi", "dragon"). Unknown names are fatal.
         */
        std::string protocol = "moesi";
        /** Initial bitstream loaded into the fabric. */
        std::string bitstream = "eci-bench";
        /**
         * Optional externally owned event queue; machines in a
         * cluster share one so their timelines interleave. When
         * null the machine owns its queue. Mutually exclusive with
         * parallel domain mode (threads / shared_scheduler).
         */
        EventQueue *shared_eventq = nullptr;
        /**
         * Parallel simulation: > 0 shards the machine into a CPU
         * timing domain and an FPGA timing domain run by a
         * conservative-PDES scheduler on this many threads. The
         * epoch lookahead derives from the ECI link config
         * (eci::EciLink::minCrossLatency). threads == 1 uses the
         * same domain semantics sequentially, so results are
         * bit-identical across all thread counts. 0 (default) is
         * the classic single-queue machine.
         */
        std::uint32_t threads = 0;
        /**
         * Optional externally owned scheduler; several machines may
         * join one scheduler so all their domains run under a single
         * epoch loop (the scaling bench does this). Must outlive the
         * machine, and its lookahead must not exceed this machine's
         * link latency floor. Implies domain mode regardless of
         * `threads`.
         */
        sim::DomainScheduler *shared_scheduler = nullptr;
        /**
         * Finer domain carving (parallel mode only; fatal without
         * it). Each flag peels a subsystem out of the two node
         * domains into a dedicated timing domain, shrinking the node
         * domains' critical path while per-pair channel lookaheads
         * keep the epoch math exact.
         */
        struct DomainSplit
        {
            /** BMC + power tree in an own ".bmc" domain. Harnesses
             *  must not poke the BMC from other domains mid-run. */
            bool bmc = false;
            /** An empty ".net" domain (netDomain()) for the harness
             *  to place NIC/switch stacks into. */
            bool net = false;
            /**
             * Both DRAM systems in one ".mem" domain, reached through
             * cross-domain line sources. Experimental: every
             * home-memory access gains two mem_hop_ns hops, so timing
             * differs from the reference machine, and harnesses that
             * drive the memory controllers directly from node domains
             * must not use it.
             */
            bool mem = false;
        };
        DomainSplit split;
        /** One-way agent<->memory hop latency (ns) for split.mem;
         *  also the lookahead of the DRAM channels it creates. */
        double mem_hop_ns = 120.0;
        /**
         * Owned-scheduler epoch policy: grow epochs to the provable
         * cross-domain delivery bound when channels are quiescent
         * (see sim::DomainScheduler::Options). Ignored with
         * shared_scheduler — the scheduler's owner decides there.
         */
        bool adaptive_epochs = false;
        /** Epoch growth cap, in fixed steps (adaptive_epochs). */
        std::uint32_t adaptive_max_grow = 16;
        /** Instance name prefix (must be unique in a cluster). */
        std::string name = "enzian";

        Config();
    };

    explicit EnzianMachine(const Config &cfg);
    ~EnzianMachine();

    EnzianMachine(const EnzianMachine &) = delete;
    EnzianMachine &operator=(const EnzianMachine &) = delete;

    // --- kernel ------------------------------------------------------
    /** The CPU domain's queue (the only queue in legacy mode). */
    EventQueue &eventq() { return *eqPtr_; }
    /** The FPGA domain's queue; == eventq() in legacy mode. */
    EventQueue &fpgaEventq() { return *fpgaEqPtr_; }
    Tick now() const { return eqPtr_->now(); }

    /** True when the machine runs as parallel timing domains. */
    bool parallel() const { return schedPtr_ != nullptr; }
    /** The domain scheduler, or null in legacy mode. */
    sim::DomainScheduler *scheduler() { return schedPtr_; }
    /** The CPU timing domain, or null in legacy mode. */
    sim::TimingDomain *cpuDomain() { return cpuDomain_; }
    /** The FPGA timing domain, or null in legacy mode. */
    sim::TimingDomain *fpgaDomain() { return fpgaDomain_; }
    /** The BMC timing domain, or null unless split.bmc. */
    sim::TimingDomain *bmcDomain() { return bmcDomain_; }
    /** The network timing domain, or null unless split.net. */
    sim::TimingDomain *netDomain() { return netDomain_; }
    /** The memory timing domain, or null unless split.mem. */
    sim::TimingDomain *memDomain() { return memDomain_; }

    /**
     * Run the simulation to completion: the domain scheduler in
     * parallel mode (which drives every machine sharing it),
     * otherwise the event queue. @return events executed.
     */
    std::uint64_t run();
    /** Run the simulation up to @p limit. @return events executed. */
    std::uint64_t runUntil(Tick limit);

    // --- memory system -------------------------------------------------
    mem::AddressMap &map() { return *map_; }
    mem::MemoryController &cpuMem() { return *cpuMem_; }
    mem::MemoryController &fpgaMem() { return *fpgaMem_; }
    cache::Cache &l2() { return *l2_; }

    // --- ECI -----------------------------------------------------------
    eci::EciFabric &fabric() { return *fabric_; }
    eci::HomeAgent &cpuHome() { return *cpuHome_; }
    eci::HomeAgent &fpgaHome() { return *fpgaHome_; }
    eci::RemoteAgent &cpuRemote() { return *cpuRemote_; }
    eci::RemoteAgent &fpgaRemote() { return *fpgaRemote_; }
    eci::IoSpace &cpuIo() { return *cpuIoSpace_; }
    eci::IoSpace &fpgaIo() { return *fpgaIoSpace_; }

    // --- FPGA ------------------------------------------------------------
    fpga::Fabric &fpga() { return *fpga_; }
    fpga::Shell &shell() { return *shell_; }

    /** Load a registered bitstream; retunes the fabric clock. */
    Tick loadBitstream(const std::string &name);

    // --- CPU ---------------------------------------------------------
    cpu::CoreCluster &cluster() { return *cluster_; }

    // --- BMC ----------------------------------------------------------
    bmc::Bmc &bmc() { return *bmc_; }

    const Config &config() const { return cfg_; }

    /**
     * Dump the statistics of every major component ("gem5 stats
     * file" style): caches, links, agents, DRAM channels, I2C.
     */
    void dumpStats(std::ostream &os);

  private:
    Config cfg_;
    /** Owned scheduler (domain mode without shared_scheduler).
     *  Declared before every component so the domains' queues are
     *  destroyed last. */
    std::unique_ptr<sim::DomainScheduler> sched_;
    sim::DomainScheduler *schedPtr_ = nullptr;
    sim::TimingDomain *cpuDomain_ = nullptr;
    sim::TimingDomain *fpgaDomain_ = nullptr;
    sim::TimingDomain *bmcDomain_ = nullptr;
    sim::TimingDomain *netDomain_ = nullptr;
    sim::TimingDomain *memDomain_ = nullptr;
    std::unique_ptr<EventQueue> eq_; ///< owned unless shared
    EventQueue *eqPtr_ = nullptr;
    EventQueue *fpgaEqPtr_ = nullptr;
    std::unique_ptr<mem::AddressMap> map_;
    std::unique_ptr<mem::MemoryController> cpuMem_;
    std::unique_ptr<mem::MemoryController> fpgaMem_;
    std::unique_ptr<cache::Cache> l2_;
    std::unique_ptr<eci::EciFabric> fabric_;
    std::unique_ptr<eci::IoSpace> cpuIoSpace_;
    std::unique_ptr<eci::IoSpace> fpgaIoSpace_;
    std::unique_ptr<eci::HomeAgent> cpuHome_;
    std::unique_ptr<eci::HomeAgent> fpgaHome_;
    /** split.mem line sources (installed into the home agents). */
    std::unique_ptr<eci::DomainDramSource> cpuDramSource_;
    std::unique_ptr<eci::DomainDramSource> fpgaDramSource_;
    std::unique_ptr<eci::RemoteAgent> cpuRemote_;
    std::unique_ptr<eci::RemoteAgent> fpgaRemote_;
    std::unique_ptr<fpga::Fabric> fpga_;
    std::unique_ptr<fpga::Shell> shell_;
    std::unique_ptr<cpu::CoreCluster> cluster_;
    std::unique_ptr<bmc::Bmc> bmc_;
};

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_ENZIAN_MACHINE_HH
