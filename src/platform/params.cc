/**
 * @file
 * Parameter factory functions.
 */

#include "platform/params.hh"

namespace enzian::platform::params {

eci::EciLink::Config
eciLinkConfig()
{
    eci::EciLink::Config cfg;
    cfg.lanes = eciLanesPerLink;
    cfg.lane_gbps = eciLaneGbps;
    cfg.efficiency = eciEfficiency;
    cfg.wire_latency_ns = eciWireLatencyNs;
    cfg.cpu_proc_ns = eciCpuProcNs;
    cfg.fpga_proc_ns = eciFpgaProcNs;
    return cfg;
}

eci::EciLink::Config
twoSocketLinkConfig()
{
    // Both ends are full-rate CPU silicon: symmetric, low processing
    // latency, hardware load balancing across both links.
    eci::EciLink::Config cfg = eciLinkConfig();
    cfg.fpga_proc_ns = cfg.cpu_proc_ns;
    cfg.wire_latency_ns = 35.0;
    cfg.cpu_proc_ns = 20.0;
    cfg.fpga_proc_ns = 20.0;
    return cfg;
}

mem::DramChannel::Config
cpuDramConfig()
{
    mem::DramChannel::Config cfg;
    cfg.mega_transfers = cpuDramMTs;
    cfg.bus_bytes = 8;
    cfg.access_latency_ns = 45.0;
    cfg.efficiency = 0.80;
    return cfg;
}

mem::DramChannel::Config
fpgaDramConfig()
{
    mem::DramChannel::Config cfg;
    cfg.mega_transfers = fpgaDramMTs;
    cfg.bus_bytes = 8;
    cfg.access_latency_ns = 50.0; // soft controller adds a little
    cfg.efficiency = 0.80;
    return cfg;
}

pcie::PcieLink::Config
alveoPcieConfig()
{
    pcie::PcieLink::Config cfg;
    cfg.lanes = alveoPcieLanes;
    cfg.gt_per_s = pcieGen3GTs;
    cfg.encoding = 128.0 / 130.0;
    cfg.max_payload = 256;
    cfg.latency_ns = 400.0;
    return cfg;
}

net::EthernetLink::Config
eth100Config()
{
    net::EthernetLink::Config cfg;
    cfg.rate_gbps = fpgaEthGbps;
    cfg.mtu = tcpMtu;
    cfg.latency_ns = 450.0;
    return cfg;
}

} // namespace enzian::platform::params
