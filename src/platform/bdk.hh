/**
 * @file
 * BDK: board development kit model, most importantly the ECI link
 * bring-up.
 *
 * "The BDK is interesting in that it allows extensive configuration
 * of the CPU and associated hardware. For example, the BDK is
 * responsible for bringing up the ECI protocol, and can be used to
 * limit bandwidth, number of lanes, or clock frequency to many parts
 * of the system (indeed, early debugging of ECI was done with 4 lanes
 * rather than the full 24)" (paper section 4.4). Section 4.1 adds
 * that the CPU-side implementation "could be controlled from the BDK
 * command line before the processor fully booted, and dialed up and
 * down in lanes and speed, allowing us to bring up our implementation
 * gradually".
 *
 * BdkEciBringup runs the per-lane training state machine: detect ->
 * align -> train -> calibrate, lane by lane, against the FPGA's
 * loaded image (training fails fast if the bitstream lacks the ECI
 * layers - the real failure mode when the wrong image is loaded
 * before CPU reset is released, section 4.5). Lanes that fail
 * training are excluded; the link comes up with whatever trained,
 * exactly how gradual bring-up worked.
 */

#ifndef ENZIAN_PLATFORM_BDK_HH
#define ENZIAN_PLATFORM_BDK_HH

#include <functional>
#include <vector>

#include "base/rng.hh"
#include "platform/enzian_machine.hh"

namespace enzian::platform {

/** Per-lane training outcome. */
enum class LaneState : std::uint8_t {
    Down = 0,
    Detecting,
    Aligning,
    Training,
    Up,
    Failed,
};

/** Readable lane-state name. */
const char *toString(LaneState s);

/** The BDK's ECI bring-up engine. */
class BdkEciBringup : public SimObject
{
  public:
    /** Bring-up configuration. */
    struct Config
    {
        /** Lanes to attempt per link (dial-down knob; <= 12). */
        std::uint32_t lanes_per_link = 12;
        /** Per-lane detect+align+train time (us). */
        double lane_train_us = 350.0;
        /** Probability a lane needs a retrain pass (signal margin). */
        double retrain_chance = 0.05;
        /** Retrain attempts before a lane is marked Failed. */
        std::uint32_t max_retrains = 3;
        /** RNG seed for margin draws. */
        std::uint64_t seed = 0xb0a7;
    };

    BdkEciBringup(std::string name, EventQueue &eq,
                  EnzianMachine &machine, const Config &cfg);

    /**
     * Run the bring-up; @p done receives the completion tick. On
     * success the machine's links are reconfigured to the trained
     * lane counts. fatal() if the FPGA image lacks ECI support.
     */
    void start(std::function<void(Tick)> done);

    /** True once every attempted lane reached Up or Failed. */
    bool complete() const { return complete_; }

    /** Lanes that trained successfully on @p link. */
    std::uint32_t lanesUp(std::uint32_t link) const;

    /** State of @p lane on @p link. */
    LaneState laneState(std::uint32_t link, std::uint32_t lane) const;

    std::uint64_t retrains() const { return retrains_.value(); }

  private:
    void trainLane(std::uint32_t link, std::uint32_t lane,
                   std::uint32_t attempt);
    void maybeFinish();

    EnzianMachine &machine_;
    Config cfg_;
    Rng rng_;
    std::vector<std::vector<LaneState>> lanes_; // [link][lane]
    std::uint32_t pending_ = 0;
    bool complete_ = false;
    std::function<void(Tick)> done_;
    Counter retrains_;
};

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_BDK_HH
