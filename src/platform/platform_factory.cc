/**
 * @file
 * Platform presets.
 */

#include "platform/platform_factory.hh"

#include "base/logging.hh"

namespace enzian::platform {

PcieAccelSystem
makePcieAccelerator(const std::string &name)
{
    PcieAccelSystem sys;
    sys.eq = std::make_unique<EventQueue>();

    pcie::PcieLink::Config link_cfg = params::alveoPcieConfig();
    pcie::DmaEngine::Config dma_cfg;
    std::uint64_t device_dram = 4ull << 30;
    mem::DramChannel::Config dev_dram_cfg = params::fpgaDramConfig();
    std::uint32_t dev_channels = 4;

    if (name == "alveo-u250" || name == "alveo-u280") {
        // u250: 4x DDR4-2400; u280 adds HBM but the RDMA experiment
        // uses DDR; both on Gen3 x16.
    } else if (name == "f1") {
        // F1 exposes the card behind a virtualized Gen3 x16 with
        // higher software overheads.
        dma_cfg.doorbell_ns = 400.0;
        dma_cfg.descriptor_fetch_ns = 900.0;
        dma_cfg.per_descriptor_ns = 450.0;
    } else if (name == "vcu118") {
        // Evaluation board: same FPGA family, plain Gen3 x16.
    } else {
        fatal("unknown PCIe accelerator '%s'", name.c_str());
    }

    sys.host = std::make_unique<mem::MemoryController>(
        name + ".host.mem", *sys.eq, 4ull << 30, 6,
        params::cpuDramConfig());
    sys.device = std::make_unique<mem::MemoryController>(
        name + ".dev.mem", *sys.eq, device_dram, dev_channels,
        dev_dram_cfg);
    sys.link = std::make_unique<pcie::PcieLink>(name + ".pcie",
                                                *sys.eq, link_cfg);
    sys.dma = std::make_unique<pcie::DmaEngine>(
        name + ".dma", *sys.eq, *sys.link, *sys.host, *sys.device,
        dma_cfg);
    return sys;
}

EnzianMachine::Config
enzianDefaultConfig()
{
    return EnzianMachine::Config();
}

EnzianMachine::Config
servingMachineConfig()
{
    EnzianMachine::Config cfg;
    cfg.cpu_dram_bytes = 256ull << 20;
    cfg.fpga_dram_bytes = 256ull << 20;
    cfg.cores = 4;
    cfg.name = "serving";
    return cfg;
}

EnzianMachine::Config
twoSocketThunderXConfig()
{
    EnzianMachine::Config cfg;
    cfg.link = params::twoSocketLinkConfig();
    cfg.policy = eci::BalancePolicy::LeastLoaded; // hardware balancing
    cfg.bitstream = "eci-bench"; // unused; node 1 is CPU silicon
    return cfg;
}

const std::vector<std::string> &
gbdtPlatformNames()
{
    static const std::vector<std::string> names = {
        "Harp-v2", "Amazon-F1", "VCU118", "Enzian"};
    return names;
}

accel::GbdtEngine::Config
gbdtPlatformConfig(const std::string &name, std::uint32_t engines)
{
    accel::GbdtEngine::Config cfg;
    cfg.engines = engines;
    cfg.cycles_per_tuple = params::gbdtCyclesPerTuple;
    cfg.features = params::gbdtFeatures;
    // Clocks: each platform's achievable fabric clock for this design
    // (Enzian uses the highest speed grade of the XCVU9P - the paper's
    // stated reason it outperforms the same FPGA on F1/VCU118).
    if (name == "Harp-v2") {
        cfg.clock_hz = 206e6;
        cfg.host_bw = 8.5e9; // UPI + PCIe combined attach
    } else if (name == "Amazon-F1") {
        cfg.clock_hz = 150e6;
        cfg.host_bw = 12.8e9;
    } else if (name == "VCU118") {
        cfg.clock_hz = 256e6;
        cfg.host_bw = 12.8e9;
    } else if (name == "Enzian") {
        cfg.clock_hz = 300e6;
        cfg.host_bw = 13.6e9; // one ECI link's payload bandwidth
    } else {
        fatal("unknown GBDT platform '%s'", name.c_str());
    }
    return cfg;
}

} // namespace enzian::platform
