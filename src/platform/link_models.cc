/**
 * @file
 * Figure 3 reference points.
 */

#include "platform/link_models.hh"

namespace enzian::platform {

std::vector<LinkPoint>
fig3ReferencePoints()
{
    // Values read from Choi et al. [13,14] as reproduced in the
    // paper's Figure 3: latency (us, time to first data for a small
    // access) and achievable bandwidth (GiB/s).
    return {
        {"Alpha Data PCIe", 100.0, 6.0, true},
        {"F1 PCIe", 160.0, 6.5, true},
        {"Alpha Data DRAM", 1.0, 9.5, true},
        {"F1 DRAM", 1.0, 14.0, true},
        {"CAPI", 5.0, 3.3, true},
        {"Xeon+FPGAv1 (QPI)", 0.4, 4.9, true},
        {"Broadwell+Arria (UPI+PCIe)", 0.5, 17.0, true},
    };
}

} // namespace enzian::platform
