/**
 * @file
 * DeviceTree generation for the Enzian machine.
 *
 * "No modifications were necessary to the Linux kernel, but Enzian
 * requires a special DeviceTree specification since, of the two NUMA
 * nodes, only one actually has CPU cores and the other may or may not
 * appear to have memory" (paper section 4.4). This generator renders
 * a machine configuration into DTS source: 48 CPUs all in NUMA node
 * 0, the CPU-node memory, the FPGA-node memory window (present only
 * when the loaded shell exposes it), the ECI link device, and the
 * uncached I/O windows.
 */

#ifndef ENZIAN_PLATFORM_DEVICE_TREE_HH
#define ENZIAN_PLATFORM_DEVICE_TREE_HH

#include <string>

#include "platform/enzian_machine.hh"

namespace enzian::platform {

/** Options controlling what the generated tree exposes. */
struct DeviceTreeOptions
{
    /** Expose the FPGA-homed memory window as NUMA node 1 memory. */
    bool expose_fpga_memory = true;
    /** Linux distance matrix entry for the cross-node hop. */
    std::uint32_t numa_distance = 20;
};

/** Render @p machine as DTS source text. */
std::string generateDeviceTree(EnzianMachine &machine,
                               const DeviceTreeOptions &opts = {});

/**
 * Structural validation of generated DTS: balanced braces, required
 * nodes present, memory regs consistent with the machine.
 * @param error set to a reason on failure
 */
bool validateDeviceTree(const std::string &dts,
                        EnzianMachine &machine, std::string &error);

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_DEVICE_TREE_HH
