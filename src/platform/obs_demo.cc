/**
 * @file
 * Observability demo workload implementation.
 */

#include "platform/obs_demo.hh"

#include <cstring>

#include "mem/address_map.hh"

namespace enzian::platform {

ObsDemo::ObsDemo(EnzianMachine &m) : m_(m)
{
    const std::string &base = m_.config().name;
    net::Switch::Config sw_cfg;
    switch_ = std::make_unique<net::Switch>(base + ".net.switch",
                                            m_.eventq(), 2, sw_cfg);
    const double fclk = m_.fpga().clock().frequencyHz();
    tcpA_ = std::make_unique<net::TcpStack>(
        base + ".net.tcp0", m_.eventq(), *switch_,
        net::fpgaTcpConfig(0, fclk));
    tcpB_ = std::make_unique<net::TcpStack>(
        base + ".net.tcp1", m_.eventq(), *switch_,
        net::fpgaTcpConfig(1, fclk));
    flow_ = tcpA_->connect(*tcpB_);

    fpga::VfpgaScheduler::Config sched_cfg;
    sched_cfg.policy = fpga::SchedPolicy::RoundRobin;
    sched_cfg.quantum = units::ms(50.0);
    // The vFPGA scheduler drives the shell, so on a parallel machine
    // it must live in the FPGA timing domain.
    sched_ = std::make_unique<fpga::VfpgaScheduler>(
        base + ".fpga.sched", m_.fpgaEventq(), m_.shell(), sched_cfg);
}

ObsDemo::~ObsDemo() = default;

void
ObsDemo::run()
{
    // --- ECI + memory: coherent line traffic in both directions -------
    constexpr std::uint32_t lines = 64;
    std::uint8_t buf[cache::lineSize];
    std::memset(buf, 0x5a, sizeof(buf));

    // CPU writes then reads back FPGA-homed lines (write allocates
    // Modified in the L2; the read-back hits locally, the next stride
    // misses), and the FPGA streams CPU-homed lines uncached.
    for (std::uint32_t i = 0; i < lines; ++i) {
        const Addr fpga_line = mem::AddressMap::fpgaDramBase +
                               static_cast<Addr>(i) * cache::lineSize;
        m_.cpuRemote().writeLine(fpga_line, buf,
                                 [this](Tick) { ++eciLinesCpu_; });
        const Addr cpu_line =
            static_cast<Addr>(i) * cache::lineSize;
        m_.fpgaRemote().readLineUncached(
            cpu_line, nullptr, [this](Tick) { ++eciLinesFpga_; });
    }
    m_.run();
    for (std::uint32_t i = 0; i < lines; ++i) {
        const Addr fpga_line = mem::AddressMap::fpgaDramBase +
                               static_cast<Addr>(i) * cache::lineSize;
        m_.cpuRemote().readLine(fpga_line, nullptr,
                                [this](Tick) { ++eciLinesCpu_; });
    }
    m_.run();

    // --- network: one 256 KiB TCP stream through the switch ----------
    tcpA_->send(flow_, 256 * 1024, [](Tick) {});

    // --- FPGA: more jobs than slots, forcing time slicing ------------
    const std::size_t jobs = m_.shell().slotCount() + 2;
    for (std::size_t j = 0; j < jobs; ++j) {
        sched_->submit("obs-app" + std::to_string(j % 3),
                       units::ms(80.0), nullptr);
    }
    m_.run();

    // --- CPU: a short stream kernel so the PMU gauges are live -------
    cpu::StreamKernel k;
    k.compute_cycles_per_item = 2.0;
    k.instructions_per_item = 4.0;
    k.interconnect_bytes_per_item = 8.0;
    m_.cluster().runParallel(k, 4, 1u << 20,
                             m_.fabric().effectiveBandwidth());
}

std::uint64_t
ObsDemo::tcpBytes() const
{
    return tcpB_->bytesReceived(flow_);
}

std::uint64_t
ObsDemo::fpgaJobs() const
{
    return sched_->jobsCompleted();
}

} // namespace enzian::platform
