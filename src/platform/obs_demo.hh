/**
 * @file
 * Mixed observability demo workload.
 *
 * Drives one EnzianMachine through a short scenario touching every
 * instrumented subsystem — coherent ECI traffic (CPU<->FPGA reads,
 * writes, and an upgrade), DRAM bursts on both nodes, a TCP stream
 * between two FPGA stacks through a switch, and time-sliced vFPGA
 * jobs — so a registry snapshot and a span trace taken afterwards
 * cover ECI, memory, network, and FPGA components in one run. Used by
 * the enzstat tool and the observability tests; the components the
 * demo creates (switch, TCP stacks, scheduler) live as long as the
 * demo object so their stats stay registered.
 */

#ifndef ENZIAN_PLATFORM_OBS_DEMO_HH
#define ENZIAN_PLATFORM_OBS_DEMO_HH

#include <cstdint>
#include <memory>

#include "fpga/scheduler.hh"
#include "net/switch.hh"
#include "net/tcp_stack.hh"
#include "platform/enzian_machine.hh"

namespace enzian::platform {

/** The demo workload; see file comment. */
class ObsDemo
{
  public:
    /** Attaches demo components to @p m's event queue. */
    explicit ObsDemo(EnzianMachine &m);
    ~ObsDemo();

    ObsDemo(const ObsDemo &) = delete;
    ObsDemo &operator=(const ObsDemo &) = delete;

    /** Run the whole scenario to completion (drains the queue). */
    void run();

    /** Lines moved over ECI (reads + writes, both directions). */
    std::uint64_t eciLines() const
    {
        return eciLinesCpu_ + eciLinesFpga_;
    }
    /** Payload bytes delivered over the TCP stream. */
    std::uint64_t tcpBytes() const;
    /** vFPGA jobs completed. */
    std::uint64_t fpgaJobs() const;

    fpga::VfpgaScheduler &scheduler() { return *sched_; }

  private:
    EnzianMachine &m_;
    std::unique_ptr<net::Switch> switch_;
    std::unique_ptr<net::TcpStack> tcpA_;
    std::unique_ptr<net::TcpStack> tcpB_;
    std::unique_ptr<fpga::VfpgaScheduler> sched_;
    std::uint32_t flow_ = 0;
    /** Split per completion domain: CPU-issued ops complete on the
     *  CPU domain, FPGA-issued ones on the FPGA domain, so a parallel
     *  machine never has two threads bumping one counter. */
    std::uint64_t eciLinesCpu_ = 0;
    std::uint64_t eciLinesFpga_ = 0;
};

} // namespace enzian::platform

#endif // ENZIAN_PLATFORM_OBS_DEMO_HH
