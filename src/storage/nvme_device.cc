/**
 * @file
 * NVMe device implementation.
 */

#include "storage/nvme_device.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::storage {

NvmeDevice::Config
NvmeDevice::dramEmulated(std::uint64_t capacity)
{
    Config cfg;
    cfg.capacity = capacity;
    cfg.read_latency_us = 0.4;
    cfg.write_latency_us = 0.4;
    cfg.channels = 4;
    cfg.channel_mbps = 15000.0; // one DDR4 channel class
    cfg.queue_proc_ns = 250.0;
    return cfg;
}

NvmeDevice::NvmeDevice(std::string name, EventQueue &eq,
                       const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg), media_(cfg.capacity),
      channelFreeAt_(cfg.channels, 0)
{
    if (cfg_.channels == 0 || cfg_.capacity % blockBytes != 0)
        fatal("NVMe device '%s': bad geometry",
              SimObject::name().c_str());
    stats().addCounter("reads", &reads_);
    stats().addCounter("writes", &writes_);
}

Tick
NvmeDevice::schedule(std::uint64_t blocks, bool write)
{
    // Queue processing, then the command lands on the next channel;
    // occupancy covers the media transfer, latency the access itself.
    const Tick submit = now() + units::ns(cfg_.queue_proc_ns);
    Tick &ch = channelFreeAt_[nextChannel_];
    nextChannel_ = (nextChannel_ + 1) % cfg_.channels;
    const Tick start = std::max(submit, ch);
    const double bw = cfg_.channel_mbps * 1e6;
    const Tick stream =
        units::transferTicks(blocks * blockBytes, bw);
    const Tick access = units::us(write ? cfg_.write_latency_us
                                        : cfg_.read_latency_us);
    ch = start + stream;
    return start + access + stream;
}

void
NvmeDevice::read(std::uint64_t lba, std::uint32_t blocks,
                 std::uint8_t *dst, Done done)
{
    ENZIAN_ASSERT(lba + blocks <= blockCount(), "read past capacity");
    media_.read(lba * blockBytes, dst,
                static_cast<std::uint64_t>(blocks) * blockBytes);
    const Tick ready = schedule(blocks, false);
    reads_.inc();
    eventq().schedule(
        ready, [done = std::move(done), ready]() { done(ready); },
        "nvme-read");
}

void
NvmeDevice::write(std::uint64_t lba, std::uint32_t blocks,
                  const std::uint8_t *src, Done done)
{
    ENZIAN_ASSERT(lba + blocks <= blockCount(), "write past capacity");
    media_.write(lba * blockBytes, src,
                 static_cast<std::uint64_t>(blocks) * blockBytes);
    const Tick durable = schedule(blocks, true);
    writes_.inc();
    eventq().schedule(
        durable, [done = std::move(done), durable]() { done(durable); },
        "nvme-write");
}

} // namespace enzian::storage
