/**
 * @file
 * Smart storage controller implementation.
 */

#include "storage/smart_storage.hh"

#include <cstring>

#include "base/logging.hh"

namespace enzian::storage {

SmartStorageController::SmartStorageController(
    std::string name, EventQueue &eq, NvmeDevice &device,
    mem::MemoryController &fpga_mem, const Config &cfg)
    : SimObject(std::move(name), eq), device_(device), mem_(fpga_mem),
      cfg_(cfg)
{
    if (cfg_.cache_blocks == 0)
        fatal("storage controller '%s': zero cache",
              SimObject::name().c_str());
    for (std::uint64_t i = 0; i < cfg_.cache_blocks; ++i)
        freeSlots_.push_back(cfg_.cache_base + i * blockBytes);
    stats().addCounter("cache_hits", &hits_);
    stats().addCounter("cache_misses", &misses_);
}

bool
SmartStorageController::cacheLookup(std::uint64_t lba, Addr &slot)
{
    auto it = cached_.find(lba);
    if (it == cached_.end())
        return false;
    lru_.erase(it->second.lruPos);
    lru_.push_front(lba);
    it->second.lruPos = lru_.begin();
    slot = it->second.slot;
    return true;
}

Addr
SmartStorageController::cacheInsert(std::uint64_t lba)
{
    Addr slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        // Evict the LRU block (clean: the cache is write-through).
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        auto vit = cached_.find(victim);
        slot = vit->second.slot;
        cached_.erase(vit);
    }
    lru_.push_front(lba);
    cached_[lba] = CacheEntry{lru_.begin(), slot};
    return slot;
}

void
SmartStorageController::readBlock(std::uint64_t lba, std::uint8_t *dst,
                                  Done done)
{
    Addr slot = 0;
    if (cacheLookup(lba, slot)) {
        hits_.inc();
        const Tick ready = mem_.read(now(), slot, dst, blockBytes).done;
        eventq().schedule(
            ready, [done = std::move(done), ready]() { done(ready); },
            "storage-hit");
        return;
    }
    misses_.inc();
    const Addr fill_slot = cacheInsert(lba);
    device_.read(lba, 1, dst,
                 [this, lba, fill_slot, dst,
                  done = std::move(done)](Tick flash_done) {
                     // Fill the DRAM cache with the block.
                     std::uint8_t block[blockBytes];
                     device_.media().read(lba * blockBytes, block,
                                          blockBytes);
                     const Tick ready =
                         mem_.write(flash_done, fill_slot, block,
                                    blockBytes)
                             .done;
                     (void)dst;
                     eventq().schedule(
                         ready,
                         [done = std::move(done), ready]() {
                             done(ready);
                         },
                         "storage-fill");
                 });
}

void
SmartStorageController::writeBlock(std::uint64_t lba,
                                   const std::uint8_t *src, Done done)
{
    Addr slot = 0;
    if (cacheLookup(lba, slot))
        mem_.store().write(slot, src, blockBytes);
    device_.write(lba, 1, src, std::move(done));
}

void
SmartStorageController::scan(std::uint64_t lba, std::uint64_t blocks,
                             std::uint32_t record_bytes,
                             std::uint32_t key_offset,
                             std::uint64_t key,
                             std::uint64_t max_results, ScanDone done)
{
    ENZIAN_ASSERT(record_bytes >= 8 && key_offset + 8 <= record_bytes,
                  "bad scan record layout");
    ENZIAN_ASSERT(blockBytes % record_bytes == 0,
                  "records must pack into blocks");
    // Stream blocks from flash into the fabric filter; the result is
    // ready when the slower of the flash stream and the scan engine
    // finishes. Hot blocks come from the DRAM cache instead.
    const std::uint64_t bytes = blocks * blockBytes;
    std::vector<std::uint8_t> data(bytes);

    std::uint64_t flash_blocks = 0;
    Tick media_done = now();
    for (std::uint64_t b = 0; b < blocks; ++b) {
        Addr slot = 0;
        if (cacheLookup(lba + b, slot)) {
            hits_.inc();
            media_done = std::max(
                media_done,
                mem_.read(now(), slot, data.data() + b * blockBytes,
                          blockBytes)
                    .done);
        } else {
            misses_.inc();
            ++flash_blocks;
            device_.media().read((lba + b) * blockBytes,
                                 data.data() + b * blockBytes,
                                 blockBytes);
        }
    }
    // Timed flash streaming for the uncached portion, issued as one
    // large command per simplification.
    auto result = std::make_shared<ScanResult>();
    auto finish = [this, result, done = std::move(done)](Tick t) {
        eventq().schedule(
            t, [done, result, t]() { done(t, std::move(*result)); },
            "storage-scan-done");
    };

    // Functional filter.
    const std::uint64_t records = bytes / record_bytes;
    for (std::uint64_t r = 0; r < records; ++r) {
        const std::uint8_t *rec = data.data() + r * record_bytes;
        std::uint64_t k = 0;
        std::memcpy(&k, rec + key_offset, 8);
        ++result->records_scanned;
        if (k == key) {
            ++result->matches;
            if (result->matches <= max_results)
                result->rows.insert(result->rows.end(), rec,
                                    rec + record_bytes);
        }
    }
    result->bytes_to_host = result->rows.size() + 64;

    const double scan_s =
        static_cast<double>(bytes) /
        (cfg_.scan_bytes_per_cycle * cfg_.clock_hz);
    const Tick engine_done = now() + units::sec(scan_s);
    if (flash_blocks > 0) {
        device_.read(lba, static_cast<std::uint32_t>(flash_blocks),
                     data.data(),
                     [media_done, engine_done,
                      finish](Tick flash_done) {
                         finish(std::max(
                             {flash_done, media_done, engine_done}));
                     });
    } else {
        finish(std::max(media_done, engine_done));
    }
}

} // namespace enzian::storage
