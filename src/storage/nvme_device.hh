/**
 * @file
 * NVMe device model.
 *
 * Enzian's FPGA has "a single NVMe connector, to complement 3 x NVMe,
 * 4 x SATA, and a single PCIe x8 slot on the CPU" (paper section 4),
 * and section 6 proposes using the FPGA as "a smart programmable
 * storage controller, either with persistent storage connected via
 * the NVMe connector ... or instead using the large DRAM to emulate
 * non-volatile memory".
 *
 * The model is a queue-pair flash SSD: submission entries specify
 * block-granular reads/writes; the device executes them with
 * flash-like latencies (reads much faster than writes, internal
 * parallelism across channels) against a functional backing store.
 * A DRAM-emulated device (the paper's alternative) is the same model
 * with DRAM-class timing.
 */

#ifndef ENZIAN_STORAGE_NVME_DEVICE_HH
#define ENZIAN_STORAGE_NVME_DEVICE_HH

#include <functional>

#include "mem/backing_store.hh"
#include "sim/sim_object.hh"

namespace enzian::storage {

/** Logical block size. */
constexpr std::uint32_t blockBytes = 4096;

/** A queue-pair flash device. */
class NvmeDevice : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;

    /** Device characteristics. */
    struct Config
    {
        /** Capacity in bytes. */
        std::uint64_t capacity = 4ull << 30;
        /** 4K read latency (us). */
        double read_latency_us = 80.0;
        /** 4K program latency (us). */
        double write_latency_us = 500.0;
        /** Internal channels executing commands in parallel. */
        std::uint32_t channels = 8;
        /** Per-channel streaming bandwidth (MB/s). */
        double channel_mbps = 550.0;
        /** Command submission/completion processing (ns). */
        double queue_proc_ns = 900.0;
    };

    /** DRAM-emulated "NVM" per section 6 (same interface). */
    static Config dramEmulated(std::uint64_t capacity);

    NvmeDevice(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Submit a read of @p blocks blocks starting at @p lba.
     * @param dst destination buffer (blocks * blockBytes bytes)
     */
    void read(std::uint64_t lba, std::uint32_t blocks,
              std::uint8_t *dst, Done done);

    /** Submit a write. */
    void write(std::uint64_t lba, std::uint32_t blocks,
               const std::uint8_t *src, Done done);

    /** Functional access for loaders and checks. */
    mem::BackingStore &media() { return media_; }

    std::uint64_t blockCount() const
    {
        return cfg_.capacity / blockBytes;
    }

    std::uint64_t readsCompleted() const { return reads_.value(); }
    std::uint64_t writesCompleted() const { return writes_.value(); }

  private:
    Tick schedule(std::uint64_t blocks, bool write);

    Config cfg_;
    mem::BackingStore media_;
    std::vector<Tick> channelFreeAt_;
    std::uint32_t nextChannel_ = 0;
    Counter reads_;
    Counter writes_;
};

} // namespace enzian::storage

#endif // ENZIAN_STORAGE_NVME_DEVICE_HH
