/**
 * @file
 * Smart programmable storage controller (paper section 6).
 *
 * The FPGA fronts an NVMe device and runs "in-storage" functions
 * (e.g. [36], an in-storage index): instead of shipping raw blocks to
 * the CPU over ECI and filtering there, the query runs in the fabric
 * next to the device and only results cross the interconnect. The
 * controller also exposes a block cache in FPGA DRAM, so hot blocks
 * are served at DRAM latency - the "tiered memory" flavour of the
 * same idea.
 *
 * Offloaded function: count/collect records matching a key predicate
 * in a block range of fixed-size records (a filtering table scan).
 */

#ifndef ENZIAN_STORAGE_SMART_STORAGE_HH
#define ENZIAN_STORAGE_SMART_STORAGE_HH

#include <functional>
#include <list>
#include <unordered_map>

#include "mem/memory_controller.hh"
#include "storage/nvme_device.hh"

namespace enzian::storage {

/** Result of an in-storage scan. */
struct ScanResult
{
    std::uint64_t records_scanned = 0;
    std::uint64_t matches = 0;
    /** Matching records (bounded by the request's max_results). */
    std::vector<std::uint8_t> rows;
    /** Bytes that would have crossed to the host. */
    std::uint64_t bytes_to_host = 0;
};

/** The FPGA storage controller. */
class SmartStorageController : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;
    using ScanDone = std::function<void(Tick, ScanResult)>;

    /** Controller configuration. */
    struct Config
    {
        /** Block cache capacity in blocks (LRU, in FPGA DRAM). */
        std::uint64_t cache_blocks = 1024;
        /** Base of the cache region in FPGA DRAM. */
        Addr cache_base = 0;
        /** Scan engine bytes per fabric cycle. */
        double scan_bytes_per_cycle = 64.0;
        /** Fabric clock (Hz). */
        double clock_hz = 250e6;
    };

    SmartStorageController(std::string name, EventQueue &eq,
                           NvmeDevice &device,
                           mem::MemoryController &fpga_mem,
                           const Config &cfg);

    /**
     * Cached block read: hits come from FPGA DRAM, misses from flash
     * (and fill the cache).
     */
    void readBlock(std::uint64_t lba, std::uint8_t *dst, Done done);

    /** Write-through block write (updates cache if resident). */
    void writeBlock(std::uint64_t lba, const std::uint8_t *src,
                    Done done);

    /**
     * In-storage scan: stream @p blocks blocks from @p lba through
     * the fabric filter; records are @p record_bytes wide and match
     * when the u64 at @p key_offset equals @p key.
     */
    void scan(std::uint64_t lba, std::uint64_t blocks,
              std::uint32_t record_bytes, std::uint32_t key_offset,
              std::uint64_t key, std::uint64_t max_results,
              ScanDone done);

    std::uint64_t cacheHits() const { return hits_.value(); }
    std::uint64_t cacheMisses() const { return misses_.value(); }

  private:
    /** LRU bookkeeping: lba -> position in lru_. */
    bool cacheLookup(std::uint64_t lba, Addr &slot);
    Addr cacheInsert(std::uint64_t lba);

    NvmeDevice &device_;
    mem::MemoryController &mem_;
    Config cfg_;
    std::list<std::uint64_t> lru_; // front = most recent
    struct CacheEntry
    {
        std::list<std::uint64_t>::iterator lruPos;
        Addr slot;
    };
    std::unordered_map<std::uint64_t, CacheEntry> cached_;
    std::vector<Addr> freeSlots_;
    Counter hits_;
    Counter misses_;
};

} // namespace enzian::storage

#endif // ENZIAN_STORAGE_SMART_STORAGE_HH
