/**
 * @file
 * Serving testbed construction and saturation sweeps.
 */

#include "load/testbed.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "platform/platform_factory.hh"

namespace enzian::load {

const char *
toString(ServiceKind k)
{
    switch (k) {
      case ServiceKind::Gbdt:
        return "gbdt";
      case ServiceKind::Rdma:
        return "rdma";
      case ServiceKind::Tcp:
        return "tcp";
    }
    return "?";
}

ServiceKind
serviceKindFromString(const std::string &s)
{
    if (s == "gbdt")
        return ServiceKind::Gbdt;
    if (s == "rdma")
        return ServiceKind::Rdma;
    if (s == "tcp")
        return ServiceKind::Tcp;
    fatal("unknown service '%s' (gbdt, rdma, tcp)", s.c_str());
}

namespace {

/** RDMA target region the read offsets cycle through. */
constexpr std::uint64_t rdmaRegionBytes = 64ull << 20;

} // namespace

ServingTestbed::ServingTestbed(const TestbedConfig &cfg_in) : cfg_(cfg_in)
{
    if (cfg_.threads > 0 && cfg_.service != ServiceKind::Gbdt) {
        warn("serving testbed: %s service is not domain-safe; "
             "falling back to the single-queue machine",
             toString(cfg_.service));
        cfg_.threads = 0;
    }

    platform::EnzianMachine::Config mc =
        platform::servingMachineConfig();
    mc.protocol = cfg_.protocol;
    mc.threads = cfg_.threads;
    m_ = std::make_unique<platform::EnzianMachine>(mc);
    EventQueue &eq = m_->eventq();

    // The injector must exist before the service connects: reliable
    // TCP mode and RDMA retry are switched on at attach time.
    if (cfg_.plan) {
        injector_ = std::make_unique<fault::FaultInjector>(
            "serving.fault", eq, *cfg_.plan);
        injector_->attachEci(m_->fabric(), m_->cpuHome(),
                             m_->fpgaHome(), m_->cpuRemote(),
                             m_->fpgaRemote());
        injector_->attachDram(m_->cpuMem().dram(),
                              m_->fpgaMem().dram());
        if (cfg_.plan->hasKind(fault::FaultKind::BmcRailGlitch))
            injector_->attachBmc(m_->bmc());
    }

    switch (cfg_.service) {
      case ServiceKind::Gbdt: {
        ensemble_ =
            std::make_unique<accel::GbdtEnsemble>(accel::makeEnsemble(
                cfg_.seed ^ 0xd7ee5, platform::params::gbdtTrees,
                platform::params::gbdtDepth,
                platform::params::gbdtFeatures));
        gbdt_ = std::make_unique<accel::GbdtEngine>(
            "serving.gbdt", eq, *ensemble_,
            platform::gbdtPlatformConfig("Enzian", cfg_.gbdt_engines));
        driver_ = std::make_unique<GbdtServiceDriver>(
            *gbdt_, cfg_.gbdt_batch, cfg_.seed ^ 0x7ab1e);
        break;
      }
      case ServiceKind::Rdma: {
        net::Switch::Config swc;
        swc.port.mtu = 4096;
        sw_ = std::make_unique<net::Switch>("serving.sw", eq, 2, swc);
        if (cfg_.rdma_path == "dram") {
            rdmaPath_ =
                std::make_unique<net::DirectDramPath>(m_->fpgaMem());
        } else if (cfg_.rdma_path == "eci-host") {
            if (cfg_.rdma_bytes % cache::lineSize != 0)
                fatal("serving testbed: eci-host rdma needs "
                      "line-aligned sizes (%llu B lines)",
                      static_cast<unsigned long long>(
                          cache::lineSize));
            rdmaPath_ = std::make_unique<net::EciHostPath>(
                m_->fpgaRemote(), 0);
        } else {
            fatal("serving testbed: unknown rdma path '%s' "
                  "(dram, eci-host)",
                  cfg_.rdma_path.c_str());
        }
        net::RdmaTarget::Config tc;
        tc.port = 0;
        tc.mtu = swc.port.mtu;
        rdmaTgt_ = std::make_unique<net::RdmaTarget>(
            "serving.rdma.tgt", eq, *sw_, *rdmaPath_, tc);
        rdmaIni_ = std::make_unique<net::RdmaInitiator>(
            "serving.rdma.ini", eq, *sw_, 1, 0);
        if (injector_)
            injector_->attachRdma(*rdmaIni_, *rdmaTgt_,
                                  /*abandon_after_retries=*/true);
        driver_ = std::make_unique<RdmaServiceDriver>(
            *rdmaIni_, cfg_.rdma_bytes, rdmaRegionBytes);
        break;
      }
      case ServiceKind::Tcp: {
        sw_ = std::make_unique<net::Switch>("serving.sw", eq, 2,
                                            net::Switch::Config{});
        tcpClient_ = std::make_unique<net::TcpStack>(
            "serving.tcp.client", eq, *sw_, net::hostTcpConfig(0));
        tcpServer_ = std::make_unique<net::TcpStack>(
            "serving.tcp.server", eq, *sw_,
            net::fpgaTcpConfig(1, 250e6));
        if (injector_)
            injector_->attachNet(*tcpClient_, *tcpServer_);
        driver_ = std::make_unique<TcpEchoServiceDriver>(
            *tcpClient_, *tcpServer_, cfg_.tcp_flows, cfg_.tcp_bytes);
        break;
      }
    }

    if (injector_)
        injector_->arm();
}

ServingTestbed::~ServingTestbed() = default;

double
ServingTestbed::estimatedCapacityRps()
{
    switch (cfg_.service) {
      case ServiceKind::Gbdt:
        return 1.0 / gbdt_->serviceSeconds(cfg_.gbdt_batch);
      case ServiceKind::Rdma: {
        // The wire is the steady-state bottleneck: responses carry
        // the payload plus a header back over one 100G port.
        const double bw = sw_->port(0).effectiveBandwidth();
        return bw / static_cast<double>(cfg_.rdma_bytes +
                                        net::rdmaHeaderBytes);
      }
      case ServiceKind::Tcp: {
        if (measuredCapacity_ > 0.0)
            return measuredCapacity_;
        // Per-request cost on each stack: tx its direction plus rx
        // the other; the slower stack binds the echo rate.
        auto stack_secs = [&](const net::TcpStack::Config &c) {
            const double segs = std::ceil(
                static_cast<double>(cfg_.tcp_bytes) / c.mss);
            return (segs * (c.tx_fixed_ns + c.rx_fixed_ns) +
                    static_cast<double>(cfg_.tcp_bytes) *
                        (c.tx_per_byte_ns + c.rx_per_byte_ns)) *
                   1e-9;
        };
        const double client = stack_secs(tcpClient_->config());
        const double server = stack_secs(tcpServer_->config());
        // Host flows run one core each; the fpga pipeline is shared.
        const double client_eff =
            tcpClient_->config().shared_pipeline
                ? client
                : client / static_cast<double>(cfg_.tcp_flows);
        measuredCapacity_ = 1.0 / std::max(client_eff, server);
        return measuredCapacity_;
      }
    }
    return 0.0;
}

std::vector<double>
geometricRates(double lo, double hi, std::size_t n)
{
    ENZIAN_ASSERT(lo > 0.0 && hi >= lo && n >= 1,
                  "bad rate ladder [%f, %f] x %zu", lo, hi, n);
    std::vector<double> rates;
    rates.reserve(n);
    if (n == 1) {
        rates.push_back(hi);
        return rates;
    }
    const double step = std::pow(hi / lo, 1.0 / (n - 1));
    double r = lo;
    for (std::size_t i = 0; i < n; ++i, r *= step)
        rates.push_back(i + 1 == n ? hi : r);
    return rates;
}

SweepResult
runSweep(const SweepConfig &cfg)
{
    std::vector<double> rates = cfg.rates;
    if (rates.empty()) {
        ServingTestbed probe(cfg.testbed);
        const double cap = probe.estimatedCapacityRps();
        rates = geometricRates(0.10 * cap, 1.5 * cap,
                               cfg.auto_points);
    }

    SweepResult result;
    for (const double rate : rates) {
        ServingTestbed bed(cfg.testbed);

        obs::SloRecorder::Config sc;
        sc.name = "sweep";
        sc.window = cfg.window;
        sc.slo_latency_us = cfg.slo_latency_us;
        sc.slo_quantile = cfg.slo_quantile;
        obs::SloRecorder slo(sc);

        LoadGen::Config lc;
        lc.arrival = cfg.arrival;
        lc.arrival.rate_rps = rate;
        lc.duration = cfg.duration;
        lc.clients = cfg.clients;
        LoadGen gen("serving.loadgen", bed.eventq(), bed.driver(),
                    slo, lc);
        gen.start();
        bed.run();
        slo.rollTo(bed.machine().now());

        SweepPoint p;
        p.offered_rps = rate;
        p.offered = gen.offeredCount();
        p.completed = gen.completedCount();
        p.achieved_rps =
            static_cast<double>(p.completed) /
            units::toSeconds(cfg.duration);
        p.p50_us = slo.p50Us();
        p.p99_us = slo.p99Us();
        p.p999_us = slo.p999Us();
        p.mean_us = slo.meanUs();
        p.max_us = slo.maxUs();
        p.burn_rate = slo.burnRate();
        // A request that never completed (abandoned under faults) is
        // an SLO violation with infinite latency: the quantile is
        // only meaningful if at least that fraction completed at all.
        const double done_frac =
            p.offered ? static_cast<double>(p.completed) /
                            static_cast<double>(p.offered)
                      : 1.0;
        p.slo_ok = slo.sloMet() && done_frac >= cfg.slo_quantile;
        result.points.push_back(p);
    }

    // The knee: the highest offered load whose run met the SLO. The
    // ladder ascends, so scan from the top.
    for (int i = static_cast<int>(result.points.size()) - 1; i >= 0;
         --i) {
        if (result.points[i].slo_ok) {
            result.knee = i;
            result.knee_rps = result.points[i].offered_rps;
            break;
        }
    }
    return result;
}

} // namespace enzian::load
