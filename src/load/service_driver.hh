/**
 * @file
 * The common interface between the load generator and a service.
 *
 * The generator produces Requests on its arrival process; a
 * ServiceDriver turns each into real work on a simulated service (a
 * GBDT inference batch, an RDMA read, a TCP echo round trip) and
 * reports the completion tick. Drivers must tolerate any issue rate —
 * open-loop load means requests queue inside the service when it
 * saturates, which is exactly the regime the SLO harness measures.
 */

#ifndef ENZIAN_LOAD_SERVICE_DRIVER_HH
#define ENZIAN_LOAD_SERVICE_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/units.hh"

namespace enzian::load {

/** Perfetto track name for one traced request. */
inline std::string
requestTrack(std::uint64_t id)
{
    return "req/" + std::to_string(id);
}

/** One logical request from one of millions of logical clients. */
struct Request
{
    /** Sequence number, 1-based; doubles as the causal flow id. */
    std::uint64_t id = 0;
    /** Logical client (hashed from id; clients are O(1) state). */
    std::uint64_t client = 0;
    /** Arrival tick (the latency measurement starts here). */
    Tick arrival = 0;
    /** Emit per-request spans/flow events for this request. */
    bool traced = false;
};

/** Adapts one simulated service to the load generator. */
class ServiceDriver
{
  public:
    /** Completion callback with the request's completion tick. */
    using Done = std::function<void(Tick)>;

    virtual ~ServiceDriver() = default;

    /** Start serving @p req; call @p done exactly once when it ends. */
    virtual void issue(const Request &req, Done done) = 0;

    /** Short label for reports ("gbdt", "rdma", "tcp"). */
    virtual const char *kind() const = 0;
};

} // namespace enzian::load

#endif // ENZIAN_LOAD_SERVICE_DRIVER_HH
