/**
 * @file
 * Self-contained serving testbeds and saturation sweeps.
 *
 * A ServingTestbed owns an EnzianMachine plus the wiring for one
 * service behind a ServiceDriver: GBDT inference on the FPGA engine,
 * RDMA reads against FPGA DRAM or ECI-coherent host memory, or TCP
 * echo between a host stack and the FPGA stack. An optional FaultPlan
 * is attached (and its recovery machinery enabled) before the service
 * connects, so SLO deltas under faults are one flag away.
 *
 * runSweep() is the capacity-planning primitive: drive the testbed at
 * a ladder of offered rates, fresh machine per point (so points are
 * independent), and report the knee — the highest offered load whose
 * run still meets the SLO at the configured quantile.
 */

#ifndef ENZIAN_LOAD_TESTBED_HH
#define ENZIAN_LOAD_TESTBED_HH

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "load/drivers.hh"
#include "load/load_gen.hh"
#include "platform/enzian_machine.hh"

namespace enzian::load {

/** Which service a testbed serves. */
enum class ServiceKind : std::uint8_t { Gbdt, Rdma, Tcp };

const char *toString(ServiceKind k);
ServiceKind serviceKindFromString(const std::string &s);

/** Testbed construction parameters. */
struct TestbedConfig
{
    ServiceKind service = ServiceKind::Gbdt;
    /** Coherence protocol for the machine. */
    std::string protocol = "moesi";
    /**
     * Parallel domain mode thread count (0 = classic single queue).
     * Only the GBDT service is domain-safe; other services warn and
     * fall back to 0.
     */
    std::uint32_t threads = 0;
    /** Seed for tuple pools and machine-level randomness. */
    std::uint64_t seed = 1;

    // -- gbdt ----------------------------------------------------------
    std::uint32_t gbdt_engines = 1;
    std::uint64_t gbdt_batch = 512;

    // -- rdma ----------------------------------------------------------
    std::uint64_t rdma_bytes = 4096;
    /** "dram" or "eci-host". */
    std::string rdma_path = "dram";

    // -- tcp -----------------------------------------------------------
    std::uint64_t tcp_bytes = 2048;
    std::uint32_t tcp_flows = 4;

    /** Optional fault plan armed against the testbed (not owned). */
    const fault::FaultPlan *plan = nullptr;
};

/** One service wired up and ready for a LoadGen. */
class ServingTestbed
{
  public:
    explicit ServingTestbed(const TestbedConfig &cfg);
    ~ServingTestbed();

    ServingTestbed(const ServingTestbed &) = delete;
    ServingTestbed &operator=(const ServingTestbed &) = delete;

    ServiceDriver &driver() { return *driver_; }
    platform::EnzianMachine &machine() { return *m_; }
    EventQueue &eventq() { return m_->eventq(); }
    fault::FaultInjector *injector() { return injector_.get(); }

    /** Run the machine until all queued work drains. */
    void run() { m_->run(); }

    /**
     * Service-rate estimate (requests/second) used to build sweep
     * ladders: analytic for GBDT (batch service time), measured with
     * one probe request for RDMA/TCP.
     */
    double estimatedCapacityRps();

    const TestbedConfig &config() const { return cfg_; }

  private:
    TestbedConfig cfg_;
    std::unique_ptr<platform::EnzianMachine> m_;
    std::unique_ptr<fault::FaultInjector> injector_;

    // gbdt
    std::unique_ptr<accel::GbdtEnsemble> ensemble_;
    std::unique_ptr<accel::GbdtEngine> gbdt_;

    // rdma / tcp share the switch
    std::unique_ptr<net::Switch> sw_;
    std::unique_ptr<net::MemoryPath> rdmaPath_;
    std::unique_ptr<net::RdmaTarget> rdmaTgt_;
    std::unique_ptr<net::RdmaInitiator> rdmaIni_;
    std::unique_ptr<net::TcpStack> tcpClient_;
    std::unique_ptr<net::TcpStack> tcpServer_;

    std::unique_ptr<ServiceDriver> driver_;
    double measuredCapacity_ = 0.0;
};

/** Sweep parameters. */
struct SweepConfig
{
    TestbedConfig testbed;
    /** Arrival shape; rate_rps is overridden per ladder point. */
    ArrivalConfig arrival;
    Tick duration = units::ms(50.0);
    Tick window = units::ms(5.0);
    double slo_latency_us = 1000.0;
    double slo_quantile = 0.99;
    std::uint64_t clients = 1'000'000;
    /**
     * Offered-rate ladder (requests/second, ascending). Empty = auto:
     * a geometric ladder from 10% to 150% of the testbed's estimated
     * capacity.
     */
    std::vector<double> rates;
    /** Auto-ladder size when rates is empty. */
    std::size_t auto_points = 8;
};

/** One measured operating point. */
struct SweepPoint
{
    double offered_rps = 0.0;
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    double achieved_rps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
    double burn_rate = 0.0;
    bool slo_ok = false;
};

/** Sweep outcome. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    /** Index of the knee point, or -1 if no point meets the SLO. */
    int knee = -1;
    /** Offered rate at the knee (0 when knee < 0). */
    double knee_rps = 0.0;
};

/** @p n geometrically spaced rates over [lo, hi]. */
std::vector<double> geometricRates(double lo, double hi, std::size_t n);

/** Run the saturation sweep; fresh testbed per ladder point. */
SweepResult runSweep(const SweepConfig &cfg);

} // namespace enzian::load

#endif // ENZIAN_LOAD_TESTBED_HH
