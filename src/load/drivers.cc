/**
 * @file
 * Service driver implementations.
 */

#include "load/drivers.hh"

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::load {

GbdtServiceDriver::GbdtServiceDriver(accel::GbdtEngine &engine,
                                     std::uint64_t batch,
                                     std::uint64_t tuple_seed)
    : engine_(engine), batch_(batch)
{
    if (batch_ == 0)
        fatal("gbdt driver: batch must be nonzero");
    tuples_ = accel::makeTuples(tuple_seed, batch_ * kPoolBatches,
                                engine_.config().features);
}

void
GbdtServiceDriver::issue(const Request &req, Done done)
{
    const std::uint64_t slot = req.id % kPoolBatches;
    const float *batch = tuples_.data() +
                         slot * batch_ * engine_.config().features;
    const Tick submit = engine_.now();
    const bool traced = req.traced;
    const std::uint64_t id = req.id;
    engine_.serve(batch, batch_, nullptr,
                  [done = std::move(done), submit, traced,
                   id](Tick start, Tick end) {
                      if (traced) {
                          const std::string track = requestTrack(id);
                          ENZIAN_SPAN(track, "queue", submit, start);
                          ENZIAN_SPAN(track, "service", start, end);
                      }
                      done(end);
                  });
}

RdmaServiceDriver::RdmaServiceDriver(net::RdmaInitiator &initiator,
                                     std::uint64_t bytes,
                                     std::uint64_t region_bytes)
    : initiator_(initiator), bytes_(bytes), regionBytes_(region_bytes),
      buf_(bytes)
{
    if (bytes_ == 0 || regionBytes_ < bytes_)
        fatal("rdma driver: need 0 < bytes <= region");
}

void
RdmaServiceDriver::issue(const Request &req, Done done)
{
    const Addr off = nextOff_;
    // Cycle line-aligned offsets so successive reads touch fresh
    // lines (the eci-host path requires the alignment anyway).
    const std::uint64_t step =
        (bytes_ + cache::lineSize - 1) / cache::lineSize *
        cache::lineSize;
    nextOff_ = (off + step + bytes_ <= regionBytes_) ? off + step : 0;

    const Tick submit = initiator_.now();
    const bool traced = req.traced;
    const std::uint64_t id = req.id;
    initiator_.read(off, buf_.data(), bytes_,
                    [done = std::move(done), submit, traced,
                     id](Tick t) {
                        if (traced)
                            ENZIAN_SPAN(requestTrack(id), "rdma-read",
                                        submit, t);
                        done(t);
                    });
}

TcpEchoServiceDriver::TcpEchoServiceDriver(net::TcpStack &client,
                                           net::TcpStack &server,
                                           std::uint32_t flows,
                                           std::uint64_t bytes)
    : client_(client), server_(server), bytes_(bytes)
{
    if (flows == 0 || bytes_ == 0)
        fatal("tcp echo driver: need flows > 0 and bytes > 0");
    flows_.resize(flows);
    for (std::uint32_t i = 0; i < flows; ++i) {
        flows_[i].flowId = client_.connect(server_);
        byFlowId_.emplace(flows_[i].flowId, i);
    }
    server_.setReceiveCallback(
        [this](std::uint32_t flow, std::uint64_t n) {
            onServerRx(flow, n);
        });
    client_.setReceiveCallback(
        [this](std::uint32_t flow, std::uint64_t n) {
            onClientRx(flow, n);
        });
}

void
TcpEchoServiceDriver::onServerRx(std::uint32_t flow, std::uint64_t n)
{
    auto it = byFlowId_.find(flow);
    if (it == byFlowId_.end())
        return;
    FlowState &fs = flows_[it->second];
    fs.serverRx += n;
    while (fs.serverRx >= bytes_) {
        fs.serverRx -= bytes_;
        server_.send(flow, bytes_, net::TcpStack::Done());
    }
}

void
TcpEchoServiceDriver::onClientRx(std::uint32_t flow, std::uint64_t n)
{
    auto it = byFlowId_.find(flow);
    if (it == byFlowId_.end())
        return;
    FlowState &fs = flows_[it->second];
    fs.clientRx += n;
    while (fs.clientRx >= bytes_ && !fs.waiting.empty()) {
        fs.clientRx -= bytes_;
        Waiter w = std::move(fs.waiting.front());
        fs.waiting.pop_front();
        const Tick t = client_.now();
        if (w.traced)
            ENZIAN_SPAN(requestTrack(w.id), "tcp-echo", w.submit, t);
        w.done(t);
    }
}

void
TcpEchoServiceDriver::issue(const Request &req, Done done)
{
    FlowState &fs = flows_[req.id % flows_.size()];
    fs.waiting.push_back(
        Waiter{req.id, client_.now(), req.traced, std::move(done)});
    client_.send(fs.flowId, bytes_, net::TcpStack::Done());
}

} // namespace enzian::load
