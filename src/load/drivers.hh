/**
 * @file
 * ServiceDriver implementations for the platform's three services.
 *
 * Each driver adapts one existing subsystem to the open-loop
 * generator without changing the subsystem's API: GBDT inference
 * batches queue FIFO on the engine, RDMA reads cycle line-aligned
 * offsets through a target memory region, and TCP echo round-trips
 * fan out over a small set of persistent flows. Traced requests get a
 * per-request "req/<id>" Perfetto track with their queue/service
 * breakdown; the flow id the generator publishes stitches those spans
 * to the component-level spans the subsystems emit.
 */

#ifndef ENZIAN_LOAD_DRIVERS_HH
#define ENZIAN_LOAD_DRIVERS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/gbdt_engine.hh"
#include "load/service_driver.hh"
#include "net/rdma_engine.hh"
#include "net/tcp_stack.hh"

namespace enzian::load {

/** One request = one @p batch-tuple inference on a GbdtEngine. */
class GbdtServiceDriver final : public ServiceDriver
{
  public:
    /**
     * @param batch tuples per request
     * @param tuple_seed seed for the deterministic tuple pool
     */
    GbdtServiceDriver(accel::GbdtEngine &engine, std::uint64_t batch,
                      std::uint64_t tuple_seed);

    void issue(const Request &req, Done done) override;
    const char *kind() const override { return "gbdt"; }

    std::uint64_t batch() const { return batch_; }

  private:
    accel::GbdtEngine &engine_;
    std::uint64_t batch_;
    /** Requests cycle through a small pool of pre-made batches. */
    static constexpr std::uint64_t kPoolBatches = 8;
    std::vector<float> tuples_;
};

/** One request = one RDMA read of @p bytes from the target region. */
class RdmaServiceDriver final : public ServiceDriver
{
  public:
    /**
     * @param bytes read size (rounded handling is the caller's job:
     *        must be line-aligned for the eci-host path)
     * @param region_bytes target region the offsets cycle through
     */
    RdmaServiceDriver(net::RdmaInitiator &initiator,
                      std::uint64_t bytes, std::uint64_t region_bytes);

    void issue(const Request &req, Done done) override;
    const char *kind() const override { return "rdma"; }

  private:
    net::RdmaInitiator &initiator_;
    std::uint64_t bytes_;
    std::uint64_t regionBytes_;
    Addr nextOff_ = 0;
    /** Shared landing buffer; payloads are not inspected. */
    std::vector<std::uint8_t> buf_;
};

/**
 * One request = @p bytes to the echo server and @p bytes back,
 * measured to the last echoed byte. Requests hash over a fixed set of
 * persistent flows; each flow's round trips complete in FIFO order
 * (TCP ordering guarantees this), so completions match requests by
 * position.
 */
class TcpEchoServiceDriver final : public ServiceDriver
{
  public:
    /**
     * Connects @p flows flows from @p client to @p server and
     * installs both receive callbacks — so neither stack may have its
     * receive callback in use elsewhere, and fault plans must attach
     * (reliable mode) before construction.
     */
    TcpEchoServiceDriver(net::TcpStack &client, net::TcpStack &server,
                         std::uint32_t flows, std::uint64_t bytes);

    void issue(const Request &req, Done done) override;
    const char *kind() const override { return "tcp"; }

  private:
    struct Waiter
    {
        std::uint64_t id;
        Tick submit;
        bool traced;
        Done done;
    };

    struct FlowState
    {
        std::uint32_t flowId = 0;
        std::uint64_t serverRx = 0; // bytes toward the next echo
        std::uint64_t clientRx = 0; // bytes toward the next completion
        std::deque<Waiter> waiting;
    };

    void onServerRx(std::uint32_t flow, std::uint64_t n);
    void onClientRx(std::uint32_t flow, std::uint64_t n);

    net::TcpStack &client_;
    net::TcpStack &server_;
    std::uint64_t bytes_;
    std::vector<FlowState> flows_;
    std::unordered_map<std::uint32_t, std::size_t> byFlowId_;
};

} // namespace enzian::load

#endif // ENZIAN_LOAD_DRIVERS_HH
