/**
 * @file
 * Open-loop arrival processes for the serving load generator.
 *
 * Each process produces the gap to the next request arrival as a
 * function of its own seeded RNG stream only — never of service
 * completions — which is what makes the generator open-loop: a slow
 * server cannot throttle offered load, so queueing delay shows up in
 * the latency distribution instead of silently vanishing into a
 * closed feedback loop.
 *
 * Three shapes cover the serving scenarios the ROADMAP asks for:
 *
 *  - Poisson: memoryless arrivals at a constant rate, the classic
 *    baseline.
 *  - MMPP: a 2-state Markov-modulated Poisson process alternating
 *    between a quiet and a bursty rate with exponentially distributed
 *    dwell times; the configured rate is the long-run mean. Sampling
 *    is exact (no discretization): the exponential's memorylessness
 *    lets the gap re-draw at each state switch.
 *  - Diurnal: a sinusoidally rate-modulated Poisson process (a whole
 *    day compressed into one configurable period), sampled by
 *    Lewis-Shedler thinning against the peak rate.
 */

#ifndef ENZIAN_LOAD_ARRIVAL_HH
#define ENZIAN_LOAD_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.hh"
#include "base/units.hh"

namespace enzian::load {

/** Arrival process shapes. */
enum class ArrivalKind : std::uint8_t { Poisson, Mmpp, Diurnal };

/** Short name ("poisson", "mmpp", "diurnal"). */
const char *toString(ArrivalKind k);

/** Parse a short name; fatal() on unknown names. */
ArrivalKind arrivalKindFromString(const std::string &s);

/** Arrival process configuration. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Long-run mean offered rate (requests/second). */
    double rate_rps = 1000.0;
    /** RNG stream seed; same seed => same arrival sequence. */
    std::uint64_t seed = 1;
    /** MMPP: burst-state rate as a multiple of the quiet rate. */
    double mmpp_burst_ratio = 9.0;
    /** MMPP: mean dwell time in each state. */
    Tick mmpp_dwell = units::us(2000.0);
    /** Diurnal: modulation depth in [0, 1); peak = rate*(1+A). */
    double diurnal_amplitude = 0.8;
    /** Diurnal: one full day's period in sim time. */
    Tick diurnal_period = units::ms(100.0);
};

/** A seeded stream of inter-arrival gaps. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Ticks until the next arrival (>= 1). */
    virtual Tick nextGap() = 0;

    /** The configuration this process was built from. */
    virtual const ArrivalConfig &config() const = 0;

    /** Build the process @p cfg describes; fatal() on bad configs. */
    static std::unique_ptr<ArrivalProcess> make(const ArrivalConfig &cfg);
};

} // namespace enzian::load

#endif // ENZIAN_LOAD_ARRIVAL_HH
