/**
 * @file
 * Open-loop traffic generator.
 *
 * Schedules request arrivals from an ArrivalProcess independently of
 * completions (millions of logical clients are one counter and a
 * hash, not objects), issues each request through a ServiceDriver,
 * and records the arrival-to-completion latency into an SloRecorder.
 * The first `trace_requests` requests are flow-traced: the generator
 * opens a "req/<id>" Perfetto track, publishes the request id as the
 * ambient flow id while the driver issues (obs::FlowScope), and closes
 * the flow at completion — so one request's queue/service/transit
 * breakdown reads as a single arrow-linked chain in the trace.
 */

#ifndef ENZIAN_LOAD_LOAD_GEN_HH
#define ENZIAN_LOAD_LOAD_GEN_HH

#include <memory>

#include "load/arrival.hh"
#include "load/service_driver.hh"
#include "obs/slo.hh"
#include "sim/sim_object.hh"

namespace enzian::load {

/** The open-loop generator driving one service. */
class LoadGen : public SimObject
{
  public:
    struct Config
    {
        ArrivalConfig arrival;
        /** Offered-load duration; arrivals stop after this. */
        Tick duration = units::ms(50.0);
        /** Logical client population (id space only, O(1) state). */
        std::uint64_t clients = 1'000'000;
        /** Flow-trace the first N requests (0 = tracing off). */
        std::uint64_t trace_requests = 0;
    };

    LoadGen(std::string name, EventQueue &eq, ServiceDriver &drv,
            obs::SloRecorder &slo, const Config &cfg);

    /**
     * Begin offering load: the first arrival lands one gap after
     * now(), the last at or before now() + duration. Call once.
     */
    void start();

    /** Arrival tick of the last possible request. */
    Tick stopAt() const { return stopAt_; }

    std::uint64_t offeredCount() const { return offered_.value(); }
    std::uint64_t completedCount() const { return completed_.value(); }
    std::uint64_t inflightCount() const
    {
        return offered_.value() - completed_.value();
    }

    const Config &config() const { return cfg_; }

  private:
    void onArrival();

    ServiceDriver &drv_;
    obs::SloRecorder &slo_;
    Config cfg_;
    std::unique_ptr<ArrivalProcess> arrivals_;
    Event arrivalEv_;
    Tick stopAt_ = 0;
    std::uint64_t seq_ = 0;

    Counter offered_;
    Counter completed_;
    Gauge inflight_;
};

} // namespace enzian::load

#endif // ENZIAN_LOAD_LOAD_GEN_HH
