/**
 * @file
 * Arrival process implementations.
 */

#include "load/arrival.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace enzian::load {

const char *
toString(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Mmpp:
        return "mmpp";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

ArrivalKind
arrivalKindFromString(const std::string &s)
{
    if (s == "poisson")
        return ArrivalKind::Poisson;
    if (s == "mmpp")
        return ArrivalKind::Mmpp;
    if (s == "diurnal")
        return ArrivalKind::Diurnal;
    fatal("unknown arrival process '%s' (poisson, mmpp, diurnal)",
          s.c_str());
}

namespace {

/** Exponential draw with rate @p lambda_per_tick, in ticks (>= 1). */
Tick
expGapTicks(Rng &rng, double lambda_per_sec)
{
    // Inverse CDF on (0, 1]; 1-u avoids log(0).
    const double u = rng.uniform();
    const double secs = -std::log1p(-u) / lambda_per_sec;
    const Tick t = units::sec(secs);
    return t == 0 ? 1 : t;
}

class PoissonArrivals final : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(const ArrivalConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {
    }

    Tick nextGap() override { return expGapTicks(rng_, cfg_.rate_rps); }

    const ArrivalConfig &config() const override { return cfg_; }

  private:
    ArrivalConfig cfg_;
    Rng rng_;
};

/**
 * 2-state MMPP with equal mean dwell in each state, so the long-run
 * mean rate is (lo + hi) / 2 == cfg.rate_rps exactly.
 */
class MmppArrivals final : public ArrivalProcess
{
  public:
    explicit MmppArrivals(const ArrivalConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {
        rateLo_ = 2.0 * cfg_.rate_rps / (1.0 + cfg_.mmpp_burst_ratio);
        rateHi_ = rateLo_ * cfg_.mmpp_burst_ratio;
        dwellLeft_ = drawDwell();
    }

    Tick
    nextGap() override
    {
        Tick gap = 0;
        for (;;) {
            const Tick g =
                expGapTicks(rng_, bursty_ ? rateHi_ : rateLo_);
            if (g <= dwellLeft_) {
                dwellLeft_ -= g;
                gap += g;
                return gap == 0 ? 1 : gap;
            }
            // The state switches before this arrival would land; by
            // memorylessness the residual gap re-draws at the new
            // state's rate, so just consume the dwell and retry.
            gap += dwellLeft_;
            bursty_ = !bursty_;
            dwellLeft_ = drawDwell();
        }
    }

    const ArrivalConfig &config() const override { return cfg_; }

  private:
    Tick
    drawDwell()
    {
        const double u = rng_.uniform();
        const double secs =
            -std::log1p(-u) * units::toSeconds(cfg_.mmpp_dwell);
        const Tick t = units::sec(secs);
        return t == 0 ? 1 : t;
    }

    ArrivalConfig cfg_;
    Rng rng_;
    double rateLo_;
    double rateHi_;
    bool bursty_ = false;
    Tick dwellLeft_;
};

/**
 * Sinusoidal rate modulation sampled by thinning: candidate arrivals
 * at the peak rate, each kept with probability lambda(t)/peak. The
 * mean of lambda over a full period is exactly cfg.rate_rps.
 */
class DiurnalArrivals final : public ArrivalProcess
{
  public:
    explicit DiurnalArrivals(const ArrivalConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {
        peak_ = cfg_.rate_rps * (1.0 + cfg_.diurnal_amplitude);
    }

    Tick
    nextGap() override
    {
        Tick gap = 0;
        for (;;) {
            const Tick g = expGapTicks(rng_, peak_);
            gap += g;
            phase_ += g;
            const double frac =
                static_cast<double>(phase_ % cfg_.diurnal_period) /
                static_cast<double>(cfg_.diurnal_period);
            const double lambda =
                cfg_.rate_rps *
                (1.0 + cfg_.diurnal_amplitude *
                           std::sin(2.0 * M_PI * frac));
            if (rng_.uniform() * peak_ < lambda)
                return gap == 0 ? 1 : gap;
        }
    }

    const ArrivalConfig &config() const override { return cfg_; }

  private:
    ArrivalConfig cfg_;
    Rng rng_;
    double peak_;
    /** Sim time since the process started (tracks issued gaps). */
    Tick phase_ = 0;
};

} // namespace

std::unique_ptr<ArrivalProcess>
ArrivalProcess::make(const ArrivalConfig &cfg)
{
    if (cfg.rate_rps <= 0.0)
        fatal("arrival process: rate %.3f rps must be positive",
              cfg.rate_rps);
    switch (cfg.kind) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(cfg);
      case ArrivalKind::Mmpp:
        if (cfg.mmpp_burst_ratio < 1.0 || cfg.mmpp_dwell == 0)
            fatal("mmpp arrivals: burst ratio must be >= 1 and dwell "
                  "nonzero");
        return std::make_unique<MmppArrivals>(cfg);
      case ArrivalKind::Diurnal:
        if (cfg.diurnal_amplitude < 0.0 ||
            cfg.diurnal_amplitude >= 1.0 || cfg.diurnal_period == 0)
            fatal("diurnal arrivals: amplitude must be in [0, 1) and "
                  "period nonzero");
        return std::make_unique<DiurnalArrivals>(cfg);
    }
    fatal("arrival process: bad kind");
}

} // namespace enzian::load
