/**
 * @file
 * Load generator implementation.
 */

#include "load/load_gen.hh"

#include "base/logging.hh"
#include "obs/request_context.hh"
#include "obs/span_tracer.hh"

namespace enzian::load {

namespace {

/** splitmix64 finalizer: spread request ids over the client space. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

LoadGen::LoadGen(std::string name, EventQueue &eq, ServiceDriver &drv,
                 obs::SloRecorder &slo, const Config &cfg)
    : SimObject(std::move(name), eq), drv_(drv), slo_(slo), cfg_(cfg),
      arrivals_(ArrivalProcess::make(cfg.arrival))
{
    if (cfg_.duration == 0 || cfg_.clients == 0)
        fatal("load gen '%s': need duration > 0 and clients > 0",
              SimObject::name().c_str());
    stats().addCounter("offered", &offered_);
    stats().addCounter("completed", &completed_);
    stats().addGauge("inflight", &inflight_);
    arrivalEv_.init(eq, [this]() { onArrival(); }, "loadgen-arrival");
}

void
LoadGen::start()
{
    stopAt_ = now() + cfg_.duration;
    const Tick first = now() + arrivals_->nextGap();
    if (first <= stopAt_)
        arrivalEv_.schedule(first);
}

void
LoadGen::onArrival()
{
    const Tick arrival = now();
    const std::uint64_t id = ++seq_;
    const bool traced = id <= cfg_.trace_requests;

    Request req;
    req.id = id;
    req.client = mix64(id) % cfg_.clients;
    req.arrival = arrival;
    req.traced = traced;

    offered_.inc();
    inflight_.add(1.0);

    if (traced) {
        const std::string track = requestTrack(id);
        ENZIAN_SPAN_INSTANT(track, "arrival", arrival);
        ENZIAN_FLOW_BEGIN(track, "request", arrival, id);
    }

    {
        // Publish the flow id for the synchronous part of the issue
        // path; components stash it in their per-op state.
        obs::FlowScope scope(traced ? id : 0);
        drv_.issue(req, [this, id, arrival, traced](Tick t) {
            completed_.inc();
            inflight_.add(-1.0);
            slo_.record(arrival, t);
            if (traced) {
                const std::string track = requestTrack(id);
                ENZIAN_SPAN(track, "request", arrival, t);
                ENZIAN_FLOW_END(track, "request", t, id);
            }
        });
    }

    // Open loop: the next arrival depends only on the process, never
    // on completions.
    const Tick next = arrival + arrivals_->nextGap();
    if (next <= stopAt_)
        arrivalEv_.schedule(next);
}

} // namespace enzian::load
