/**
 * @file
 * Sequence solver implementation.
 */

#include "bmc/sequence_solver.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::bmc {

void
SequenceSolver::addRail(const RailSpec &spec)
{
    if (spec.name.empty())
        fatal("rail with empty name");
    if (specs_.count(spec.name))
        fatal("rail '%s' declared twice", spec.name.c_str());
    specs_[spec.name] = spec;
    declarationOrder_.push_back(spec.name);
}

std::vector<std::string>
SequenceSolver::topoOrder() const
{
    // Kahn's algorithm over the requires-up graph, iterating in
    // declaration order for deterministic output.
    std::map<std::string, std::size_t> indegree;
    for (const auto &name : declarationOrder_)
        indegree[name] = 0;
    for (const auto &[name, spec] : specs_) {
        for (const auto &dep : spec.requires_up) {
            if (!specs_.count(dep))
                fatal("rail '%s' requires undeclared rail '%s'",
                      name.c_str(), dep.c_str());
            ++indegree[name];
        }
    }

    std::vector<std::string> ready;
    for (const auto &name : declarationOrder_)
        if (indegree[name] == 0)
            ready.push_back(name);

    std::vector<std::string> order;
    while (!ready.empty()) {
        const std::string rail = ready.front();
        ready.erase(ready.begin());
        order.push_back(rail);
        for (const auto &name : declarationOrder_) {
            const RailSpec &spec = specs_.at(name);
            if (std::find(spec.requires_up.begin(),
                          spec.requires_up.end(),
                          rail) != spec.requires_up.end()) {
                if (--indegree[name] == 0)
                    ready.push_back(name);
            }
        }
    }
    if (order.size() != specs_.size())
        fatal("power sequencing requirements contain a cycle");
    return order;
}

double
SequenceSolver::settledAt(const std::vector<SequenceStep> &schedule,
                          const std::string &rail) const
{
    for (const auto &step : schedule) {
        if (step.rail == rail) {
            const RailSpec &spec = specs_.at(rail);
            return step.at_ms + spec.ramp_ms + spec.settle_ms;
        }
    }
    fatal("rail '%s' not in schedule", rail.c_str());
}

std::vector<SequenceStep>
SequenceSolver::powerUpSequence() const
{
    std::vector<SequenceStep> schedule;
    for (const auto &rail : topoOrder()) {
        const RailSpec &spec = specs_.at(rail);
        double start = 0.0;
        for (const auto &dep : spec.requires_up)
            start = std::max(start, settledAt(schedule, dep));
        schedule.push_back(SequenceStep{rail, start});
    }

    std::string error;
    if (!validate(schedule, error))
        panic("solver produced an invalid schedule: %s", error.c_str());
    return schedule;
}

std::vector<SequenceStep>
SequenceSolver::powerDownSequence() const
{
    // Going down, a rail may only drop after everything that requires
    // it has dropped: reverse topological order, spaced by ramp times.
    std::vector<std::string> order = topoOrder();
    std::reverse(order.begin(), order.end());
    std::vector<SequenceStep> schedule;
    double t = 0.0;
    for (const auto &rail : order) {
        schedule.push_back(SequenceStep{rail, t});
        t += specs_.at(rail).ramp_ms;
    }
    return schedule;
}

bool
SequenceSolver::validate(const std::vector<SequenceStep> &schedule,
                         std::string &error) const
{
    if (schedule.size() != specs_.size()) {
        error = "schedule does not cover every declared rail";
        return false;
    }
    std::map<std::string, double> start_of;
    for (const auto &step : schedule) {
        if (!specs_.count(step.rail)) {
            error = "schedule names undeclared rail '" + step.rail + "'";
            return false;
        }
        if (start_of.count(step.rail)) {
            error = "rail '" + step.rail + "' appears twice";
            return false;
        }
        start_of[step.rail] = step.at_ms;
    }
    for (const auto &step : schedule) {
        const RailSpec &spec = specs_.at(step.rail);
        for (const auto &dep : spec.requires_up) {
            const RailSpec &dspec = specs_.at(dep);
            const double settled =
                start_of.at(dep) + dspec.ramp_ms + dspec.settle_ms;
            if (step.at_ms + 1e-9 < settled) {
                error = "rail '" + step.rail + "' starts before '" +
                        dep + "' settles";
                return false;
            }
        }
    }
    return true;
}

} // namespace enzian::bmc
