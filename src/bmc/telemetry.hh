/**
 * @file
 * BMC telemetry service.
 *
 * The dbus-based telemetry service of the paper's section 5.5: it
 * polls a watch-list of regulators over PMBus on a fixed period
 * (20 ms in the paper's Figure 12 run) and records voltage, current,
 * power, and temperature per rail. Every sample really goes through
 * the I2C bus model, so the achievable sampling rate is bounded by
 * bus occupancy exactly as on the real board (~5 ms per regulator
 * query).
 */

#ifndef ENZIAN_BMC_TELEMETRY_HH
#define ENZIAN_BMC_TELEMETRY_HH

#include <ostream>
#include <string>
#include <vector>

#include "bmc/pmbus.hh"

namespace enzian::bmc {

/** One telemetry record. */
struct TelemetrySample
{
    Tick when = 0;
    std::string rail;
    double volts = 0.0;
    double amps = 0.0;
    double watts = 0.0;
    double temp_c = 0.0;
};

/** Periodic PMBus poller. */
class Telemetry : public SimObject
{
  public:
    Telemetry(std::string name, EventQueue &eq, PmbusMaster &master);

    /** Add @p rail (at PMBus @p addr) to the watch list. */
    void watch(const std::string &rail, std::uint8_t addr);

    /**
     * Start sampling every @p period until stop(); the first sweep
     * begins immediately.
     */
    void start(Tick period);

    /** Stop after the current sweep. */
    void stop() { running_ = false; }

    const std::vector<TelemetrySample> &samples() const
    {
        return samples_;
    }

    /** Write "time_s,rail,volts,amps,watts,temp_c" rows. */
    void dumpCsv(std::ostream &os) const;

    /** Latest sample for @p rail, or nullptr. */
    const TelemetrySample *latest(const std::string &rail) const;

  private:
    void sweep();

    struct Watched
    {
        std::string rail;
        std::uint8_t addr;
    };

    PmbusMaster &master_;
    std::vector<Watched> watched_;
    std::vector<TelemetrySample> samples_;
    Tick period_ = 0;
    bool running_ = false;
    /** Reusable sweep event (one slot for the service's lifetime). */
    Event sweepEv_;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_TELEMETRY_HH
