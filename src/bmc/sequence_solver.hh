/**
 * @file
 * Declarative power sequencing.
 *
 * "Given the precise thresholds and sequencing requirements of the
 * system components, finding a correct sequence and configuration for
 * the 25 regulators requires non-trivial engineering. ... we
 * developed a technique of declarative power sequencing in which
 * powering requirements are specified, and then a solver is used to
 * generate a provably correct sequence" (paper section 4.2, ref
 * [60]). Rails declare what must be up and settled before they may
 * start; the solver produces a schedule by topological levelling,
 * rejects cyclic requirements, and a separate validator checks any
 * proposed schedule against the declarations (so the "provably
 * correct" property is machine-checked, not assumed).
 */

#ifndef ENZIAN_BMC_SEQUENCE_SOLVER_HH
#define ENZIAN_BMC_SEQUENCE_SOLVER_HH

#include <map>
#include <string>
#include <vector>

namespace enzian::bmc {

/** Declarative powering requirements of one rail. */
struct RailSpec
{
    std::string name;
    /** Rails that must be up and settled before this one starts. */
    std::vector<std::string> requires_up;
    /** Soft-start ramp time (ms). */
    double ramp_ms = 2.0;
    /** Additional settle margin after the ramp (ms). */
    double settle_ms = 1.0;
};

/** One step of a solved schedule. */
struct SequenceStep
{
    std::string rail;
    /** Time the rail's enable is asserted, relative to start (ms). */
    double at_ms = 0.0;
};

/** The sequencing solver and validator. */
class SequenceSolver
{
  public:
    /** Declare a rail; names must be unique. */
    void addRail(const RailSpec &spec);

    /** Number of declared rails. */
    std::size_t railCount() const { return specs_.size(); }

    /**
     * Solve for a power-up schedule honoring every declaration.
     * fatal() on cyclic or dangling requirements (a specification
     * bug, not a runtime condition).
     */
    std::vector<SequenceStep> powerUpSequence() const;

    /**
     * Power-down schedule: reverse dependency order (a rail goes down
     * only after everything requiring it is down).
     */
    std::vector<SequenceStep> powerDownSequence() const;

    /**
     * Validate an arbitrary schedule against the declarations:
     * every rail appears exactly once and starts no earlier than the
     * settle time of everything it requires.
     * @param error set to a human-readable reason on failure
     */
    bool validate(const std::vector<SequenceStep> &schedule,
                  std::string &error) const;

    /** Time at which @p rail is settled under @p schedule (ms). */
    double settledAt(const std::vector<SequenceStep> &schedule,
                     const std::string &rail) const;

  private:
    /** Topologically ordered rail names; fatal() on cycles. */
    std::vector<std::string> topoOrder() const;

    std::map<std::string, RailSpec> specs_;
    std::vector<std::string> declarationOrder_;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_SEQUENCE_SOLVER_HH
