/**
 * @file
 * Power model implementation.
 */

#include "bmc/power_model.hh"

#include "base/logging.hh"

namespace enzian::bmc {

PowerModel::PowerModel(const Config &cfg) : cfg_(cfg) {}

void
PowerModel::setDramActivity(std::uint32_t group, double activity)
{
    ENZIAN_ASSERT(group < 2, "bad DRAM group %u", group);
    if (activity < 0.0 || activity > 1.0)
        fatal("DRAM activity %f out of [0,1]", activity);
    dramActivity_[group] = activity;
}

double
PowerModel::cpuPower() const
{
    if (!cpuOn_)
        return 0.0;
    double w = cfg_.cpu_idle_w + cfg_.cpu_per_core_w * activeCores_;
    if (cpuSpike_)
        w += cfg_.cpu_poweron_spike_w;
    return w;
}

double
PowerModel::dramPower(std::uint32_t group) const
{
    ENZIAN_ASSERT(group < 2, "bad DRAM group %u", group);
    if (!cpuOn_)
        return 0.0;
    return cfg_.dram_idle_w + cfg_.dram_active_w * dramActivity_[group];
}

double
PowerModel::fpgaPower() const
{
    if (!fpgaOn_)
        return 0.0;
    if (!fpgaConfigured_)
        return cfg_.fpga_unconfigured_w;
    return cfg_.fpga_static_w + cfg_.fpga_dynamic_w * fpgaActivity_;
}

double
PowerModel::totalPower() const
{
    return cpuPower() + dramPower(0) + dramPower(1) + fpgaPower() +
           bmcPower();
}

} // namespace enzian::bmc
