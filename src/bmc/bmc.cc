/**
 * @file
 * BMC facade implementation: the Enzian power tree.
 */

#include "bmc/bmc.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::bmc {

const char *
toString(Domain d)
{
    switch (d) {
      case Domain::Standby:
        return "standby";
      case Domain::Cpu:
        return "cpu";
      case Domain::Fpga:
        return "fpga";
    }
    return "?";
}

Bmc::Bmc(std::string name, EventQueue &eq)
    : SimObject(std::move(name), eq)
{
    bus_ = std::make_unique<I2cBus>(SimObject::name() + ".i2c", eq,
                                    I2cBus::Config{});
    master_ = std::make_unique<PmbusMaster>(*bus_);
    telemetry_ = std::make_unique<Telemetry>(
        SimObject::name() + ".telemetry", eq, *master_);
    buildRails();
    wireLoads();
    stats().addCounter("rail_glitches", &railGlitches_);
    stats().addCounter("rail_recoveries", &railRecoveries_);
}

void
Bmc::buildRails()
{
    const Domain SB = Domain::Standby;
    const Domain CPU = Domain::Cpu;
    const Domain FPGA = Domain::Fpga;
    // The Enzian power tree: 25 discrete regulators (several of the
    // physical parts are dual-rail, giving the paper's 30 rails; we
    // model one Regulator per primary rail). Dependencies encode the
    // component datasheets' sequencing requirements: CPU core before
    // SerDes before I/O before DDR (VPP -> VDD -> VTT), FPGA VCCINT
    // before BRAM before AUX before I/O and transceiver rails.
    defs_ = {
        // --- standby + clocks + fans -------------------------------
        {"P3V3_STBY", SB, 0x10, 3.3, 8, 3.0, {}},
        {"P5V_STBY", SB, 0x11, 5.0, 5, 3.0, {}},
        {"P1V8_BMC", SB, 0x12, 1.8, 3, 1.5, {"P3V3_STBY"}},
        {"P1V0_BMC", SB, 0x13, 1.0, 4, 1.5, {"P1V8_BMC"}},
        {"P3V3_CLK", SB, 0x14, 3.3, 4, 2.0, {"P3V3_STBY"}},
        {"P2V5_CLK", SB, 0x15, 2.5, 3, 2.0, {"P3V3_CLK"}},
        {"P12V_FAN", SB, 0x16, 12.0, 6, 5.0, {"P3V3_STBY"}},
        // --- CPU domain --------------------------------------------
        {"VDD_CORE", CPU, 0x20, 0.98, 165, 4.0, {"P3V3_STBY"}},
        {"VDD_09", CPU, 0x21, 0.9, 40, 2.0, {"VDD_CORE"}},
        {"P1V8_CPU", CPU, 0x22, 1.8, 15, 2.0, {"VDD_09"}},
        {"P2V5_CPU", CPU, 0x23, 2.5, 6, 2.0, {"P1V8_CPU"}},
        {"VPP_DDR_C01", CPU, 0x24, 2.5, 4, 2.0, {"P1V8_CPU"}},
        {"VDD_DDR_C01", CPU, 0x25, 1.2, 25, 2.0, {"VPP_DDR_C01"}},
        {"VTT_DDR_C01", CPU, 0x26, 0.6, 6, 1.0, {"VDD_DDR_C01"}},
        {"VPP_DDR_C23", CPU, 0x27, 2.5, 4, 2.0, {"P1V8_CPU"}},
        {"VDD_DDR_C23", CPU, 0x28, 1.2, 25, 2.0, {"VPP_DDR_C23"}},
        {"VTT_DDR_C23", CPU, 0x29, 0.6, 6, 1.0, {"VDD_DDR_C23"}},
        // --- FPGA domain -------------------------------------------
        {"VCCINT", FPGA, 0x30, 0.85, 160, 4.0, {"P3V3_STBY"}},
        {"VCCBRAM", FPGA, 0x31, 0.9, 20, 2.0, {"VCCINT"}},
        {"VCCAUX", FPGA, 0x32, 1.8, 12, 2.0, {"VCCBRAM"}},
        {"VCC_IO", FPGA, 0x33, 1.2, 10, 2.0, {"VCCAUX"}},
        {"MGTAVCC", FPGA, 0x34, 0.9, 25, 2.0, {"VCCINT"}},
        {"MGTAVTT", FPGA, 0x35, 1.2, 20, 2.0, {"MGTAVCC"}},
        {"VPP_DDR_F", FPGA, 0x36, 2.5, 4, 2.0, {"VCCAUX"}},
        {"VDD_DDR_F", FPGA, 0x37, 1.2, 25, 2.0, {"VPP_DDR_F"}},
    };
    ENZIAN_ASSERT(defs_.size() == 25, "Enzian has 25 regulators");

    for (const auto &d : defs_) {
        Regulator::Config rc;
        rc.address = d.addr;
        rc.vout_nominal = d.volts;
        rc.iout_max = d.amps_max;
        rc.ramp_ms = d.ramp_ms;
        auto reg = std::make_unique<Regulator>(
            name() + ".reg." + d.name, eventq(), rc);
        bus_->attach(d.addr, reg.get());
        regs_.emplace(d.name, std::move(reg));
        names_.push_back(d.name);
        solver_.addRail(RailSpec{d.name, d.requires_up, d.ramp_ms, 1.0});
    }
}

void
Bmc::wireLoads()
{
    PowerModel *pm = &power_;
    // CPU package rails split the SoC power; fractions approximate a
    // ThunderX-1 power-delivery budget.
    regulator("VDD_CORE").setLoad([pm]() {
        return PowerModel::ampsFor(0.72 * pm->cpuPower(), 0.98);
    });
    regulator("VDD_09").setLoad([pm]() {
        return PowerModel::ampsFor(0.14 * pm->cpuPower(), 0.9);
    });
    regulator("P1V8_CPU").setLoad([pm]() {
        return PowerModel::ampsFor(0.09 * pm->cpuPower(), 1.8);
    });
    regulator("P2V5_CPU").setLoad([pm]() {
        return PowerModel::ampsFor(0.05 * pm->cpuPower(), 2.5);
    });
    // CPU DRAM channel groups (Figure 12's DRAM0 / DRAM1 traces).
    regulator("VDD_DDR_C01").setLoad([pm]() {
        return PowerModel::ampsFor(0.85 * pm->dramPower(0), 1.2);
    });
    regulator("VTT_DDR_C01").setLoad([pm]() {
        return PowerModel::ampsFor(0.08 * pm->dramPower(0), 0.6);
    });
    regulator("VPP_DDR_C01").setLoad([pm]() {
        return PowerModel::ampsFor(0.07 * pm->dramPower(0), 2.5);
    });
    regulator("VDD_DDR_C23").setLoad([pm]() {
        return PowerModel::ampsFor(0.85 * pm->dramPower(1), 1.2);
    });
    regulator("VTT_DDR_C23").setLoad([pm]() {
        return PowerModel::ampsFor(0.08 * pm->dramPower(1), 0.6);
    });
    regulator("VPP_DDR_C23").setLoad([pm]() {
        return PowerModel::ampsFor(0.07 * pm->dramPower(1), 2.5);
    });
    // FPGA rails.
    regulator("VCCINT").setLoad([pm]() {
        return PowerModel::ampsFor(0.70 * pm->fpgaPower(), 0.85);
    });
    regulator("VCCBRAM").setLoad([pm]() {
        return PowerModel::ampsFor(0.06 * pm->fpgaPower(), 0.9);
    });
    regulator("VCCAUX").setLoad([pm]() {
        return PowerModel::ampsFor(0.08 * pm->fpgaPower(), 1.8);
    });
    regulator("VCC_IO").setLoad([pm]() {
        return PowerModel::ampsFor(0.04 * pm->fpgaPower(), 1.2);
    });
    regulator("MGTAVCC").setLoad([pm]() {
        return PowerModel::ampsFor(0.07 * pm->fpgaPower(), 0.9);
    });
    regulator("MGTAVTT").setLoad([pm]() {
        return PowerModel::ampsFor(0.05 * pm->fpgaPower(), 1.2);
    });
    // BMC / board housekeeping.
    regulator("P1V8_BMC").setLoad([pm]() {
        return PowerModel::ampsFor(0.5 * pm->bmcPower(), 1.8);
    });
    regulator("P1V0_BMC").setLoad([pm]() {
        return PowerModel::ampsFor(0.5 * pm->bmcPower(), 1.0);
    });
    regulator("P3V3_CLK").setLoad([]() { return 0.8; });
    regulator("P2V5_CLK").setLoad([]() { return 0.6; });
    regulator("P12V_FAN").setLoad([]() { return 1.5; });
    regulator("P3V3_STBY").setLoad([]() { return 1.2; });
    regulator("P5V_STBY").setLoad([]() { return 0.7; });
}

Regulator &
Bmc::regulator(const std::string &rail)
{
    auto it = regs_.find(rail);
    if (it == regs_.end())
        fatal("unknown rail '%s'", rail.c_str());
    return *it->second;
}

bool
Bmc::domainUp(Domain d) const
{
    return domainUp_[static_cast<std::size_t>(d)];
}

Tick
Bmc::executeSequence(Domain d, bool up, Tick base)
{
    // Solve over the domain's rails only; cross-domain requirements
    // must already be satisfied.
    SequenceSolver sub;
    for (const auto &def : defs_) {
        if (def.domain != d)
            continue;
        RailSpec spec;
        spec.name = def.name;
        spec.ramp_ms = def.ramp_ms;
        spec.settle_ms = 1.0;
        for (const auto &dep : def.requires_up) {
            const auto dit = std::find_if(
                defs_.begin(), defs_.end(),
                [&](const RailDef &x) { return x.name == dep; });
            ENZIAN_ASSERT(dit != defs_.end(), "dangling dep");
            if (dit->domain == d) {
                spec.requires_up.push_back(dep);
            } else if (up && !regulator(dep).powerGood()) {
                fatal("domain %s requires rail '%s' which is not up",
                      bmc::toString(d), dep.c_str());
            }
        }
        sub.addRail(spec);
    }

    const auto schedule =
        up ? sub.powerUpSequence() : sub.powerDownSequence();
    Tick settled = base;
    for (const auto &step : schedule) {
        const Tick at = base + units::ms(step.at_ms);
        const std::uint8_t addr = regulator(step.rail).config().address;
        eventq().schedule(
            at,
            [this, addr, up]() {
                master_->writeByte(addr, PmbusCmd::Operation,
                                   up ? operationOn : operationOff);
            },
            "bmc-sequence-step");
        const auto &def = *std::find_if(
            defs_.begin(), defs_.end(),
            [&](const RailDef &x) { return x.name == step.rail; });
        settled = std::max(
            settled, at + units::ms(def.ramp_ms + 1.0));
    }
    domainUp_[static_cast<std::size_t>(d)] = up;
    return settled;
}

Tick
Bmc::commonPowerUp()
{
    return executeSequence(Domain::Standby, true, now());
}

Tick
Bmc::cpuPowerUp()
{
    if (!domainUp(Domain::Standby))
        fatal("cpu_power_up before common_power_up");
    return executeSequence(Domain::Cpu, true, now());
}

Tick
Bmc::cpuPowerDown()
{
    return executeSequence(Domain::Cpu, false, now());
}

Tick
Bmc::fpgaPowerUp()
{
    if (!domainUp(Domain::Standby))
        fatal("fpga_power_up before common_power_up");
    return executeSequence(Domain::Fpga, true, now());
}

Tick
Bmc::fpgaPowerDown()
{
    return executeSequence(Domain::Fpga, false, now());
}

Tick
Bmc::injectRailGlitch(const std::string &rail)
{
    const auto dit =
        std::find_if(defs_.begin(), defs_.end(),
                     [&](const RailDef &x) { return x.name == rail; });
    if (dit == defs_.end())
        fatal("unknown rail '%s'", rail.c_str());
    const Domain d = dit->domain;
    railGlitches_.inc();
    logWarn("rail %s glitched (VOUT_OV); power-cycling the %s domain",
            rail.c_str(), bmc::toString(d));
    const Tick t0 = now();
    regulator(rail).injectFault(statusVoutOv);

    // Emergency-drop the whole domain in dependency-safe (reverse
    // topological) order, exactly as a planned power-down would.
    const Tick down = executeSequence(d, false, t0);

    // Once everything is off, clear the latched fault on the tripped
    // part so its next OPERATION-on is honoured...
    const std::uint8_t addr = regulator(rail).config().address;
    eventq().schedule(
        down,
        [this, addr]() {
            master_->writeByte(addr, PmbusCmd::ClearFaults, 0);
        },
        "bmc-glitch-clear");

    // ...and run a fresh solver power-up sequence strictly after the
    // clear (the nudge keeps the ordering independent of same-tick
    // event tie-breaking).
    const Tick up =
        executeSequence(d, true, down + units::ns(100.0));
    eventq().schedule(
        up,
        [this, rail, d, t0, up]() {
            railRecoveries_.inc();
            ENZIAN_SPAN(name(), "rail-glitch-recovery", t0, up);
            logInfo("rail %s recovered; %s domain back up",
                    rail.c_str(), bmc::toString(d));
        },
        "bmc-glitch-recovered");
    return up;
}

std::string
Bmc::printCurrentAll()
{
    std::ostringstream os;
    os << "rail          V      A      W     T(C)\n";
    for (const auto &rail : names_) {
        const std::uint8_t addr = regulator(rail).config().address;
        double v = 0, i = 0, t = 0;
        if (auto w = master_->readWord(addr, PmbusCmd::ReadVout))
            v = linear16Decode(*w, voutModeExponent);
        if (auto w = master_->readWord(addr, PmbusCmd::ReadIout))
            i = linear11Decode(*w);
        if (auto w = master_->readWord(addr, PmbusCmd::ReadTemperature1))
            t = linear11Decode(*w);
        os << format("%-12s %6.3f %6.2f %6.2f %6.1f\n", rail.c_str(),
                     v, i, v * i, t);
    }
    return os.str();
}

} // namespace enzian::bmc
