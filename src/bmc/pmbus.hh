/**
 * @file
 * PMBus protocol layer.
 *
 * PMBus is the power-management command set layered on SMBus/I2C
 * that Enzian's regulators speak (paper section 4.3). This header
 * defines the command codes the reproduction uses and the LINEAR11 /
 * LINEAR16 fixed-point formats real PMBus devices report values in,
 * plus a master-side helper that issues commands through an I2cBus.
 */

#ifndef ENZIAN_BMC_PMBUS_HH
#define ENZIAN_BMC_PMBUS_HH

#include <cstdint>
#include <optional>

#include "bmc/i2c_bus.hh"

namespace enzian::bmc {

/** PMBus command codes (subset; values per the PMBus 1.2 spec). */
enum class PmbusCmd : std::uint8_t {
    Operation = 0x01,
    ClearFaults = 0x03,
    VoutMode = 0x20,
    VoutCommand = 0x21,
    VoutOvFaultLimit = 0x40,
    IoutOcFaultLimit = 0x46,
    OtFaultLimit = 0x4f,
    StatusWord = 0x79,
    ReadVin = 0x88,
    ReadVout = 0x8b,
    ReadIout = 0x8c,
    ReadTemperature1 = 0x8d,
};

/** OPERATION register bits. */
constexpr std::uint8_t operationOn = 0x80;
constexpr std::uint8_t operationOff = 0x00;

/** STATUS_WORD fault bits (subset). */
constexpr std::uint16_t statusVoutOv = 0x8000;
constexpr std::uint16_t statusIoutOc = 0x4000;
constexpr std::uint16_t statusTemp = 0x0004;
constexpr std::uint16_t statusOff = 0x0040;

/**
 * Encode a value in LINEAR11: 5-bit signed exponent, 11-bit signed
 * mantissa, value = m * 2^e. Picks the exponent maximizing precision.
 */
std::uint16_t linear11Encode(double value);

/** Decode a LINEAR11 word. */
double linear11Decode(std::uint16_t word);

/** Encode voltage in LINEAR16 with exponent @p vout_mode_exp. */
std::uint16_t linear16Encode(double volts, std::int8_t vout_mode_exp);

/** Decode a LINEAR16 voltage word. */
double linear16Decode(std::uint16_t word, std::int8_t vout_mode_exp);

/** VOUT_MODE exponent all modeled regulators use (2^-12 V). */
constexpr std::int8_t voutModeExponent = -12;

/** Master-side PMBus helper bound to one bus. */
class PmbusMaster
{
  public:
    explicit PmbusMaster(I2cBus &bus) : bus_(bus) {}

    /** Write a single byte command (e.g. OPERATION). */
    bool writeByte(std::uint8_t addr, PmbusCmd cmd, std::uint8_t value);

    /** Write a 16-bit word (little-endian per SMBus). */
    bool writeWord(std::uint8_t addr, PmbusCmd cmd, std::uint16_t value);

    /** Send a command with no data (e.g. CLEAR_FAULTS). */
    bool sendCommand(std::uint8_t addr, PmbusCmd cmd);

    /** Read a 16-bit word. nullopt on NAK. */
    std::optional<std::uint16_t> readWord(std::uint8_t addr,
                                          PmbusCmd cmd);

    /** Read a byte. nullopt on NAK. */
    std::optional<std::uint8_t> readByte(std::uint8_t addr,
                                         PmbusCmd cmd);

    I2cBus &bus() { return bus_; }

  private:
    I2cBus &bus_;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_PMBUS_HH
