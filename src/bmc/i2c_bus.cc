/**
 * @file
 * I2C bus implementation.
 */

#include "bmc/i2c_bus.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::bmc {

I2cBus::I2cBus(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.clock_hz <= 0)
        fatal("I2C bus '%s': bad clock", SimObject::name().c_str());
    stats().addCounter("transactions", &txns_);
    stats().addCounter("naks", &naks_);
}

void
I2cBus::attach(std::uint8_t addr, I2cDevice *dev)
{
    if (addr > 0x7f)
        fatal("I2C address %#x out of 7-bit range", addr);
    if (devices_.count(addr))
        fatal("I2C address %#x already occupied by '%s'", addr,
              devices_[addr]->deviceName().c_str());
    devices_[addr] = dev;
}

Tick
I2cBus::transactionTime(std::size_t wr_bytes, std::size_t rd_bytes) const
{
    // START + addr byte (9 bit slots incl. ACK) + data bytes; a read
    // adds a repeated START + addr; plus STOP. Each byte occupies 9
    // SCL cycles.
    std::size_t bits = 1 + 9; // START + address+ACK
    bits += 9 * wr_bytes;
    if (rd_bytes > 0)
        bits += 1 + 9 + 9 * rd_bytes;
    bits += 1; // STOP
    const double secs = static_cast<double>(bits) / cfg_.clock_hz +
                        cfg_.driver_overhead_us * 1e-6;
    return units::sec(secs);
}

I2cResult
I2cBus::transfer(std::uint8_t addr, const std::vector<std::uint8_t> &wr,
                 std::size_t read_len)
{
    txns_.inc();
    I2cResult r;
    const Tick start = std::max(now(), busFreeAt_);
    const Tick dur = transactionTime(wr.size(), read_len);
    busFreeAt_ = start + dur;
    r.done = busFreeAt_;

    auto it = devices_.find(addr);
    if (it == devices_.end()) {
        // Address NAK: nobody home.
        naks_.inc();
        return r;
    }
    I2cDevice *dev = it->second;

    if (!wr.empty() && !dev->i2cWrite(wr)) {
        naks_.inc();
        return r;
    }
    if (read_len > 0) {
        r.data = dev->i2cRead(read_len);
        if (r.data.size() != read_len) {
            naks_.inc();
            return r;
        }
    }
    r.acked = true;
    return r;
}

} // namespace enzian::bmc
