/**
 * @file
 * Regulator implementation.
 */

#include "bmc/regulator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::bmc {

Regulator::Regulator(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg),
      voutCommand_(cfg.vout_nominal)
{
    if (cfg_.vout_nominal <= 0 || cfg_.iout_max <= 0)
        fatal("regulator '%s': bad electrical config",
              SimObject::name().c_str());
    if (cfg_.ov_limit == 0.0)
        cfg_.ov_limit = 1.15 * cfg_.vout_nominal;
}

void
Regulator::enable()
{
    if (enabled_ || faulted_)
        return;
    enabled_ = true;
    rampStart_ = now();
    faults_ &= static_cast<std::uint16_t>(~statusOff);
}

void
Regulator::disable()
{
    enabled_ = false;
    faults_ |= statusOff;
}

bool
Regulator::powerGood() const
{
    return enabled_ && !faulted_ &&
           now() >= rampStart_ + units::ms(cfg_.ramp_ms);
}

double
Regulator::vout() const
{
    if (!enabled_ || faulted_)
        return 0.0;
    const Tick ramp = units::ms(cfg_.ramp_ms);
    if (now() >= rampStart_ + ramp)
        return voutCommand_;
    const double frac = static_cast<double>(now() - rampStart_) /
                        static_cast<double>(ramp);
    return voutCommand_ * frac;
}

double
Regulator::iout() const
{
    if (!powerGood() || !load_)
        return 0.0;
    return load_();
}

double
Regulator::inputPower() const
{
    const double p = power();
    return p > 0 ? p / cfg_.efficiency : 0.0;
}

double
Regulator::temperature() const
{
    const double loss = inputPower() - power();
    return cfg_.ambient_c + cfg_.theta_c_per_w * loss;
}

void
Regulator::injectFault(std::uint16_t bits)
{
    faults_ |= bits;
    faulted_ = true;
    enabled_ = false;
}

void
Regulator::checkFaults()
{
    if (!enabled_)
        return;
    if (voutCommand_ > cfg_.ov_limit) {
        warn("%s: OVP at %.3f V (limit %.3f)", name().c_str(),
             voutCommand_, cfg_.ov_limit);
        injectFault(statusVoutOv);
    }
    if (iout() > cfg_.iout_max) {
        warn("%s: OCP at %.1f A (limit %.1f)", name().c_str(), iout(),
             cfg_.iout_max);
        injectFault(statusIoutOc);
    }
}

bool
Regulator::i2cWrite(const std::vector<std::uint8_t> &data)
{
    if (data.empty())
        return false;
    lastCmd_ = data[0];
    const auto cmd = static_cast<PmbusCmd>(data[0]);
    switch (cmd) {
      case PmbusCmd::Operation:
        if (data.size() < 2)
            return false;
        if (data[1] & operationOn)
            enable();
        else
            disable();
        return true;
      case PmbusCmd::ClearFaults:
        faults_ = enabled_ ? 0 : statusOff;
        faulted_ = false;
        return true;
      case PmbusCmd::VoutCommand: {
        if (data.size() < 3)
            return false;
        const auto word = static_cast<std::uint16_t>(
            data[1] | (static_cast<std::uint16_t>(data[2]) << 8));
        voutCommand_ = linear16Decode(word, voutModeExponent);
        checkFaults();
        return true;
      }
      default:
        // Register selected for a subsequent read.
        return true;
    }
}

std::vector<std::uint8_t>
Regulator::i2cRead(std::size_t len)
{
    checkFaults();
    std::uint16_t word = 0;
    switch (static_cast<PmbusCmd>(lastCmd_)) {
      case PmbusCmd::VoutMode:
        return {static_cast<std::uint8_t>(voutModeExponent & 0x1f)};
      case PmbusCmd::ReadVout:
        word = linear16Encode(vout(), voutModeExponent);
        break;
      case PmbusCmd::ReadIout:
        word = linear11Encode(iout());
        break;
      case PmbusCmd::ReadVin:
        word = linear11Encode(12.0);
        break;
      case PmbusCmd::ReadTemperature1:
        word = linear11Encode(temperature());
        break;
      case PmbusCmd::StatusWord:
        word = faults_;
        break;
      default:
        return {}; // NAK: unsupported read
    }
    if (len == 1)
        return {static_cast<std::uint8_t>(word & 0xff)};
    return {static_cast<std::uint8_t>(word & 0xff),
            static_cast<std::uint8_t>(word >> 8)};
}

} // namespace enzian::bmc
