/**
 * @file
 * The Enzian baseboard management controller.
 *
 * The BMC "is powered on whenever the case PSU is plugged in", then
 * "turns on power and clock to the rest of the system including FPGA
 * and the CPU" (paper section 4.4). This facade builds the board's
 * power tree - 25 PMBus regulators across standby/clock, CPU, and
 * FPGA domains with their declarative sequencing requirements - and
 * exposes the power-manager commands of the paper's artifact
 * (common_power_up(), cpu_power_up(), print_current_all()) plus the
 * telemetry service of section 5.5.
 */

#ifndef ENZIAN_BMC_BMC_HH
#define ENZIAN_BMC_BMC_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bmc/i2c_bus.hh"
#include "bmc/pmbus.hh"
#include "bmc/power_model.hh"
#include "bmc/regulator.hh"
#include "bmc/sequence_solver.hh"
#include "bmc/telemetry.hh"

namespace enzian::bmc {

/** Power domains the BMC sequences independently. */
enum class Domain : std::uint8_t { Standby = 0, Cpu, Fpga };

/** Readable domain name. */
const char *toString(Domain d);

/** The board management controller. */
class Bmc : public SimObject
{
  public:
    Bmc(std::string name, EventQueue &eq);

    /** The platform power model (activity knobs live here). */
    PowerModel &power() { return power_; }

    /** The PMBus/I2C segment all regulators hang off. */
    I2cBus &bus() { return *bus_; }
    PmbusMaster &pmbus() { return *master_; }

    /** Telemetry poller (empty watch list by default). */
    Telemetry &telemetry() { return *telemetry_; }

    /** The regulator powering @p rail; fatal() if unknown. */
    Regulator &regulator(const std::string &rail);

    /** All rail names in declaration order. */
    const std::vector<std::string> &railNames() const { return names_; }

    /** Number of discrete regulators (25 on Enzian). */
    std::size_t regulatorCount() const { return regs_.size(); }

    /** The sequencing declarations (for inspection / validation). */
    const SequenceSolver &solver() const { return solver_; }

    /**
     * Power the standby + clock rails (the artifact's
     * common_power_up()). @return tick the domain is settled.
     */
    Tick commonPowerUp();

    /** Power the CPU domain; requires standby up. */
    Tick cpuPowerUp();

    /** Drop the CPU domain. */
    Tick cpuPowerDown();

    /** Power the FPGA domain; requires standby up. */
    Tick fpgaPowerUp();

    /** Drop the FPGA domain. */
    Tick fpgaPowerDown();

    /** True once @p d completed power-up (and not powered down). */
    bool domainUp(Domain d) const;

    /**
     * Fault injection: a transient over-voltage glitch on @p rail
     * trips its regulator (VOUT_OV latched, output disabled). The BMC
     * reacts the way the real power manager does: emergency
     * power-down of the rail's domain in dependency-safe order,
     * CLEAR_FAULTS on the tripped part, then a fresh power-up
     * sequence through the solver.
     *
     * @return tick at which the domain is settled again
     */
    Tick injectRailGlitch(const std::string &rail);

    std::uint64_t railGlitches() const { return railGlitches_.value(); }
    std::uint64_t railRecoveries() const
    {
        return railRecoveries_.value();
    }

    /**
     * The artifact's print_current_all(): read every rail over PMBus
     * and render a table. Occupies the bus for real.
     */
    std::string printCurrentAll();

  private:
    struct RailDef
    {
        std::string name;
        Domain domain;
        std::uint8_t addr;
        double volts;
        double amps_max;
        double ramp_ms;
        std::vector<std::string> requires_up;
    };

    void buildRails();
    void wireLoads();
    /** Run a power sequence; steps are scheduled relative to @p base. */
    Tick executeSequence(Domain d, bool up, Tick base);

    std::unique_ptr<I2cBus> bus_;
    std::unique_ptr<PmbusMaster> master_;
    std::unique_ptr<Telemetry> telemetry_;
    PowerModel power_;
    SequenceSolver solver_;
    std::vector<RailDef> defs_;
    std::vector<std::string> names_;
    std::map<std::string, std::unique_ptr<Regulator>> regs_;
    bool domainUp_[3] = {false, false, false};
    Counter railGlitches_;
    Counter railRecoveries_;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_BMC_HH
