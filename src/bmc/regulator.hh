/**
 * @file
 * Voltage regulator model.
 *
 * Enzian has "25 discrete voltage regulators supplying 30 voltage
 * rails, each of which can be controlled and queried for some
 * combination of voltage, current, and temperature" over PMBus
 * (paper section 4.3). A Regulator models one such part: a PMBus
 * register file (the I2cDevice face), an output that ramps up/down
 * over a configurable time when commanded, a load current supplied by
 * the platform power model, a first-order thermal model, and
 * over-voltage/over-current/over-temperature fault machinery - a
 * misconfigured regulator on a >150 A rail is exactly the hazard the
 * paper's bring-up stories revolve around.
 */

#ifndef ENZIAN_BMC_REGULATOR_HH
#define ENZIAN_BMC_REGULATOR_HH

#include <functional>

#include "bmc/pmbus.hh"
#include "sim/sim_object.hh"

namespace enzian::bmc {

/** One voltage regulator (possibly one channel of a multi-rail part). */
class Regulator : public SimObject, public I2cDevice
{
  public:
    /** Electrical configuration. */
    struct Config
    {
        /** PMBus address. */
        std::uint8_t address = 0x20;
        /** Nominal output voltage (V). */
        double vout_nominal = 1.0;
        /** Maximum continuous output current (A). */
        double iout_max = 10.0;
        /** Soft-start ramp time (ms). */
        double ramp_ms = 2.0;
        /** Over-voltage fault threshold (V). */
        double ov_limit = 0.0; // 0 -> 1.15 * nominal
        /** Conversion efficiency at load [0,1]. */
        double efficiency = 0.90;
        /** Ambient temperature (C). */
        double ambient_c = 35.0;
        /** Thermal resistance (C/W of loss). */
        double theta_c_per_w = 2.5;
    };

    Regulator(std::string name, EventQueue &eq, const Config &cfg);

    /** Supply the load current draw (A) as a function of time. */
    void setLoad(std::function<double()> load) { load_ = std::move(load); }

    // --- direct (non-bus) state access for the power model ---------

    /** True once enabled and the ramp has completed. */
    bool powerGood() const;

    /** True if enabled (possibly still ramping). */
    bool enabled() const { return enabled_ && !faulted_; }

    /** Present output voltage (V), accounting for the ramp. */
    double vout() const;

    /** Present load current (A); zero while off. */
    double iout() const;

    /** Output power (W). */
    double power() const { return vout() * iout(); }

    /** Input power including conversion loss (W). */
    double inputPower() const;

    /** Junction temperature (C). */
    double temperature() const;

    /** Latched fault status word (0 = healthy). */
    std::uint16_t faults() const { return faults_; }

    /** Force a fault (failure-injection hook for tests). */
    void injectFault(std::uint16_t bits);

    const Config &config() const { return cfg_; }

    // --- I2cDevice (PMBus register file) ---------------------------
    const std::string &deviceName() const override { return name(); }
    bool i2cWrite(const std::vector<std::uint8_t> &data) override;
    std::vector<std::uint8_t> i2cRead(std::size_t len) override;

  private:
    void enable();
    void disable();
    void checkFaults();

    Config cfg_;
    std::function<double()> load_;
    bool enabled_ = false;
    bool faulted_ = false;
    Tick rampStart_ = 0;
    double voutCommand_ = 0.0;
    std::uint16_t faults_ = statusOff;
    /** Register addressed by the last write (for reads). */
    std::uint8_t lastCmd_ = 0;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_REGULATOR_HH
