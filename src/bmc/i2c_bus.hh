/**
 * @file
 * I2C bus model with protocol checking.
 *
 * The BMC reaches every regulator over I2C (via SMBus/PMBus layered
 * on top, paper section 4.3). The model is transaction-level - a
 * combined write/read with START/address/ACK semantics - with timing
 * derived from the bus clock, and runtime protocol assertions in the
 * spirit of the group's model-checked I2C stack [27]: addressing a
 * missing device NAKs, transactions cannot interleave, and reads of
 * zero length are rejected.
 */

#ifndef ENZIAN_BMC_I2C_BUS_HH
#define ENZIAN_BMC_I2C_BUS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/sim_object.hh"

namespace enzian::bmc {

/** A slave device on the bus. */
class I2cDevice
{
  public:
    virtual ~I2cDevice() = default;

    /** Device name for diagnostics. */
    virtual const std::string &deviceName() const = 0;

    /**
     * Master write: @p data starting with the register/command byte.
     * @return true to ACK.
     */
    virtual bool i2cWrite(const std::vector<std::uint8_t> &data) = 0;

    /**
     * Master read of @p len bytes (after a repeated-start addressing
     * the register set by the preceding write).
     * @return the bytes; empty vector NAKs.
     */
    virtual std::vector<std::uint8_t> i2cRead(std::size_t len) = 0;
};

/** Result of a bus transaction. */
struct I2cResult
{
    bool acked = false;
    std::vector<std::uint8_t> data;
    /** Tick at which the transaction (incl. STOP) completed. */
    Tick done = 0;
};

/** The bus master + wire. */
class I2cBus : public SimObject
{
  public:
    /** Bus configuration. */
    struct Config
    {
        /** SCL frequency in Hz (Fast-mode: 400 kHz). */
        double clock_hz = 400e3;
        /** Firmware driver overhead per transaction (us). */
        double driver_overhead_us = 120.0;
    };

    I2cBus(std::string name, EventQueue &eq, const Config &cfg);

    /** Attach @p dev at 7-bit address @p addr. */
    void attach(std::uint8_t addr, I2cDevice *dev);

    /**
     * Combined transaction: write @p wr (register/command + payload),
     * then, if @p read_len > 0, repeated-start read of @p read_len
     * bytes. Advances bus occupancy; back-to-back transactions
     * serialize.
     */
    I2cResult transfer(std::uint8_t addr,
                       const std::vector<std::uint8_t> &wr,
                       std::size_t read_len);

    /** Time one transaction of this shape occupies the bus. */
    Tick transactionTime(std::size_t wr_bytes,
                         std::size_t rd_bytes) const;

    std::uint64_t transactions() const { return txns_.value(); }
    std::uint64_t naks() const { return naks_.value(); }

  private:
    Config cfg_;
    std::map<std::uint8_t, I2cDevice *> devices_;
    Tick busFreeAt_ = 0;
    Counter txns_;
    Counter naks_;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_I2C_BUS_HH
