/**
 * @file
 * Telemetry implementation.
 */

#include "bmc/telemetry.hh"

#include "base/logging.hh"
#include "base/units.hh"

namespace enzian::bmc {

Telemetry::Telemetry(std::string name, EventQueue &eq,
                     PmbusMaster &master)
    : SimObject(std::move(name), eq), master_(master)
{
    sweepEv_.init(eq, [this]() { sweep(); }, "telemetry-sweep");
}

void
Telemetry::watch(const std::string &rail, std::uint8_t addr)
{
    watched_.push_back(Watched{rail, addr});
}

void
Telemetry::start(Tick period)
{
    if (period == 0)
        fatal("telemetry period of zero");
    period_ = period;
    running_ = true;
    sweepEv_.reschedule(now());
}

void
Telemetry::sweep()
{
    if (!running_)
        return;
    for (const auto &w : watched_) {
        TelemetrySample s;
        s.when = now();
        s.rail = w.rail;
        if (auto v = master_.readWord(w.addr, PmbusCmd::ReadVout))
            s.volts = linear16Decode(*v, voutModeExponent);
        if (auto i = master_.readWord(w.addr, PmbusCmd::ReadIout))
            s.amps = linear11Decode(*i);
        if (auto t =
                master_.readWord(w.addr, PmbusCmd::ReadTemperature1))
            s.temp_c = linear11Decode(*t);
        s.watts = s.volts * s.amps;
        samples_.push_back(std::move(s));
    }
    sweepEv_.scheduleDelta(period_);
}

void
Telemetry::dumpCsv(std::ostream &os) const
{
    os << "time_s,rail,volts,amps,watts,temp_c\n";
    for (const auto &s : samples_) {
        os << units::toSeconds(s.when) << ',' << s.rail << ','
           << s.volts << ',' << s.amps << ',' << s.watts << ','
           << s.temp_c << '\n';
    }
}

const TelemetrySample *
Telemetry::latest(const std::string &rail) const
{
    for (auto it = samples_.rbegin(); it != samples_.rend(); ++it)
        if (it->rail == rail)
            return &*it;
    return nullptr;
}

} // namespace enzian::bmc
