/**
 * @file
 * PMBus encodings and master helper.
 */

#include "bmc/pmbus.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace enzian::bmc {

std::uint16_t
linear11Encode(double value)
{
    // mantissa in [-1024, 1023]; find the smallest exponent that fits.
    int exp = -16;
    double m = value * std::pow(2.0, -exp);
    while ((m > 1023.0 || m < -1024.0) && exp < 15) {
        ++exp;
        m = value * std::pow(2.0, -exp);
    }
    auto mant = static_cast<std::int32_t>(std::llround(m));
    mant = std::max(-1024, std::min(1023, mant));
    return static_cast<std::uint16_t>(
        ((exp & 0x1f) << 11) | (mant & 0x7ff));
}

double
linear11Decode(std::uint16_t word)
{
    std::int32_t exp = (word >> 11) & 0x1f;
    if (exp > 15)
        exp -= 32; // sign-extend 5 bits
    std::int32_t mant = word & 0x7ff;
    if (mant > 1023)
        mant -= 2048; // sign-extend 11 bits
    return static_cast<double>(mant) * std::pow(2.0, exp);
}

std::uint16_t
linear16Encode(double volts, std::int8_t vout_mode_exp)
{
    const double m = volts * std::pow(2.0, -vout_mode_exp);
    const auto mant =
        static_cast<std::int64_t>(std::llround(m));
    ENZIAN_ASSERT(mant >= 0 && mant <= 0xffff,
                  "LINEAR16 overflow for %f V", volts);
    return static_cast<std::uint16_t>(mant);
}

double
linear16Decode(std::uint16_t word, std::int8_t vout_mode_exp)
{
    return static_cast<double>(word) * std::pow(2.0, vout_mode_exp);
}

bool
PmbusMaster::writeByte(std::uint8_t addr, PmbusCmd cmd,
                       std::uint8_t value)
{
    return bus_
        .transfer(addr, {static_cast<std::uint8_t>(cmd), value}, 0)
        .acked;
}

bool
PmbusMaster::writeWord(std::uint8_t addr, PmbusCmd cmd,
                       std::uint16_t value)
{
    return bus_
        .transfer(addr,
                  {static_cast<std::uint8_t>(cmd),
                   static_cast<std::uint8_t>(value & 0xff),
                   static_cast<std::uint8_t>(value >> 8)},
                  0)
        .acked;
}

bool
PmbusMaster::sendCommand(std::uint8_t addr, PmbusCmd cmd)
{
    return bus_.transfer(addr, {static_cast<std::uint8_t>(cmd)}, 0)
        .acked;
}

std::optional<std::uint16_t>
PmbusMaster::readWord(std::uint8_t addr, PmbusCmd cmd)
{
    I2cResult r =
        bus_.transfer(addr, {static_cast<std::uint8_t>(cmd)}, 2);
    if (!r.acked)
        return std::nullopt;
    return static_cast<std::uint16_t>(r.data[0] |
                                      (static_cast<std::uint16_t>(
                                           r.data[1])
                                       << 8));
}

std::optional<std::uint8_t>
PmbusMaster::readByte(std::uint8_t addr, PmbusCmd cmd)
{
    I2cResult r =
        bus_.transfer(addr, {static_cast<std::uint8_t>(cmd)}, 1);
    if (!r.acked)
        return std::nullopt;
    return r.data[0];
}

} // namespace enzian::bmc
