/**
 * @file
 * Platform power model.
 *
 * Converts component activity (active CPU cores, DRAM traffic, FPGA
 * switching activity) into the per-component wattage that Figure 12
 * plots, and into the per-rail load currents the regulators report
 * over PMBus. Wattage constants are set to land the reproduction in
 * the same range as the paper's measured traces (CPU ~100 W under
 * memtest, FPGA 20->170 W across the power-burn staircase, DRAM
 * groups in the tens of watts).
 */

#ifndef ENZIAN_BMC_POWER_MODEL_HH
#define ENZIAN_BMC_POWER_MODEL_HH

#include <cstdint>
#include <functional>

namespace enzian::bmc {

/** Activity-to-watts model for the primary components. */
class PowerModel
{
  public:
    /** Wattage coefficients. */
    struct Config
    {
        double cpu_idle_w = 42.0;
        double cpu_per_core_w = 1.35;
        /** Transient power-on overshoot (inrush + training). */
        double cpu_poweron_spike_w = 65.0;
        double dram_idle_w = 7.0;        ///< per channel group
        double dram_active_w = 16.0;     ///< additional at activity 1
        double fpga_static_w = 21.0;     ///< configured, idle
        double fpga_unconfigured_w = 8.0;
        double fpga_dynamic_w = 150.0;   ///< at mean activity 1
        double bmc_w = 6.5;
    };

    PowerModel() : PowerModel(Config()) {}
    explicit PowerModel(const Config &cfg);

    // --- activity knobs (driven by the boot sequencer / workloads) --
    void setCpuOn(bool on) { cpuOn_ = on; }
    void setCpuSpike(bool spike) { cpuSpike_ = spike; }
    void setActiveCores(std::uint32_t n) { activeCores_ = n; }
    /** DRAM activity per group (0: channels 0-1, 1: channels 2-3). */
    void setDramActivity(std::uint32_t group, double activity);
    void setFpgaOn(bool on) { fpgaOn_ = on; }
    void setFpgaConfigured(bool conf) { fpgaConfigured_ = conf; }
    /** Mean FPGA region switching activity in [0,1]. */
    void setFpgaActivity(double a) { fpgaActivity_ = a; }

    // --- component wattages (Figure 12 traces) ----------------------
    double cpuPower() const;
    double dramPower(std::uint32_t group) const;
    double fpgaPower() const;
    double bmcPower() const { return cfg_.bmc_w; }
    double totalPower() const;

    /** Load in amps on a rail at @p volts carrying @p watts. */
    static double ampsFor(double watts, double volts)
    {
        return volts > 0 ? watts / volts : 0.0;
    }

    const Config &config() const { return cfg_; }

  private:
    Config cfg_;
    bool cpuOn_ = false;
    bool cpuSpike_ = false;
    std::uint32_t activeCores_ = 0;
    double dramActivity_[2] = {0.0, 0.0};
    bool fpgaOn_ = false;
    bool fpgaConfigured_ = false;
    double fpgaActivity_ = 0.0;
};

} // namespace enzian::bmc

#endif // ENZIAN_BMC_POWER_MODEL_HH
