/**
 * @file
 * MOESI state rules.
 */

#include "cache/moesi.hh"

namespace enzian::cache {

const char *
toString(MoesiState s)
{
    switch (s) {
      case MoesiState::Invalid:
        return "I";
      case MoesiState::Shared:
        return "S";
      case MoesiState::Exclusive:
        return "E";
      case MoesiState::Owned:
        return "O";
      case MoesiState::Modified:
        return "M";
    }
    return "?";
}

bool
canRead(MoesiState s)
{
    return s != MoesiState::Invalid;
}

bool
canWrite(MoesiState s)
{
    return s == MoesiState::Exclusive || s == MoesiState::Modified;
}

bool
isDirty(MoesiState s)
{
    return s == MoesiState::Owned || s == MoesiState::Modified;
}

bool
compatible(MoesiState a, MoesiState b)
{
    using S = MoesiState;
    if (a == S::Invalid || b == S::Invalid)
        return true;
    // M and E are exclusive against everything else.
    if (a == S::Modified || a == S::Exclusive)
        return false;
    if (b == S::Modified || b == S::Exclusive)
        return false;
    // At most one Owned copy; O+S and S+S are fine.
    if (a == S::Owned && b == S::Owned)
        return false;
    return true;
}

} // namespace enzian::cache
