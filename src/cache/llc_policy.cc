/**
 * @file
 * LLC way-allocation policies (implementation).
 */

#include "cache/llc_policy.hh"

#include "base/logging.hh"

namespace enzian::cache {

const char *
toString(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru:
        return "lru";
      case ReplPolicy::WayPartition:
        return "way-partition";
      case ReplPolicy::Adaptive:
        return "adaptive";
    }
    return "?";
}

WayAllocator::WayAllocator(const Config &cfg) : cfg_(cfg)
{
    ENZIAN_ASSERT(cfg_.partitions >= 1, "no owner classes");
    ENZIAN_ASSERT(cfg_.ways >= cfg_.partitions,
                  "fewer ways (%u) than owner classes (%u)", cfg_.ways,
                  cfg_.partitions);
    ownerOf_.resize(cfg_.ways);
    // Even contiguous split; remainders go to the low owners.
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        ownerOf_[w] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(w) * cfg_.partitions) /
            cfg_.ways);
    }
    epochMisses_.assign(cfg_.partitions, 0);
}

void
WayAllocator::recordMiss(std::uint32_t owner)
{
    if (cfg_.policy != ReplPolicy::Adaptive)
        return;
    epochMisses_[clampOwner(owner)]++;
    if (++epochTotal_ >= cfg_.adapt_epoch) {
        rebalance();
        epochMisses_.assign(cfg_.partitions, 0);
        epochTotal_ = 0;
    }
}

std::uint32_t
WayAllocator::waysOf(std::uint32_t owner) const
{
    std::uint32_t n = 0;
    for (std::uint32_t o : ownerOf_)
        n += o == clampOwner(owner) ? 1 : 0;
    return n;
}

void
WayAllocator::rebalance()
{
    // Pressure = misses per owned way this epoch. Move ONE way from
    // the least- to the most-pressured owner; a single way per epoch
    // keeps the partition stable under noisy workloads.
    std::uint32_t loser = 0, winner = 0;
    double lo = 0, hi = 0;
    for (std::uint32_t o = 0; o < cfg_.partitions; ++o) {
        const std::uint32_t ways = waysOf(o);
        const double pressure =
            static_cast<double>(epochMisses_[o]) / ways;
        // Loser ties break toward the owner with more ways, so a
        // symmetric load drifts back to an even split.
        if (o == 0 || pressure < lo ||
            (pressure == lo && ways > waysOf(loser))) {
            loser = o;
            lo = pressure;
        }
        if (o == 0 || pressure > hi) {
            winner = o;
            hi = pressure;
        }
    }
    if (winner == loser || waysOf(loser) <= 1)
        return; // nothing to move, or the loser is at its floor
    // Donate the loser's last-owned way (highest index).
    for (std::uint32_t w = cfg_.ways; w-- > 0;) {
        if (ownerOf_[w] == loser) {
            ownerOf_[w] = winner;
            ++rebalances_;
            return;
        }
    }
}

} // namespace enzian::cache
