/**
 * @file
 * Set-associative cache with MOESI line states and LRU replacement.
 *
 * Used as both the ThunderX-1 L2 model on the CPU node and an
 * (optional) line cache on the FPGA node. The cache is a state +
 * data container; the protocol engines (eci::HomeAgent /
 * eci::RemoteAgent) drive its transitions.
 */

#ifndef ENZIAN_CACHE_CACHE_HH
#define ENZIAN_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/stats.hh"
#include "cache/llc_policy.hh"
#include "cache/moesi.hh"
#include "sim/sim_object.hh"

namespace enzian::cache {

/** One line frame: tag, state, data, LRU bookkeeping. */
struct LineFrame
{
    std::uint64_t tag = 0;
    MoesiState state = MoesiState::Invalid;
    std::uint64_t lastUse = 0;
    std::vector<std::uint8_t> data;

    bool valid() const { return state != MoesiState::Invalid; }
};

/** A victim produced by an allocation. */
struct Eviction
{
    std::uint64_t addr;
    MoesiState state;
    std::vector<std::uint8_t> data;
};

/** Set-associative MOESI cache. */
class Cache : public SimObject
{
  public:
    /** Geometry and policy configuration. */
    struct Config
    {
        std::uint64_t size_bytes = 16 * 1024 * 1024; // ThunderX-1 L2
        std::uint32_t ways = 16;
        /** Victim selection: Lru ignores owners entirely;
         *  WayPartition / Adaptive restrict each fill's victim to
         *  the ways owned by the filling class (llc_policy.hh). */
        ReplPolicy policy = ReplPolicy::Lru;
        /** Owner classes when partitioned (0 = local, 1 = remote). */
        std::uint32_t partitions = 2;
        /** Adaptive epoch length in misses. */
        std::uint64_t adapt_epoch = 1024;
    };

    Cache(std::string name, EventQueue &eq, const Config &cfg);

    /** Lookup without side effects. @return frame state (I if absent). */
    MoesiState probe(Addr addr) const;

    /**
     * Lookup for access; bumps LRU on hit.
     * @return pointer to the frame, or nullptr on miss.
     */
    LineFrame *access(Addr addr);

    /**
     * Install a line with @p state and @p data (lineSize bytes).
     * Under a partitioned policy the victim is chosen among the ways
     * owned by @p owner; lookups are unrestricted, so foreign-owned
     * residents simply age out.
     * @return the victim line if a valid line had to be evicted.
     */
    std::optional<Eviction> fill(Addr addr, MoesiState state,
                                 const std::uint8_t *data,
                                 std::uint32_t owner = 0);

    /**
     * True when a fill of @p addr by @p owner would find an invalid
     * frame (i.e. would not evict a valid line). Lets callers that
     * cannot handle an Eviction allocate opportunistically.
     */
    bool hasFreeFrame(Addr addr, std::uint32_t owner = 0) const;

    /** Change the state of a resident line. @pre line is resident. */
    void setState(Addr addr, MoesiState state);

    /** Drop a line (e.g. on invalidation). @return its data if dirty. */
    std::optional<Eviction> invalidate(Addr addr);

    /** Read @p len bytes at @p addr from a resident line. */
    void readData(Addr addr, void *dst, std::uint32_t len) const;

    /** Write @p len bytes at @p addr into a resident line. */
    void writeData(Addr addr, const void *src, std::uint32_t len);

    /** Walk all valid lines (for writeback flushes and checkers). */
    void forEachLine(
        const std::function<void(Addr, const LineFrame &)> &fn) const;

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return cfg_.ways; }

    /** The way allocator, or nullptr under plain LRU. */
    const WayAllocator *allocator() const { return alloc_.get(); }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }

  private:
    std::uint32_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    const LineFrame *find(Addr addr) const;
    LineFrame *find(Addr addr);

    Config cfg_;
    std::uint32_t sets_;
    std::uint64_t useClock_ = 0;
    std::vector<LineFrame> frames_; // sets_ x ways, row-major
    std::unique_ptr<WayAllocator> alloc_; // null under plain LRU
    Counter hits_;
    Counter misses_;
    Counter evictions_;
};

} // namespace enzian::cache

#endif // ENZIAN_CACHE_CACHE_HH
