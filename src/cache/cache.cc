/**
 * @file
 * Set-associative MOESI cache implementation.
 */

#include "cache/cache.hh"

#include <bit>
#include <cstring>

#include "base/logging.hh"

namespace enzian::cache {

Cache::Cache(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.ways == 0 || cfg_.size_bytes % (lineSize * cfg_.ways) != 0)
        fatal("cache '%s': size %llu not divisible by ways*lineSize",
              SimObject::name().c_str(),
              static_cast<unsigned long long>(cfg_.size_bytes));
    sets_ = static_cast<std::uint32_t>(cfg_.size_bytes /
                                       (lineSize * cfg_.ways));
    if (!std::has_single_bit(sets_))
        fatal("cache '%s': set count %u not a power of two",
              SimObject::name().c_str(), sets_);
    frames_.resize(static_cast<std::size_t>(sets_) * cfg_.ways);
    if (cfg_.policy != ReplPolicy::Lru) {
        WayAllocator::Config acfg;
        acfg.ways = cfg_.ways;
        acfg.partitions = cfg_.partitions;
        acfg.policy = cfg_.policy;
        acfg.adapt_epoch = cfg_.adapt_epoch;
        alloc_ = std::make_unique<WayAllocator>(acfg);
    }
    stats().addCounter("hits", &hits_);
    stats().addCounter("misses", &misses_);
    stats().addCounter("evictions", &evictions_);
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / lineSize) & (sets_ - 1));
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / lineSize) / sets_;
}

const LineFrame *
Cache::find(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const std::size_t base =
        static_cast<std::size_t>(setIndex(addr)) * cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        const LineFrame &f = frames_[base + w];
        if (f.valid() && f.tag == tag)
            return &f;
    }
    return nullptr;
}

LineFrame *
Cache::find(Addr addr)
{
    return const_cast<LineFrame *>(
        static_cast<const Cache *>(this)->find(addr));
}

MoesiState
Cache::probe(Addr addr) const
{
    const LineFrame *f = find(lineAlign(addr));
    return f ? f->state : MoesiState::Invalid;
}

LineFrame *
Cache::access(Addr addr)
{
    LineFrame *f = find(lineAlign(addr));
    if (f) {
        f->lastUse = ++useClock_;
        hits_.inc();
    } else {
        misses_.inc();
    }
    return f;
}

std::optional<Eviction>
Cache::fill(Addr addr, MoesiState state, const std::uint8_t *data,
            std::uint32_t owner)
{
    addr = lineAlign(addr);
    ENZIAN_ASSERT(state != MoesiState::Invalid, "fill with Invalid");

    // Re-fill over an existing copy just updates it.
    if (LineFrame *f = find(addr)) {
        f->state = state;
        if (data)
            f->data.assign(data, data + lineSize);
        f->lastUse = ++useClock_;
        return std::nullopt;
    }

    if (alloc_)
        alloc_->recordMiss(owner);

    const std::size_t base =
        static_cast<std::size_t>(setIndex(addr)) * cfg_.ways;
    LineFrame *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (alloc_ && !alloc_->mayAllocate(owner, w))
            continue;
        LineFrame &f = frames_[base + w];
        if (!f.valid()) {
            victim = &f;
            break;
        }
        if (!victim || f.lastUse < victim->lastUse)
            victim = &f;
    }
    ENZIAN_ASSERT(victim, "owner %u owns no way", owner);

    std::optional<Eviction> evicted;
    if (victim->valid()) {
        evictions_.inc();
        const std::uint64_t victim_line =
            victim->tag * sets_ + setIndex(addr);
        evicted = Eviction{victim_line * lineSize, victim->state,
                           std::move(victim->data)};
    }

    victim->tag = tagOf(addr);
    victim->state = state;
    victim->lastUse = ++useClock_;
    if (data)
        victim->data.assign(data, data + lineSize);
    else
        victim->data.assign(lineSize, 0);
    return evicted;
}

bool
Cache::hasFreeFrame(Addr addr, std::uint32_t owner) const
{
    addr = lineAlign(addr);
    const std::size_t base =
        static_cast<std::size_t>(setIndex(addr)) * cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (alloc_ && !alloc_->mayAllocate(owner, w))
            continue;
        if (!frames_[base + w].valid())
            return true;
    }
    return false;
}

void
Cache::setState(Addr addr, MoesiState state)
{
    LineFrame *f = find(lineAlign(addr));
    ENZIAN_ASSERT(f, "setState on non-resident line %llx",
                  static_cast<unsigned long long>(addr));
    if (state == MoesiState::Invalid) {
        f->state = MoesiState::Invalid;
        f->data.clear();
    } else {
        f->state = state;
    }
}

std::optional<Eviction>
Cache::invalidate(Addr addr)
{
    addr = lineAlign(addr);
    LineFrame *f = find(addr);
    if (!f)
        return std::nullopt;
    std::optional<Eviction> out;
    if (isDirty(f->state))
        out = Eviction{addr, f->state, f->data};
    f->state = MoesiState::Invalid;
    f->data.clear();
    return out;
}

void
Cache::readData(Addr addr, void *dst, std::uint32_t len) const
{
    const Addr line = lineAlign(addr);
    const std::uint32_t off = static_cast<std::uint32_t>(addr - line);
    ENZIAN_ASSERT(off + len <= lineSize, "read crosses line boundary");
    const LineFrame *f = find(line);
    ENZIAN_ASSERT(f && f->valid(), "readData on non-resident line");
    std::memcpy(dst, f->data.data() + off, len);
}

void
Cache::writeData(Addr addr, const void *src, std::uint32_t len)
{
    const Addr line = lineAlign(addr);
    const std::uint32_t off = static_cast<std::uint32_t>(addr - line);
    ENZIAN_ASSERT(off + len <= lineSize, "write crosses line boundary");
    LineFrame *f = find(line);
    ENZIAN_ASSERT(f && f->valid(), "writeData on non-resident line");
    std::memcpy(f->data.data() + off, src, len);
}

void
Cache::forEachLine(
    const std::function<void(Addr, const LineFrame &)> &fn) const
{
    for (std::uint32_t s = 0; s < sets_; ++s) {
        for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
            const LineFrame &f =
                frames_[static_cast<std::size_t>(s) * cfg_.ways + w];
            if (f.valid())
                fn((f.tag * sets_ + s) * lineSize, f);
        }
    }
}

} // namespace enzian::cache
