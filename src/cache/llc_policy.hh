/**
 * @file
 * LLC replacement-domain policies: way partitioning and adaptive
 * repartitioning.
 *
 * The Enzian CPU's shared L2 serves two traffic classes at once: the
 * CPU node's own lines (snooped by the home agent) and peer-homed
 * lines allocated by the remote agent (cached mode). Under plain LRU
 * a streaming remote workload can evict the entire local working set.
 * The WayAllocator assigns each way of every set to one owner class:
 *
 *  - WayPartition: a static even split — hard isolation, no
 *    interference, possibly wasted capacity;
 *  - Adaptive: the split starts even and migrates one way per epoch
 *    toward the owner with the higher miss rate per owned way, never
 *    shrinking an owner below one way — utility-based repartitioning
 *    in the spirit of UCP, cheap enough for a simulator hot path.
 *
 * The allocator only constrains *victim selection*; lookups hit in
 * any way, so a repartition never invalidates resident lines (they
 * age out of the ways they no longer own).
 */

#ifndef ENZIAN_CACHE_LLC_POLICY_HH
#define ENZIAN_CACHE_LLC_POLICY_HH

#include <cstdint>
#include <vector>

namespace enzian::cache {

/** Victim-selection policy of a shared cache. */
enum class ReplPolicy : std::uint8_t {
    Lru,          ///< classic global LRU, no ownership
    WayPartition, ///< static even way split between owners
    Adaptive,     ///< way split migrates toward the missier owner
};

/** Readable policy name. */
const char *toString(ReplPolicy p);

/** Conventional owner classes for the shared L2. */
constexpr std::uint32_t ownerLocal = 0;  ///< CPU-node-homed lines
constexpr std::uint32_t ownerRemote = 1; ///< peer-homed lines

/** Way-to-owner map with optional adaptive rebalancing. */
class WayAllocator
{
  public:
    struct Config
    {
        std::uint32_t ways = 16;
        /** Owner classes sharing the cache (>= 1). */
        std::uint32_t partitions = 2;
        ReplPolicy policy = ReplPolicy::WayPartition;
        /** Adaptive only: total misses per rebalance epoch. */
        std::uint64_t adapt_epoch = 1024;
    };

    explicit WayAllocator(const Config &cfg);

    /** May @p owner allocate (pick its victim) in way @p way? */
    bool mayAllocate(std::uint32_t owner, std::uint32_t way) const
    {
        return ownerOf_[way] == clampOwner(owner);
    }

    /** Account one miss; Adaptive rebalances on epoch boundaries. */
    void recordMiss(std::uint32_t owner);

    /** Ways currently owned by @p owner. */
    std::uint32_t waysOf(std::uint32_t owner) const;

    /** Epoch rebalances that actually moved a way. */
    std::uint64_t rebalances() const { return rebalances_; }

    std::uint32_t partitions() const { return cfg_.partitions; }

  private:
    std::uint32_t clampOwner(std::uint32_t owner) const
    {
        return owner < cfg_.partitions ? owner : cfg_.partitions - 1;
    }
    void rebalance();

    Config cfg_;
    std::vector<std::uint32_t> ownerOf_; ///< way -> owner class
    std::vector<std::uint64_t> epochMisses_;
    std::uint64_t epochTotal_ = 0;
    std::uint64_t rebalances_ = 0;
};

} // namespace enzian::cache

#endif // ENZIAN_CACHE_LLC_POLICY_HH
