/**
 * @file
 * MOESI coherence states and the legality rules the ECI protocol
 * engines and the trace checkers share.
 *
 * ECI (the Enzian Coherence Interface, paper section 4.1) is "a
 * MOESI-based protocol with 128-byte cache lines that in principle
 * allows a line to be cached on the home or requesting node".
 */

#ifndef ENZIAN_CACHE_MOESI_HH
#define ENZIAN_CACHE_MOESI_HH

#include <cstdint>

namespace enzian::cache {

/** Size of an ECI cache line in bytes (paper section 4.1). */
constexpr std::uint32_t lineSize = 128;

/** MOESI stable states. */
enum class MoesiState : std::uint8_t {
    Invalid = 0,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** Readable state name ("I", "S", "E", "O", "M"). */
const char *toString(MoesiState s);

/** True if a cache holding the line in @p s may satisfy a local read. */
bool canRead(MoesiState s);

/** True if a cache holding the line in @p s may write without upgrade. */
bool canWrite(MoesiState s);

/** True if the holder must write back the line on eviction. */
bool isDirty(MoesiState s);

/**
 * True if @p a and @p b may legally coexist at two different caches
 * for the same line (the pairwise MOESI compatibility matrix).
 */
bool compatible(MoesiState a, MoesiState b);

/** Align @p addr down to its cache line. */
constexpr std::uint64_t
lineAlign(std::uint64_t addr)
{
    return addr & ~static_cast<std::uint64_t>(lineSize - 1);
}

/** True if @p addr is line-aligned. */
constexpr bool
isLineAligned(std::uint64_t addr)
{
    return (addr & (lineSize - 1)) == 0;
}

} // namespace enzian::cache

#endif // ENZIAN_CACHE_MOESI_HH
