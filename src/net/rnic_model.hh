/**
 * @file
 * ASIC RNIC (Mellanox-style) DMA path.
 *
 * The Figure 8 baseline: a commercial 100 Gb/s RNIC reaching host
 * memory through its own hardened PCIe DMA pipeline. Compared with
 * the FPGA DMA engine it has a much smaller per-operation cost, but
 * its bandwidth to memory is still bounded by its PCIe x16 attach.
 */

#ifndef ENZIAN_NET_RNIC_MODEL_HH
#define ENZIAN_NET_RNIC_MODEL_HH

#include "mem/memory_controller.hh"
#include "net/rdma_engine.hh"

namespace enzian::net {

/** MemoryPath through a hardened RNIC DMA pipeline to host DRAM. */
class NicDmaPath : public MemoryPath
{
  public:
    /** Pipeline configuration. */
    struct Config
    {
        /** Per-operation pipeline overhead (ns). */
        double op_overhead_ns = 220.0;
        /** Sustained PCIe-attach bandwidth (GiB/s). */
        double bandwidth_gib = 12.5;
        /** One-way DMA latency: PCIe + IOMMU + DDIO (ns). */
        double latency_ns = 550.0;
    };

    NicDmaPath(mem::MemoryController &host, const Config &cfg);

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "rnic-host"; }

  private:
    Tick access(std::uint64_t len);

    mem::MemoryController &host_;
    Config cfg_;
    double bw_;
    Tick pipeFreeAt_ = 0;
};

} // namespace enzian::net

#endif // ENZIAN_NET_RNIC_MODEL_HH
