/**
 * @file
 * Reliable byte-stream (TCP) stack model.
 *
 * One sliding-window reliable stream implementation parameterized by
 * per-segment processing costs; the two configurations used in the
 * paper's Figure 7 are:
 *
 *  - the FPGA TCP/IP stack (Sidler et al. [63]) ported to Enzian as a
 *    Coyote service: a single processing pipeline shared between all
 *    connections, with a small fixed per-segment cost and a streaming
 *    data path faster than the wire, so its throughput is independent
 *    of flow count and saturates 100 Gb/s with a 2 KiB MTU;
 *
 *  - the Linux kernel stack on a Xeon host: per-segment and per-byte
 *    CPU costs cap a single flow well below line rate, so multiple
 *    flows (4 in the paper) are needed to saturate the link.
 *
 * The stream is functional (byte counts delivered in order and
 * acknowledged cumulatively) over the switch/link substrate; there is
 * no loss in the modeled fabric so no retransmission machinery.
 */

#ifndef ENZIAN_NET_TCP_STACK_HH
#define ENZIAN_NET_TCP_STACK_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "net/switch.hh"

namespace enzian::net {

/** TCP segment header bytes added to every segment on the wire. */
constexpr std::uint32_t tcpHeaderBytes = 64;

/** A reliable byte-stream stack attached to one switch port. */
class TcpStack : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;
    /** Receive notification: (flow, bytes in this delivery). */
    using ReceiveCb = std::function<void(std::uint32_t, std::uint64_t)>;

    /** Processing-cost configuration. */
    struct Config
    {
        /** Switch port this stack attaches to. */
        std::uint32_t port = 0;
        /** Maximum segment payload (bytes); <= link MTU - header. */
        std::uint32_t mss = 2048 - tcpHeaderBytes;
        /** Send window per flow (bytes in flight). */
        std::uint64_t window_bytes = 256 * 1024;
        /** TX fixed cost per segment (ns). */
        double tx_fixed_ns = 160.0;
        /** TX per-byte cost (ns/B); 0 for a streaming pipeline. */
        double tx_per_byte_ns = 0.0;
        /** RX fixed cost per segment (ns). */
        double rx_fixed_ns = 160.0;
        /** RX per-byte cost (ns/B). */
        double rx_per_byte_ns = 0.0;
        /** Whether TX cost serializes across flows (one pipeline). */
        bool shared_pipeline = true;
        /** One-way base latency of the stack (connect/app path, ns). */
        double app_latency_ns = 1200.0;
    };

    TcpStack(std::string name, EventQueue &eq, Switch &sw,
             const Config &cfg);

    /** Deliver received data notifications to the application. */
    void setReceiveCallback(ReceiveCb cb) { receiveCb_ = std::move(cb); }

    /**
     * Open a flow to @p remote (handshake not modeled).
     * @return flow id valid at both stacks.
     */
    std::uint32_t connect(TcpStack &remote);

    /**
     * Stream @p bytes on @p flow; @p done runs when every byte has
     * been acknowledged. Sends on the same flow queue in order.
     */
    void send(std::uint32_t flow, std::uint64_t bytes, Done done);

    /** Total bytes received in order on @p flow. */
    std::uint64_t bytesReceived(std::uint32_t flow) const;

    const Config &config() const { return cfg_; }

    std::uint64_t segmentsSent() const { return segsTx_.value(); }

  private:
    struct SendJob
    {
        std::uint64_t remaining;
        std::uint64_t unacked;
        Done done;
        Tick start = 0; // submit tick, for latency stats and spans
    };

    struct Flow
    {
        std::uint32_t remotePort = 0;
        std::uint64_t inflight = 0; // bytes sent, not yet acked
        std::deque<SendJob> jobs;
        std::uint64_t received = 0;
        Tick txFreeAt = 0; // per-flow pipeline availability
        /** Reusable pump event; re-armed whenever the pipeline or
         *  window forces the flow to wait. */
        Event pumpEv;
    };

    /** Message kinds on the wire. */
    enum : std::uint64_t { kindData = 1, kindAck = 2 };

    static std::uint64_t
    makeUser(std::uint64_t kind, std::uint32_t flow, std::uint64_t len)
    {
        return (kind << 52) | (static_cast<std::uint64_t>(flow) << 32) |
               (len & 0xffffffffull);
    }

    void pump(std::uint32_t flow_id);
    void schedulePump(std::uint32_t flow_id, Tick when);
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t tag);
    void onData(std::uint32_t flow_id, std::uint64_t len);
    void onAck(std::uint32_t flow_id, std::uint64_t len);

    Tick txCost(std::uint64_t payload) const;
    Tick rxCost(std::uint64_t payload) const;

    Switch &sw_;
    Config cfg_;
    ReceiveCb receiveCb_;
    std::unordered_map<std::uint32_t, Flow> flows_;
    std::uint32_t nextFlow_;
    /** Shared-pipeline availability (FPGA stack). */
    Tick pipeFreeAt_ = 0;
    Counter segsTx_;
    Counter segsRx_;
    Counter bytesTx_;
    Counter bytesRx_;
    /** Submit-to-last-ack latency per send job, ns. */
    Accumulator sendLatency_;
};

/** Configuration of the Enzian FPGA TCP stack at @p fpga_clock_hz. */
TcpStack::Config fpgaTcpConfig(std::uint32_t port, double fpga_clock_hz);

/** Configuration of the Linux kernel stack on a Xeon host. */
TcpStack::Config hostTcpConfig(std::uint32_t port);

} // namespace enzian::net

#endif // ENZIAN_NET_TCP_STACK_HH
