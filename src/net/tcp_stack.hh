/**
 * @file
 * Reliable byte-stream (TCP) stack model.
 *
 * One sliding-window reliable stream implementation parameterized by
 * per-segment processing costs; the two configurations used in the
 * paper's Figure 7 are:
 *
 *  - the FPGA TCP/IP stack (Sidler et al. [63]) ported to Enzian as a
 *    Coyote service: a single processing pipeline shared between all
 *    connections, with a small fixed per-segment cost and a streaming
 *    data path faster than the wire, so its throughput is independent
 *    of flow count and saturates 100 Gb/s with a 2 KiB MTU;
 *
 *  - the Linux kernel stack on a Xeon host: per-segment and per-byte
 *    CPU costs cap a single flow well below line rate, so multiple
 *    flows (4 in the paper) are needed to saturate the link.
 *
 * The stream is functional (byte counts delivered in order and
 * acknowledged cumulatively) over the switch/link substrate; there is
 * no loss in the modeled fabric so no retransmission machinery.
 */

#ifndef ENZIAN_NET_TCP_STACK_HH
#define ENZIAN_NET_TCP_STACK_HH

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "base/rng.hh"
#include "net/switch.hh"

namespace enzian::net {

/** TCP segment header bytes added to every segment on the wire. */
constexpr std::uint32_t tcpHeaderBytes = 64;

/** A reliable byte-stream stack attached to one switch port. */
class TcpStack : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;
    /** Receive notification: (flow, bytes in this delivery). */
    using ReceiveCb = std::function<void(std::uint32_t, std::uint64_t)>;

    /** Processing-cost configuration. */
    struct Config
    {
        /** Switch port this stack attaches to. */
        std::uint32_t port = 0;
        /** Maximum segment payload (bytes); <= link MTU - header. */
        std::uint32_t mss = 2048 - tcpHeaderBytes;
        /** Send window per flow (bytes in flight). */
        std::uint64_t window_bytes = 256 * 1024;
        /** TX fixed cost per segment (ns). */
        double tx_fixed_ns = 160.0;
        /** TX per-byte cost (ns/B); 0 for a streaming pipeline. */
        double tx_per_byte_ns = 0.0;
        /** RX fixed cost per segment (ns). */
        double rx_fixed_ns = 160.0;
        /** RX per-byte cost (ns/B). */
        double rx_per_byte_ns = 0.0;
        /** Whether TX cost serializes across flows (one pipeline). */
        bool shared_pipeline = true;
        /** One-way base latency of the stack (connect/app path, ns). */
        double app_latency_ns = 1200.0;
    };

    TcpStack(std::string name, EventQueue &eq, Switch &sw,
             const Config &cfg);

    /** Deliver received data notifications to the application. */
    void setReceiveCallback(ReceiveCb cb) { receiveCb_ = std::move(cb); }

    /**
     * Switch this stack to the sequenced/reliable wire format:
     * segments carry sequence numbers, the receiver acks cumulatively
     * and holds out-of-order arrivals, and a per-flow retransmission
     * timer with exponential backoff recovers lost segments. Must be
     * called before connect(), and on BOTH ends of every flow. The
     * default (lossless-fabric) format is untouched when this is off.
     */
    void enableReliable(double rto_us = 150.0);

    /**
     * Inject loss/reorder faults on this stack's transmit side,
     * drawing from @p rng (nullptr disarms). Requires the reliable
     * mode when @p drop_prob > 0 — the plain format has no
     * retransmission and would hang.
     *
     * @param reorder_delay_us extra delay a reordered segment incurs
     */
    void setLossFaults(Rng *rng, double drop_prob,
                       double reorder_prob,
                       double reorder_delay_us = 20.0);

    /**
     * Open a flow to @p remote (handshake not modeled).
     * @return flow id valid at both stacks.
     */
    std::uint32_t connect(TcpStack &remote);

    /**
     * Stream @p bytes on @p flow; @p done runs when every byte has
     * been acknowledged. Sends on the same flow queue in order.
     */
    void send(std::uint32_t flow, std::uint64_t bytes, Done done);

    /** Total bytes received in order on @p flow. */
    std::uint64_t bytesReceived(std::uint32_t flow) const;

    const Config &config() const { return cfg_; }

    std::uint64_t segmentsSent() const { return segsTx_.value(); }
    std::uint64_t retransmits() const { return retransmits_.value(); }
    std::uint64_t rtoFirings() const { return rtos_.value(); }
    std::uint64_t duplicateAcks() const { return dupAcks_.value(); }
    std::uint64_t duplicateSegments() const { return dupSegs_.value(); }
    std::uint64_t outOfOrderSegments() const { return oooSegs_.value(); }
    std::uint64_t segmentsDropped() const
    {
        return segsDropped_.value();
    }
    std::uint64_t segmentsReordered() const
    {
        return segsReordered_.value();
    }

  private:
    struct SendJob
    {
        std::uint64_t remaining;
        std::uint64_t unacked;
        Done done;
        Tick start = 0; // submit tick, for latency stats and spans
        /** Causal flow id captured at send() time (0 = untraced). */
        std::uint64_t flowId = 0;
    };

    struct Flow
    {
        std::uint32_t remotePort = 0;
        std::uint64_t inflight = 0; // bytes sent, not yet acked
        std::deque<SendJob> jobs;
        std::uint64_t received = 0;
        Tick txFreeAt = 0; // per-flow pipeline availability
        /** Reusable pump event; re-armed whenever the pipeline or
         *  window forces the flow to wait. */
        Event pumpEv;

        // -- reliable-mode state (unused in the default format) ----
        std::uint64_t txNext = 0;  // next byte sequence to send
        std::uint64_t ackedTo = 0; // cumulative ack received
        /** Unacked segments (seq, len), oldest first. */
        std::deque<std::pair<std::uint64_t, std::uint64_t>> sendQ;
        std::uint32_t rtoBackoff = 0;
        Event rtoEv;
        std::uint64_t rxExpected = 0; // next in-order byte expected
        /** Out-of-order arrivals held for reassembly: seq -> len. */
        std::map<std::uint64_t, std::uint64_t> ooo;
    };

    /** Message kinds on the wire. */
    enum : std::uint64_t {
        kindData = 1,
        kindAck = 2,
        /** Sequenced variants (reliable mode); the 32-bit field is a
         *  wire-segment id resolving to (seq, len). */
        kindDataSeq = 3,
        kindAckSeq = 4,
    };

    static std::uint64_t
    makeUser(std::uint64_t kind, std::uint32_t flow, std::uint64_t len)
    {
        return (kind << 52) | (static_cast<std::uint64_t>(flow) << 32) |
               (len & 0xffffffffull);
    }

    void pump(std::uint32_t flow_id);
    void schedulePump(std::uint32_t flow_id, Tick when);
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t tag);
    void onData(std::uint32_t flow_id, std::uint64_t len);
    void onAck(std::uint32_t flow_id, std::uint64_t len);

    // -- reliable-mode machinery ----------------------------------
    /** Transmit (or fault-drop/reorder) one sequenced segment. */
    void xmitData(std::uint32_t flow_id, Flow &f, std::uint64_t seq,
                  std::uint64_t len);
    void sendCumAck(std::uint32_t flow_id, Flow &f);
    void armRto(std::uint32_t flow_id);
    void onRto(std::uint32_t flow_id);
    void onDataSeq(std::uint32_t flow_id, std::uint64_t seq,
                   std::uint64_t len);
    void onAckSeq(std::uint32_t flow_id, std::uint64_t cum);

    Tick txCost(std::uint64_t payload) const;
    Tick rxCost(std::uint64_t payload) const;

    Switch &sw_;
    Config cfg_;
    ReceiveCb receiveCb_;
    std::unordered_map<std::uint32_t, Flow> flows_;
    std::uint32_t nextFlow_;
    /** Shared-pipeline availability (FPGA stack). */
    Tick pipeFreeAt_ = 0;
    /** Reliable mode (sequence numbers + RTO); off by default. */
    bool reliable_ = false;
    Tick rto_ = 0;
    /** Fault injection stream; nullptr = no faults. */
    Rng *faultRng_ = nullptr;
    double dropProb_ = 0.0;
    double reorderProb_ = 0.0;
    Tick reorderDelay_ = 0;
    Counter segsTx_;
    Counter segsRx_;
    Counter bytesTx_;
    Counter bytesRx_;
    Counter retransmits_;
    Counter rtos_;
    Counter dupAcks_;
    Counter dupSegs_;
    Counter oooSegs_;
    Counter segsDropped_;
    Counter segsReordered_;
    /** Submit-to-last-ack latency per send job, ns. */
    Accumulator sendLatency_;
};

/** Configuration of the Enzian FPGA TCP stack at @p fpga_clock_hz. */
TcpStack::Config fpgaTcpConfig(std::uint32_t port, double fpga_clock_hz);

/** Configuration of the Linux kernel stack on a Xeon host. */
TcpStack::Config hostTcpConfig(std::uint32_t port);

} // namespace enzian::net

#endif // ENZIAN_NET_TCP_STACK_HH
