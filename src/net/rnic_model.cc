/**
 * @file
 * RNIC DMA path implementation.
 */

#include "net/rnic_model.hh"

#include <algorithm>

namespace enzian::net {

NicDmaPath::NicDmaPath(mem::MemoryController &host, const Config &cfg)
    : host_(host), cfg_(cfg),
      bw_(cfg.bandwidth_gib * static_cast<double>(units::GiB))
{
}

Tick
NicDmaPath::access(std::uint64_t len)
{
    const Tick start = std::max(host_.now(), pipeFreeAt_) +
                       units::ns(cfg_.op_overhead_ns);
    const Tick stream = units::transferTicks(len, bw_);
    pipeFreeAt_ = start + stream;
    return start + stream + units::ns(cfg_.latency_ns);
}

void
NicDmaPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                 Done done)
{
    host_.store().read(off, dst, len);
    const Tick pipe_done = access(len);
    const Tick ready =
        std::max(pipe_done, host_.dram().access(host_.now(), len));
    host_.eventq().schedule(
        ready, [done = std::move(done), ready]() { done(ready); },
        "rnic-read");
}

void
NicDmaPath::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                  Done done)
{
    host_.store().write(off, src, len);
    const Tick pipe_done = access(len);
    const Tick durable =
        std::max(pipe_done, host_.dram().access(host_.now(), len));
    host_.eventq().schedule(
        durable, [done = std::move(done), durable]() { done(durable); },
        "rnic-write");
}

} // namespace enzian::net
