/**
 * @file
 * TCP stack model implementation.
 */

#include "net/tcp_stack.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::net {

TcpStack::TcpStack(std::string name, EventQueue &eq, Switch &sw,
                   const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), cfg_(cfg),
      nextFlow_((cfg.port << 16) | 1)
{
    if (cfg_.mss == 0)
        fatal("TCP stack '%s': zero MSS", SimObject::name().c_str());
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, Switch::userOf(tag));
                    });
    stats().addCounter("segments_tx", &segsTx_);
    stats().addCounter("segments_rx", &segsRx_);
    stats().addCounter("bytes_tx", &bytesTx_);
    stats().addCounter("bytes_rx", &bytesRx_);
    stats().addAccumulator("send_latency_ns", &sendLatency_);
}

std::uint32_t
TcpStack::connect(TcpStack &remote)
{
    const std::uint32_t id = nextFlow_++;
    Flow &mine = flows_.try_emplace(id).first->second;
    mine.remotePort = remote.cfg_.port;
    mine.pumpEv.init(eventq(), [this, id]() { pump(id); },
                     "tcp-pump");
    Flow &theirs = remote.flows_.try_emplace(id).first->second;
    theirs.remotePort = cfg_.port;
    theirs.pumpEv.init(remote.eventq(),
                       [rs = &remote, id]() { rs->pump(id); },
                       "tcp-pump");
    return id;
}

Tick
TcpStack::txCost(std::uint64_t payload) const
{
    return units::ns(cfg_.tx_fixed_ns +
                     cfg_.tx_per_byte_ns *
                         static_cast<double>(payload));
}

Tick
TcpStack::rxCost(std::uint64_t payload) const
{
    return units::ns(cfg_.rx_fixed_ns +
                     cfg_.rx_per_byte_ns *
                         static_cast<double>(payload));
}

void
TcpStack::send(std::uint32_t flow_id, std::uint64_t bytes, Done done)
{
    auto it = flows_.find(flow_id);
    ENZIAN_ASSERT(it != flows_.end(), "send on unknown flow %u",
                  flow_id);
    if (bytes == 0) {
        const Tick t = now();
        eventq().schedule(t, [done = std::move(done), t]() { done(t); },
                          "tcp-empty-send");
        return;
    }
    it->second.jobs.push_back(SendJob{bytes, 0, std::move(done), now()});
    pump(flow_id);
}

void
TcpStack::schedulePump(std::uint32_t flow_id, Tick when)
{
    Flow &f = flows_.at(flow_id);
    if (f.pumpEv.scheduled())
        return;
    f.pumpEv.schedule(std::max(when, now()));
}

void
TcpStack::pump(std::uint32_t flow_id)
{
    Flow &f = flows_.at(flow_id);
    while (!f.jobs.empty()) {
        SendJob &job = f.jobs.front();
        if (job.remaining == 0)
            break; // waiting for acks only
        if (f.inflight >= cfg_.window_bytes)
            return; // ack-clocked; pump resumes in onAck

        Tick &free_ref = cfg_.shared_pipeline ? pipeFreeAt_ : f.txFreeAt;
        if (free_ref > now()) {
            schedulePump(flow_id, free_ref);
            return;
        }

        const std::uint64_t seg =
            std::min<std::uint64_t>(cfg_.mss, job.remaining);
        free_ref = now() + txCost(seg);
        job.remaining -= seg;
        job.unacked += seg;
        f.inflight += seg;
        segsTx_.inc();
        bytesTx_.inc(seg);
        sw_.sendFrom(cfg_.port, seg + tcpHeaderBytes,
                     Switch::makeTag(f.remotePort,
                                     makeUser(kindData, flow_id, seg)));
    }
}

void
TcpStack::onFrame(Tick when, std::uint64_t payload, std::uint64_t user)
{
    (void)payload;
    const std::uint64_t kind = user >> 52;
    const auto flow_id = static_cast<std::uint32_t>(
        (user >> 32) & 0xfffff);
    const std::uint64_t len = user & 0xffffffffull;
    (void)when;
    if (kind == kindData)
        onData(flow_id, len);
    else if (kind == kindAck)
        onAck(flow_id, len);
    else
        panic("TCP frame with bad kind %llu",
              static_cast<unsigned long long>(kind));
}

void
TcpStack::onData(std::uint32_t flow_id, std::uint64_t len)
{
    ENZIAN_ASSERT(flows_.count(flow_id), "data for unknown flow %u",
                  flow_id);
    segsRx_.inc();
    bytesRx_.inc(len);

    // Receive-side processing, then ack and deliver to the app.
    const Tick done_rx = now() + rxCost(len);
    eventq().schedule(
        done_rx,
        [this, flow_id, len]() {
            Flow &fl = flows_.at(flow_id);
            fl.received += len;
            sw_.sendFrom(cfg_.port, tcpHeaderBytes,
                         Switch::makeTag(fl.remotePort,
                                         makeUser(kindAck, flow_id,
                                                  len)));
            if (receiveCb_) {
                // The application sees the data after the app-path
                // latency (DMA/notification).
                eventq().scheduleDelta(
                    units::ns(cfg_.app_latency_ns),
                    [this, flow_id, len]() { receiveCb_(flow_id, len); },
                    "tcp-app-deliver");
            }
        },
        "tcp-rx");
}

void
TcpStack::onAck(std::uint32_t flow_id, std::uint64_t len)
{
    auto it = flows_.find(flow_id);
    ENZIAN_ASSERT(it != flows_.end(), "ack for unknown flow %u",
                  flow_id);
    Flow &f = it->second;
    ENZIAN_ASSERT(f.inflight >= len, "ack of %llu exceeds inflight",
                  static_cast<unsigned long long>(len));
    f.inflight -= len;

    std::uint64_t credit = len;
    while (credit > 0 && !f.jobs.empty()) {
        SendJob &job = f.jobs.front();
        const std::uint64_t take = std::min(credit, job.unacked);
        job.unacked -= take;
        credit -= take;
        if (job.remaining == 0 && job.unacked == 0) {
            Done done = std::move(job.done);
            sendLatency_.sample(units::toNanos(now() - job.start));
            ENZIAN_SPAN(name(), "send", job.start, now());
            f.jobs.pop_front();
            if (done)
                done(now());
        } else {
            break;
        }
    }
    pump(flow_id);
}

std::uint64_t
TcpStack::bytesReceived(std::uint32_t flow_id) const
{
    auto it = flows_.find(flow_id);
    return it == flows_.end() ? 0 : it->second.received;
}

TcpStack::Config
fpgaTcpConfig(std::uint32_t port, double fpga_clock_hz)
{
    // The Sidler et al. stack processes a segment every ~40 fabric
    // cycles through a single shared pipeline whose data path runs at
    // line rate, so throughput depends only on the segment rate.
    TcpStack::Config cfg;
    cfg.port = port;
    cfg.mss = 2048 - tcpHeaderBytes;
    cfg.window_bytes = 256 * 1024;
    cfg.tx_fixed_ns = 40.0 / fpga_clock_hz * 1e9;
    cfg.tx_per_byte_ns = 0.0;
    cfg.rx_fixed_ns = 40.0 / fpga_clock_hz * 1e9;
    cfg.rx_per_byte_ns = 0.0;
    cfg.shared_pipeline = true;
    cfg.app_latency_ns = 1200.0;
    return cfg;
}

TcpStack::Config
hostTcpConfig(std::uint32_t port)
{
    // Linux kernel stack with TSO/GRO: 64 KiB super-segments, a fixed
    // per-segment syscall/softirq cost and a per-byte copy+checksum
    // cost that caps one flow near 27 Gb/s on a Xeon Gold 6248 core.
    TcpStack::Config cfg;
    cfg.port = port;
    cfg.mss = 64 * 1024;
    cfg.window_bytes = 4 * 1024 * 1024;
    cfg.tx_fixed_ns = 800.0;
    cfg.tx_per_byte_ns = 0.28;
    cfg.rx_fixed_ns = 800.0;
    cfg.rx_per_byte_ns = 0.10;
    cfg.shared_pipeline = false; // one core per iperf flow
    cfg.app_latency_ns = 18000.0;
    return cfg;
}

} // namespace enzian::net
