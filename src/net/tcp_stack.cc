/**
 * @file
 * TCP stack model implementation.
 */

#include "net/tcp_stack.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/request_context.hh"
#include "obs/span_tracer.hh"

namespace enzian::net {

namespace {

/**
 * Sequenced segments carry a 32-bit wire id in the frame user field;
 * the id resolves to the (seq, len) pair here. Entries are erased on
 * delivery; fault-dropped segments are never registered, so the
 * registry only ever holds frames in flight.
 */
struct WireSeg
{
    std::uint64_t seq;
    std::uint64_t len; // 0 for cumulative acks (seq = ack point)
};

std::uint32_t g_next_seg_id = 1;
std::unordered_map<std::uint32_t, WireSeg> g_segs;

std::uint32_t
registerSeg(std::uint64_t seq, std::uint64_t len)
{
    const std::uint32_t id = g_next_seg_id++;
    g_segs.emplace(id, WireSeg{seq, len});
    return id;
}

WireSeg
takeSeg(std::uint32_t id)
{
    auto it = g_segs.find(id);
    ENZIAN_ASSERT(it != g_segs.end(), "unknown wire segment %u", id);
    WireSeg seg = it->second;
    g_segs.erase(it);
    return seg;
}

} // namespace

TcpStack::TcpStack(std::string name, EventQueue &eq, Switch &sw,
                   const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), cfg_(cfg),
      nextFlow_((cfg.port << 16) | 1)
{
    if (cfg_.mss == 0)
        fatal("TCP stack '%s': zero MSS", SimObject::name().c_str());
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, Switch::userOf(tag));
                    });
    stats().addCounter("segments_tx", &segsTx_);
    stats().addCounter("segments_rx", &segsRx_);
    stats().addCounter("bytes_tx", &bytesTx_);
    stats().addCounter("bytes_rx", &bytesRx_);
    stats().addCounter("retransmits", &retransmits_);
    stats().addCounter("rto_firings", &rtos_);
    stats().addCounter("duplicate_acks", &dupAcks_);
    stats().addCounter("duplicate_segments", &dupSegs_);
    stats().addCounter("out_of_order_segments", &oooSegs_);
    stats().addCounter("fault_segments_dropped", &segsDropped_);
    stats().addCounter("fault_segments_reordered", &segsReordered_);
    stats().addAccumulator("send_latency_ns", &sendLatency_);
}

void
TcpStack::enableReliable(double rto_us)
{
    ENZIAN_ASSERT(flows_.empty(),
                  "enableReliable after flows were opened");
    reliable_ = true;
    rto_ = units::us(rto_us);
}

void
TcpStack::setLossFaults(Rng *rng, double drop_prob,
                        double reorder_prob, double reorder_delay_us)
{
    ENZIAN_ASSERT(reliable_ || !rng || drop_prob == 0.0,
                  "loss faults on the lossless wire format would hang");
    faultRng_ = rng;
    dropProb_ = drop_prob;
    reorderProb_ = reorder_prob;
    reorderDelay_ = units::us(reorder_delay_us);
}

std::uint32_t
TcpStack::connect(TcpStack &remote)
{
    const std::uint32_t id = nextFlow_++;
    Flow &mine = flows_.try_emplace(id).first->second;
    mine.remotePort = remote.cfg_.port;
    mine.pumpEv.init(eventq(), [this, id]() { pump(id); },
                     "tcp-pump");
    Flow &theirs = remote.flows_.try_emplace(id).first->second;
    theirs.remotePort = cfg_.port;
    theirs.pumpEv.init(remote.eventq(),
                       [rs = &remote, id]() { rs->pump(id); },
                       "tcp-pump");
    if (reliable_) {
        ENZIAN_ASSERT(remote.reliable_,
                      "reliable flow against a plain-format peer");
        mine.rtoEv.init(eventq(), [this, id]() { onRto(id); },
                        "tcp-rto");
        theirs.rtoEv.init(remote.eventq(),
                          [rs = &remote, id]() { rs->onRto(id); },
                          "tcp-rto");
    }
    return id;
}

Tick
TcpStack::txCost(std::uint64_t payload) const
{
    return units::ns(cfg_.tx_fixed_ns +
                     cfg_.tx_per_byte_ns *
                         static_cast<double>(payload));
}

Tick
TcpStack::rxCost(std::uint64_t payload) const
{
    return units::ns(cfg_.rx_fixed_ns +
                     cfg_.rx_per_byte_ns *
                         static_cast<double>(payload));
}

void
TcpStack::send(std::uint32_t flow_id, std::uint64_t bytes, Done done)
{
    auto it = flows_.find(flow_id);
    ENZIAN_ASSERT(it != flows_.end(), "send on unknown flow %u",
                  flow_id);
    if (bytes == 0) {
        const Tick t = now();
        eventq().schedule(t, [done = std::move(done), t]() { done(t); },
                          "tcp-empty-send");
        return;
    }
    it->second.jobs.push_back(SendJob{bytes, 0, std::move(done), now(),
                                      obs::currentFlowId()});
    pump(flow_id);
}

void
TcpStack::schedulePump(std::uint32_t flow_id, Tick when)
{
    Flow &f = flows_.at(flow_id);
    if (f.pumpEv.scheduled())
        return;
    f.pumpEv.schedule(std::max(when, now()));
}

void
TcpStack::pump(std::uint32_t flow_id)
{
    Flow &f = flows_.at(flow_id);
    while (!f.jobs.empty()) {
        SendJob &job = f.jobs.front();
        if (job.remaining == 0)
            break; // waiting for acks only
        if (f.inflight >= cfg_.window_bytes)
            return; // ack-clocked; pump resumes in onAck

        Tick &free_ref = cfg_.shared_pipeline ? pipeFreeAt_ : f.txFreeAt;
        if (free_ref > now()) {
            schedulePump(flow_id, free_ref);
            return;
        }

        const std::uint64_t seg =
            std::min<std::uint64_t>(cfg_.mss, job.remaining);
        free_ref = now() + txCost(seg);
        job.remaining -= seg;
        job.unacked += seg;
        f.inflight += seg;
        segsTx_.inc();
        bytesTx_.inc(seg);
        if (reliable_) {
            const std::uint64_t seq = f.txNext;
            f.txNext += seg;
            f.sendQ.emplace_back(seq, seg);
            xmitData(flow_id, f, seq, seg);
            armRto(flow_id);
        } else {
            sw_.sendFrom(cfg_.port, seg + tcpHeaderBytes,
                         Switch::makeTag(f.remotePort,
                                         makeUser(kindData, flow_id,
                                                  seg)));
        }
    }
}

void
TcpStack::xmitData(std::uint32_t flow_id, Flow &f, std::uint64_t seq,
                   std::uint64_t len)
{
    // The drop decision comes first so a lost segment never enters
    // the wire registry.
    if (faultRng_ && dropProb_ > 0.0 && faultRng_->chance(dropProb_)) {
        segsDropped_.inc();
        return;
    }
    const std::uint32_t id = registerSeg(seq, len);
    const std::uint64_t tag = Switch::makeTag(
        f.remotePort, makeUser(kindDataSeq, flow_id, id));
    const std::uint64_t frame = len + tcpHeaderBytes;
    if (faultRng_ && reorderProb_ > 0.0 &&
        faultRng_->chance(reorderProb_)) {
        segsReordered_.inc();
        eventq().scheduleDelta(
            reorderDelay_,
            [this, frame, tag]() { sw_.sendFrom(cfg_.port, frame, tag); },
            "tcp-reorder");
        return;
    }
    sw_.sendFrom(cfg_.port, frame, tag);
}

void
TcpStack::sendCumAck(std::uint32_t flow_id, Flow &f)
{
    // Cumulative acks are drop-able too: the next one repairs it.
    if (faultRng_ && dropProb_ > 0.0 && faultRng_->chance(dropProb_)) {
        segsDropped_.inc();
        return;
    }
    const std::uint32_t id = registerSeg(f.rxExpected, 0);
    sw_.sendFrom(cfg_.port, tcpHeaderBytes,
                 Switch::makeTag(f.remotePort,
                                 makeUser(kindAckSeq, flow_id, id)));
}

void
TcpStack::armRto(std::uint32_t flow_id)
{
    Flow &f = flows_.at(flow_id);
    if (f.sendQ.empty()) {
        f.rtoEv.cancel();
        return;
    }
    if (f.rtoEv.scheduled())
        return;
    f.rtoEv.scheduleDelta(rto_
                          << std::min<std::uint32_t>(f.rtoBackoff, 6));
}

void
TcpStack::onRto(std::uint32_t flow_id)
{
    Flow &f = flows_.at(flow_id);
    if (f.sendQ.empty())
        return;
    ++f.rtoBackoff;
    ENZIAN_ASSERT(f.rtoBackoff < 64,
                  "flow %u: retransmission not making progress",
                  flow_id);
    rtos_.inc();
    retransmits_.inc();
    // Go-back-N on the oldest unacked segment; the cumulative ack it
    // provokes re-opens the window for everything after it.
    const auto [seq, len] = f.sendQ.front();
    xmitData(flow_id, f, seq, len);
    armRto(flow_id);
}

void
TcpStack::onFrame(Tick when, std::uint64_t payload, std::uint64_t user)
{
    (void)payload;
    const std::uint64_t kind = user >> 52;
    const auto flow_id = static_cast<std::uint32_t>(
        (user >> 32) & 0xfffff);
    const std::uint64_t len = user & 0xffffffffull;
    (void)when;
    if (kind == kindData) {
        onData(flow_id, len);
    } else if (kind == kindAck) {
        onAck(flow_id, len);
    } else if (kind == kindDataSeq) {
        const WireSeg seg = takeSeg(static_cast<std::uint32_t>(len));
        onDataSeq(flow_id, seg.seq, seg.len);
    } else if (kind == kindAckSeq) {
        const WireSeg seg = takeSeg(static_cast<std::uint32_t>(len));
        onAckSeq(flow_id, seg.seq);
    } else {
        panic("TCP frame with bad kind %llu",
              static_cast<unsigned long long>(kind));
    }
}

void
TcpStack::onDataSeq(std::uint32_t flow_id, std::uint64_t seq,
                    std::uint64_t len)
{
    ENZIAN_ASSERT(flows_.count(flow_id), "data for unknown flow %u",
                  flow_id);
    segsRx_.inc();
    const Tick done_rx = now() + rxCost(len);
    eventq().schedule(
        done_rx,
        [this, flow_id, seq, len]() {
            Flow &fl = flows_.at(flow_id);
            const std::uint64_t before = fl.rxExpected;
            if (seq + len <= fl.rxExpected) {
                // Already have all of it: a retransmission whose
                // original ack got lost.
                dupSegs_.inc();
            } else if (seq > fl.rxExpected) {
                // Hole before it: hold for reassembly.
                oooSegs_.inc();
                fl.ooo.emplace(seq, len);
            } else {
                fl.rxExpected = seq + len;
                // Drain any held segments made contiguous.
                auto it = fl.ooo.begin();
                while (it != fl.ooo.end() &&
                       it->first <= fl.rxExpected) {
                    fl.rxExpected = std::max(fl.rxExpected,
                                             it->first + it->second);
                    it = fl.ooo.erase(it);
                }
            }
            const std::uint64_t delivered = fl.rxExpected - before;
            if (delivered > 0) {
                fl.received += delivered;
                bytesRx_.inc(delivered);
                if (receiveCb_) {
                    eventq().scheduleDelta(
                        units::ns(cfg_.app_latency_ns),
                        [this, flow_id, delivered]() {
                            receiveCb_(flow_id, delivered);
                        },
                        "tcp-app-deliver");
                }
            }
            // Every arrival provokes a cumulative ack; duplicates let
            // the sender notice loss sooner and survive lost acks.
            sendCumAck(flow_id, fl);
        },
        "tcp-rx-seq");
}

void
TcpStack::onAckSeq(std::uint32_t flow_id, std::uint64_t cum)
{
    auto it = flows_.find(flow_id);
    ENZIAN_ASSERT(it != flows_.end(), "ack for unknown flow %u",
                  flow_id);
    Flow &f = it->second;
    if (cum <= f.ackedTo) {
        dupAcks_.inc();
        return;
    }
    const std::uint64_t newly = cum - f.ackedTo;
    f.ackedTo = cum;
    f.rtoBackoff = 0;
    while (!f.sendQ.empty() &&
           f.sendQ.front().first + f.sendQ.front().second <= cum) {
        f.sendQ.pop_front();
    }
    f.rtoEv.cancel();
    armRto(flow_id);
    // Each byte is counted into inflight exactly once (first
    // transmission) and acked exactly once (cumulative point is
    // monotone), so the plain-format accounting applies unchanged.
    onAck(flow_id, newly);
}

void
TcpStack::onData(std::uint32_t flow_id, std::uint64_t len)
{
    ENZIAN_ASSERT(flows_.count(flow_id), "data for unknown flow %u",
                  flow_id);
    segsRx_.inc();
    bytesRx_.inc(len);

    // Receive-side processing, then ack and deliver to the app.
    const Tick done_rx = now() + rxCost(len);
    eventq().schedule(
        done_rx,
        [this, flow_id, len]() {
            Flow &fl = flows_.at(flow_id);
            fl.received += len;
            sw_.sendFrom(cfg_.port, tcpHeaderBytes,
                         Switch::makeTag(fl.remotePort,
                                         makeUser(kindAck, flow_id,
                                                  len)));
            if (receiveCb_) {
                // The application sees the data after the app-path
                // latency (DMA/notification).
                eventq().scheduleDelta(
                    units::ns(cfg_.app_latency_ns),
                    [this, flow_id, len]() { receiveCb_(flow_id, len); },
                    "tcp-app-deliver");
            }
        },
        "tcp-rx");
}

void
TcpStack::onAck(std::uint32_t flow_id, std::uint64_t len)
{
    auto it = flows_.find(flow_id);
    ENZIAN_ASSERT(it != flows_.end(), "ack for unknown flow %u",
                  flow_id);
    Flow &f = it->second;
    ENZIAN_ASSERT(f.inflight >= len, "ack of %llu exceeds inflight",
                  static_cast<unsigned long long>(len));
    f.inflight -= len;

    std::uint64_t credit = len;
    while (credit > 0 && !f.jobs.empty()) {
        SendJob &job = f.jobs.front();
        const std::uint64_t take = std::min(credit, job.unacked);
        job.unacked -= take;
        credit -= take;
        if (job.remaining == 0 && job.unacked == 0) {
            Done done = std::move(job.done);
            sendLatency_.sample(units::toNanos(now() - job.start));
            ENZIAN_SPAN(name(), "send", job.start, now());
            ENZIAN_FLOW_STEP(name(), "acked", now(), job.flowId);
            f.jobs.pop_front();
            if (done)
                done(now());
        } else {
            break;
        }
    }
    pump(flow_id);
}

std::uint64_t
TcpStack::bytesReceived(std::uint32_t flow_id) const
{
    auto it = flows_.find(flow_id);
    return it == flows_.end() ? 0 : it->second.received;
}

TcpStack::Config
fpgaTcpConfig(std::uint32_t port, double fpga_clock_hz)
{
    // The Sidler et al. stack processes a segment every ~40 fabric
    // cycles through a single shared pipeline whose data path runs at
    // line rate, so throughput depends only on the segment rate.
    TcpStack::Config cfg;
    cfg.port = port;
    cfg.mss = 2048 - tcpHeaderBytes;
    cfg.window_bytes = 256 * 1024;
    cfg.tx_fixed_ns = 40.0 / fpga_clock_hz * 1e9;
    cfg.tx_per_byte_ns = 0.0;
    cfg.rx_fixed_ns = 40.0 / fpga_clock_hz * 1e9;
    cfg.rx_per_byte_ns = 0.0;
    cfg.shared_pipeline = true;
    cfg.app_latency_ns = 1200.0;
    return cfg;
}

TcpStack::Config
hostTcpConfig(std::uint32_t port)
{
    // Linux kernel stack with TSO/GRO: 64 KiB super-segments, a fixed
    // per-segment syscall/softirq cost and a per-byte copy+checksum
    // cost that caps one flow near 27 Gb/s on a Xeon Gold 6248 core.
    TcpStack::Config cfg;
    cfg.port = port;
    cfg.mss = 64 * 1024;
    cfg.window_bytes = 4 * 1024 * 1024;
    cfg.tx_fixed_ns = 800.0;
    cfg.tx_per_byte_ns = 0.28;
    cfg.rx_fixed_ns = 800.0;
    cfg.rx_per_byte_ns = 0.10;
    cfg.shared_pipeline = false; // one core per iperf flow
    cfg.app_latency_ns = 18000.0;
    return cfg;
}

} // namespace enzian::net
