/**
 * @file
 * One-sided RDMA (StRoM-style) engine.
 *
 * Reproduces the structure of the paper's Figure 8 experiment: a
 * request generator (the Xilinx VCU118 in the paper) issues 1-sided
 * READ/WRITE copy requests over 100 Gb/s Ethernet to a target, which
 * serves them from one of several memory paths:
 *
 *  - DirectDramPath: DDR4 attached to the FPGA/NIC ("DRAM" series);
 *  - EciHostPath: CPU host memory reached over ECI with uncached
 *    coherent line transactions ("Enzian Host" - coherent with L2);
 *  - PcieHostPath: host memory reached with PCIe DMA ("Alveo Host");
 *  - NicDmaPath (rnic_model.hh): an ASIC RNIC's DMA pipeline
 *    ("Mellanox Host").
 */

#ifndef ENZIAN_NET_RDMA_ENGINE_HH
#define ENZIAN_NET_RDMA_ENGINE_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "eci/remote_agent.hh"
#include "net/switch.hh"
#include "pcie/dma_engine.hh"

namespace enzian::net {

/** RDMA request header bytes on the wire (BTH + RETH equivalent). */
constexpr std::uint32_t rdmaHeaderBytes = 64;

/** Abstract timed+functional path to a target's memory region. */
class MemoryPath
{
  public:
    using Done = std::function<void(Tick)>;

    virtual ~MemoryPath() = default;

    /** Read @p len bytes at region offset @p off into @p dst. */
    virtual void read(Addr off, std::uint8_t *dst, std::uint64_t len,
                      Done done) = 0;

    /** Write @p len bytes at region offset @p off from @p src. */
    virtual void write(Addr off, const std::uint8_t *src,
                       std::uint64_t len, Done done) = 0;

    /** Short label for reports ("dram", "eci-host", "pcie-host"). */
    virtual const char *kind() const = 0;
};

/** Memory path straight into device-attached DRAM. */
class DirectDramPath : public MemoryPath
{
  public:
    explicit DirectDramPath(mem::MemoryController &mc) : mc_(mc) {}

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "dram"; }

  private:
    mem::MemoryController &mc_;
};

/**
 * Memory path to CPU host memory over ECI: the transfer is split into
 * uncached coherent cache-line transactions, so it is coherent with
 * the CPU's L2 by construction.
 */
class EciHostPath : public MemoryPath
{
  public:
    /**
     * @param agent the FPGA-side remote agent
     * @param base physical base address of the host region
     */
    EciHostPath(eci::RemoteAgent &agent, Addr base)
        : agent_(agent), base_(base)
    {
    }

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "eci-host"; }

  private:
    eci::RemoteAgent &agent_;
    Addr base_;
};

/** Memory path to host memory via a PCIe DMA engine (Alveo-style). */
class PcieHostPath : public MemoryPath
{
  public:
    /**
     * @param dma the card's DMA engine
     * @param host_base offset of the region in host memory
     * @param staging_base offset of a staging buffer in device memory
     */
    PcieHostPath(pcie::DmaEngine &dma, Addr host_base, Addr staging_base)
        : dma_(dma), hostBase_(host_base), stagingBase_(staging_base)
    {
    }

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "pcie-host"; }

  private:
    pcie::DmaEngine &dma_;
    Addr hostBase_;
    Addr stagingBase_;
};

/** RDMA operation kinds. */
enum class RdmaOp : std::uint8_t { Read = 1, Write = 2 };

/** The target-side RDMA engine attached to a switch port. */
class RdmaTarget : public SimObject
{
  public:
    /** Target processing configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Request parsing/dispatch cost (ns). */
        double request_proc_ns = 300.0;
        /** Network MTU used for response segmentation (bytes). */
        std::uint32_t mtu = 4096;
    };

    RdmaTarget(std::string name, EventQueue &eq, Switch &sw,
               MemoryPath &mem, const Config &cfg);

    std::uint64_t requestsServed() const { return served_.value(); }

    /**
     * Inject response-loss faults drawing from @p rng (nullptr
     * disarms): a served request's completion frame is dropped on the
     * wire with @p response_drop_prob, leaving recovery to the
     * initiator's timeout/retry machinery.
     */
    void setFaults(Rng *rng, double response_drop_prob);

    std::uint64_t staleRequests() const { return staleReqs_.value(); }
    std::uint64_t responsesDropped() const
    {
        return rspsDropped_.value();
    }

    /**
     * @internal wire record shared with initiators (same process).
     * The process-wide ledger behind it is thread-safe, so initiators
     * and targets may live in different timing domains; ids are
     * allocated from one atomic counter, so engines never collide.
     */
    struct WireRequest
    {
        RdmaOp op;
        Addr off;
        std::uint64_t len;
        std::uint32_t srcPort;
        std::vector<std::uint8_t> data; // write payload
        std::function<void(Tick, std::vector<std::uint8_t>)> complete;
        /** Causal flow id of the serving request (0 = untraced). */
        std::uint64_t flowId = 0;
    };

    /** Register an incoming request's metadata (initiator side). */
    static std::uint64_t registerRequest(WireRequest req);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);
    void serve(std::uint64_t req_id);

    Switch &sw_;
    MemoryPath &mem_;
    Config cfg_;
    /** Response-drop fault stream; nullptr = no faults. */
    Rng *faultRng_ = nullptr;
    double rspDropProb_ = 0.0;
    Counter served_;
    Counter bytes_;
    Counter staleReqs_;
    Counter rspsDropped_;
    /** Dispatch-to-memory-completion service time, ns. */
    Accumulator service_;
};

/** The initiator-side request generator (the paper's VCU118). */
class RdmaInitiator : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;

    RdmaInitiator(std::string name, EventQueue &eq, Switch &sw,
                  std::uint32_t port, std::uint32_t target_port);

    /** 1-sided read of @p len bytes at target offset @p off. */
    void read(Addr off, std::uint8_t *dst, std::uint64_t len, Done done);

    /** 1-sided write of @p len bytes to target offset @p off. */
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done);

    /**
     * As read(), but against the target on @p target_port instead of
     * the constructor default — one initiator can serve several
     * targets (replication fan-out, read-from-nearest placement).
     * Retries re-issue against the same target.
     */
    void readFrom(std::uint32_t target_port, Addr off, std::uint8_t *dst,
                  std::uint64_t len, Done done);

    /** As write(), but against the target on @p target_port. */
    void writeTo(std::uint32_t target_port, Addr off,
                 const std::uint8_t *src, std::uint64_t len, Done done);

    /**
     * Arm timeout-based recovery: an unanswered request is abandoned
     * after @p timeout_us (with exponential backoff per attempt) and
     * re-issued under a FRESH wire id, so a late completion of the old
     * attempt can never be mistaken for the retry's. Must be enabled
     * before faults are injected anywhere on the RDMA path.
     *
     * Exhausting @p max_retries panics by default (the chaos runs
     * treat it as a livelock). With @p abandon_after_retries the
     * request is dropped and counted instead — what a real client
     * does under saturation, and what an open-loop load harness
     * needs: retry storms into an overloaded wire must not take the
     * process down.
     */
    void enableRecovery(double timeout_us, std::uint32_t max_retries = 12,
                        bool abandon_after_retries = false);

    /**
     * Inject request-loss faults on this initiator drawing from
     * @p rng (nullptr disarms). Requires enableRecovery() when
     * @p request_drop_prob > 0 — there is no other loss recovery.
     */
    void setFaults(Rng *rng, double request_drop_prob);

    std::uint64_t retriesSent() const { return retries_.value(); }
    std::uint64_t requestsDropped() const
    {
        return reqsDropped_.value();
    }
    std::uint64_t staleCompletions() const
    {
        return staleCompletions_.value();
    }

  private:
    struct Pending
    {
        std::uint8_t *dst = nullptr;
        Done done;
        /** Destination switch port of this op's target. */
        std::uint32_t target = 0;
        // -- recovery-mode state (unused when recovery is off) -----
        RdmaOp op = RdmaOp::Read;
        Addr off = 0;
        std::uint64_t len = 0;
        std::vector<std::uint8_t> data; // write payload kept for retry
        EventId retryEv = 0;
        std::uint32_t attempts = 0;
        /** Causal flow id captured at read()/write() time. */
        std::uint64_t flowId = 0;
        /** When the current attempt went on the wire. */
        Tick issued = 0;
    };

    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);
    /** Register the wire request for @p p and put it on the wire. */
    void issue(Pending p);
    void onTimeout(std::uint64_t id);

    Switch &sw_;
    std::uint32_t port_;
    std::uint32_t targetPort_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    /** Retry timeout (0 = recovery off, the default). */
    Tick recoveryTimeout_ = 0;
    std::uint32_t maxRetries_ = 12;
    /** Give up (and count) instead of panicking at max retries. */
    bool abandonAfterRetries_ = false;
    /** Request-drop fault stream; nullptr = no faults. */
    Rng *faultRng_ = nullptr;
    double reqDropProb_ = 0.0;
    Counter retries_;
    Counter reqsDropped_;
    Counter staleCompletions_;
    Counter abandoned_;
};

} // namespace enzian::net

#endif // ENZIAN_NET_RDMA_ENGINE_HH
