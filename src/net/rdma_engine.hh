/**
 * @file
 * One-sided RDMA (StRoM-style) engine.
 *
 * Reproduces the structure of the paper's Figure 8 experiment: a
 * request generator (the Xilinx VCU118 in the paper) issues 1-sided
 * READ/WRITE copy requests over 100 Gb/s Ethernet to a target, which
 * serves them from one of several memory paths:
 *
 *  - DirectDramPath: DDR4 attached to the FPGA/NIC ("DRAM" series);
 *  - EciHostPath: CPU host memory reached over ECI with uncached
 *    coherent line transactions ("Enzian Host" - coherent with L2);
 *  - PcieHostPath: host memory reached with PCIe DMA ("Alveo Host");
 *  - NicDmaPath (rnic_model.hh): an ASIC RNIC's DMA pipeline
 *    ("Mellanox Host").
 */

#ifndef ENZIAN_NET_RDMA_ENGINE_HH
#define ENZIAN_NET_RDMA_ENGINE_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "eci/remote_agent.hh"
#include "net/switch.hh"
#include "pcie/dma_engine.hh"

namespace enzian::net {

/** RDMA request header bytes on the wire (BTH + RETH equivalent). */
constexpr std::uint32_t rdmaHeaderBytes = 64;

/** Abstract timed+functional path to a target's memory region. */
class MemoryPath
{
  public:
    using Done = std::function<void(Tick)>;

    virtual ~MemoryPath() = default;

    /** Read @p len bytes at region offset @p off into @p dst. */
    virtual void read(Addr off, std::uint8_t *dst, std::uint64_t len,
                      Done done) = 0;

    /** Write @p len bytes at region offset @p off from @p src. */
    virtual void write(Addr off, const std::uint8_t *src,
                       std::uint64_t len, Done done) = 0;

    /** Short label for reports ("dram", "eci-host", "pcie-host"). */
    virtual const char *kind() const = 0;
};

/** Memory path straight into device-attached DRAM. */
class DirectDramPath : public MemoryPath
{
  public:
    explicit DirectDramPath(mem::MemoryController &mc) : mc_(mc) {}

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "dram"; }

  private:
    mem::MemoryController &mc_;
};

/**
 * Memory path to CPU host memory over ECI: the transfer is split into
 * uncached coherent cache-line transactions, so it is coherent with
 * the CPU's L2 by construction.
 */
class EciHostPath : public MemoryPath
{
  public:
    /**
     * @param agent the FPGA-side remote agent
     * @param base physical base address of the host region
     */
    EciHostPath(eci::RemoteAgent &agent, Addr base)
        : agent_(agent), base_(base)
    {
    }

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "eci-host"; }

  private:
    eci::RemoteAgent &agent_;
    Addr base_;
};

/** Memory path to host memory via a PCIe DMA engine (Alveo-style). */
class PcieHostPath : public MemoryPath
{
  public:
    /**
     * @param dma the card's DMA engine
     * @param host_base offset of the region in host memory
     * @param staging_base offset of a staging buffer in device memory
     */
    PcieHostPath(pcie::DmaEngine &dma, Addr host_base, Addr staging_base)
        : dma_(dma), hostBase_(host_base), stagingBase_(staging_base)
    {
    }

    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done) override;
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done) override;
    const char *kind() const override { return "pcie-host"; }

  private:
    pcie::DmaEngine &dma_;
    Addr hostBase_;
    Addr stagingBase_;
};

/** RDMA operation kinds. */
enum class RdmaOp : std::uint8_t { Read = 1, Write = 2 };

/** The target-side RDMA engine attached to a switch port. */
class RdmaTarget : public SimObject
{
  public:
    /** Target processing configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Request parsing/dispatch cost (ns). */
        double request_proc_ns = 300.0;
        /** Network MTU used for response segmentation (bytes). */
        std::uint32_t mtu = 4096;
    };

    RdmaTarget(std::string name, EventQueue &eq, Switch &sw,
               MemoryPath &mem, const Config &cfg);

    std::uint64_t requestsServed() const { return served_.value(); }

    /** @internal registry shared with initiators (same process). */
    struct WireRequest
    {
        RdmaOp op;
        Addr off;
        std::uint64_t len;
        std::uint32_t srcPort;
        std::vector<std::uint8_t> data; // write payload
        std::function<void(Tick, std::vector<std::uint8_t>)> complete;
    };

    /** Register an incoming request's metadata (initiator side). */
    static std::uint32_t registerRequest(WireRequest req);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);
    void serve(std::uint32_t req_id);

    Switch &sw_;
    MemoryPath &mem_;
    Config cfg_;
    Counter served_;
    Counter bytes_;
    /** Dispatch-to-memory-completion service time, ns. */
    Accumulator service_;
};

/** The initiator-side request generator (the paper's VCU118). */
class RdmaInitiator : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;

    RdmaInitiator(std::string name, EventQueue &eq, Switch &sw,
                  std::uint32_t port, std::uint32_t target_port);

    /** 1-sided read of @p len bytes at target offset @p off. */
    void read(Addr off, std::uint8_t *dst, std::uint64_t len, Done done);

    /** 1-sided write of @p len bytes to target offset @p off. */
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);

    Switch &sw_;
    std::uint32_t port_;
    std::uint32_t targetPort_;
    struct Pending
    {
        std::uint8_t *dst;
        Done done;
    };
    std::unordered_map<std::uint32_t, Pending> pending_;
};

} // namespace enzian::net

#endif // ENZIAN_NET_RDMA_ENGINE_HH
