/**
 * @file
 * RDMA engine implementation.
 *
 * Request metadata and response payloads travel through an in-process
 * registry keyed by the request id carried in the wire tag; the wire
 * itself carries correctly sized frames so all timing is accounted.
 */

#include "net/rdma_engine.hh"

#include <cstring>
#include <mutex>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::net {

namespace {

std::uint32_t g_next_req_id = 1;
std::unordered_map<std::uint32_t, RdmaTarget::WireRequest> g_requests;

RdmaTarget::WireRequest
takeRequest(std::uint32_t id)
{
    auto it = g_requests.find(id);
    ENZIAN_ASSERT(it != g_requests.end(), "unknown RDMA request %u", id);
    RdmaTarget::WireRequest req = std::move(it->second);
    g_requests.erase(it);
    return req;
}

std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> g_responses;

} // namespace

void
DirectDramPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                     Done done)
{
    const Tick ready = mc_.read(mc_.now(), off, dst, len).done;
    mc_.eventq().schedule(
        ready, [done = std::move(done), ready]() { done(ready); },
        "rdma-dram-read");
}

void
DirectDramPath::write(Addr off, const std::uint8_t *src,
                      std::uint64_t len, Done done)
{
    const Tick durable = mc_.write(mc_.now(), off, src, len).done;
    mc_.eventq().schedule(
        durable, [done = std::move(done), durable]() { done(durable); },
        "rdma-dram-write");
}

void
EciHostPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                  Done done)
{
    const Addr base = base_ + off;
    ENZIAN_ASSERT(cache::isLineAligned(base) &&
                      len % cache::lineSize == 0,
                  "ECI host path requires line-aligned transfers");
    const std::uint64_t lines = len / cache::lineSize;
    auto remaining = std::make_shared<std::uint64_t>(lines);
    auto last = std::make_shared<Tick>(0);
    auto shared_done = std::make_shared<Done>(std::move(done));
    for (std::uint64_t i = 0; i < lines; ++i) {
        agent_.readLineUncached(
            base + i * cache::lineSize, dst + i * cache::lineSize,
            [remaining, last, shared_done](Tick t) {
                *last = std::max(*last, t);
                if (--*remaining == 0)
                    (*shared_done)(*last);
            });
    }
}

void
EciHostPath::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                   Done done)
{
    const Addr base = base_ + off;
    ENZIAN_ASSERT(cache::isLineAligned(base) &&
                      len % cache::lineSize == 0,
                  "ECI host path requires line-aligned transfers");
    const std::uint64_t lines = len / cache::lineSize;
    auto remaining = std::make_shared<std::uint64_t>(lines);
    auto last = std::make_shared<Tick>(0);
    auto shared_done = std::make_shared<Done>(std::move(done));
    for (std::uint64_t i = 0; i < lines; ++i) {
        agent_.writeLineUncached(
            base + i * cache::lineSize, src + i * cache::lineSize,
            [remaining, last, shared_done](Tick t) {
                *last = std::max(*last, t);
                if (--*remaining == 0)
                    (*shared_done)(*last);
            });
    }
}

void
PcieHostPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                   Done done)
{
    dma_.hostToDevice(hostBase_ + off, stagingBase_, len,
                      [this, dst, len, done = std::move(done)](Tick t) {
                          dma_.device().store().read(stagingBase_, dst,
                                                     len);
                          done(t);
                      });
}

void
PcieHostPath::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                    Done done)
{
    dma_.device().store().write(stagingBase_, src, len);
    dma_.deviceToHost(stagingBase_, hostBase_ + off, len,
                      std::move(done));
}

std::uint32_t
RdmaTarget::registerRequest(WireRequest req)
{
    const std::uint32_t id = g_next_req_id++;
    g_requests.emplace(id, std::move(req));
    return id;
}

RdmaTarget::RdmaTarget(std::string name, EventQueue &eq, Switch &sw,
                       MemoryPath &mem, const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), mem_(mem), cfg_(cfg)
{
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, Switch::userOf(tag));
                    });
    stats().addCounter("requests_served", &served_);
    stats().addCounter("bytes", &bytes_);
    stats().addAccumulator("service_ns", &service_);
}

void
RdmaTarget::onFrame(Tick, std::uint64_t, std::uint64_t user)
{
    const auto req_id = static_cast<std::uint32_t>(user);
    eventq().scheduleDelta(units::ns(cfg_.request_proc_ns),
                           [this, req_id]() { serve(req_id); },
                           "rdma-request-proc");
}

void
RdmaTarget::serve(std::uint32_t req_id)
{
    served_.inc();
    auto req = std::make_shared<WireRequest>(takeRequest(req_id));
    bytes_.inc(req->len);
    const Tick t0 = now();
    if (req->op == RdmaOp::Read) {
        auto buf =
            std::make_shared<std::vector<std::uint8_t>>(req->len);
        mem_.read(req->off, buf->data(), req->len,
                  [this, req, buf, req_id, t0](Tick t) {
                      service_.sample(units::toNanos(t - t0));
                      ENZIAN_SPAN(name(), "read", t0, t);
                      g_responses[req_id] = std::move(*buf);
                      sw_.sendFrom(cfg_.port,
                                   req->len + rdmaHeaderBytes,
                                   Switch::makeTag(req->srcPort,
                                                   req_id));
                  });
    } else {
        mem_.write(req->off, req->data.data(), req->len,
                   [this, req, req_id, t0](Tick t) {
                       service_.sample(units::toNanos(t - t0));
                       ENZIAN_SPAN(name(), "write", t0, t);
                       sw_.sendFrom(cfg_.port, rdmaHeaderBytes,
                                    Switch::makeTag(req->srcPort,
                                                    req_id));
                   });
    }
}

RdmaInitiator::RdmaInitiator(std::string name, EventQueue &eq,
                             Switch &sw, std::uint32_t port,
                             std::uint32_t target_port)
    : SimObject(std::move(name), eq), sw_(sw), port_(port),
      targetPort_(target_port)
{
    sw_.setEndpoint(port_,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, Switch::userOf(tag));
                    });
}

void
RdmaInitiator::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                    Done done)
{
    RdmaTarget::WireRequest req;
    req.op = RdmaOp::Read;
    req.off = off;
    req.len = len;
    req.srcPort = port_;
    const std::uint32_t id = RdmaTarget::registerRequest(std::move(req));
    pending_[id] = Pending{dst, std::move(done)};
    sw_.sendFrom(port_, rdmaHeaderBytes, Switch::makeTag(targetPort_, id));
}

void
RdmaInitiator::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                     Done done)
{
    RdmaTarget::WireRequest req;
    req.op = RdmaOp::Write;
    req.off = off;
    req.len = len;
    req.srcPort = port_;
    req.data.assign(src, src + len);
    const std::uint32_t id = RdmaTarget::registerRequest(std::move(req));
    pending_[id] = Pending{nullptr, std::move(done)};
    sw_.sendFrom(port_, len + rdmaHeaderBytes,
                 Switch::makeTag(targetPort_, id));
}

void
RdmaInitiator::onFrame(Tick when, std::uint64_t, std::uint64_t user)
{
    const auto id = static_cast<std::uint32_t>(user);
    auto it = pending_.find(id);
    ENZIAN_ASSERT(it != pending_.end(), "RDMA completion for unknown %u",
                  id);
    Pending p = std::move(it->second);
    pending_.erase(it);
    if (p.dst) {
        auto rit = g_responses.find(id);
        ENZIAN_ASSERT(rit != g_responses.end(),
                      "read completion without payload");
        std::memcpy(p.dst, rit->second.data(), rit->second.size());
        g_responses.erase(rit);
    }
    p.done(when);
}

} // namespace enzian::net
