/**
 * @file
 * RDMA engine implementation.
 *
 * Request metadata and response payloads travel through an in-process
 * registry keyed by the request id carried in the wire tag; the wire
 * itself carries correctly sized frames so all timing is accounted.
 */

#include "net/rdma_engine.hh"

#include <algorithm>
#include <cstring>
#include <optional>

#include "base/logging.hh"
#include "base/wire_ledger.hh"
#include "obs/request_context.hh"
#include "obs/span_tracer.hh"

namespace enzian::net {

namespace {

/**
 * Process-wide wire ledgers. Unlike the bridge/disagg services, an
 * initiator may talk to several targets (and a target to several
 * initiators), so the ledger is shared rather than instance-owned:
 * the atomic id counter keeps engines from colliding, the mutex keeps
 * concurrent timing domains safe, and ids are opaque (they never feed
 * timing or stats), so determinism is unaffected.
 */
WireLedger<RdmaTarget::WireRequest> &
requestLedger()
{
    static WireLedger<RdmaTarget::WireRequest> ledger;
    return ledger;
}

WireLedger<std::vector<std::uint8_t>> &
responseLedger()
{
    static WireLedger<std::vector<std::uint8_t>> ledger;
    return ledger;
}

/** Forget everything the ledgers hold about an abandoned id. */
void
dropLedgerEntries(std::uint64_t id)
{
    requestLedger().erase(id);
    responseLedger().erase(id);
}

} // namespace

void
DirectDramPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                     Done done)
{
    const Tick ready = mc_.read(mc_.now(), off, dst, len).done;
    mc_.eventq().schedule(
        ready, [done = std::move(done), ready]() { done(ready); },
        "rdma-dram-read");
}

void
DirectDramPath::write(Addr off, const std::uint8_t *src,
                      std::uint64_t len, Done done)
{
    const Tick durable = mc_.write(mc_.now(), off, src, len).done;
    mc_.eventq().schedule(
        durable, [done = std::move(done), durable]() { done(durable); },
        "rdma-dram-write");
}

void
EciHostPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                  Done done)
{
    const Addr base = base_ + off;
    ENZIAN_ASSERT(cache::isLineAligned(base) &&
                      len % cache::lineSize == 0,
                  "ECI host path requires line-aligned transfers");
    const std::uint64_t lines = len / cache::lineSize;
    auto remaining = std::make_shared<std::uint64_t>(lines);
    auto last = std::make_shared<Tick>(0);
    auto shared_done = std::make_shared<Done>(std::move(done));
    for (std::uint64_t i = 0; i < lines; ++i) {
        agent_.readLineUncached(
            base + i * cache::lineSize, dst + i * cache::lineSize,
            [remaining, last, shared_done](Tick t) {
                *last = std::max(*last, t);
                if (--*remaining == 0)
                    (*shared_done)(*last);
            });
    }
}

void
EciHostPath::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                   Done done)
{
    const Addr base = base_ + off;
    ENZIAN_ASSERT(cache::isLineAligned(base) &&
                      len % cache::lineSize == 0,
                  "ECI host path requires line-aligned transfers");
    const std::uint64_t lines = len / cache::lineSize;
    auto remaining = std::make_shared<std::uint64_t>(lines);
    auto last = std::make_shared<Tick>(0);
    auto shared_done = std::make_shared<Done>(std::move(done));
    for (std::uint64_t i = 0; i < lines; ++i) {
        agent_.writeLineUncached(
            base + i * cache::lineSize, src + i * cache::lineSize,
            [remaining, last, shared_done](Tick t) {
                *last = std::max(*last, t);
                if (--*remaining == 0)
                    (*shared_done)(*last);
            });
    }
}

void
PcieHostPath::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                   Done done)
{
    dma_.hostToDevice(hostBase_ + off, stagingBase_, len,
                      [this, dst, len, done = std::move(done)](Tick t) {
                          dma_.device().store().read(stagingBase_, dst,
                                                     len);
                          done(t);
                      });
}

void
PcieHostPath::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                    Done done)
{
    dma_.device().store().write(stagingBase_, src, len);
    dma_.deviceToHost(stagingBase_, hostBase_ + off, len,
                      std::move(done));
}

std::uint64_t
RdmaTarget::registerRequest(WireRequest req)
{
    return requestLedger().put(std::move(req));
}

RdmaTarget::RdmaTarget(std::string name, EventQueue &eq, Switch &sw,
                       MemoryPath &mem, const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), mem_(mem), cfg_(cfg)
{
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, Switch::userOf(tag));
                    });
    stats().addCounter("requests_served", &served_);
    stats().addCounter("bytes", &bytes_);
    stats().addCounter("stale_requests", &staleReqs_);
    stats().addCounter("fault_responses_dropped", &rspsDropped_);
    stats().addAccumulator("service_ns", &service_);
}

void
RdmaTarget::setFaults(Rng *rng, double response_drop_prob)
{
    faultRng_ = rng;
    rspDropProb_ = response_drop_prob;
}

void
RdmaTarget::onFrame(Tick, std::uint64_t, std::uint64_t user)
{
    const std::uint64_t req_id = user;
    eventq().scheduleDelta(units::ns(cfg_.request_proc_ns),
                           [this, req_id]() { serve(req_id); },
                           "rdma-request-proc");
}

void
RdmaTarget::serve(std::uint64_t req_id)
{
    auto taken = requestLedger().take(req_id);
    if (!taken) {
        // The initiator timed out and abandoned this id before we got
        // to it; the retry arrives under a fresh id.
        staleReqs_.inc();
        return;
    }
    served_.inc();
    auto req = std::make_shared<WireRequest>(std::move(*taken));
    bytes_.inc(req->len);
    const Tick t0 = now();
    if (req->op == RdmaOp::Read) {
        auto buf =
            std::make_shared<std::vector<std::uint8_t>>(req->len);
        mem_.read(req->off, buf->data(), req->len,
                  [this, req, buf, req_id, t0](Tick t) {
                      service_.sample(units::toNanos(t - t0));
                      ENZIAN_SPAN(name(), "read", t0, t);
                      ENZIAN_FLOW_STEP(name(), "read", t, req->flowId);
                      responseLedger().putAt(req_id, std::move(*buf));
                      if (faultRng_ && rspDropProb_ > 0.0 &&
                          faultRng_->chance(rspDropProb_)) {
                          // Lost on the wire; the payload entry is
                          // reclaimed when the initiator abandons
                          // this id on timeout.
                          rspsDropped_.inc();
                          return;
                      }
                      sw_.sendFrom(cfg_.port,
                                   req->len + rdmaHeaderBytes,
                                   Switch::makeTag(req->srcPort,
                                                   req_id));
                  });
    } else {
        mem_.write(req->off, req->data.data(), req->len,
                   [this, req, req_id, t0](Tick t) {
                       service_.sample(units::toNanos(t - t0));
                       ENZIAN_SPAN(name(), "write", t0, t);
                       ENZIAN_FLOW_STEP(name(), "write", t,
                                        req->flowId);
                       if (faultRng_ && rspDropProb_ > 0.0 &&
                           faultRng_->chance(rspDropProb_)) {
                           rspsDropped_.inc();
                           return;
                       }
                       sw_.sendFrom(cfg_.port, rdmaHeaderBytes,
                                    Switch::makeTag(req->srcPort,
                                                    req_id));
                   });
    }
}

RdmaInitiator::RdmaInitiator(std::string name, EventQueue &eq,
                             Switch &sw, std::uint32_t port,
                             std::uint32_t target_port)
    : SimObject(std::move(name), eq), sw_(sw), port_(port),
      targetPort_(target_port)
{
    sw_.setEndpoint(port_,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, Switch::userOf(tag));
                    });
    stats().addCounter("retries", &retries_);
    stats().addCounter("fault_requests_dropped", &reqsDropped_);
    stats().addCounter("stale_completions", &staleCompletions_);
    stats().addCounter("abandoned", &abandoned_);
}

void
RdmaInitiator::enableRecovery(double timeout_us,
                              std::uint32_t max_retries,
                              bool abandon_after_retries)
{
    recoveryTimeout_ = units::us(timeout_us);
    maxRetries_ = max_retries;
    abandonAfterRetries_ = abandon_after_retries;
}

void
RdmaInitiator::setFaults(Rng *rng, double request_drop_prob)
{
    ENZIAN_ASSERT(recoveryTimeout_ || !rng || request_drop_prob == 0.0,
                  "request drops without recovery would hang");
    faultRng_ = rng;
    reqDropProb_ = request_drop_prob;
}

void
RdmaInitiator::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                    Done done)
{
    readFrom(targetPort_, off, dst, len, std::move(done));
}

void
RdmaInitiator::write(Addr off, const std::uint8_t *src, std::uint64_t len,
                     Done done)
{
    writeTo(targetPort_, off, src, len, std::move(done));
}

void
RdmaInitiator::readFrom(std::uint32_t target_port, Addr off,
                        std::uint8_t *dst, std::uint64_t len, Done done)
{
    Pending p;
    p.dst = dst;
    p.done = std::move(done);
    p.target = target_port;
    p.op = RdmaOp::Read;
    p.off = off;
    p.len = len;
    p.flowId = obs::currentFlowId();
    issue(std::move(p));
}

void
RdmaInitiator::writeTo(std::uint32_t target_port, Addr off,
                       const std::uint8_t *src, std::uint64_t len,
                       Done done)
{
    Pending p;
    p.done = std::move(done);
    p.target = target_port;
    p.op = RdmaOp::Write;
    p.off = off;
    p.len = len;
    p.data.assign(src, src + len);
    p.flowId = obs::currentFlowId();
    issue(std::move(p));
}

void
RdmaInitiator::issue(Pending p)
{
    RdmaTarget::WireRequest req;
    req.op = p.op;
    req.off = p.off;
    req.len = p.len;
    req.srcPort = port_;
    req.flowId = p.flowId;
    p.issued = now();
    if (p.op == RdmaOp::Write) {
        if (recoveryTimeout_)
            req.data = p.data; // keep the payload for retries
        else
            req.data = std::move(p.data);
    }
    const std::uint64_t id = RdmaTarget::registerRequest(std::move(req));
    if (recoveryTimeout_) {
        const Tick delay =
            recoveryTimeout_ << std::min<std::uint32_t>(p.attempts, 4);
        p.retryEv = eventq().scheduleDelta(
            delay, [this, id]() { onTimeout(id); }, "rdma-retry");
    }
    const std::uint64_t frame =
        (p.op == RdmaOp::Write ? p.len : 0) + rdmaHeaderBytes;
    const std::uint32_t target = p.target;
    pending_.emplace(id, std::move(p));
    // A dropped request never reaches the wire, but the bookkeeping
    // above stays intact so the timeout recovers it.
    if (faultRng_ && reqDropProb_ > 0.0 &&
        faultRng_->chance(reqDropProb_)) {
        reqsDropped_.inc();
        return;
    }
    sw_.sendFrom(port_, frame, Switch::makeTag(target, id));
}

void
RdmaInitiator::onTimeout(std::uint64_t id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return; // completed; stale timer
    Pending p = std::move(it->second);
    pending_.erase(it);
    ++p.attempts;
    if (p.attempts > maxRetries_ && abandonAfterRetries_) {
        // Give up like a real client: the request is lost (never
        // completed) rather than retried into a saturated wire
        // forever. Its registry state is dead either way.
        abandoned_.inc();
        dropLedgerEntries(id);
        return;
    }
    ENZIAN_ASSERT(p.attempts <= maxRetries_,
                  "RDMA request %llu unanswered after %u retries "
                  "(livelock?)",
                  static_cast<unsigned long long>(id), p.attempts - 1);
    retries_.inc();
    // Abandon the old wire id entirely: whatever the ledgers still
    // hold for it is dead, and any late completion is detectably
    // stale. The retry runs under a fresh id so a slow serve of the
    // old attempt can never satisfy (or corrupt) the new one.
    dropLedgerEntries(id);
    issue(std::move(p));
}

void
RdmaInitiator::onFrame(Tick when, std::uint64_t, std::uint64_t user)
{
    const std::uint64_t id = user;
    auto it = pending_.find(id);
    if (it == pending_.end() && recoveryTimeout_) {
        // A late completion of an attempt we already abandoned.
        staleCompletions_.inc();
        responseLedger().erase(id);
        return;
    }
    ENZIAN_ASSERT(it != pending_.end(),
                  "RDMA completion for unknown %llu",
                  static_cast<unsigned long long>(id));
    Pending p = std::move(it->second);
    pending_.erase(it);
    eventq().cancel(p.retryEv);
    if (p.dst) {
        auto rsp = responseLedger().take(id);
        ENZIAN_ASSERT(rsp, "read completion without payload");
        std::memcpy(p.dst, rsp->data(), rsp->size());
    }
    ENZIAN_SPAN(name(), "req", p.issued, when);
    ENZIAN_FLOW_STEP(name(), "req", when, p.flowId);
    p.done(when);
}

} // namespace enzian::net
