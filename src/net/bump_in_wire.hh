/**
 * @file
 * Catapult-style bump-in-the-wire networking (paper sections 2.1 and
 * 5.2).
 *
 * In Microsoft Catapult "the FPGA is connected to the CPU through
 * both a PCIe link and an Ethernet 'bump in the wire' connection";
 * the paper notes "Enzian can also subsume the use-case for Microsoft
 * Catapult (with equivalent performance) by connecting an additional
 * networking cable between one of the 100 Gb/s interfaces on the
 * XCVU9P ... and one of the ThunderX-1's 40 Gb/s NICs" (section 5.2).
 *
 * BumpInWire sits between the top-of-rack switch port and the host
 * NIC port: every frame traverses the FPGA in both directions, where
 * an inline function (compression, encryption, match-action rules -
 * supplied as a callback transforming the payload size) runs at line
 * rate with a fixed pipeline delay. The host never sees the cost.
 */

#ifndef ENZIAN_NET_BUMP_IN_WIRE_HH
#define ENZIAN_NET_BUMP_IN_WIRE_HH

#include <functional>

#include "net/ethernet.hh"

namespace enzian::net {

/** An inline FPGA function on the network path. */
class BumpInWire : public SimObject
{
  public:
    /**
     * Inline transform: given (direction-to-host, payload bytes),
     * return the transformed payload size (e.g. compression shrinks
     * frames toward the host, expands them outbound).
     */
    using Transform =
        std::function<std::uint64_t(bool to_host, std::uint64_t)>;

    /** Configuration. */
    struct Config
    {
        /** Fabric pipeline delay per frame (ns). */
        double pipeline_ns = 800.0;
        /** Streaming capacity (bytes/cycle at clock; default >=line). */
        double bytes_per_cycle = 64.0;
        double clock_hz = 250e6;
    };

    /**
     * @param net_link the switch-facing 100 GbE link (side 1 = here)
     * @param host_link the NIC-facing 40 GbE link (side 0 = here)
     */
    BumpInWire(std::string name, EventQueue &eq,
               EthernetLink &net_link, EthernetLink &host_link,
               const Config &cfg);

    /** Install the inline function (identity when unset). */
    void setTransform(Transform t) { transform_ = std::move(t); }

    std::uint64_t framesToHost() const { return toHost_.value(); }
    std::uint64_t framesToNet() const { return toNet_.value(); }
    std::uint64_t bytesIn() const { return bytesIn_.value(); }
    std::uint64_t bytesOut() const { return bytesOut_.value(); }

  private:
    void forward(bool to_host, Tick when, std::uint64_t payload,
                 std::uint64_t tag);

    EthernetLink &netLink_;
    EthernetLink &hostLink_;
    Config cfg_;
    Transform transform_;
    Tick pipeFreeAt_ = 0;
    Counter toHost_;
    Counter toNet_;
    Counter bytesIn_;
    Counter bytesOut_;
};

} // namespace enzian::net

#endif // ENZIAN_NET_BUMP_IN_WIRE_HH
