/**
 * @file
 * Bump-in-the-wire implementation.
 */

#include "net/bump_in_wire.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::net {

BumpInWire::BumpInWire(std::string name, EventQueue &eq,
                       EthernetLink &net_link, EthernetLink &host_link,
                       const Config &cfg)
    : SimObject(std::move(name), eq), netLink_(net_link),
      hostLink_(host_link), cfg_(cfg)
{
    // The FPGA owns side 1 of the switch-facing link and side 0 of
    // the NIC-facing link; frames arriving on either side traverse
    // the inline pipeline to the other.
    netLink_.setReceiver(1, [this](Tick when, std::uint64_t payload,
                                   std::uint64_t tag) {
        forward(/*to_host=*/true, when, payload, tag);
    });
    hostLink_.setReceiver(0, [this](Tick when, std::uint64_t payload,
                                    std::uint64_t tag) {
        forward(/*to_host=*/false, when, payload, tag);
    });
    stats().addCounter("frames_to_host", &toHost_);
    stats().addCounter("frames_to_net", &toNet_);
    stats().addCounter("bytes_in", &bytesIn_);
    stats().addCounter("bytes_out", &bytesOut_);
}

void
BumpInWire::forward(bool to_host, Tick when, std::uint64_t payload,
                    std::uint64_t tag)
{
    bytesIn_.inc(payload);
    const std::uint64_t out =
        transform_ ? transform_(to_host, payload) : payload;
    bytesOut_.inc(out);
    (to_host ? toHost_ : toNet_).inc();

    // The streaming pipeline: fixed latency plus occupancy at the
    // engine's byte rate (>= line rate keeps it transparent).
    const double bw = cfg_.bytes_per_cycle * cfg_.clock_hz;
    const Tick start = std::max(when, pipeFreeAt_);
    const Tick stream = units::transferTicks(std::max(payload, out), bw);
    pipeFreeAt_ = start + stream;
    const Tick ready = start + stream + units::ns(cfg_.pipeline_ns);

    eventq().schedule(
        ready,
        [this, to_host, out, tag]() {
            if (to_host)
                hostLink_.send(0, out, tag); // FPGA owns side 0 here
            else
                netLink_.send(1, out, tag);
        },
        "biw-forward");
}

} // namespace enzian::net
