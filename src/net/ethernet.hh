/**
 * @file
 * Ethernet link model.
 *
 * Models one full-duplex Ethernet link (40 or 100 Gb/s on Enzian) as
 * a serializer with per-frame overheads (preamble + FCS + inter-frame
 * gap + L2 header) and a propagation delay. Endpoints exchange opaque
 * messages; payload semantics live in the stacks built on top.
 */

#ifndef ENZIAN_NET_ETHERNET_HH
#define ENZIAN_NET_ETHERNET_HH

#include <array>
#include <functional>
#include <memory>

#include "sim/channel_lane.hh"
#include "sim/domain_binding.hh"
#include "sim/sim_object.hh"

namespace enzian::net {

/** Per-frame overhead: preamble 8 + FCS 4 + IFG 12 + MAC header 14. */
constexpr std::uint32_t frameOverheadBytes = 38;

/** Endpoint identifier on a link (0 or 1). */
using PortSide = std::uint32_t;

/** One full-duplex point-to-point Ethernet link. */
class EthernetLink : public SimObject
{
  public:
    /** Link configuration. */
    struct Config
    {
        /** Line rate in Gb/s (40, 100). */
        double rate_gbps = 100.0;
        /** MTU (L2 payload bytes per frame). */
        std::uint32_t mtu = 2048;
        /** Propagation + PHY latency one way (ns). */
        double latency_ns = 450.0;
    };

    /** Delivery callback: (delivery tick, payload bytes, message tag). */
    using Handler =
        std::function<void(Tick, std::uint64_t, std::uint64_t)>;

    EthernetLink(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Minimum cross-endpoint latency any frame on a link with @p cfg
     * can experience: the propagation + PHY delay (serialization time
     * comes on top). This is the conservative lookahead bound parallel
     * simulation relies on.
     */
    static Tick minCrossLatency(const Config &cfg);

    /**
     * Switch the link into parallel domain mode: each side reads time
     * from its own domain's clock and deliveries toward the other side
     * cross through the scheduler's channels. When both sides live in
     * the same domain, deliveries stay local. Must be called before
     * the scheduler starts.
     */
    void bindDomains(sim::DomainScheduler &sched,
                     sim::TimingDomain &side0_domain,
                     sim::TimingDomain &side1_domain);

    /** True once bindDomains() has been called. */
    bool domainMode() const { return dirBind_.bound(); }

    /** Register the receiver on @p side (0/1). */
    void setReceiver(PortSide side, Handler h);

    /**
     * Send @p payload bytes from @p from to the other side. The
     * payload is segmented into MTU-sized frames for timing; @p tag is
     * delivered opaquely to the receiver.
     * @return the delivery tick of the last byte.
     */
    Tick send(PortSide from, std::uint64_t payload, std::uint64_t tag);

    /** Effective payload bandwidth at the configured MTU (bytes/s). */
    double effectiveBandwidth() const;

    /** Raw line rate in bytes/s. */
    double lineRate() const { return lineBw_; }

    const Config &config() const { return cfg_; }

    std::uint64_t bytesSent(PortSide side) const
    {
        return bytes_[side].value();
    }

  private:
    /** One frame crossing domains; payload for the side's slot arena. */
    struct Frame
    {
        Tick delivery;
        std::uint64_t payload;
        std::uint64_t tag;
        std::uint32_t to;
    };

    Config cfg_;
    double lineBw_;
    /** Serializer occupancy per sending side; in domain mode each
     *  entry is written only by its own side's domain thread. */
    Tick busFreeAt_[2] = {0, 0};
    Handler handlers_[2];
    /** bytes_[side] likewise has a single writer in domain mode. */
    Counter bytes_[2];

    // --- parallel domain mode state (unbound in legacy mode) -------
    /** Per-side source clock + outbound mailbox, bound with this
     *  link's own latency floor as the pair lookahead (per-port cable
     *  latencies become per-pair lookaheads). */
    sim::DirDomainBinding dirBind_;
    /** Per-side frame slot arenas (cross-domain bindings only). */
    std::unique_ptr<std::array<sim::ChannelLane<Frame>, 2>> lanes_;
};

} // namespace enzian::net

#endif // ENZIAN_NET_ETHERNET_HH
