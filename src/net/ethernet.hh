/**
 * @file
 * Ethernet link model.
 *
 * Models one full-duplex Ethernet link (40 or 100 Gb/s on Enzian) as
 * a serializer with per-frame overheads (preamble + FCS + inter-frame
 * gap + L2 header) and a propagation delay. Endpoints exchange opaque
 * messages; payload semantics live in the stacks built on top.
 */

#ifndef ENZIAN_NET_ETHERNET_HH
#define ENZIAN_NET_ETHERNET_HH

#include <functional>

#include "sim/sim_object.hh"

namespace enzian::net {

/** Per-frame overhead: preamble 8 + FCS 4 + IFG 12 + MAC header 14. */
constexpr std::uint32_t frameOverheadBytes = 38;

/** Endpoint identifier on a link (0 or 1). */
using PortSide = std::uint32_t;

/** One full-duplex point-to-point Ethernet link. */
class EthernetLink : public SimObject
{
  public:
    /** Link configuration. */
    struct Config
    {
        /** Line rate in Gb/s (40, 100). */
        double rate_gbps = 100.0;
        /** MTU (L2 payload bytes per frame). */
        std::uint32_t mtu = 2048;
        /** Propagation + PHY latency one way (ns). */
        double latency_ns = 450.0;
    };

    /** Delivery callback: (delivery tick, payload bytes, message tag). */
    using Handler =
        std::function<void(Tick, std::uint64_t, std::uint64_t)>;

    EthernetLink(std::string name, EventQueue &eq, const Config &cfg);

    /** Register the receiver on @p side (0/1). */
    void setReceiver(PortSide side, Handler h);

    /**
     * Send @p payload bytes from @p from to the other side. The
     * payload is segmented into MTU-sized frames for timing; @p tag is
     * delivered opaquely to the receiver.
     * @return the delivery tick of the last byte.
     */
    Tick send(PortSide from, std::uint64_t payload, std::uint64_t tag);

    /** Effective payload bandwidth at the configured MTU (bytes/s). */
    double effectiveBandwidth() const;

    /** Raw line rate in bytes/s. */
    double lineRate() const { return lineBw_; }

    const Config &config() const { return cfg_; }

    std::uint64_t bytesSent(PortSide side) const
    {
        return bytes_[side].value();
    }

  private:
    Config cfg_;
    double lineBw_;
    Tick busFreeAt_[2] = {0, 0};
    Handler handlers_[2];
    Counter bytes_[2];
};

} // namespace enzian::net

#endif // ENZIAN_NET_ETHERNET_HH
