/**
 * @file
 * Store-and-forward Ethernet switch.
 *
 * The TCP experiment in the paper connects two Enzian FPGAs "through
 * their FPGA-side 100 Gb/s Ethernet links via a conventional network
 * switch" (section 5.2). Endpoints attach via EthernetLinks; the
 * destination port rides in the high byte of the message tag (use
 * makeTag / dstOf / userOf).
 */

#ifndef ENZIAN_NET_SWITCH_HH
#define ENZIAN_NET_SWITCH_HH

#include <memory>
#include <vector>

#include "base/logging.hh"
#include "net/ethernet.hh"

namespace enzian::net {

/** An N-port store-and-forward switch. */
class Switch : public SimObject
{
  public:
    /** Switch configuration. */
    struct Config
    {
        /** Per-port link configuration (the common template). */
        EthernetLink::Config port;
        /** Store-and-forward + lookup latency (ns). */
        double forward_ns = 600.0;
        /**
         * Optional per-port cable/PHY latency override (ns); entries
         * <= 0 (and ports beyond the vector) use `port.latency_ns`.
         * Longer cables model rack distance.
         */
        std::vector<double> port_latency_ns;
    };

    Switch(std::string name, EventQueue &eq, std::uint32_t ports,
           const Config &cfg);

    /**
     * Compose a message tag addressed to @p dst_port. The tag packs
     * dst into bits [56,64) and the user value below; both must fit —
     * a 300-port rack or a user value spilling into the top byte
     * would otherwise silently misroute.
     */
    static std::uint64_t
    makeTag(std::uint32_t dst_port, std::uint64_t user)
    {
        ENZIAN_ASSERT(dst_port < (1u << 8),
                      "switch tag dst %u overflows the 8-bit port "
                      "field",
                      dst_port);
        ENZIAN_ASSERT(user < (1ull << 56),
                      "switch tag user value 0x%llx overflows 56 bits",
                      static_cast<unsigned long long>(user));
        return (static_cast<std::uint64_t>(dst_port) << 56) | user;
    }
    /** Destination port of a tag. */
    static std::uint32_t dstOf(std::uint64_t tag)
    {
        return static_cast<std::uint32_t>(tag >> 56);
    }
    /** User part of a tag. */
    static std::uint64_t userOf(std::uint64_t tag)
    {
        return tag & 0x00ffffffffffffffull;
    }

    /**
     * The link for @p port; the endpoint is side 0, the switch side 1.
     */
    EthernetLink &port(std::uint32_t port_no)
    {
        return *ports_[port_no];
    }

    /** Register the endpoint receiver on @p port_no. */
    void setEndpoint(std::uint32_t port_no, EthernetLink::Handler h);

    /**
     * Switch into parallel domain mode: the switch fabric (and every
     * link's side 1) lives in @p net_domain, and each port's endpoint
     * side runs in @p port_domains[port]. The switch's own event queue
     * must be @p net_domain's queue. Must precede the first run.
     */
    void bindDomains(sim::DomainScheduler &sched,
                     sim::TimingDomain &net_domain,
                     const std::vector<sim::TimingDomain *> &port_domains);

    /**
     * Minimum cross-machine latency through a switch with @p cfg for
     * @p ports ports: the smallest one-way link latency (forwarding
     * delay and serialization come on top).
     */
    static Tick minCrossLatency(const Config &cfg, std::uint32_t ports);

    /** Send from @p port_no through the switch (tag carries dst). */
    Tick sendFrom(std::uint32_t port_no, std::uint64_t payload,
                  std::uint64_t tag);

    std::uint32_t portCount() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

  private:
    Config cfg_;
    std::vector<std::unique_ptr<EthernetLink>> ports_;
};

} // namespace enzian::net

#endif // ENZIAN_NET_SWITCH_HH
