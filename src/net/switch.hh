/**
 * @file
 * Store-and-forward Ethernet switch.
 *
 * The TCP experiment in the paper connects two Enzian FPGAs "through
 * their FPGA-side 100 Gb/s Ethernet links via a conventional network
 * switch" (section 5.2). Endpoints attach via EthernetLinks; the
 * destination port rides in the high byte of the message tag (use
 * makeTag / dstOf / userOf).
 */

#ifndef ENZIAN_NET_SWITCH_HH
#define ENZIAN_NET_SWITCH_HH

#include <memory>
#include <vector>

#include "net/ethernet.hh"

namespace enzian::net {

/** An N-port store-and-forward switch. */
class Switch : public SimObject
{
  public:
    /** Switch configuration. */
    struct Config
    {
        /** Per-port link configuration (all ports identical). */
        EthernetLink::Config port;
        /** Store-and-forward + lookup latency (ns). */
        double forward_ns = 600.0;
    };

    Switch(std::string name, EventQueue &eq, std::uint32_t ports,
           const Config &cfg);

    /** Compose a message tag addressed to @p dst_port. */
    static std::uint64_t
    makeTag(std::uint32_t dst_port, std::uint64_t user)
    {
        return (static_cast<std::uint64_t>(dst_port) << 56) |
               (user & 0x00ffffffffffffffull);
    }
    /** Destination port of a tag. */
    static std::uint32_t dstOf(std::uint64_t tag)
    {
        return static_cast<std::uint32_t>(tag >> 56);
    }
    /** User part of a tag. */
    static std::uint64_t userOf(std::uint64_t tag)
    {
        return tag & 0x00ffffffffffffffull;
    }

    /**
     * The link for @p port; the endpoint is side 0, the switch side 1.
     */
    EthernetLink &port(std::uint32_t port_no)
    {
        return *ports_[port_no];
    }

    /** Register the endpoint receiver on @p port_no. */
    void setEndpoint(std::uint32_t port_no, EthernetLink::Handler h);

    /** Send from @p port_no through the switch (tag carries dst). */
    Tick sendFrom(std::uint32_t port_no, std::uint64_t payload,
                  std::uint64_t tag);

    std::uint32_t portCount() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

  private:
    Config cfg_;
    std::vector<std::unique_ptr<EthernetLink>> ports_;
};

} // namespace enzian::net

#endif // ENZIAN_NET_SWITCH_HH
