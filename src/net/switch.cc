/**
 * @file
 * Switch implementation.
 */

#include "net/switch.hh"

#include <algorithm>

#include "sim/domain_scheduler.hh"

namespace enzian::net {

namespace {

EthernetLink::Config
portConfig(const Switch::Config &cfg, std::uint32_t port_no)
{
    EthernetLink::Config pc = cfg.port;
    if (port_no < cfg.port_latency_ns.size() &&
        cfg.port_latency_ns[port_no] > 0.0)
        pc.latency_ns = cfg.port_latency_ns[port_no];
    return pc;
}

} // namespace

Switch::Switch(std::string name, EventQueue &eq, std::uint32_t ports,
               const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (ports < 2)
        fatal("switch '%s' needs at least 2 ports",
              SimObject::name().c_str());
    for (std::uint32_t i = 0; i < ports; ++i) {
        ports_.push_back(std::make_unique<EthernetLink>(
            SimObject::name() + ".port" + std::to_string(i), eq,
            portConfig(cfg_, i)));
        // Side 1 of each port link faces the switch fabric: forward
        // arriving frames to the destination port after the
        // store-and-forward delay.
        ports_[i]->setReceiver(
            1, [this](Tick, std::uint64_t payload, std::uint64_t tag) {
                const std::uint32_t dst = dstOf(tag);
                ENZIAN_ASSERT(dst < ports_.size(),
                              "frame for unknown port %u", dst);
                eventq().scheduleDelta(
                    units::ns(cfg_.forward_ns),
                    [this, dst, payload, tag]() {
                        ports_[dst]->send(1, payload, tag);
                    },
                    "switch-forward");
            });
    }
}

Tick
Switch::minCrossLatency(const Config &cfg, std::uint32_t ports)
{
    Tick floor = EthernetLink::minCrossLatency(cfg.port);
    for (std::uint32_t i = 0; i < ports; ++i) {
        floor = std::min(
            floor, EthernetLink::minCrossLatency(portConfig(cfg, i)));
    }
    return floor;
}

void
Switch::bindDomains(sim::DomainScheduler &sched,
                    sim::TimingDomain &net_domain,
                    const std::vector<sim::TimingDomain *> &port_domains)
{
    ENZIAN_ASSERT(&net_domain.queue() == &eventq(),
                  "switch '%s' must be constructed on the net "
                  "domain's queue",
                  name().c_str());
    ENZIAN_ASSERT(port_domains.size() == ports_.size(),
                  "switch '%s': %zu port domains for %zu ports",
                  name().c_str(), port_domains.size(), ports_.size());
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        ENZIAN_ASSERT(port_domains[i], "switch '%s': null domain for "
                      "port %zu",
                      name().c_str(), i);
        ports_[i]->bindDomains(sched, *port_domains[i], net_domain);
    }
}

void
Switch::setEndpoint(std::uint32_t port_no, EthernetLink::Handler h)
{
    ports_.at(port_no)->setReceiver(0, std::move(h));
}

Tick
Switch::sendFrom(std::uint32_t port_no, std::uint64_t payload,
                 std::uint64_t tag)
{
    return ports_.at(port_no)->send(0, payload, tag);
}

} // namespace enzian::net
