/**
 * @file
 * Switch implementation.
 */

#include "net/switch.hh"

#include "base/logging.hh"

namespace enzian::net {

Switch::Switch(std::string name, EventQueue &eq, std::uint32_t ports,
               const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (ports < 2)
        fatal("switch '%s' needs at least 2 ports",
              SimObject::name().c_str());
    for (std::uint32_t i = 0; i < ports; ++i) {
        ports_.push_back(std::make_unique<EthernetLink>(
            SimObject::name() + ".port" + std::to_string(i), eq,
            cfg_.port));
        // Side 1 of each port link faces the switch fabric: forward
        // arriving frames to the destination port after the
        // store-and-forward delay.
        ports_[i]->setReceiver(
            1, [this](Tick, std::uint64_t payload, std::uint64_t tag) {
                const std::uint32_t dst = dstOf(tag);
                ENZIAN_ASSERT(dst < ports_.size(),
                              "frame for unknown port %u", dst);
                eventq().scheduleDelta(
                    units::ns(cfg_.forward_ns),
                    [this, dst, payload, tag]() {
                        ports_[dst]->send(1, payload, tag);
                    },
                    "switch-forward");
            });
    }
}

void
Switch::setEndpoint(std::uint32_t port_no, EthernetLink::Handler h)
{
    ports_.at(port_no)->setReceiver(0, std::move(h));
}

Tick
Switch::sendFrom(std::uint32_t port_no, std::uint64_t payload,
                 std::uint64_t tag)
{
    return ports_.at(port_no)->send(0, payload, tag);
}

} // namespace enzian::net
