/**
 * @file
 * Ethernet link implementation.
 */

#include "net/ethernet.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::net {

EthernetLink::EthernetLink(std::string name, EventQueue &eq,
                           const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.mtu == 0)
        fatal("ethernet link '%s': zero MTU", SimObject::name().c_str());
    lineBw_ = cfg_.rate_gbps * 1e9 / 8.0;
    stats().addCounter("bytes_tx_0", &bytes_[0]);
    stats().addCounter("bytes_tx_1", &bytes_[1]);
}

Tick
EthernetLink::minCrossLatency(const Config &cfg)
{
    // Stream (serialization) time is excluded — it only delays a frame
    // further, so excluding it stays conservative.
    return units::ns(cfg.latency_ns);
}

void
EthernetLink::bindDomains(sim::DomainScheduler &sched,
                          sim::TimingDomain &side0_domain,
                          sim::TimingDomain &side1_domain)
{
    ENZIAN_ASSERT(sched.lookahead() <= minCrossLatency(cfg_),
                  "scheduler lookahead exceeds the latency floor of "
                  "link '%s'",
                  name().c_str());
    ENZIAN_ASSERT(!domainMode(), "link '%s' already bound to domains",
                  name().c_str());
    // Bind with this link's own floor so a long cable buys the
    // scheduler a wide per-pair lookahead even when some other link
    // in the rack pins the global minimum lower.
    dirBind_.bind(sched, side0_domain, side1_domain,
                  minCrossLatency(cfg_));
    if (dirBind_.crossDomain()) {
        lanes_ =
            std::make_unique<std::array<sim::ChannelLane<Frame>, 2>>();
        for (std::size_t side = 0; side < 2; ++side) {
            (*lanes_)[side].attach(
                *dirBind_.channel(side), [this](Frame &f) {
                    handlers_[f.to](f.delivery, f.payload, f.tag);
                });
        }
    }
}

void
EthernetLink::setReceiver(PortSide side, Handler h)
{
    ENZIAN_ASSERT(side < 2, "bad port side %u", side);
    handlers_[side] = std::move(h);
}

double
EthernetLink::effectiveBandwidth() const
{
    return lineBw_ * cfg_.mtu / (cfg_.mtu + frameOverheadBytes);
}

Tick
EthernetLink::send(PortSide from, std::uint64_t payload,
                   std::uint64_t tag)
{
    ENZIAN_ASSERT(from < 2, "bad port side %u", from);
    const PortSide to = from ^ 1;
    bytes_[from].inc(payload);

    const std::uint64_t frames =
        payload == 0 ? 1 : (payload + cfg_.mtu - 1) / cfg_.mtu;
    const std::uint64_t wire = payload + frames * frameOverheadBytes;

    // Domain mode: time comes from the sending side's domain clock,
    // and busFreeAt_[from] has that thread as its single writer.
    const Tick tnow = dirBind_.bound() ? dirBind_.now(from) : now();
    const Tick start = std::max(tnow, busFreeAt_[from]);
    const Tick stream = units::transferTicks(wire, lineBw_);
    busFreeAt_[from] = start + stream;
    const Tick delivery = start + stream + units::ns(cfg_.latency_ns);

    ENZIAN_ASSERT(handlers_[to], "no receiver on side %u of %s", to,
                  name().c_str());
    if (!dirBind_.bound()) {
        eventq().schedule(
            delivery,
            [this, to, delivery, payload, tag]() {
                handlers_[to](delivery, payload, tag);
            },
            "eth-deliver");
    } else if (dirBind_.crossDomain()) {
        // Frames cross through the side's slot arena: the channel
        // records only (tick, lane, slot) and the delivery closure is
        // a two-word inline capture.
        (*lanes_)[from].push(delivery, Frame{delivery, payload, tag, to});
    } else { // both sides in one domain: deliver locally
        dirBind_.clock(from).schedule(
            delivery,
            [this, to, delivery, payload, tag]() {
                handlers_[to](delivery, payload, tag);
            },
            "eth-deliver");
    }
    return delivery;
}

} // namespace enzian::net
