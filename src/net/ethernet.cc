/**
 * @file
 * Ethernet link implementation.
 */

#include "net/ethernet.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::net {

EthernetLink::EthernetLink(std::string name, EventQueue &eq,
                           const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.mtu == 0)
        fatal("ethernet link '%s': zero MTU", SimObject::name().c_str());
    lineBw_ = cfg_.rate_gbps * 1e9 / 8.0;
    stats().addCounter("bytes_tx_0", &bytes_[0]);
    stats().addCounter("bytes_tx_1", &bytes_[1]);
}

Tick
EthernetLink::minCrossLatency(const Config &cfg)
{
    // Stream (serialization) time is excluded — it only delays a frame
    // further, so excluding it stays conservative.
    return units::ns(cfg.latency_ns);
}

void
EthernetLink::bindDomains(sim::DomainScheduler &sched,
                          sim::TimingDomain &side0_domain,
                          sim::TimingDomain &side1_domain)
{
    ENZIAN_ASSERT(sched.lookahead() <= minCrossLatency(cfg_),
                  "scheduler lookahead exceeds the latency floor of "
                  "link '%s'",
                  name().c_str());
    ENZIAN_ASSERT(!domainMode(), "link '%s' already bound to domains",
                  name().c_str());
    dirClock_[0] = &side0_domain.queue();
    dirClock_[1] = &side1_domain.queue();
    if (&side0_domain != &side1_domain) {
        dirChan_[0] = &sched.channel(side0_domain, side1_domain);
        dirChan_[1] = &sched.channel(side1_domain, side0_domain);
    }
}

void
EthernetLink::setReceiver(PortSide side, Handler h)
{
    ENZIAN_ASSERT(side < 2, "bad port side %u", side);
    handlers_[side] = std::move(h);
}

double
EthernetLink::effectiveBandwidth() const
{
    return lineBw_ * cfg_.mtu / (cfg_.mtu + frameOverheadBytes);
}

Tick
EthernetLink::send(PortSide from, std::uint64_t payload,
                   std::uint64_t tag)
{
    ENZIAN_ASSERT(from < 2, "bad port side %u", from);
    const PortSide to = from ^ 1;
    bytes_[from].inc(payload);

    const std::uint64_t frames =
        payload == 0 ? 1 : (payload + cfg_.mtu - 1) / cfg_.mtu;
    const std::uint64_t wire = payload + frames * frameOverheadBytes;

    // Domain mode: time comes from the sending side's domain clock,
    // and busFreeAt_[from] has that thread as its single writer.
    const Tick tnow = dirClock_[from] ? dirClock_[from]->now() : now();
    const Tick start = std::max(tnow, busFreeAt_[from]);
    const Tick stream = units::transferTicks(wire, lineBw_);
    busFreeAt_[from] = start + stream;
    const Tick delivery = start + stream + units::ns(cfg_.latency_ns);

    ENZIAN_ASSERT(handlers_[to], "no receiver on side %u of %s", to,
                  name().c_str());
    auto fire = [this, to, delivery, payload, tag]() {
        handlers_[to](delivery, payload, tag);
    };
    if (!dirClock_[from])
        eventq().schedule(delivery, std::move(fire), "eth-deliver");
    else if (dirChan_[from])
        dirChan_[from]->push(delivery, std::move(fire));
    else // both sides in one domain: deliver locally
        dirClock_[from]->schedule(delivery, std::move(fire),
                                  "eth-deliver");
    return delivery;
}

} // namespace enzian::net
