/**
 * @file
 * Ethernet link implementation.
 */

#include "net/ethernet.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::net {

EthernetLink::EthernetLink(std::string name, EventQueue &eq,
                           const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.mtu == 0)
        fatal("ethernet link '%s': zero MTU", SimObject::name().c_str());
    lineBw_ = cfg_.rate_gbps * 1e9 / 8.0;
    stats().addCounter("bytes_tx_0", &bytes_[0]);
    stats().addCounter("bytes_tx_1", &bytes_[1]);
}

void
EthernetLink::setReceiver(PortSide side, Handler h)
{
    ENZIAN_ASSERT(side < 2, "bad port side %u", side);
    handlers_[side] = std::move(h);
}

double
EthernetLink::effectiveBandwidth() const
{
    return lineBw_ * cfg_.mtu / (cfg_.mtu + frameOverheadBytes);
}

Tick
EthernetLink::send(PortSide from, std::uint64_t payload,
                   std::uint64_t tag)
{
    ENZIAN_ASSERT(from < 2, "bad port side %u", from);
    const PortSide to = from ^ 1;
    bytes_[from].inc(payload);

    const std::uint64_t frames =
        payload == 0 ? 1 : (payload + cfg_.mtu - 1) / cfg_.mtu;
    const std::uint64_t wire = payload + frames * frameOverheadBytes;

    const Tick start = std::max(now(), busFreeAt_[from]);
    const Tick stream = units::transferTicks(wire, lineBw_);
    busFreeAt_[from] = start + stream;
    const Tick delivery = start + stream + units::ns(cfg_.latency_ns);

    ENZIAN_ASSERT(handlers_[to], "no receiver on side %u of %s", to,
                  name().c_str());
    eventq().schedule(
        delivery,
        [this, to, delivery, payload, tag]() {
            handlers_[to](delivery, payload, tag);
        },
        "eth-deliver");
    return delivery;
}

} // namespace enzian::net
