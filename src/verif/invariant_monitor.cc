/**
 * @file
 * Runtime coherence-invariant monitor (implementation).
 */

#include "verif/invariant_monitor.hh"

#include <set>

#include "base/logging.hh"
#include "verif/invariants.hh"

namespace enzian::verif {

using cache::MoesiState;
using eci::Opcode;

namespace {

/** Protocol messages that name a cache line (vs I/O and IPI). */
bool
coherent(Opcode op)
{
    switch (op) {
      case Opcode::IOBLD:
      case Opcode::IOBST:
      case Opcode::IOBACK:
      case Opcode::IPI:
        return false;
      default:
        return true;
    }
}

} // namespace

void
InvariantMonitor::attach(eci::EciFabric &fabric)
{
    fabric.addTap([this](Tick when, const eci::EciMsg &msg) {
        observe(when, msg);
    });
}

MoesiState
InvariantMonitor::probe(cache::Cache *c, Addr line) const
{
    return c ? c->probe(line) : MoesiState::Invalid;
}

void
InvariantMonitor::checkLine(Tick when, Addr line)
{
    const MoesiState cpu = probe(hooks_.cpuCache, line);
    const MoesiState fpga = probe(hooks_.fpgaCache, line);
    auto report = [this, when, line](const std::string &what) {
        liveViolations_.push_back(
            format("tick %llu line %llx: %s",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(line),
                   what.c_str()));
    };
    if (auto v = checkSwmr(cpu, fpga))
        report(*v);
    if (!hooks_.map)
        return;
    // The home agent's directory must cover the remote node's actual
    // copy of every line it is home for.
    if (hooks_.map->homeOf(line) == mem::NodeId::Cpu) {
        if (hooks_.cpuHome) {
            if (auto v = checkDirCoverage(
                    fpga, hooks_.cpuHome->remoteState(line)))
                report(*v);
        }
    } else if (hooks_.fpgaHome) {
        if (auto v = checkDirCoverage(
                cpu, hooks_.fpgaHome->remoteState(line)))
            report(*v);
    }
}

void
InvariantMonitor::observe(Tick when, const eci::EciMsg &msg)
{
    ++observed_;
    checker_.observe({when, msg});
    if (coherent(msg.op))
        checkLine(when, cache::lineAlign(msg.addr));
}

void
InvariantMonitor::replay(const trace::EciTrace &trace)
{
    for (const trace::TraceRecord &rec : trace.records())
        observe(rec.when, rec.msg);
}

void
InvariantMonitor::checkAllLines()
{
    std::set<Addr> lines;
    auto collect = [&lines](cache::Cache *c) {
        if (!c)
            return;
        c->forEachLine([&lines](Addr line, const cache::LineFrame &) {
            lines.insert(line);
        });
    };
    collect(hooks_.cpuCache);
    collect(hooks_.fpgaCache);
    for (Addr line : lines)
        checkLine(0, line);
}

void
InvariantMonitor::finalize()
{
    checker_.finalize();
}

std::vector<std::string>
InvariantMonitor::violations() const
{
    std::vector<std::string> all = checker_.violations();
    all.insert(all.end(), liveViolations_.begin(),
               liveViolations_.end());
    return all;
}

} // namespace enzian::verif
