/**
 * @file
 * Protocol invariants shared by the exhaustive checker and the
 * runtime monitor.
 *
 * The checks are deliberately tiny predicates over MOESI states so
 * the same code judges an abstract model state, a live simulation
 * snapshot, and a replayed trace.
 */

#ifndef ENZIAN_VERIF_INVARIANTS_HH
#define ENZIAN_VERIF_INVARIANTS_HH

#include <optional>
#include <string>
#include <vector>

#include "cache/moesi.hh"
#include "verif/model.hh"

namespace enzian::verif {

/**
 * Single-writer-multiple-reader: the two nodes' copies of one line
 * must be MOESI-compatible (no writable copy may coexist with any
 * other valid copy). Returns a description of the violation, or
 * std::nullopt if the pair is fine.
 */
std::optional<std::string> checkSwmr(cache::MoesiState a,
                                     cache::MoesiState b);

/**
 * Directory coverage: if the remote actually holds a writable copy,
 * the home's directory entry must grant write permission too —
 * otherwise the home will serve stale data without snooping. (The
 * silent E->M upgrade makes dir=E / remote=M legal.)
 */
std::optional<std::string>
checkDirCoverage(cache::MoesiState actualRemote,
                 cache::MoesiState dir);

/**
 * All per-state invariants over one abstract model state: SWMR,
 * directory coverage, and — in quiescent states — exact directory
 * agreement (dir == remote, modulo the silent E->M upgrade).
 */
std::vector<std::string> checkState(const State &s);

} // namespace enzian::verif

#endif // ENZIAN_VERIF_INVARIANTS_HH
