/**
 * @file
 * Exhaustive breadth-first exploration of the abstract protocol model.
 *
 * Explores every state reachable from the initial states under the
 * configured Options, evaluating:
 *  - per-state invariants (SWMR, directory coverage, quiescent
 *    agreement — see invariants.hh);
 *  - per-transition invariants reported by the model itself (illegal
 *    kernel steps, silent dirty-data drops, unmatched responses);
 *  - deadlock freedom (a non-quiescent state must have a successor);
 *  - liveness: every reachable state can still reach a quiescent
 *    state (computed as a reverse fixpoint over the explored graph);
 *  - dirty-drain: every state holding a dirty remote copy can reach a
 *    quiescent state where that copy has moved home;
 *  - coverage: which stable (home, dir, remote) combinations occur in
 *    quiescent states, and which are unreachable.
 *
 * Options::lines > 1 explores the product of several lines sharing
 * the per-direction wires; Options::symmetry and Options::por enable
 * the (sound) line-permutation and partial-order reductions, and
 * Options::threads parallelises the level-synchronous BFS with
 * thread-count-independent results.
 *
 * BFS order means every counterexample trace is a shortest path —
 * exactly shortest without reductions; with symmetry/POR enabled the
 * trace is still a real run but may not be globally minimal.
 */

#ifndef ENZIAN_VERIF_EXPLORER_HH
#define ENZIAN_VERIF_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verif/model.hh"

namespace enzian::verif {

/** One invariant failure with a shortest witness run. */
struct Violation
{
    std::string what;
    /** State where it was detected. */
    std::string state;
    /** Transition labels from an initial state to @c state. */
    std::vector<std::string> trace;

    std::string toString() const;
};

/** Result of one exhaustive exploration. */
struct Report
{
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    /** Largest number of simultaneously in-flight messages seen. */
    std::size_t maxInFlight = 0;

    /** State- and transition-invariant failures. */
    std::vector<Violation> violations;
    /** Non-quiescent states with no enabled transition. */
    std::vector<Violation> deadlocks;
    /** States from which no quiescent state is reachable. */
    std::vector<Violation> livenessViolations;
    /** Dirty remote copies that can never drain home. */
    std::vector<Violation> dirtyTraps;

    /** "home/dir/remote" triples seen in quiescent states. */
    std::vector<std::string> stableReached;
    /** MOESI triples never seen quiescent (diagnostic, not an error). */
    std::vector<std::string> stableUnreached;

    bool clean() const
    {
        return violations.empty() && deadlocks.empty() &&
               livenessViolations.empty() && dirtyTraps.empty();
    }

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/**
 * Explore the full state space of @p opt.
 *
 * @param opt model configuration (ordering, uncached mode, mutation)
 * @param maxViolationsPerKind cap on reported failures per category
 *        (exploration itself always runs to completion)
 */
Report explore(const Options &opt,
               std::size_t maxViolationsPerKind = 16);

} // namespace enzian::verif

#endif // ENZIAN_VERIF_EXPLORER_HH
