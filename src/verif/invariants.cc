/**
 * @file
 * Protocol invariants (implementation).
 */

#include "verif/invariants.hh"

#include "base/logging.hh"

namespace enzian::verif {

using cache::MoesiState;

std::optional<std::string>
checkSwmr(MoesiState a, MoesiState b)
{
    if (cache::compatible(a, b))
        return std::nullopt;
    return format("SWMR violation: incompatible copies %s / %s",
                  cache::toString(a), cache::toString(b));
}

std::optional<std::string>
checkDirCoverage(MoesiState actualRemote, MoesiState dir)
{
    if (!cache::canWrite(actualRemote) || cache::canWrite(dir))
        return std::nullopt;
    return format("directory lost track of a writable remote copy: "
                  "remote=%s but dir=%s",
                  cache::toString(actualRemote), cache::toString(dir));
}

std::vector<std::string>
checkState(const State &s)
{
    std::vector<std::string> out;
    if (auto v = checkSwmr(s.home, s.remote))
        out.push_back(std::move(*v));
    if (auto v = checkDirCoverage(s.remote, s.dir))
        out.push_back(std::move(*v));
    if (s.quiescent() && s.dir != s.remote &&
        !(s.dir == MoesiState::Exclusive &&
          s.remote == MoesiState::Modified)) {
        out.push_back(format(
            "quiescent directory disagreement: dir=%s remote=%s",
            cache::toString(s.dir), cache::toString(s.remote)));
    }
    return out;
}

} // namespace enzian::verif
