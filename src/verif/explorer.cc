/**
 * @file
 * Exhaustive model exploration (implementation).
 */

#include "verif/explorer.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "base/logging.hh"
#include "verif/invariants.hh"

namespace enzian::verif {

using cache::MoesiState;

namespace {

/** Hard cap: the single-line model has a few thousand states; hitting
 *  this means the model itself regressed. */
constexpr std::size_t maxStates = 1u << 20;

struct Node
{
    State state;
    /** Predecessor node id (BFS tree), or -1 for initial states. */
    std::int64_t pred = -1;
    /** Label of the edge from pred. */
    std::string predLabel;
    /** Successor node ids (for the reverse-reachability fixpoint we
     *  keep forward edges and invert on the fly). */
    std::vector<std::size_t> succ;
};

std::vector<std::string>
traceTo(const std::vector<Node> &nodes, std::size_t id)
{
    std::vector<std::string> labels;
    for (std::int64_t cur = static_cast<std::int64_t>(id);
         nodes[static_cast<std::size_t>(cur)].pred >= 0;
         cur = nodes[static_cast<std::size_t>(cur)].pred) {
        labels.push_back(nodes[static_cast<std::size_t>(cur)].predLabel);
    }
    std::reverse(labels.begin(), labels.end());
    return labels;
}

void
addViolation(std::vector<Violation> &out, std::size_t cap,
             std::string what, const std::vector<Node> &nodes,
             std::size_t id, const std::string *extraLabel = nullptr)
{
    if (out.size() >= cap)
        return;
    Violation v;
    v.what = std::move(what);
    v.state = nodes[id].state.toString();
    v.trace = traceTo(nodes, id);
    if (extraLabel)
        v.trace.push_back(*extraLabel);
    out.push_back(std::move(v));
}

const char *
stableName(MoesiState s)
{
    return cache::toString(s);
}

/** Mark every node that can reach a node in @p target (reverse BFS
 *  over the explored graph). */
std::vector<bool>
canReach(const std::vector<Node> &nodes,
         const std::vector<bool> &target)
{
    // Invert the forward edges once.
    std::vector<std::vector<std::size_t>> pred(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (std::size_t s : nodes[i].succ)
            pred[s].push_back(i);
    }
    std::vector<bool> mark(nodes.size(), false);
    std::deque<std::size_t> work;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (target[i]) {
            mark[i] = true;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        const std::size_t cur = work.front();
        work.pop_front();
        for (std::size_t p : pred[cur]) {
            if (!mark[p]) {
                mark[p] = true;
                work.push_back(p);
            }
        }
    }
    return mark;
}

} // namespace

std::string
Violation::toString() const
{
    std::string s = what + "\n  at: " + state;
    if (!trace.empty()) {
        s += "\n  run:";
        for (const std::string &l : trace)
            s += "\n    " + l;
    }
    return s;
}

std::string
Report::toString() const
{
    std::string s =
        format("%llu states, %llu transitions, max %zu in flight\n",
               static_cast<unsigned long long>(states),
               static_cast<unsigned long long>(transitions),
               maxInFlight);
    auto section = [&s](const char *name,
                        const std::vector<Violation> &vs) {
        s += format("%s: %zu\n", name, vs.size());
        for (const Violation &v : vs)
            s += v.toString() + "\n";
    };
    section("invariant violations", violations);
    section("deadlocks", deadlocks);
    section("liveness violations", livenessViolations);
    section("dirty-drain violations", dirtyTraps);
    s += "stable quiescent (home/dir/remote) reached:";
    for (const std::string &t : stableReached)
        s += " " + t;
    s += "\nnever quiescent:";
    for (const std::string &t : stableUnreached)
        s += " " + t;
    s += "\n";
    return s;
}

Report
explore(const Options &opt, std::size_t maxViolationsPerKind)
{
    const Model model(opt);
    Report rep;

    std::vector<Node> nodes;
    std::unordered_map<std::string, std::size_t> ids;
    std::deque<std::size_t> frontier;

    auto intern = [&](const State &s) -> std::pair<std::size_t, bool> {
        const std::string key = s.key();
        auto it = ids.find(key);
        if (it != ids.end())
            return {it->second, false};
        ENZIAN_ASSERT(nodes.size() < maxStates,
                      "model state explosion: > %zu states", maxStates);
        const std::size_t id = nodes.size();
        nodes.push_back(Node{s, -1, {}, {}});
        ids.emplace(key, id);
        return {id, true};
    };

    for (const State &s : model.initialStates()) {
        auto [id, fresh] = intern(s);
        if (fresh)
            frontier.push_back(id);
    }

    // Forward BFS with on-the-fly state and transition checks.
    while (!frontier.empty()) {
        const std::size_t cur = frontier.front();
        frontier.pop_front();
        // nodes may reallocate while expanding; copy what we need.
        const State state = nodes[cur].state;

        for (const std::string &v : checkState(state)) {
            addViolation(rep.violations, maxViolationsPerKind, v,
                         nodes, cur);
        }
        rep.maxInFlight = std::max(
            rep.maxInFlight, state.toHome.size() + state.toRemote.size());

        const std::vector<Transition> succs = model.successors(state);
        if (succs.empty() && !state.quiescent()) {
            addViolation(rep.deadlocks, maxViolationsPerKind,
                         "deadlock: pending work but no enabled "
                         "transition",
                         nodes, cur);
        }
        for (const Transition &t : succs) {
            ++rep.transitions;
            auto [nid, fresh] = intern(t.to);
            nodes[cur].succ.push_back(nid);
            if (fresh) {
                nodes[nid].pred = static_cast<std::int64_t>(cur);
                nodes[nid].predLabel = t.label;
                frontier.push_back(nid);
            }
            for (const std::string &v : t.violations) {
                addViolation(rep.violations, maxViolationsPerKind,
                             v, nodes, cur, &t.label);
            }
        }
    }
    rep.states = nodes.size();

    // Liveness: every state must be able to reach quiescence.
    std::vector<bool> quiescent(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        quiescent[i] = nodes[i].state.quiescent();
    const std::vector<bool> live = canReach(nodes, quiescent);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i]) {
            addViolation(rep.livenessViolations, maxViolationsPerKind,
                         "quiescence unreachable", nodes, i);
        }
    }

    // Dirty-drain: a dirty remote copy must be able to reach a
    // quiescent state with the copy gone (its data moved home; silent
    // drops along the way are caught by the transition checks).
    std::vector<bool> drained(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        drained[i] = quiescent[i] &&
                     !cache::isDirty(nodes[i].state.remote);
    }
    const std::vector<bool> drains = canReach(nodes, drained);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (cache::isDirty(nodes[i].state.remote) && !drains[i]) {
            addViolation(rep.dirtyTraps, maxViolationsPerKind,
                         format("dirty remote copy (%s) can never "
                                "drain home",
                                cache::toString(nodes[i].state.remote)),
                         nodes, i);
        }
    }

    // Stable-state coverage at quiescent states.
    std::vector<std::string> reached;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!quiescent[i])
            continue;
        const State &s = nodes[i].state;
        std::string triple = format("%s/%s/%s", stableName(s.home),
                                    stableName(s.dir),
                                    stableName(s.remote));
        if (std::find(reached.begin(), reached.end(), triple) ==
            reached.end()) {
            reached.push_back(triple);
        }
    }
    std::sort(reached.begin(), reached.end());
    rep.stableReached = reached;
    for (MoesiState h :
         {MoesiState::Invalid, MoesiState::Shared,
          MoesiState::Exclusive, MoesiState::Owned,
          MoesiState::Modified}) {
        for (MoesiState d :
             {MoesiState::Invalid, MoesiState::Shared,
              MoesiState::Exclusive, MoesiState::Owned,
              MoesiState::Modified}) {
            for (MoesiState r :
                 {MoesiState::Invalid, MoesiState::Shared,
                  MoesiState::Exclusive, MoesiState::Owned,
                  MoesiState::Modified}) {
                std::string triple =
                    format("%s/%s/%s", stableName(h), stableName(d),
                           stableName(r));
                if (std::find(reached.begin(), reached.end(),
                              triple) == reached.end()) {
                    rep.stableUnreached.push_back(std::move(triple));
                }
            }
        }
    }
    return rep;
}

} // namespace enzian::verif
