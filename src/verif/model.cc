/**
 * @file
 * Abstract per-line protocol model (implementation).
 */

#include "verif/model.hh"

#include "base/logging.hh"
#include "eci/protocol_kernel.hh"

namespace enzian::verif {

using cache::MoesiState;
using eci::Grant;
using eci::Opcode;
namespace proto = eci::proto;

namespace {

/**
 * Mutation injection: a decorator over the protocol table under test
 * that mis-applies exactly one decision. Mutations that target wire
 * behaviour rather than a table decision (DropSnoopInvalidation,
 * DropWritebackAck) are injected by the model itself.
 */
class MutatedTable final : public proto::ProtocolTable
{
  public:
    MutatedTable(const proto::ProtocolTable &base, Mutation m)
        : base_(base), m_(m)
    {
    }

    const char *name() const override { return base_.name(); }
    const char *description() const override
    {
        return base_.description();
    }

    std::vector<MoesiState>
    homeStableStates() const override
    {
        return base_.homeStableStates();
    }

    proto::HomeReadStep
    homeRead(MoesiState local, MoesiState dir, bool exclusive,
             bool allocate) const override
    {
        proto::HomeReadStep step =
            base_.homeRead(local, dir, exclusive, allocate);
        if (m_ == Mutation::GrantExclusiveToSharer && !exclusive &&
            allocate && step.grant == Grant::Shared) {
            step.grant = Grant::Exclusive;
            step.dirAfter = MoesiState::Exclusive;
        }
        if (m_ == Mutation::SharedReadSkipsFlush &&
            step.localAction == proto::LocalAction::DowngradeShared) {
            step.flushLocalDirty = false;
        }
        return step;
    }

    proto::HomeUpgradeStep
    homeUpgrade(MoesiState local, MoesiState dir) const override
    {
        proto::HomeUpgradeStep step = base_.homeUpgrade(local, dir);
        if (m_ == Mutation::UpgradeKeepsHomeCopy &&
            step.localAction == proto::LocalAction::Invalidate) {
            step.localAction = proto::LocalAction::Keep;
        }
        if (m_ == Mutation::UpdateLeaksExclusive &&
            step.grant == Grant::Owned) {
            step.grant = Grant::Exclusive;
        }
        return step;
    }

    proto::HomeWritebackStep
    homeWriteback(MoesiState dir) const override
    {
        return base_.homeWriteback(dir);
    }

    MoesiState homeEvict() const override { return base_.homeEvict(); }

    proto::SnoopKind
    homeLocalReadSnoop(MoesiState local, MoesiState dir) const override
    {
        return base_.homeLocalReadSnoop(local, dir);
    }

    proto::SnoopKind
    homeLocalWriteSnoop(MoesiState dir) const override
    {
        return base_.homeLocalWriteSnoop(dir);
    }

    MoesiState
    homeSnoopResponse(Opcode ack) const override
    {
        return base_.homeSnoopResponse(ack);
    }

    MoesiState
    remoteFillState(Grant g) const override
    {
        return base_.remoteFillState(g);
    }

    proto::RemoteWriteStep
    remoteWrite(MoesiState s) const override
    {
        return base_.remoteWrite(s);
    }

    MoesiState
    remoteUpgradeResult(Grant g) const override
    {
        return base_.remoteUpgradeResult(g);
    }

    Opcode
    remoteEvict(MoesiState s) const override
    {
        if (m_ == Mutation::SkipWritebackOnEvict)
            return Opcode::REVC;
        return base_.remoteEvict(s);
    }

    proto::RemoteSnoopStep
    remoteSnoop(MoesiState s, Opcode snoop) const override
    {
        return base_.remoteSnoop(s, snoop);
    }

  private:
    const proto::ProtocolTable &base_;
    Mutation m_;
};

} // namespace

std::string
Msg::toString() const
{
    std::string s = eci::toString(op);
    if (op == Opcode::PEMD)
        s += grant == Grant::Exclusive ? "(E)" : "(S)";
    if (hasData)
        s += "+d";
    return s;
}

const char *
toString(RemoteTxn t)
{
    switch (t) {
      case RemoteTxn::None:
        return "-";
      case RemoteTxn::Read:
        return "rd";
      case RemoteTxn::WriteMiss:
        return "wr";
      case RemoteTxn::Upgrade:
        return "upg";
      case RemoteTxn::Writeback:
        return "wb";
      case RemoteTxn::Evict:
        return "evc";
      case RemoteTxn::UncachedRead:
        return "urd";
      case RemoteTxn::UncachedWrite:
        return "uwr";
    }
    return "?";
}

const char *
toString(HomeOp o)
{
    switch (o) {
      case HomeOp::None:
        return "-";
      case HomeOp::Read:
        return "rd";
      case HomeOp::Write:
        return "wr";
    }
    return "?";
}

const char *
toString(Mutation m)
{
    switch (m) {
      case Mutation::None:
        return "none";
      case Mutation::GrantExclusiveToSharer:
        return "grant-exclusive-to-sharer";
      case Mutation::SkipWritebackOnEvict:
        return "skip-writeback-on-evict";
      case Mutation::UpgradeKeepsHomeCopy:
        return "upgrade-keeps-home-copy";
      case Mutation::DropSnoopInvalidation:
        return "drop-snoop-invalidation";
      case Mutation::DropWritebackAck:
        return "drop-writeback-ack";
      case Mutation::SharedReadSkipsFlush:
        return "shared-read-skips-flush";
      case Mutation::UpdateLeaksExclusive:
        return "update-leaks-exclusive";
    }
    return "?";
}

std::optional<Mutation>
mutationFromString(const std::string &name)
{
    if (name == "none")
        return Mutation::None;
    for (Mutation m : allMutations) {
        if (name == toString(m))
            return m;
    }
    return std::nullopt;
}

bool
mutationApplies(Mutation m, const std::string &protocol)
{
    switch (m) {
      case Mutation::None:
      case Mutation::GrantExclusiveToSharer:
      case Mutation::SkipWritebackOnEvict:
      case Mutation::DropSnoopInvalidation:
      case Mutation::DropWritebackAck:
        return true;
      case Mutation::UpgradeKeepsHomeCopy:
        // Dragon upgrades never invalidate the home copy (that is
        // the point of the protocol), so there is no decision to
        // corrupt there.
        return protocol != "dragon";
      case Mutation::SharedReadSkipsFlush:
        // Only MESI downgrades-with-flush on shared reads; MOESI
        // keeps the dirty copy Owned, no flush exists to skip.
        return protocol == "mesi";
      case Mutation::UpdateLeaksExclusive:
        // Grant::Owned is produced by update upgrades only.
        return protocol == "dragon";
    }
    return false;
}

std::string
State::key() const
{
    std::string k;
    k.reserve(16 + toHome.size() + toRemote.size() + deferred.size());
    auto st = [](MoesiState s) {
        return static_cast<char>('0' + static_cast<int>(s));
    };
    k += st(home);
    k += st(dir);
    k += st(remote);
    k += static_cast<char>('a' + static_cast<int>(rtxn));
    k += invalAfterFill ? '!' : '.';
    k += static_cast<char>('a' + static_cast<int>(hop));
    auto msgs = [&k](const std::vector<Msg> &v) {
        k += '|';
        for (const Msg &m : v) {
            k += static_cast<char>('A' + static_cast<int>(m.op));
            k += static_cast<char>('0' + static_cast<int>(m.grant) * 2 +
                                  (m.hasData ? 1 : 0));
        }
    };
    msgs(toHome);
    msgs(toRemote);
    msgs(deferred);
    return k;
}

std::string
State::toString() const
{
    std::string s = format("home=%s dir=%s remote=%s rtxn=%s hop=%s",
                           cache::toString(home), cache::toString(dir),
                           cache::toString(remote),
                           verif::toString(rtxn), verif::toString(hop));
    if (invalAfterFill)
        s += " inval-after-fill";
    auto wire = [&s](const char *name, const std::vector<Msg> &v) {
        if (v.empty())
            return;
        s += format(" %s=[", name);
        for (std::size_t i = 0; i < v.size(); ++i)
            s += (i ? "," : "") + v[i].toString();
        s += "]";
    };
    wire("toHome", toHome);
    wire("toRemote", toRemote);
    wire("deferred", deferred);
    return s;
}

bool
State::quiescent() const
{
    return rtxn == RemoteTxn::None && hop == HomeOp::None &&
           toHome.empty() && toRemote.empty() && deferred.empty() &&
           !invalAfterFill;
}

Model::Model(const Options &opt) : opt_(opt)
{
    const proto::ProtocolTable *base =
        proto::protocolByName(opt_.protocol);
    ENZIAN_ASSERT(base, "unknown protocol '%s'",
                  opt_.protocol.c_str());
    if (opt_.mutation != Mutation::None) {
        mutated_ = std::make_unique<MutatedTable>(*base, opt_.mutation);
        table_ = mutated_.get();
    } else {
        table_ = base;
    }
}

Model::~Model() = default;

std::vector<State>
Model::initialStates() const
{
    // The home node can legitimately hold its own line in any stable
    // state while the remote holds nothing: S/E/M via ordinary local
    // caching, O (where the table allows it) as the residue of a past
    // remote sharing episode (M -> O downgrade, remote later evicted
    // cleanly).
    std::vector<State> init;
    for (MoesiState h : table_->homeStableStates()) {
        State s;
        s.home = h;
        init.push_back(s);
    }
    return init;
}

std::vector<Transition>
Model::successors(const State &s) const
{
    std::vector<Transition> out;
    initiations(s, out);
    deliveries(s, out);
    return out;
}

void
Model::initiations(const State &s, std::vector<Transition> &out) const
{
    remoteInitiated(s, out);
    homeInitiated(s, out);
}

void
Model::remoteInitiated(const State &s,
                       std::vector<Transition> &out) const
{
    if (s.rtxn != RemoteTxn::None)
        return; // the line is busy at the remote agent

    if (opt_.uncachedRemote) {
        {
            Transition t;
            t.label = "R:uncached-read(RLDI)";
            t.to = s;
            t.to.toHome.push_back({Opcode::RLDI, Grant::Shared, false});
            t.to.rtxn = RemoteTxn::UncachedRead;
            out.push_back(std::move(t));
        }
        {
            Transition t;
            t.label = "R:uncached-write(RSTT)";
            t.to = s;
            t.to.toHome.push_back({Opcode::RSTT, Grant::Shared, true});
            t.to.rtxn = RemoteTxn::UncachedWrite;
            out.push_back(std::move(t));
        }
        return;
    }

    // Coherent cached read: a resident line is a hit (no protocol
    // action); a miss issues RLDD.
    if (s.remote == MoesiState::Invalid) {
        Transition t;
        t.label = "R:read-miss(RLDD)";
        t.to = s;
        t.to.toHome.push_back({Opcode::RLDD, Grant::Shared, false});
        t.to.rtxn = RemoteTxn::Read;
        out.push_back(std::move(t));
    }

    // Coherent cached write.
    const proto::RemoteWriteStep w = table_->remoteWrite(s.remote);
    if (w.hit) {
        if (s.remote != w.stateAfter) {
            Transition t;
            t.label = "R:write-hit(E->M)";
            t.to = s;
            t.to.remote = w.stateAfter;
            out.push_back(std::move(t));
        }
    } else {
        Transition t;
        t.label = format("R:write-miss(%s)", eci::toString(w.request));
        t.to = s;
        // A Dragon RUPD carries the full write payload; RLDX / RUPG
        // requests are dataless.
        t.to.toHome.push_back({w.request, Grant::Shared,
                               w.request == Opcode::RUPD});
        t.to.rtxn = (w.request == Opcode::RUPG ||
                     w.request == Opcode::RUPD)
                        ? RemoteTxn::Upgrade
                        : RemoteTxn::WriteMiss;
        out.push_back(std::move(t));
    }

    // Eviction of a resident line.
    if (s.remote != MoesiState::Invalid) {
        const Opcode op = table_->remoteEvict(s.remote);
        Transition t;
        t.label = format("R:evict(%s)", eci::toString(op));
        t.to = s;
        const bool carries = op == Opcode::RWBD;
        t.to.toHome.push_back({op, Grant::Shared, carries});
        t.to.remote = MoesiState::Invalid;
        t.to.rtxn =
            carries ? RemoteTxn::Writeback : RemoteTxn::Evict;
        if (cache::isDirty(s.remote) && !carries) {
            t.violations.push_back(format(
                "dirty remote copy (%s) dropped without a writeback",
                cache::toString(s.remote)));
        }
        out.push_back(std::move(t));
    }
}

void
Model::homeInitiated(const State &s,
                     std::vector<Transition> &out) const
{
    if (s.hop != HomeOp::None)
        return; // one home-local access at a time per line

    // Home-local read: only protocol-visible when the table demands a
    // snoop (the remote holds the freshest copy and no resident home
    // copy is kept current by updates).
    if (table_->homeLocalReadSnoop(s.home, s.dir) ==
        proto::SnoopKind::Forward) {
        Transition t;
        t.label = "H:local-read(SFWD)";
        t.to = s;
        t.to.toRemote.push_back({Opcode::SFWD, Grant::Shared, false});
        t.to.hop = HomeOp::Read;
        out.push_back(std::move(t));
    }

    // Home-local write: invalidates any remote copy first; otherwise
    // it only drops the home's own copy (the full-line write to the
    // source supersedes its data, dirty or not).
    if (table_->homeLocalWriteSnoop(s.dir) ==
        proto::SnoopKind::Invalidate) {
        Transition t;
        t.label = "H:local-write(SINV)";
        t.to = s;
        t.to.toRemote.push_back({Opcode::SINV, Grant::Shared, false});
        t.to.hop = HomeOp::Write;
        out.push_back(std::move(t));
    } else if (s.home != MoesiState::Invalid) {
        Transition t;
        t.label = "H:local-write";
        t.to = s;
        t.to.home = MoesiState::Invalid;
        out.push_back(std::move(t));
    }
}

void
Model::deliveries(const State &s, std::vector<Transition> &out) const
{
    const std::size_t nh = opt_.orderedDelivery
                               ? (s.toHome.empty() ? 0 : 1)
                               : s.toHome.size();
    for (std::size_t i = 0; i < nh; ++i)
        out.push_back(deliverToHome(s, i));
    const std::size_t nr = opt_.orderedDelivery
                               ? (s.toRemote.empty() ? 0 : 1)
                               : s.toRemote.size();
    for (std::size_t i = 0; i < nr; ++i)
        out.push_back(deliverToRemote(s, i));
}

void
Model::processAtHome(State &st, const Msg &m, Transition &t) const
{
    switch (m.op) {
      case Opcode::RLDD:
      case Opcode::RLDI:
      case Opcode::RLDX: {
        const bool exclusive = m.op == Opcode::RLDX;
        const bool allocate = m.op != Opcode::RLDI;
        const proto::HomeReadStep step =
            table_->homeRead(st.home, st.dir, exclusive, allocate);
        if (step.localAction == proto::LocalAction::Invalidate &&
            cache::isDirty(st.home) && !step.flushLocalDirty) {
            t.violations.push_back(format(
                "dirty home copy (%s) dropped serving %s",
                cache::toString(st.home), eci::toString(m.op)));
        }
        if (step.localAction == proto::LocalAction::DowngradeShared &&
            cache::isDirty(st.home) && !step.flushLocalDirty) {
            t.violations.push_back(format(
                "dirty home copy (%s) downgraded without a flush "
                "serving %s",
                cache::toString(st.home), eci::toString(m.op)));
        }
        st.home = step.localAfter;
        st.dir = step.dirAfter;
        st.toRemote.push_back({Opcode::PEMD, step.grant, true});
        return;
      }
      case Opcode::RUPG:
      case Opcode::RUPD: {
        const proto::HomeUpgradeStep step =
            table_->homeUpgrade(st.home, st.dir);
        if (!step.legal) {
            t.violations.push_back(
                format("illegal %s with dir=%s home=%s",
                       eci::toString(m.op), cache::toString(st.dir),
                       cache::toString(st.home)));
        }
        switch (step.localAction) {
          case proto::LocalAction::Invalidate:
            // The requester's full-line write supersedes the home
            // copy's data, so dropping even a dirty copy is sound.
            st.home = MoesiState::Invalid;
            break;
          case proto::LocalAction::DowngradeShared:
            // Update protocols: the RUPD payload refreshed the home
            // copy, which stays resident and clean.
            st.home = MoesiState::Shared;
            break;
          case proto::LocalAction::Keep:
          case proto::LocalAction::DowngradeOwned:
            break;
        }
        st.dir = step.legal ? step.dirAfter : MoesiState::Modified;
        st.toRemote.push_back({Opcode::PACK, step.grant, false});
        return;
      }
      case Opcode::RWBD: {
        if (opt_.mutation == Mutation::DropWritebackAck)
            return; // home swallows the writeback: no ack, no state
        const proto::HomeWritebackStep step =
            table_->homeWriteback(st.dir);
        if (!step.legal) {
            t.violations.push_back(format("illegal RWBD with dir=%s",
                                          cache::toString(st.dir)));
        }
        st.dir = step.dirAfter;
        st.toRemote.push_back({Opcode::PACK, Grant::Shared, false});
        return;
      }
      case Opcode::REVC:
        st.dir = table_->homeEvict();
        st.toRemote.push_back({Opcode::PACK, Grant::Shared, false});
        return;
      case Opcode::RSTT:
        // Full-line uncached store: supersedes the home's own copy.
        st.home = MoesiState::Invalid;
        st.toRemote.push_back({Opcode::PACK, Grant::Shared, false});
        return;
      default:
        t.violations.push_back(format("home received unexpected %s",
                                      eci::toString(m.op)));
        return;
    }
}

Transition
Model::deliverToHome(const State &s, std::size_t idx) const
{
    Transition t;
    const Msg m = s.toHome[idx];
    t.label = format("deliver->home %s", m.toString().c_str());
    t.to = s;
    t.to.toHome.erase(t.to.toHome.begin() +
                      static_cast<std::ptrdiff_t>(idx));

    switch (m.op) {
      case Opcode::RLDD:
      case Opcode::RLDX:
      case Opcode::RLDI:
      case Opcode::RSTT:
      case Opcode::RUPG:
      case Opcode::RUPD:
      case Opcode::RWBD:
      case Opcode::REVC:
        if (t.to.hop != HomeOp::None) {
            // The home line is busy with a local access; the request
            // parks until the snoop response frees the line.
            t.label += " (deferred: line busy)";
            t.to.deferred.push_back(m);
            return t;
        }
        processAtHome(t.to, m, t);
        return t;

      case Opcode::SACKS:
      case Opcode::SACKI: {
        if (t.to.hop == HomeOp::None) {
            t.violations.push_back(
                "snoop response with no outstanding snoop");
            return t;
        }
        const HomeOp hop = t.to.hop;
        t.to.hop = HomeOp::None;
        if (m.op == Opcode::SACKS) {
            if (hop != HomeOp::Read) {
                t.violations.push_back(
                    "SACKS answering a write snoop");
            }
            t.to.dir = table_->homeSnoopResponse(m.op);
        } else if (hop == HomeOp::Write) {
            // The local write proceeds; any forwarded dirty data is
            // superseded by the full-line write.
            t.to.dir = table_->homeSnoopResponse(m.op);
            t.to.home = MoesiState::Invalid;
        } else if (m.hasData) {
            // Read snoop answered by an invalidation carrying dirty
            // data (reordering-tolerant path).
            t.to.dir = table_->homeSnoopResponse(m.op);
        } else {
            // Snoop miss: the remote evicted concurrently; leave the
            // directory for the in-flight eviction to clear and let
            // the local read retry later.
        }
        // The freed line drains any parked requests in arrival order.
        while (!t.to.deferred.empty()) {
            const Msg d = t.to.deferred.front();
            t.to.deferred.erase(t.to.deferred.begin());
            processAtHome(t.to, d, t);
        }
        return t;
      }
      default:
        t.violations.push_back(format("home received unexpected %s",
                                      eci::toString(m.op)));
        return t;
    }
}

Transition
Model::deliverToRemote(const State &s, std::size_t idx) const
{
    Transition t;
    const Msg m = s.toRemote[idx];
    t.label = format("deliver->remote %s", m.toString().c_str());
    t.to = s;
    t.to.toRemote.erase(t.to.toRemote.begin() +
                        static_cast<std::ptrdiff_t>(idx));

    switch (m.op) {
      case Opcode::PEMD:
        switch (t.to.rtxn) {
          case RemoteTxn::Read:
            t.to.remote = t.to.invalAfterFill
                              ? MoesiState::Invalid
                              : table_->remoteFillState(m.grant);
            t.to.invalAfterFill = false;
            t.to.rtxn = RemoteTxn::None;
            return t;
          case RemoteTxn::WriteMiss:
            if (t.to.invalAfterFill) {
                // The snoop ordered ahead of our write; install,
                // drop, and push the dirty result home.
                t.to.invalAfterFill = false;
                t.to.remote = MoesiState::Invalid;
                t.to.toHome.push_back(
                    {Opcode::RWBD, Grant::Shared, true});
                t.to.rtxn = RemoteTxn::Writeback;
                return t;
            }
            t.to.remote = MoesiState::Modified;
            t.to.rtxn = RemoteTxn::None;
            return t;
          case RemoteTxn::UncachedRead:
            t.to.rtxn = RemoteTxn::None;
            return t;
          default:
            t.violations.push_back(
                format("PEMD with no matching request (rtxn=%s)",
                       toString(t.to.rtxn)));
            return t;
        }
      case Opcode::PACK:
        switch (t.to.rtxn) {
          case RemoteTxn::Upgrade:
            // Covers the in-place upgrade, the racing-SINV fallback
            // where the full write payload is installed, and the
            // update-grant case (Grant::Owned: sharers survive, the
            // writer continues dirty but non-exclusive).
            t.to.remote = table_->remoteUpgradeResult(m.grant);
            t.to.rtxn = RemoteTxn::None;
            return t;
          case RemoteTxn::Writeback:
          case RemoteTxn::Evict:
          case RemoteTxn::UncachedWrite:
            t.to.rtxn = RemoteTxn::None;
            return t;
          default:
            t.violations.push_back(
                format("PACK with no matching request (rtxn=%s)",
                       toString(t.to.rtxn)));
            return t;
        }
      case Opcode::SFWD:
      case Opcode::SINV: {
        const proto::RemoteSnoopStep step =
            table_->remoteSnoop(t.to.remote, m.op);
        if (opt_.mutation == Mutation::DropSnoopInvalidation &&
            m.op == Opcode::SINV) {
            // Ack the invalidation but keep the copy.
            t.to.toHome.push_back(
                {Opcode::SACKI, Grant::Shared, false});
            return t;
        }
        if (cache::isDirty(t.to.remote) &&
            step.stateAfter == MoesiState::Invalid && !step.hasData) {
            t.violations.push_back(format(
                "dirty remote copy (%s) invalidated without data",
                cache::toString(t.to.remote)));
        }
        t.to.remote = step.stateAfter;
        if (m.op == Opcode::SINV &&
            (t.to.rtxn == RemoteTxn::Read ||
             t.to.rtxn == RemoteTxn::WriteMiss)) {
            // A fill for this line is in flight; remember to drop it
            // on arrival.
            t.to.invalAfterFill = true;
        }
        t.to.toHome.push_back(
            {step.response, Grant::Shared, step.hasData});
        return t;
      }
      default:
        t.violations.push_back(format("remote received unexpected %s",
                                      eci::toString(m.op)));
        return t;
    }
}

} // namespace enzian::verif
