/**
 * @file
 * Runtime coherence-invariant monitor.
 *
 * Bridges the static checker and the timed simulation: the monitor
 * taps the ECI fabric, feeds every message through the replay-based
 * trace::ProtocolChecker, and — when given hooks into the live
 * machine — cross-checks the *actual* cache and directory state of
 * the line each message touches against the same invariants
 * (invariants.hh) the exhaustive model checker enforces.
 *
 * It can also replay a previously captured EciTrace offline, so a
 * trace recorded on one run (or decoded from the capture format) can
 * be re-judged without re-running the simulation.
 */

#ifndef ENZIAN_VERIF_INVARIANT_MONITOR_HH
#define ENZIAN_VERIF_INVARIANT_MONITOR_HH

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "eci/eci_link.hh"
#include "eci/home_agent.hh"
#include "mem/address_map.hh"
#include "trace/checker.hh"
#include "trace/eci_pcap.hh"

namespace enzian::verif {

/** Live coherence monitor over a running Enzian machine. */
class InvariantMonitor
{
  public:
    /**
     * Pointers into the live machine; any of them may be null, which
     * simply disables the corresponding cross-check (a trace-only
     * replay uses no hooks at all).
     */
    struct Hooks
    {
        cache::Cache *cpuCache = nullptr;
        cache::Cache *fpgaCache = nullptr;
        /** Home agent of the CPU node (tracks the FPGA's copies). */
        const eci::HomeAgent *cpuHome = nullptr;
        /** Home agent of the FPGA node (tracks the CPU's copies). */
        const eci::HomeAgent *fpgaHome = nullptr;
        const mem::AddressMap *map = nullptr;
    };

    InvariantMonitor() = default;
    explicit InvariantMonitor(const Hooks &hooks) : hooks_(hooks) {}

    /**
     * Attach this monitor as a fabric trace tap. Taps chain: the
     * monitor coexists with EciTrace capture or any other observer
     * attached before or after it (EciFabric::addTap).
     */
    void attach(eci::EciFabric &fabric);

    /**
     * Tolerate retransmission artifacts (duplicate tids, replayed
     * responses) in the underlying protocol checker. Required when
     * monitoring a run with message-loss fault injection, where the
     * agents' recovery path legitimately re-sends with the same tid.
     */
    void setRetryTolerant(bool on) { checker_.setRetryTolerant(on); }

    /** Feed one message (composable with other taps). */
    void observe(Tick when, const eci::EciMsg &msg);

    /** Replay an entire captured trace through the monitor. */
    void replay(const trace::EciTrace &trace);

    /**
     * Sweep every resident line of both caches (hooks permitting) and
     * cross-check SWMR + directory coverage machine-wide. Call at a
     * quiescent point, e.g. the end of a test.
     */
    void checkAllLines();

    /** End-of-run check: no request may remain unanswered. */
    void finalize();

    /** All violations: the trace checker's plus the live checks'. */
    std::vector<std::string> violations() const;
    bool clean() const { return violations().empty(); }

    /** Messages observed so far. */
    std::uint64_t observed() const { return observed_; }

  private:
    void checkLine(Tick when, Addr line);
    cache::MoesiState probe(cache::Cache *c, Addr line) const;

    Hooks hooks_;
    trace::ProtocolChecker checker_;
    std::vector<std::string> liveViolations_;
    std::uint64_t observed_ = 0;
};

} // namespace enzian::verif

#endif // ENZIAN_VERIF_INVARIANT_MONITOR_HH
