/**
 * @file
 * Replicated KV implementation.
 *
 * Statistics note: puts/gets may be issued from any machine's timing
 * domain, so the counters are guarded by a mutex. They are pure
 * commutative sums — the final values (and the exported registry
 * JSON) are identical for any thread count.
 */

#include "cluster/replicated_kv.hh"

#include <algorithm>

#include "base/logging.hh"
#include "cache/moesi.hh"
#include "obs/registry.hh"

namespace enzian::cluster {

namespace {

/** Device-DRAM staging window for the pcie-host path. */
constexpr Addr pcieStagingBase = 192ull << 20;

} // namespace

ReplicatedKv::ReplicatedKv(std::string name, EnzianCluster &cluster,
                           const Config &cfg)
    : cluster_(cluster), cfg_(cfg), stats_(std::move(name))
{
    if (cfg_.slots == 0 || cfg_.value_bytes == 0)
        fatal("kv '%s': empty slot geometry", stats_.name().c_str());
    if (cfg_.placement == "eci-host" &&
        (cfg_.value_bytes % cache::lineSize != 0 ||
         cfg_.region_base % cache::lineSize != 0))
        fatal("kv '%s': eci-host placement needs line-aligned slots",
              stats_.name().c_str());
    if (cfg_.placement == "pcie-host" && cluster_.parallel())
        fatal("kv '%s': pcie-host placement requires legacy mode (the "
              "DMA engine bridges the CPU and FPGA queues directly)",
              stats_.name().c_str());

    const std::uint64_t region =
        cfg_.region_base + cfg_.slots * cfg_.value_bytes;
    const auto &node_cfg = cluster_.config().node;
    const std::uint64_t capacity = cfg_.placement == "dram"
                                       ? node_cfg.fpga_dram_bytes
                                       : node_cfg.cpu_dram_bytes;
    if (region > capacity)
        fatal("kv '%s': %llu slot bytes exceed the %s capacity",
              stats_.name().c_str(),
              static_cast<unsigned long long>(region),
              cfg_.placement.c_str());

    std::vector<std::uint32_t> store_nodes;
    store_nodes.push_back(cfg_.primary);
    for (std::uint32_t r : cfg_.replicas) {
        if (r == cfg_.primary ||
            std::find(store_nodes.begin(), store_nodes.end(), r) !=
                store_nodes.end())
            fatal("kv '%s': node %u replicated twice",
                  stats_.name().c_str(), r);
        store_nodes.push_back(r);
    }
    for (std::uint32_t n : store_nodes) {
        if (n >= cluster_.nodeCount())
            fatal("kv '%s': store node %u of %u",
                  stats_.name().c_str(), n, cluster_.nodeCount());
        stores_.push_back(makeStore(n));
    }

    for (std::uint32_t i = 0; i < cluster_.nodeCount(); ++i) {
        auto &m = cluster_.node(i);
        initiators_.push_back(std::make_unique<net::RdmaInitiator>(
            stats_.name() + ".client" + std::to_string(i),
            m.fpgaEventq(), cluster_.network(),
            cluster_.portOf(i, cfg_.client_link), stores_[0]->port));
        if (cfg_.timeout_us > 0.0)
            initiators_.back()->enableRecovery(cfg_.timeout_us,
                                               cfg_.max_retries);
    }

    stats_.addCounter("puts", &puts_);
    stats_.addCounter("gets", &gets_);
    stats_.addCounter("replica_acks", &replicaAcks_);
    stats_.addCounter("local_reads", &localReads_);
    stats_.addCounter("remote_reads", &remoteReads_);
    obs::Registry::global().add(&stats_);
}

ReplicatedKv::~ReplicatedKv()
{
    obs::Registry::global().remove(&stats_);
}

std::unique_ptr<ReplicatedKv::Store>
ReplicatedKv::makeStore(std::uint32_t node)
{
    auto st = std::make_unique<Store>();
    st->node = node;
    st->port = cluster_.portOf(node, cfg_.target_link);
    auto &m = cluster_.node(node);
    const std::string base =
        stats_.name() + ".store" + std::to_string(node);

    if (cfg_.placement == "dram") {
        st->path = std::make_unique<net::DirectDramPath>(m.fpgaMem());
    } else if (cfg_.placement == "eci-host") {
        // Coherent with the host CPU's L2 by construction.
        st->path =
            std::make_unique<net::EciHostPath>(m.fpgaRemote(), 0);
    } else if (cfg_.placement == "pcie-host") {
        st->pcieLink = std::make_unique<pcie::PcieLink>(
            base + ".pcie", m.fpgaEventq(),
            pcie::PcieLink::Config{});
        st->pcieDma = std::make_unique<pcie::DmaEngine>(
            base + ".dma", m.fpgaEventq(), *st->pcieLink, m.cpuMem(),
            m.fpgaMem(), pcie::DmaEngine::Config{});
        st->path = std::make_unique<net::PcieHostPath>(
            *st->pcieDma, 0, pcieStagingBase);
    } else {
        fatal("kv '%s': unknown placement '%s'", stats_.name().c_str(),
              cfg_.placement.c_str());
    }

    net::RdmaTarget::Config tcfg;
    tcfg.port = st->port;
    st->target = std::make_unique<net::RdmaTarget>(
        base, m.fpgaEventq(), cluster_.network(), *st->path, tcfg);
    return st;
}

ReplicatedKv::Config
ReplicatedKv::configFromService(const ServiceDesc &svc,
                                const ClusterTopology &topo)
{
    Config cfg;
    cfg.primary = svc.node;
    if (const std::string v = serviceParam(svc, "replicas"); !v.empty()) {
        const std::uint32_t k = static_cast<std::uint32_t>(
            std::min<unsigned long>(std::stoul(v),
                                    topo.nodeCount() - 1));
        for (std::uint32_t i = 1; i <= k; ++i)
            cfg.replicas.push_back((svc.node + i) % topo.nodeCount());
    }
    if (const std::string v = serviceParam(svc, "placement"); !v.empty())
        cfg.placement = v;
    if (const std::string v = serviceParam(svc, "slots"); !v.empty())
        cfg.slots = std::stoull(v);
    if (const std::string v = serviceParam(svc, "value_bytes");
        !v.empty())
        cfg.value_bytes = static_cast<std::uint32_t>(std::stoul(v));
    if (const std::string v = serviceParam(svc, "timeout_us"); !v.empty())
        cfg.timeout_us = std::stod(v);
    return cfg;
}

Addr
ReplicatedKv::slotOffset(std::uint64_t key) const
{
    return cfg_.region_base + (key % cfg_.slots) * cfg_.value_bytes;
}

std::uint32_t
ReplicatedKv::nearestStore(std::uint32_t client_node) const
{
    const double default_ns =
        cluster_.config().network.port.latency_ns;
    std::uint32_t best = 0;
    double best_d = cluster_.topology().distanceNs(
        client_node, stores_[0]->node, default_ns);
    for (std::uint32_t s = 1; s < stores_.size(); ++s) {
        const double d = cluster_.topology().distanceNs(
            client_node, stores_[s]->node, default_ns);
        if (d < best_d) {
            best = s;
            best_d = d;
        }
    }
    return best;
}

void
ReplicatedKv::put(std::uint32_t client_node, std::uint64_t key,
                  const std::uint8_t *value, Done done)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        puts_.inc();
    }
    const Addr off = slotOffset(key);
    auto &ini = *initiators_.at(client_node);

    // Per-replica ack tracking: the put is durable everywhere only
    // once the LAST store acknowledged.
    struct Tracker
    {
        std::vector<bool> acked;
        std::size_t remaining = 0;
        Tick last = 0;
        Done done;
    };
    auto tr = std::make_shared<Tracker>();
    tr->acked.assign(stores_.size(), false);
    tr->remaining = stores_.size();
    tr->done = std::move(done);

    for (std::uint32_t s = 0; s < stores_.size(); ++s) {
        ini.writeTo(stores_[s]->port, off, value, cfg_.value_bytes,
                    [this, tr, s](Tick t) {
                        ENZIAN_ASSERT(!tr->acked[s],
                                      "duplicate ack from store %u", s);
                        tr->acked[s] = true;
                        {
                            std::lock_guard<std::mutex> lk(mu_);
                            replicaAcks_.inc();
                        }
                        tr->last = std::max(tr->last, t);
                        if (--tr->remaining == 0)
                            tr->done(tr->last);
                    });
    }
}

void
ReplicatedKv::get(std::uint32_t client_node, std::uint64_t key,
                  std::uint8_t *out, Done done)
{
    const Addr off = slotOffset(key);
    const std::uint32_t s = nearestStore(client_node);
    Store &st = *stores_[s];
    if (st.node == client_node) {
        // Co-located replica: straight through the memory path.
        {
            std::lock_guard<std::mutex> lk(mu_);
            gets_.inc();
            localReads_.inc();
        }
        st.path->read(off, out, cfg_.value_bytes, std::move(done));
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        gets_.inc();
        remoteReads_.inc();
    }
    initiators_.at(client_node)
        ->readFrom(st.port, off, out, cfg_.value_bytes,
                   std::move(done));
}

} // namespace enzian::cluster
