/**
 * @file
 * Cluster composition.
 */

#include "cluster/enzian_cluster.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::cluster {

EnzianCluster::Config::Config()
{
    network.port = platform::params::eth100Config();
    node.cpu_dram_bytes = 256ull << 20;
    node.fpga_dram_bytes = 256ull << 20;
}

net::Switch::Config
EnzianCluster::resolveNetwork(const Config &cfg,
                              const ClusterTopology &topo)
{
    net::Switch::Config net = cfg.network;
    if (net.port_latency_ns.empty()) {
        net.port_latency_ns.resize(topo.totalPorts(), 0.0);
        for (std::uint32_t i = 0; i < topo.nodeCount(); ++i) {
            for (std::uint32_t l = 0; l < topo.nodes[i].ports; ++l)
                net.port_latency_ns[topo.portOf(i, l)] =
                    topo.nodes[i].latency_ns;
        }
    }
    return net;
}

Tick
EnzianCluster::deriveLookahead(const Config &cfg,
                               const ClusterTopology &topo)
{
    // The epoch may never outrun the fastest cross-domain path in the
    // rack: intra-machine that is the ECI engine+wire+engine floor,
    // cross-machine the shortest cable's Ethernet latency.
    const net::Switch::Config net = resolveNetwork(cfg, topo);
    return std::min(
        eci::EciLink::minCrossLatency(cfg.node.link),
        net::Switch::minCrossLatency(net, topo.totalPorts()));
}

EnzianCluster::EnzianCluster(const Config &cfg)
    : cfg_(cfg), topo_(cfg.topology.nodes.empty()
                           ? ClusterTopology::uniform(cfg.nodes,
                                                      cfg.ports_per_node)
                           : cfg.topology)
{
    topo_.validate();
    const net::Switch::Config net = resolveNetwork(cfg_, topo_);

    if (cfg_.threads > 0) {
        const Tick lookahead = deriveLookahead(cfg_, topo_);
        sim::DomainScheduler::Options opts;
        opts.adaptive = cfg_.adaptive_epochs;
        opts.max_grow = cfg_.adaptive_max_grow;
        sched_ = std::make_unique<sim::DomainScheduler>(
            topo_.name + ".sched", lookahead, cfg_.threads, opts);
        // Domain 0 is the switch fabric; machines add cpu/fpga pairs.
        netDomain_ = &sched_->addDomain(topo_.name + ".net");
    }

    for (std::uint32_t i = 0; i < topo_.nodeCount(); ++i) {
        platform::EnzianMachine::Config node_cfg = cfg_.node;
        node_cfg.name = topo_.nodes[i].name;
        if (sched_)
            node_cfg.shared_scheduler = sched_.get();
        else
            node_cfg.shared_eventq = &eq_;
        nodes_.push_back(
            std::make_unique<platform::EnzianMachine>(node_cfg));
    }

    switch_ = std::make_unique<net::Switch>(
        topo_.name + ".switch",
        sched_ ? netDomain_->queue() : eq_, topo_.totalPorts(), net);

    if (sched_) {
        // Each port's endpoint side runs in its owning machine's FPGA
        // domain; the fabric side runs in the net domain.
        std::vector<sim::TimingDomain *> port_domains;
        port_domains.reserve(topo_.totalPorts());
        for (std::uint32_t p = 0; p < topo_.totalPorts(); ++p)
            port_domains.push_back(
                nodes_[topo_.nodeOfPort(p)]->fpgaDomain());
        switch_->bindDomains(*sched_, *netDomain_, port_domains);
    }
}

EnzianCluster::~EnzianCluster() = default;

EventQueue &
EnzianCluster::eventq()
{
    return sched_ ? netDomain_->queue() : eq_;
}

std::uint64_t
EnzianCluster::run()
{
    return sched_ ? sched_->run() : eq_.run();
}

std::uint64_t
EnzianCluster::runUntil(Tick limit)
{
    return sched_ ? sched_->runUntil(limit) : eq_.runUntil(limit);
}

} // namespace enzian::cluster
