/**
 * @file
 * Cluster composition.
 */

#include "cluster/enzian_cluster.hh"

#include "base/logging.hh"

namespace enzian::cluster {

EnzianCluster::Config::Config()
{
    network.port = platform::params::eth100Config();
    node.cpu_dram_bytes = 256ull << 20;
    node.fpga_dram_bytes = 256ull << 20;
}

EnzianCluster::EnzianCluster(const Config &cfg) : cfg_(cfg)
{
    if (cfg_.nodes == 0)
        fatal("cluster with zero nodes");
    switch_ = std::make_unique<net::Switch>(
        "cluster.switch", eq_, cfg_.nodes * cfg_.ports_per_node,
        cfg_.network);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        platform::EnzianMachine::Config node_cfg = cfg_.node;
        node_cfg.shared_eventq = &eq_;
        node_cfg.name = "enzian" + std::to_string(i);
        nodes_.push_back(
            std::make_unique<platform::EnzianMachine>(node_cfg));
    }
}

std::uint32_t
EnzianCluster::portOf(std::uint32_t i, std::uint32_t link) const
{
    ENZIAN_ASSERT(i < nodes_.size() && link < cfg_.ports_per_node,
                  "bad node/link %u/%u", i, link);
    return i * cfg_.ports_per_node + link;
}

} // namespace enzian::cluster
