/**
 * @file
 * Cross-machine coherence bridge (paper section 6).
 *
 * "...accessible either through RDMA, or on Enzian by extending the
 * cache coherency protocol via a 'bridge' implemented on the FPGA" -
 * and section 4.1: ECI "in principle allows ... cache coherence to be
 * extended across machines".
 *
 * The bridge maps a window of machine A's FPGA-homed physical address
 * space onto memory owned by machine B. A's CPU caches those lines
 * through its ordinary ECI path (the L2 really holds them in
 * MOESI states; A's FPGA home agent tracks it in its directory); when
 * a refill misses, A's FPGA fetches the line over 100 GbE from B's
 * bridge target, which performs a *coherent local access* on B - so a
 * line dirty in B's L2 is snooped and forwarded across the wire.
 *
 * Writebacks travel the same path and are non-posted (the ECI ack
 * carries the remote durability point), so read-after-write across
 * the bridge is safe. The model assumes a single importing machine
 * per window (B does not invalidate A's cached copies when B itself
 * writes; that direction is the open research question the paper
 * leaves to future work, and tests pin the documented behaviour).
 */

#ifndef ENZIAN_CLUSTER_ECI_BRIDGE_HH
#define ENZIAN_CLUSTER_ECI_BRIDGE_HH

#include <unordered_map>
#include <vector>

#include "base/wire_ledger.hh"
#include "eci/home_agent.hh"
#include "net/switch.hh"

namespace enzian::cluster {

/** Serving side of the bridge, on the exporting machine (B). */
class EciBridgeTarget : public SimObject
{
  public:
    /** Target configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Base of the exported region in B's physical space. */
        Addr export_base = 0;
        /** Request handling cost in the fabric (ns). */
        double proc_ns = 120.0;
    };

    /**
     * @param home B's home agent for the exported region (local
     *        accesses through it keep B's caches coherent)
     */
    EciBridgeTarget(std::string name, EventQueue &eq, net::Switch &sw,
                    eci::HomeAgent &home, const Config &cfg);

    std::uint64_t linesServed() const { return served_.value(); }

    const Config &config() const { return cfg_; }

    /**
     * @internal wire record shared with the source side. The op and
     * result ledgers are owned by this target instance — two bridges
     * in one process (or consecutive tests) can no longer collide ids
     * or leak each other's state, and the ledgers are thread-safe
     * under DomainScheduler.
     */
    struct WireOp
    {
        bool write = false;
        Addr line = 0; // window-relative
        std::uint32_t srcPort = 0;
        std::vector<std::uint8_t> data; // write payload / read result
    };

    /** Register an op from a source; the id rides the frame tag. */
    std::uint64_t registerOp(WireOp op) { return ops_.put(std::move(op)); }
    /** Fetch (and drop) a read result by id ({} if absent). */
    std::vector<std::uint8_t> takeResult(std::uint64_t id);

    /** Ops currently in flight (test introspection). */
    std::size_t opsInFlight() const { return ops_.size(); }

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);

    net::Switch &sw_;
    eci::HomeAgent &home_;
    Config cfg_;
    Counter served_;
    WireLedger<WireOp> ops_;
    WireLedger<std::vector<std::uint8_t>> results_;
};

/**
 * Importing side: a LineSource for machine A's FPGA home agent that
 * forwards a window of A's address space to a bridge target;
 * everything else passes through to A's own DRAM.
 */
class EciBridgeSource : public SimObject, public eci::LineSource
{
  public:
    /** Source configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Bridged window in A's physical space (FPGA-homed). */
        Addr window_base = 0;
        std::uint64_t window_size = 0;
    };

    /**
     * @param fallback source for addresses outside the window
     *        (normally the machine's DRAM source)
     * @param target the exporting machine's bridge target; owns the
     *        wire ledgers and determines the destination port
     */
    EciBridgeSource(std::string name, EventQueue &eq, net::Switch &sw,
                    eci::LineSource &fallback, EciBridgeTarget &target,
                    const Config &cfg);

    void readLine(Tick when, Addr addr, std::uint8_t *out,
                  Done done) override;
    void writeLine(Tick when, Addr addr, const std::uint8_t *data,
                   Done done) override;
    /** Bridged writes are acknowledged at remote durability. */
    bool posted() const override { return false; }

    std::uint64_t linesBridged() const { return bridged_.value(); }

  private:
    bool inWindow(Addr addr) const
    {
        return addr >= cfg_.window_base &&
               addr < cfg_.window_base + cfg_.window_size;
    }

    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);

    struct Pending
    {
        std::uint8_t *out = nullptr;
        Done done;
    };

    net::Switch &sw_;
    eci::LineSource &fallback_;
    EciBridgeTarget &target_;
    Config cfg_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    Counter bridged_;
};

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_ECI_BRIDGE_HH
