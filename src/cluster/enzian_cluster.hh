/**
 * @file
 * A rack of Enzians (paper sections 3, 6).
 *
 * "One reason that Enzian has such large network bandwidth
 * (480 Gb/s) is to enable, e.g., many boards to be connected together
 * into a single, large multiprocessor (with or without cache
 * coherence)". EnzianCluster instantiates a ClusterTopology — the
 * rack is data, not code — cabling every machine's FPGA-side 100 GbE
 * ports into one switch; cluster services (replicated KV,
 * disaggregated memory, the coherence bridge) run on top.
 *
 * Two execution modes:
 *  - legacy (threads == 0): every machine shares one EventQueue, as
 *    before — sequential, single timeline;
 *  - parallel (threads >= 1): one DomainScheduler runs a network
 *    timing domain (the switch fabric) plus each machine's CPU and
 *    FPGA domains; cross-machine frames ride CrossDomainChannels with
 *    the epoch lookahead derived from the smallest ECI / Ethernet
 *    latency in the rack (never hard-coded). Results are bit-identical
 *    at any thread count.
 *
 * Switch port convention: node i owns ports [topology().firstPort(i),
 * firstPort(i) + ports) — Enzian's FPGA exposes 4 x 100 GbE.
 */

#ifndef ENZIAN_CLUSTER_ENZIAN_CLUSTER_HH
#define ENZIAN_CLUSTER_ENZIAN_CLUSTER_HH

#include <memory>
#include <vector>

#include "cluster/topology.hh"
#include "net/switch.hh"
#include "platform/enzian_machine.hh"

namespace enzian::cluster {

/** N Enzians on a switch. */
class EnzianCluster
{
  public:
    /** Cluster configuration. */
    struct Config
    {
        /**
         * The rack description. When it has no nodes, a uniform
         * topology of `nodes` x `ports_per_node` is used instead
         * (the legacy shorthand below).
         */
        ClusterTopology topology; ///< default: no nodes (see above)
        std::uint32_t nodes = 2;
        /** 100 GbE ports each node patches into the switch. */
        std::uint32_t ports_per_node = 4;
        /** Per-machine configuration template. */
        platform::EnzianMachine::Config node;
        /** Switch configuration (per-node latency overrides are
         *  derived from the topology on top of this). */
        net::Switch::Config network;
        /**
         * Parallel simulation: >= 1 runs the rack on a
         * DomainScheduler with this many threads (1 = same domain
         * semantics, sequential). 0 (default) = legacy shared queue.
         */
        std::uint32_t threads = 0;
        /**
         * Adaptive epochs for the rack scheduler: grow past the fixed
         * step to the provable cross-domain delivery bound when the
         * rack is quiescent (see sim::DomainScheduler::Options).
         * Bit-identical results at any thread count either way.
         */
        bool adaptive_epochs = false;
        /** Epoch growth cap, in fixed steps (adaptive_epochs). */
        std::uint32_t adaptive_max_grow = 16;

        Config();
    };

    explicit EnzianCluster(const Config &cfg);
    ~EnzianCluster();

    EnzianCluster(const EnzianCluster &) = delete;
    EnzianCluster &operator=(const EnzianCluster &) = delete;

    /**
     * The cluster-wide queue: the legacy shared queue, or the network
     * domain's queue in parallel mode (usable for scheduling before
     * the run starts).
     */
    EventQueue &eventq();
    net::Switch &network() { return *switch_; }

    /** True when the rack runs as parallel timing domains. */
    bool parallel() const { return sched_ != nullptr; }
    /** The rack's scheduler, or null in legacy mode. */
    sim::DomainScheduler *scheduler() { return sched_.get(); }

    /** Run the whole rack to completion. @return events executed. */
    std::uint64_t run();
    /** Run the whole rack up to @p limit. @return events executed. */
    std::uint64_t runUntil(Tick limit);

    const ClusterTopology &topology() const { return topo_; }

    std::uint32_t nodeCount() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }
    platform::EnzianMachine &node(std::uint32_t i)
    {
        return *nodes_.at(i);
    }

    /** Switch port @p link of node @p i. */
    std::uint32_t portOf(std::uint32_t i, std::uint32_t link = 0) const
    {
        return topo_.portOf(i, link);
    }

    const Config &config() const { return cfg_; }

    /**
     * The epoch lookahead a rack with this configuration derives:
     * min over the ECI link floor and every switch port's Ethernet
     * latency floor. Exposed so benches can report it.
     */
    static Tick deriveLookahead(const Config &cfg,
                                const ClusterTopology &topo);

  private:
    /** Switch config with per-port latencies from the topology. */
    static net::Switch::Config
    resolveNetwork(const Config &cfg, const ClusterTopology &topo);

    Config cfg_;
    ClusterTopology topo_;
    EventQueue eq_; ///< legacy shared queue (idle in parallel mode)
    /** Declared before every component so domain queues die last. */
    std::unique_ptr<sim::DomainScheduler> sched_;
    sim::TimingDomain *netDomain_ = nullptr;
    std::vector<std::unique_ptr<platform::EnzianMachine>> nodes_;
    std::unique_ptr<net::Switch> switch_;
};

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_ENZIAN_CLUSTER_HH
