/**
 * @file
 * A rack of Enzians (paper sections 3, 6).
 *
 * "One reason that Enzian has such large network bandwidth
 * (480 Gb/s) is to enable, e.g., many boards to be connected together
 * into a single, large multiprocessor (with or without cache
 * coherence)". EnzianCluster composes N machines on one shared event
 * queue with their FPGA-side 100 GbE ports cabled into a switch;
 * cluster services (disaggregated memory, the coherence bridge) run
 * on top.
 *
 * Switch port convention: machine i owns ports [i*ports_per_node,
 * (i+1)*ports_per_node) - Enzian's FPGA exposes 4 x 100 GbE.
 */

#ifndef ENZIAN_CLUSTER_ENZIAN_CLUSTER_HH
#define ENZIAN_CLUSTER_ENZIAN_CLUSTER_HH

#include <memory>
#include <vector>

#include "net/switch.hh"
#include "platform/enzian_machine.hh"

namespace enzian::cluster {

/** N Enzians on a switch. */
class EnzianCluster
{
  public:
    /** Cluster configuration. */
    struct Config
    {
        std::uint32_t nodes = 2;
        /** 100 GbE ports each node patches into the switch. */
        std::uint32_t ports_per_node = 4;
        /** Per-machine configuration template. */
        platform::EnzianMachine::Config node;
        /** Switch configuration. */
        net::Switch::Config network;

        Config();
    };

    explicit EnzianCluster(const Config &cfg);

    EventQueue &eventq() { return eq_; }
    net::Switch &network() { return *switch_; }

    std::uint32_t nodeCount() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }
    platform::EnzianMachine &node(std::uint32_t i)
    {
        return *nodes_.at(i);
    }

    /** First switch port belonging to node @p i. */
    std::uint32_t portOf(std::uint32_t i, std::uint32_t link = 0) const;

    const Config &config() const { return cfg_; }

  private:
    Config cfg_;
    EventQueue eq_;
    std::unique_ptr<net::Switch> switch_;
    std::vector<std::unique_ptr<platform::EnzianMachine>> nodes_;
};

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_ENZIAN_CLUSTER_HH
