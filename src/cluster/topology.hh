/**
 * @file
 * Cluster topology as data.
 *
 * The paper's rack-scale argument (sections 3, 6) is that Enzian's
 * 480 Gb/s of network I/O exists so "many boards [can] be connected
 * together into a single, large multiprocessor". A rack is therefore
 * configuration, not code: ClusterTopology describes the nodes, their
 * switch ports, per-node link latencies (distance), and the services
 * placed on them, and can be parsed from / serialized to a plain-text
 * description. EnzianCluster instantiates machines from it;
 * higher-level services (replicated KV, disaggregated memory) read
 * their placement from it.
 *
 * Text format, one declaration per line ('#' starts a comment):
 *
 *   cluster name=rack0
 *   node name=n0 ports=4 latency_ns=450
 *   node name=n1 ports=4
 *   service kind=kv node=0 params=replicas=2,placement=dram
 *
 * Unknown keys are fatal (a typo must not silently change a rack).
 * describe() emits exactly this format, and parse(describe()) is an
 * identity (round-trip tested).
 */

#ifndef ENZIAN_CLUSTER_TOPOLOGY_HH
#define ENZIAN_CLUSTER_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace enzian::cluster {

/** One machine in the rack. */
struct NodeDesc
{
    std::string name;
    /** 100 GbE ports this node patches into the switch. */
    std::uint32_t ports = 4;
    /**
     * One-way cable/PHY latency of this node's links (ns).
     * 0 = use the switch's default port configuration. Longer cables
     * model distance: read-from-nearest placement minimizes the sum
     * of endpoint latencies.
     */
    double latency_ns = 0.0;
};

/** A service placed on a node (interpreted by the service layer). */
struct ServiceDesc
{
    /** Free-form kind tag, e.g. "kv", "disagg", "bridge". */
    std::string kind;
    std::uint32_t node = 0;
    /** Opaque comma-separated key=value parameters. */
    std::string params;
};

/**
 * The rack as data: nodes, their switch ports, service placement.
 * Port numbering: node i owns the consecutive switch ports
 * [firstPort(i), firstPort(i) + nodes[i].ports) in declaration order
 * (nodes may have different port counts).
 */
class ClusterTopology
{
  public:
    std::string name = "rack";
    std::vector<NodeDesc> nodes;
    std::vector<ServiceDesc> services;

    /** A uniform rack: @p n identical nodes of @p ports_per_node. */
    static ClusterTopology uniform(std::uint32_t n,
                                   std::uint32_t ports_per_node);

    /** Parse a textual description; malformed input is fatal. */
    static ClusterTopology parse(const std::string &text);

    /** Parse a description file; unreadable/malformed is fatal. */
    static ClusterTopology parseFile(const std::string &path);

    /** Serialize; parse(describe()) round-trips. */
    std::string describe() const;

    std::uint32_t nodeCount() const
    {
        return static_cast<std::uint32_t>(nodes.size());
    }

    /** Total switch ports over all nodes. */
    std::uint32_t totalPorts() const;

    /** First switch port belonging to node @p i. */
    std::uint32_t firstPort(std::uint32_t i) const;

    /** Switch port @p link of node @p i (bad node/link is fatal). */
    std::uint32_t portOf(std::uint32_t i, std::uint32_t link = 0) const;

    /** Node owning switch port @p port (bad port is fatal). */
    std::uint32_t nodeOfPort(std::uint32_t port) const;

    /**
     * Network distance between two nodes: the sum of both endpoints'
     * one-way link latencies (ns), using @p default_ns where a node
     * does not override. Same node = 0.
     */
    double distanceNs(std::uint32_t a, std::uint32_t b,
                      double default_ns) const;

    /** Services of @p kind, in declaration order. */
    std::vector<ServiceDesc> servicesOf(const std::string &kind) const;

    /** Fatal unless the topology is well-formed (>=1 node, ports>0,
     *  unique node names, service nodes in range). */
    void validate() const;
};

/** Look up @p key in a "k=v,k=v" params string ("" if absent). */
std::string serviceParam(const ServiceDesc &svc, const std::string &key);

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_TOPOLOGY_HH
