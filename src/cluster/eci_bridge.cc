/**
 * @file
 * Coherence bridge implementation.
 */

#include "cluster/eci_bridge.hh"

#include <cstring>

#include "base/logging.hh"

namespace enzian::cluster {

namespace {

constexpr std::uint32_t bridgeHeaderBytes = 48;

} // namespace

std::vector<std::uint8_t>
EciBridgeTarget::takeResult(std::uint64_t id)
{
    auto out = results_.take(id);
    return out ? std::move(*out) : std::vector<std::uint8_t>{};
}

EciBridgeTarget::EciBridgeTarget(std::string name, EventQueue &eq,
                                 net::Switch &sw, eci::HomeAgent &home,
                                 const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), home_(home), cfg_(cfg)
{
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, net::Switch::userOf(tag));
                    });
    stats().addCounter("lines_served", &served_);
}

void
EciBridgeTarget::onFrame(Tick, std::uint64_t, std::uint64_t user)
{
    const std::uint64_t id = user;
    eventq().scheduleDelta(
        units::ns(cfg_.proc_ns),
        [this, id]() {
            auto taken = ops_.take(id);
            ENZIAN_ASSERT(taken, "unknown bridge op %llu",
                          static_cast<unsigned long long>(id));
            auto op = std::make_shared<WireOp>(std::move(*taken));
            served_.inc();
            const Addr line = cfg_.export_base + op->line;
            if (op->write) {
                home_.localWrite(
                    line, op->data.data(), [this, op, id](Tick) {
                        sw_.sendFrom(cfg_.port, bridgeHeaderBytes,
                                     net::Switch::makeTag(op->srcPort,
                                                          id));
                    });
            } else {
                auto buf = std::make_shared<
                    std::vector<std::uint8_t>>(cache::lineSize);
                home_.localRead(
                    line, buf->data(), [this, op, buf, id](Tick) {
                        results_.putAt(id, std::move(*buf));
                        sw_.sendFrom(
                            cfg_.port,
                            bridgeHeaderBytes + cache::lineSize,
                            net::Switch::makeTag(op->srcPort, id));
                    });
            }
        },
        "bridge-serve");
}

EciBridgeSource::EciBridgeSource(std::string name, EventQueue &eq,
                                 net::Switch &sw,
                                 eci::LineSource &fallback,
                                 EciBridgeTarget &target,
                                 const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), fallback_(fallback),
      target_(target), cfg_(cfg)
{
    ENZIAN_ASSERT(cache::isLineAligned(cfg_.window_base),
                  "bridge window must be line aligned");
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, net::Switch::userOf(tag));
                    });
    stats().addCounter("lines_bridged", &bridged_);
}

void
EciBridgeSource::readLine(Tick when, Addr addr, std::uint8_t *out,
                          Done done)
{
    if (!inWindow(addr)) {
        fallback_.readLine(when, addr, out, std::move(done));
        return;
    }
    bridged_.inc();
    EciBridgeTarget::WireOp op;
    op.write = false;
    op.line = addr - cfg_.window_base;
    op.srcPort = cfg_.port;
    const std::uint64_t id = target_.registerOp(std::move(op));
    pending_[id] = Pending{out, std::move(done)};
    // The request leaves when the home pipeline hands it over.
    eventq().schedule(
        std::max(when, now()),
        [this, id]() {
            sw_.sendFrom(cfg_.port, bridgeHeaderBytes,
                         net::Switch::makeTag(target_.config().port,
                                              id));
        },
        "bridge-read-req");
}

void
EciBridgeSource::writeLine(Tick when, Addr addr,
                           const std::uint8_t *data, Done done)
{
    if (!inWindow(addr)) {
        fallback_.writeLine(when, addr, data, std::move(done));
        return;
    }
    bridged_.inc();
    EciBridgeTarget::WireOp op;
    op.write = true;
    op.line = addr - cfg_.window_base;
    op.srcPort = cfg_.port;
    op.data.assign(data, data + cache::lineSize);
    const std::uint64_t id = target_.registerOp(std::move(op));
    pending_[id] = Pending{nullptr, std::move(done)};
    eventq().schedule(
        std::max(when, now()),
        [this, id]() {
            sw_.sendFrom(cfg_.port,
                         bridgeHeaderBytes + cache::lineSize,
                         net::Switch::makeTag(target_.config().port,
                                              id));
        },
        "bridge-write-req");
}

void
EciBridgeSource::onFrame(Tick when, std::uint64_t, std::uint64_t user)
{
    const std::uint64_t id = user;
    auto it = pending_.find(id);
    ENZIAN_ASSERT(it != pending_.end(),
                  "bridge completion for unknown id %llu",
                  static_cast<unsigned long long>(id));
    Pending p = std::move(it->second);
    pending_.erase(it);
    if (p.out) {
        auto data = target_.takeResult(id);
        ENZIAN_ASSERT(data.size() == cache::lineSize,
                      "bridge read without payload");
        std::memcpy(p.out, data.data(), cache::lineSize);
    }
    p.done(when);
}

} // namespace enzian::cluster
