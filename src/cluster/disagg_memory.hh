/**
 * @file
 * Smart disaggregated memory over the FPGA network (paper section 6).
 *
 * "We have recent work on smart disaggregated memory [Farview] where
 * the DRAM of the FPGA is made available as network attached memory
 * and accessible either through RDMA, or on Enzian by extending the
 * cache coherency protocol via a 'bridge' implemented on the FPGA.
 * This disaggregated memory can be used, for example, as a database
 * buffer cache with operator off-loading and push down directly to
 * the memory."
 *
 * DisaggMemoryServer exports a region of one Enzian's FPGA DRAM over
 * 100 GbE. Besides plain READ/WRITE it supports operator pushdown:
 * SCAN_FILTER executes a predicate over fixed-size rows *at the
 * memory* in the server FPGA, returning only matching rows - the
 * whole point of the design is that selection-heavy operators move
 * less data than an RDMA read of the table.
 */

#ifndef ENZIAN_CLUSTER_DISAGG_MEMORY_HH
#define ENZIAN_CLUSTER_DISAGG_MEMORY_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/memory_controller.hh"
#include "net/switch.hh"
#include "sim/clock_domain.hh"

namespace enzian::cluster {

/** Comparison operators a pushed-down predicate may use. */
enum class FilterOp : std::uint8_t {
    Eq = 0,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** A pushdown predicate over one 64-bit column of fixed-size rows. */
struct Predicate
{
    /** Byte offset of the column within a row. */
    std::uint32_t column_offset = 0;
    FilterOp op = FilterOp::Eq;
    std::uint64_t operand = 0;

    /** Evaluate against one row. */
    bool matches(const std::uint8_t *row) const;
};

/** Network-attached FPGA memory with operator pushdown. */
class DisaggMemoryServer : public SimObject
{
  public:
    /** Server configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Region of FPGA DRAM exported (offset, bytes). */
        Addr region_base = 0;
        std::uint64_t region_size = 64ull << 20;
        /** Request parsing cost (ns). */
        double request_proc_ns = 250.0;
        /**
         * Scan engine throughput in rows per fabric cycle. The
         * engine consumes a 64-byte beat per cycle, so 16-byte rows
         * scan at 4 rows/cycle.
         */
        double rows_per_cycle = 4.0;
        /** Fabric clock (Hz). */
        double clock_hz = 250e6;
    };

    DisaggMemoryServer(std::string name, EventQueue &eq, net::Switch &sw,
                       mem::MemoryController &fpga_mem,
                       const Config &cfg);

    std::uint64_t requestsServed() const { return served_.value(); }
    std::uint64_t rowsScanned() const { return scanned_.value(); }
    std::uint64_t bytesReturned() const { return returned_.value(); }

    /** @internal request registry shared with clients. */
    struct WireRequest
    {
        enum class Kind : std::uint8_t { Read, Write, ScanFilter };
        Kind kind = Kind::Read;
        Addr off = 0;
        std::uint64_t len = 0;       // Read/Write
        std::uint32_t row_bytes = 0; // ScanFilter
        std::uint64_t row_count = 0; // ScanFilter
        Predicate pred;              // ScanFilter
        std::uint32_t srcPort = 0;
        std::vector<std::uint8_t> data; // Write payload
    };

    static std::uint32_t registerRequest(WireRequest req);
    static std::vector<std::uint8_t> takeResponse(std::uint32_t id);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);
    void serve(std::uint32_t id);

    net::Switch &sw_;
    mem::MemoryController &mem_;
    Config cfg_;
    Counter served_;
    Counter scanned_;
    Counter returned_;
};

/** Client side: issue reads/writes/pushdown scans to a server. */
class DisaggMemoryClient : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;
    /** Scan completion: (tick, matching rows, bytes on the wire). */
    using ScanDone = std::function<void(
        Tick, std::vector<std::uint8_t>, std::uint64_t)>;

    DisaggMemoryClient(std::string name, EventQueue &eq,
                       net::Switch &sw, std::uint32_t port,
                       std::uint32_t server_port);

    /** Read @p len bytes at server offset @p off. */
    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done);

    /** Write @p len bytes at server offset @p off. */
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done);

    /**
     * Push a filter down to the memory: scan @p row_count rows of
     * @p row_bytes starting at @p off, return only rows matching
     * @p pred.
     */
    void scanFilter(Addr off, std::uint32_t row_bytes,
                    std::uint64_t row_count, const Predicate &pred,
                    ScanDone done);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);

    struct Pending
    {
        std::uint8_t *dst = nullptr;
        Done done;
        ScanDone scan_done;
    };

    net::Switch &sw_;
    std::uint32_t port_;
    std::uint32_t serverPort_;
    std::unordered_map<std::uint32_t, Pending> pending_;
};

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_DISAGG_MEMORY_HH
