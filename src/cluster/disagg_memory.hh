/**
 * @file
 * Smart disaggregated memory over the FPGA network (paper section 6).
 *
 * "We have recent work on smart disaggregated memory [Farview] where
 * the DRAM of the FPGA is made available as network attached memory
 * and accessible either through RDMA, or on Enzian by extending the
 * cache coherency protocol via a 'bridge' implemented on the FPGA.
 * This disaggregated memory can be used, for example, as a database
 * buffer cache with operator off-loading and push down directly to
 * the memory."
 *
 * DisaggMemoryServer exports a region of one Enzian's FPGA DRAM over
 * 100 GbE. Besides plain READ/WRITE it supports operator pushdown:
 * SCAN_FILTER executes a predicate over fixed-size rows *at the
 * memory* in the server FPGA, returning only matching rows - the
 * whole point of the design is that selection-heavy operators move
 * less data than an RDMA read of the table.
 */

#ifndef ENZIAN_CLUSTER_DISAGG_MEMORY_HH
#define ENZIAN_CLUSTER_DISAGG_MEMORY_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "base/wire_ledger.hh"
#include "mem/memory_controller.hh"
#include "net/switch.hh"
#include "sim/clock_domain.hh"

namespace enzian::cluster {

/** Comparison operators a pushed-down predicate may use. */
enum class FilterOp : std::uint8_t {
    Eq = 0,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** A pushdown predicate over one 64-bit column of fixed-size rows. */
struct Predicate
{
    /** Byte offset of the column within a row. */
    std::uint32_t column_offset = 0;
    FilterOp op = FilterOp::Eq;
    std::uint64_t operand = 0;

    /**
     * Fatal unless the 8-byte column read fits inside a row of
     * @p row_bytes. Checked when a scan request is registered, so a
     * bad offset fails loudly instead of reading past the row buffer.
     */
    void validate(std::uint32_t row_bytes) const;

    /** Evaluate against one row (validate() must have passed). */
    bool matches(const std::uint8_t *row) const;
};

/** Network-attached FPGA memory with operator pushdown. */
class DisaggMemoryServer : public SimObject
{
  public:
    /** Server configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Region of FPGA DRAM exported (offset, bytes). */
        Addr region_base = 0;
        std::uint64_t region_size = 64ull << 20;
        /** Request parsing cost (ns). */
        double request_proc_ns = 250.0;
        /**
         * Scan engine throughput in rows per fabric cycle. The
         * engine consumes a 64-byte beat per cycle, so 16-byte rows
         * scan at 4 rows/cycle.
         */
        double rows_per_cycle = 4.0;
        /** Fabric clock (Hz). */
        double clock_hz = 250e6;
    };

    DisaggMemoryServer(std::string name, EventQueue &eq, net::Switch &sw,
                       mem::MemoryController &fpga_mem,
                       const Config &cfg);

    std::uint64_t requestsServed() const { return served_.value(); }
    std::uint64_t rowsScanned() const { return scanned_.value(); }
    std::uint64_t bytesReturned() const { return returned_.value(); }

    const Config &config() const { return cfg_; }

    /**
     * @internal wire record shared with clients. The request and
     * response ledgers are owned by this server instance — several
     * servers in one process no longer collide ids or leak each
     * other's state, and the ledgers are thread-safe under
     * DomainScheduler.
     */
    struct WireRequest
    {
        enum class Kind : std::uint8_t { Read, Write, ScanFilter };
        Kind kind = Kind::Read;
        Addr off = 0;
        std::uint64_t len = 0;       // Read/Write
        std::uint32_t row_bytes = 0; // ScanFilter
        std::uint64_t row_count = 0; // ScanFilter
        Predicate pred;              // ScanFilter
        std::uint32_t srcPort = 0;
        std::vector<std::uint8_t> data; // Write payload
    };

    /**
     * Register a request; the returned id rides the frame tag.
     * ScanFilter predicates are bounds-checked here (fatal on a
     * column read that would run past the row).
     */
    std::uint64_t registerRequest(WireRequest req);
    /** Fetch (and drop) a response payload by id ({} if absent). */
    std::vector<std::uint8_t> takeResponse(std::uint64_t id);

    /** Requests currently in flight (test introspection). */
    std::size_t requestsInFlight() const { return requests_.size(); }

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);
    void serve(std::uint64_t id);

    net::Switch &sw_;
    mem::MemoryController &mem_;
    Config cfg_;
    Counter served_;
    Counter scanned_;
    Counter returned_;
    WireLedger<WireRequest> requests_;
    WireLedger<std::vector<std::uint8_t>> responses_;
};

/** Client side: issue reads/writes/pushdown scans to a server. */
class DisaggMemoryClient : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;
    /** Scan completion: (tick, matching rows, bytes on the wire). */
    using ScanDone = std::function<void(
        Tick, std::vector<std::uint8_t>, std::uint64_t)>;

    /**
     * @param server the serving instance; owns the wire ledgers and
     *        determines the destination port
     */
    DisaggMemoryClient(std::string name, EventQueue &eq,
                       net::Switch &sw, std::uint32_t port,
                       DisaggMemoryServer &server);

    /** Read @p len bytes at server offset @p off. */
    void read(Addr off, std::uint8_t *dst, std::uint64_t len,
              Done done);

    /** Write @p len bytes at server offset @p off. */
    void write(Addr off, const std::uint8_t *src, std::uint64_t len,
               Done done);

    /**
     * Push a filter down to the memory: scan @p row_count rows of
     * @p row_bytes starting at @p off, return only rows matching
     * @p pred.
     */
    void scanFilter(Addr off, std::uint32_t row_bytes,
                    std::uint64_t row_count, const Predicate &pred,
                    ScanDone done);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);

    struct Pending
    {
        std::uint8_t *dst = nullptr;
        Done done;
        ScanDone scan_done;
    };

    net::Switch &sw_;
    std::uint32_t port_;
    DisaggMemoryServer &server_;
    std::unordered_map<std::uint64_t, Pending> pending_;
};

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_DISAGG_MEMORY_HH
