/**
 * @file
 * Topology description parsing and serialization.
 */

#include "cluster/topology.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace enzian::cluster {

namespace {

/** Split "key=value" (first '=' wins; value may contain more '='). */
std::pair<std::string, std::string>
splitKv(const std::string &tok, int line_no)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("topology line %d: expected key=value, got '%s'", line_no,
              tok.c_str());
    return {tok.substr(0, eq), tok.substr(eq + 1)};
}

std::uint32_t
parseU32(const std::string &v, const char *key, int line_no)
{
    char *end = nullptr;
    const unsigned long x = std::strtoul(v.c_str(), &end, 10);
    if (!end || *end != '\0')
        fatal("topology line %d: %s wants an integer, got '%s'",
              line_no, key, v.c_str());
    return static_cast<std::uint32_t>(x);
}

double
parseF64(const std::string &v, const char *key, int line_no)
{
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0')
        fatal("topology line %d: %s wants a number, got '%s'", line_no,
              key, v.c_str());
    return x;
}

/** Trim a trailing ".0"-less float for stable round-trips. */
std::string
fmtF64(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

ClusterTopology
ClusterTopology::uniform(std::uint32_t n, std::uint32_t ports_per_node)
{
    ClusterTopology topo;
    for (std::uint32_t i = 0; i < n; ++i) {
        NodeDesc node;
        node.name = "enzian" + std::to_string(i);
        node.ports = ports_per_node;
        topo.nodes.push_back(std::move(node));
    }
    topo.validate();
    return topo;
}

ClusterTopology
ClusterTopology::parse(const std::string &text)
{
    ClusterTopology topo;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream toks(line);
        std::string word;
        if (!(toks >> word))
            continue; // blank / comment-only line
        if (word == "cluster") {
            std::string tok;
            while (toks >> tok) {
                auto [k, v] = splitKv(tok, line_no);
                if (k == "name")
                    topo.name = v;
                else
                    fatal("topology line %d: unknown cluster key '%s'",
                          line_no, k.c_str());
            }
        } else if (word == "node") {
            NodeDesc node;
            node.name = "enzian" + std::to_string(topo.nodes.size());
            std::string tok;
            while (toks >> tok) {
                auto [k, v] = splitKv(tok, line_no);
                if (k == "name")
                    node.name = v;
                else if (k == "ports")
                    node.ports = parseU32(v, "ports", line_no);
                else if (k == "latency_ns")
                    node.latency_ns = parseF64(v, "latency_ns", line_no);
                else
                    fatal("topology line %d: unknown node key '%s'",
                          line_no, k.c_str());
            }
            topo.nodes.push_back(std::move(node));
        } else if (word == "service") {
            ServiceDesc svc;
            std::string tok;
            while (toks >> tok) {
                auto [k, v] = splitKv(tok, line_no);
                if (k == "kind")
                    svc.kind = v;
                else if (k == "node")
                    svc.node = parseU32(v, "node", line_no);
                else if (k == "params")
                    svc.params = v;
                else
                    fatal("topology line %d: unknown service key '%s'",
                          line_no, k.c_str());
            }
            if (svc.kind.empty())
                fatal("topology line %d: service without a kind",
                      line_no);
            topo.services.push_back(std::move(svc));
        } else {
            fatal("topology line %d: unknown declaration '%s'", line_no,
                  word.c_str());
        }
    }
    topo.validate();
    return topo;
}

ClusterTopology
ClusterTopology::parseFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot read topology file '%s'", path.c_str());
    std::ostringstream text;
    text << f.rdbuf();
    return parse(text.str());
}

std::string
ClusterTopology::describe() const
{
    std::ostringstream os;
    os << "cluster name=" << name << "\n";
    for (const NodeDesc &n : nodes) {
        os << "node name=" << n.name << " ports=" << n.ports;
        if (n.latency_ns != 0.0)
            os << " latency_ns=" << fmtF64(n.latency_ns);
        os << "\n";
    }
    for (const ServiceDesc &s : services) {
        os << "service kind=" << s.kind << " node=" << s.node;
        if (!s.params.empty())
            os << " params=" << s.params;
        os << "\n";
    }
    return os.str();
}

std::uint32_t
ClusterTopology::totalPorts() const
{
    std::uint32_t total = 0;
    for (const NodeDesc &n : nodes)
        total += n.ports;
    return total;
}

std::uint32_t
ClusterTopology::firstPort(std::uint32_t i) const
{
    ENZIAN_ASSERT(i < nodes.size(), "bad node %u of %zu", i,
                  nodes.size());
    std::uint32_t first = 0;
    for (std::uint32_t n = 0; n < i; ++n)
        first += nodes[n].ports;
    return first;
}

std::uint32_t
ClusterTopology::portOf(std::uint32_t i, std::uint32_t link) const
{
    ENZIAN_ASSERT(i < nodes.size() && link < nodes[i].ports,
                  "bad node/link %u/%u", i, link);
    return firstPort(i) + link;
}

std::uint32_t
ClusterTopology::nodeOfPort(std::uint32_t port) const
{
    std::uint32_t first = 0;
    for (std::uint32_t n = 0; n < nodes.size(); ++n) {
        if (port < first + nodes[n].ports)
            return n;
        first += nodes[n].ports;
    }
    panic("port %u beyond the rack's %u ports", port, totalPorts());
}

double
ClusterTopology::distanceNs(std::uint32_t a, std::uint32_t b,
                            double default_ns) const
{
    ENZIAN_ASSERT(a < nodes.size() && b < nodes.size(),
                  "bad node pair %u/%u", a, b);
    if (a == b)
        return 0.0;
    const double la =
        nodes[a].latency_ns != 0.0 ? nodes[a].latency_ns : default_ns;
    const double lb =
        nodes[b].latency_ns != 0.0 ? nodes[b].latency_ns : default_ns;
    return la + lb;
}

std::vector<ServiceDesc>
ClusterTopology::servicesOf(const std::string &kind) const
{
    std::vector<ServiceDesc> out;
    for (const ServiceDesc &s : services)
        if (s.kind == kind)
            out.push_back(s);
    return out;
}

void
ClusterTopology::validate() const
{
    if (nodes.empty())
        fatal("topology '%s' has no nodes", name.c_str());
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
        const NodeDesc &n = nodes[i];
        if (n.ports == 0)
            fatal("topology '%s': node '%s' has zero ports",
                  name.c_str(), n.name.c_str());
        if (n.latency_ns < 0.0)
            fatal("topology '%s': node '%s' has negative latency",
                  name.c_str(), n.name.c_str());
        for (std::uint32_t j = i + 1; j < nodes.size(); ++j)
            if (n.name == nodes[j].name)
                fatal("topology '%s': duplicate node name '%s'",
                      name.c_str(), n.name.c_str());
    }
    for (const ServiceDesc &s : services)
        if (s.node >= nodes.size())
            fatal("topology '%s': service '%s' placed on node %u of "
                  "%zu",
                  name.c_str(), s.kind.c_str(), s.node, nodes.size());
}

std::string
serviceParam(const ServiceDesc &svc, const std::string &key)
{
    std::istringstream in(svc.params);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        const auto eq = tok.find('=');
        if (eq != std::string::npos && tok.substr(0, eq) == key)
            return tok.substr(eq + 1);
    }
    return {};
}

} // namespace enzian::cluster
