/**
 * @file
 * Disaggregated memory implementation.
 */

#include "cluster/disagg_memory.hh"

#include <cstring>

#include "base/logging.hh"

namespace enzian::cluster {

namespace {

constexpr std::uint32_t headerBytes = 64;

} // namespace

void
Predicate::validate(std::uint32_t row_bytes) const
{
    if (row_bytes < sizeof(std::uint64_t) ||
        column_offset > row_bytes - sizeof(std::uint64_t))
        fatal("pushdown predicate reads 8 bytes at row offset %u, but "
              "rows are only %u bytes",
              column_offset, row_bytes);
}

bool
Predicate::matches(const std::uint8_t *row) const
{
    std::uint64_t v = 0;
    std::memcpy(&v, row + column_offset, sizeof(v));
    switch (op) {
      case FilterOp::Eq:
        return v == operand;
      case FilterOp::Ne:
        return v != operand;
      case FilterOp::Lt:
        return v < operand;
      case FilterOp::Le:
        return v <= operand;
      case FilterOp::Gt:
        return v > operand;
      case FilterOp::Ge:
        return v >= operand;
    }
    panic("bad filter op");
}

std::uint64_t
DisaggMemoryServer::registerRequest(WireRequest req)
{
    if (req.kind == WireRequest::Kind::ScanFilter)
        req.pred.validate(req.row_bytes);
    return requests_.put(std::move(req));
}

std::vector<std::uint8_t>
DisaggMemoryServer::takeResponse(std::uint64_t id)
{
    auto out = responses_.take(id);
    return out ? std::move(*out) : std::vector<std::uint8_t>{};
}

DisaggMemoryServer::DisaggMemoryServer(std::string name, EventQueue &eq,
                                       net::Switch &sw,
                                       mem::MemoryController &fpga_mem,
                                       const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), mem_(fpga_mem), cfg_(cfg)
{
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, net::Switch::userOf(tag));
                    });
    stats().addCounter("requests", &served_);
    stats().addCounter("rows_scanned", &scanned_);
    stats().addCounter("bytes_returned", &returned_);
}

void
DisaggMemoryServer::onFrame(Tick, std::uint64_t, std::uint64_t user)
{
    const std::uint64_t id = user;
    eventq().scheduleDelta(units::ns(cfg_.request_proc_ns),
                           [this, id]() { serve(id); },
                           "disagg-request");
}

void
DisaggMemoryServer::serve(std::uint64_t id)
{
    auto taken = requests_.take(id);
    ENZIAN_ASSERT(taken, "unknown disagg request %llu",
                  static_cast<unsigned long long>(id));
    WireRequest req = std::move(*taken);
    served_.inc();

    using Kind = WireRequest::Kind;
    switch (req.kind) {
      case Kind::Read: {
        ENZIAN_ASSERT(req.off + req.len <= cfg_.region_size,
                      "disagg read out of region");
        std::vector<std::uint8_t> out(req.len);
        const Tick ready =
            mem_.read(now(), cfg_.region_base + req.off, out.data(),
                      req.len)
                .done;
        returned_.inc(req.len);
        responses_.putAt(id, std::move(out));
        eventq().schedule(
            ready,
            [this, id, port = req.srcPort, len = req.len]() {
                sw_.sendFrom(cfg_.port, len + headerBytes,
                             net::Switch::makeTag(port, id));
            },
            "disagg-read-done");
        return;
      }
      case Kind::Write: {
        ENZIAN_ASSERT(req.off + req.data.size() <= cfg_.region_size,
                      "disagg write out of region");
        const Tick durable =
            mem_.write(now(), cfg_.region_base + req.off,
                       req.data.data(), req.data.size())
                .done;
        eventq().schedule(
            durable,
            [this, id, port = req.srcPort]() {
                sw_.sendFrom(cfg_.port, headerBytes,
                             net::Switch::makeTag(port, id));
            },
            "disagg-write-done");
        return;
      }
      case Kind::ScanFilter: {
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(req.row_bytes) * req.row_count;
        ENZIAN_ASSERT(req.off + bytes <= cfg_.region_size,
                      "disagg scan out of region");
        req.pred.validate(req.row_bytes);
        // The scan engine streams rows from DRAM and filters in the
        // fabric: time = max(DRAM stream, engine rate).
        std::vector<std::uint8_t> rows(bytes);
        const Tick dram_done =
            mem_.read(now(), cfg_.region_base + req.off, rows.data(),
                      bytes)
                .done;
        const double engine_s =
            static_cast<double>(req.row_count) /
            (cfg_.rows_per_cycle * cfg_.clock_hz);
        const Tick ready =
            std::max(dram_done, now() + units::sec(engine_s));

        std::vector<std::uint8_t> matches;
        for (std::uint64_t r = 0; r < req.row_count; ++r) {
            const std::uint8_t *row = rows.data() + r * req.row_bytes;
            if (req.pred.matches(row))
                matches.insert(matches.end(), row,
                               row + req.row_bytes);
        }
        scanned_.inc(req.row_count);
        returned_.inc(matches.size());
        const std::uint64_t wire = matches.size() + headerBytes;
        responses_.putAt(id, std::move(matches));
        eventq().schedule(
            ready,
            [this, id, port = req.srcPort, wire]() {
                sw_.sendFrom(cfg_.port, wire,
                             net::Switch::makeTag(port, id));
            },
            "disagg-scan-done");
        return;
      }
    }
    panic("bad disagg request kind");
}

DisaggMemoryClient::DisaggMemoryClient(std::string name, EventQueue &eq,
                                       net::Switch &sw,
                                       std::uint32_t port,
                                       DisaggMemoryServer &server)
    : SimObject(std::move(name), eq), sw_(sw), port_(port),
      server_(server)
{
    sw_.setEndpoint(port_,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload, net::Switch::userOf(tag));
                    });
}

void
DisaggMemoryClient::read(Addr off, std::uint8_t *dst, std::uint64_t len,
                         Done done)
{
    DisaggMemoryServer::WireRequest req;
    req.kind = DisaggMemoryServer::WireRequest::Kind::Read;
    req.off = off;
    req.len = len;
    req.srcPort = port_;
    const std::uint64_t id = server_.registerRequest(std::move(req));
    pending_[id] = Pending{dst, std::move(done), {}};
    sw_.sendFrom(port_, headerBytes,
                 net::Switch::makeTag(server_.config().port, id));
}

void
DisaggMemoryClient::write(Addr off, const std::uint8_t *src,
                          std::uint64_t len, Done done)
{
    DisaggMemoryServer::WireRequest req;
    req.kind = DisaggMemoryServer::WireRequest::Kind::Write;
    req.off = off;
    req.srcPort = port_;
    req.data.assign(src, src + len);
    const std::uint64_t id = server_.registerRequest(std::move(req));
    pending_[id] = Pending{nullptr, std::move(done), {}};
    sw_.sendFrom(port_, len + headerBytes,
                 net::Switch::makeTag(server_.config().port, id));
}

void
DisaggMemoryClient::scanFilter(Addr off, std::uint32_t row_bytes,
                               std::uint64_t row_count,
                               const Predicate &pred, ScanDone done)
{
    DisaggMemoryServer::WireRequest req;
    req.kind = DisaggMemoryServer::WireRequest::Kind::ScanFilter;
    req.off = off;
    req.row_bytes = row_bytes;
    req.row_count = row_count;
    req.pred = pred;
    req.srcPort = port_;
    const std::uint64_t id = server_.registerRequest(std::move(req));
    Pending p;
    p.scan_done = std::move(done);
    pending_[id] = std::move(p);
    sw_.sendFrom(port_, headerBytes,
                 net::Switch::makeTag(server_.config().port, id));
}

void
DisaggMemoryClient::onFrame(Tick when, std::uint64_t payload,
                            std::uint64_t user)
{
    const std::uint64_t id = user;
    auto it = pending_.find(id);
    ENZIAN_ASSERT(it != pending_.end(),
                  "disagg response for unknown id %llu",
                  static_cast<unsigned long long>(id));
    Pending p = std::move(it->second);
    pending_.erase(it);
    auto data = server_.takeResponse(id);
    if (p.scan_done) {
        p.scan_done(when, std::move(data), payload);
        return;
    }
    if (p.dst && !data.empty())
        std::memcpy(p.dst, data.data(), data.size());
    if (p.done)
        p.done(when);
}

} // namespace enzian::cluster
