/**
 * @file
 * RDMA-backed replicated key-value store spanning machines.
 *
 * The first real distributed workload on the rack (paper section 6:
 * the network bandwidth exists so "many boards [can] be connected
 * together into a single, large multiprocessor"). Values live in
 * fixed-size slots replicated on a primary plus K replica nodes; every
 * store node serves its slice through an RdmaTarget over one of the
 * machine's memory paths:
 *
 *  - "dram":     the FPGA's own DDR4 (DirectDramPath);
 *  - "eci-host": CPU host memory over coherent ECI (EciHostPath);
 *  - "pcie-host": CPU host memory via PCIe DMA (PcieHostPath,
 *    legacy mode only — the DMA engine bridges the CPU and FPGA
 *    queues directly, which parallel domains forbid).
 *
 * Writes fan out from the client's initiator to the primary and every
 * replica with per-replica ack tracking: the put completes when the
 * last replica acknowledged (all-ack durability). Reads go to the
 * nearest replica by topology distance — a client co-located with a
 * replica reads straight through the memory path, no network at all.
 * With a recovery timeout configured, lost RDMA frames (enzchaos
 * drops) are retried under fresh wire ids, so read-your-writes holds
 * under faults.
 */

#ifndef ENZIAN_CLUSTER_REPLICATED_KV_HH
#define ENZIAN_CLUSTER_REPLICATED_KV_HH

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/enzian_cluster.hh"
#include "net/rdma_engine.hh"
#include "pcie/dma_engine.hh"
#include "pcie/pcie_link.hh"

namespace enzian::cluster {

/** Replicated KV store over a cluster (see file comment). */
class ReplicatedKv
{
  public:
    using Done = std::function<void(Tick)>;

    /** Store configuration. */
    struct Config
    {
        /** Node hosting the primary copy. */
        std::uint32_t primary = 0;
        /** Replica nodes (excluding the primary). */
        std::vector<std::uint32_t> replicas;
        /** Value placement: "dram", "eci-host", "pcie-host". */
        std::string placement = "dram";
        /** Number of fixed-size value slots. */
        std::uint64_t slots = 1024;
        /** Bytes per value slot (eci-host placement needs a multiple
         *  of the 128-byte ECI cache line). */
        std::uint32_t value_bytes = 128;
        /** Base offset of the slot region in each store's path. */
        Addr region_base = 0;
        /** Node link used by each store's RdmaTarget. */
        std::uint32_t target_link = 2;
        /** Node link used by each client's RdmaInitiator. */
        std::uint32_t client_link = 3;
        /**
         * > 0 arms initiator timeout/retry recovery (us) — required
         * before injecting RDMA drops anywhere on the path.
         */
        double timeout_us = 0.0;
        std::uint32_t max_retries = 12;
    };

    /**
     * Build the store over @p cluster. Every node gets a client
     * initiator; the primary and replica nodes get serving targets.
     * The slot region must fit the chosen placement's memory.
     */
    ReplicatedKv(std::string name, EnzianCluster &cluster,
                 const Config &cfg);
    ~ReplicatedKv();

    ReplicatedKv(const ReplicatedKv &) = delete;
    ReplicatedKv &operator=(const ReplicatedKv &) = delete;

    /**
     * Derive a Config from a `service kind=kv` topology entry.
     * Recognized params: replicas=K (count, placed round-robin after
     * the primary), placement=..., slots=N, value_bytes=B,
     * timeout_us=T. @p topo supplies the node count.
     */
    static Config configFromService(const ServiceDesc &svc,
                                    const ClusterTopology &topo);

    /**
     * Write @p value (value_bytes long) under @p key from
     * @p client_node: fans out to the primary and every replica,
     * completes when the LAST store acknowledged.
     */
    void put(std::uint32_t client_node, std::uint64_t key,
             const std::uint8_t *value, Done done);

    /**
     * Read @p key's value into @p out (value_bytes long) from the
     * replica nearest to @p client_node.
     */
    void get(std::uint32_t client_node, std::uint64_t key,
             std::uint8_t *out, Done done);

    /** Store index (into stores) nearest to @p client_node. */
    std::uint32_t nearestStore(std::uint32_t client_node) const;

    /** Number of store copies (primary + replicas). */
    std::uint32_t storeCount() const
    {
        return static_cast<std::uint32_t>(stores_.size());
    }
    /** Node hosting store copy @p s. */
    std::uint32_t storeNode(std::uint32_t s) const
    {
        return stores_.at(s)->node;
    }
    /** The serving target of store copy @p s (fault injection). */
    net::RdmaTarget &target(std::uint32_t s)
    {
        return *stores_.at(s)->target;
    }
    /** The client initiator of @p node (fault injection). */
    net::RdmaInitiator &initiator(std::uint32_t node)
    {
        return *initiators_.at(node);
    }

    std::uint64_t puts() const { return puts_.value(); }
    std::uint64_t gets() const { return gets_.value(); }
    std::uint64_t replicaAcks() const { return replicaAcks_.value(); }
    std::uint64_t localReads() const { return localReads_.value(); }
    std::uint64_t remoteReads() const { return remoteReads_.value(); }

    const Config &config() const { return cfg_; }

  private:
    /** One store copy: its node, memory path and serving target. */
    struct Store
    {
        std::uint32_t node = 0;
        std::uint32_t port = 0;
        // pcie-host placement only:
        std::unique_ptr<pcie::PcieLink> pcieLink;
        std::unique_ptr<pcie::DmaEngine> pcieDma;
        std::unique_ptr<net::MemoryPath> path;
        std::unique_ptr<net::RdmaTarget> target;
    };

    Addr slotOffset(std::uint64_t key) const;
    std::unique_ptr<Store> makeStore(std::uint32_t node);

    EnzianCluster &cluster_;
    Config cfg_;
    StatGroup stats_;
    std::vector<std::unique_ptr<Store>> stores_;
    /** One client initiator per cluster node, indexed by node. */
    std::vector<std::unique_ptr<net::RdmaInitiator>> initiators_;
    /**
     * Ops may be issued/completed from any machine's timing domain;
     * the counters are commutative sums, so the exported values stay
     * bit-identical at any thread count — the mutex only keeps the
     * increments race-free.
     */
    mutable std::mutex mu_;
    Counter puts_;
    Counter gets_;
    Counter replicaAcks_;
    Counter localReads_;
    Counter remoteReads_;
};

} // namespace enzian::cluster

#endif // ENZIAN_CLUSTER_REPLICATED_KV_HH
