/**
 * @file
 * ECI protocol assertion checker.
 *
 * The paper's group "formally specified several layers of the
 * protocol, and generated formatters and assertion checkers from the
 * specifications" (section 4.1). This checker is the runtime
 * equivalent: it replays a captured trace and checks
 *
 *  - response matching: every PEMD/PACK/PNAK answers exactly one
 *    outstanding request with the same transaction id, and every
 *    snoop response answers an outstanding snoop;
 *  - permission soundness: the MOESI states the two nodes can be
 *    inferred to hold for a line are pairwise compatible (never two
 *    writers, never a writer beside a reader);
 *  - writeback legality: RWBD only from a node that was granted
 *    ownership.
 *
 * Violations are collected, not thrown, so tests can assert both
 * clean traces and deliberately corrupted ones.
 */

#ifndef ENZIAN_TRACE_CHECKER_HH
#define ENZIAN_TRACE_CHECKER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cache/moesi.hh"
#include "trace/eci_pcap.hh"

namespace enzian::trace {

/** Replay checker for ECI traces. */
class ProtocolChecker
{
  public:
    /**
     * Tolerate retransmission artifacts: duplicate request tids,
     * responses with no outstanding request (a retry raced its
     * original's reply), reused snoop tids, and duplicate snoop
     * responses are counted instead of flagged. Used when checking
     * traces captured under fault injection, where the recovery path
     * legitimately re-sends messages with the same tid.
     */
    void setRetryTolerant(bool on) { retryTolerant_ = on; }

    /** Duplicate requests/snoops tolerated (retry-tolerant mode). */
    std::uint64_t retransmits() const { return retransmits_; }
    /** Unmatched responses tolerated (retry-tolerant mode). */
    std::uint64_t duplicateResponses() const { return dupResponses_; }

    /** Feed one message (in trace order). */
    void observe(const TraceRecord &rec);

    /** Feed an entire trace. */
    void check(const EciTrace &trace);

    /** Require all requests to have been answered (end of trace). */
    void finalize();

    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    bool clean() const { return violations_.empty(); }

    /** Inferred state of @p node for @p line. */
    cache::MoesiState inferredState(mem::NodeId node, Addr line) const;

  private:
    struct LineState
    {
        cache::MoesiState st[2] = {cache::MoesiState::Invalid,
                                   cache::MoesiState::Invalid};
    };

    void fail(const TraceRecord &rec, const std::string &why);
    void setState(const TraceRecord &rec, mem::NodeId node, Addr line,
                  cache::MoesiState st);

    std::map<Addr, LineState> lines_;
    /** Outstanding coherent/I-O requests keyed by (requester, tid). */
    std::map<std::pair<int, std::uint32_t>, eci::Opcode> outstanding_;
    /** Outstanding snoops keyed by (home node, tid). */
    std::map<std::pair<int, std::uint32_t>, eci::Opcode> snoops_;
    std::vector<std::string> violations_;
    bool retryTolerant_ = false;
    std::uint64_t retransmits_ = 0;
    std::uint64_t dupResponses_ = 0;
};

} // namespace enzian::trace

#endif // ENZIAN_TRACE_CHECKER_HH
