/**
 * @file
 * ECI trace capture.
 *
 * The paper's group "took protocol traces of a 2-socket CPU system
 * booting for reference, and wrote a Wireshark plugin to decode the
 * coherence protocol's upper layers"; their serialization format
 * doubles as an interoperability standard between tools (section
 * 4.1, [43]). EciTrace captures timestamped messages from a link tap
 * into that format:
 *
 *   file  := header record*
 *   header:= magic u32 "ECIT" | version u32
 *   record:= tick u64 | length u32 | serialized EciMsg bytes
 *
 * All fields little-endian.
 */

#ifndef ENZIAN_TRACE_ECI_PCAP_HH
#define ENZIAN_TRACE_ECI_PCAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "eci/eci_link.hh"
#include "eci/eci_serialize.hh"

namespace enzian::trace {

/** Trace file magic ("ECIT") and version. */
constexpr std::uint32_t traceMagic = 0x45434954;
constexpr std::uint32_t traceVersion = 1;

/** One captured record. */
struct TraceRecord
{
    Tick when = 0;
    eci::EciMsg msg;
};

/** In-memory trace with (de)serialization to the capture format. */
class EciTrace
{
  public:
    /** Append a record. */
    void record(Tick when, const eci::EciMsg &msg);

    /** Attach this trace as a fabric tap (chains with other taps). */
    void attach(eci::EciFabric &fabric);

    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** Serialize the whole trace to the capture format. */
    std::vector<std::uint8_t> toBytes() const;

    /**
     * Parse a capture buffer.
     * @return false if the buffer is malformed (partial parses keep
     *         the records decoded so far).
     */
    bool fromBytes(const std::vector<std::uint8_t> &bytes);

    /** Write the capture to @p path; fatal() on I/O errors. */
    void save(const std::string &path) const;

    /** Load a capture from @p path; fatal() on I/O errors. */
    void load(const std::string &path);

  private:
    std::vector<TraceRecord> records_;
};

} // namespace enzian::trace

#endif // ENZIAN_TRACE_ECI_PCAP_HH
