/**
 * @file
 * ECI trace capture implementation.
 */

#include "trace/eci_pcap.hh"

#include <cstdio>

#include "base/logging.hh"

namespace enzian::trace {

namespace {

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

void
EciTrace::record(Tick when, const eci::EciMsg &msg)
{
    records_.push_back(TraceRecord{when, msg});
}

void
EciTrace::attach(eci::EciFabric &fabric)
{
    fabric.addTap([this](Tick when, const eci::EciMsg &msg) {
        record(when, msg);
    });
}

std::vector<std::uint8_t>
EciTrace::toBytes() const
{
    std::vector<std::uint8_t> out;
    put32(out, traceMagic);
    put32(out, traceVersion);
    for (const auto &r : records_) {
        put64(out, r.when);
        const auto body = eci::serialize(r.msg);
        put32(out, static_cast<std::uint32_t>(body.size()));
        out.insert(out.end(), body.begin(), body.end());
    }
    return out;
}

bool
EciTrace::fromBytes(const std::vector<std::uint8_t> &bytes)
{
    records_.clear();
    if (bytes.size() < 8 || get32(bytes.data()) != traceMagic ||
        get32(bytes.data() + 4) != traceVersion)
        return false;
    std::size_t off = 8;
    while (off + 12 <= bytes.size()) {
        const Tick when = get64(bytes.data() + off);
        const std::uint32_t len = get32(bytes.data() + off + 8);
        off += 12;
        if (off + len > bytes.size())
            return false;
        std::size_t consumed = 0;
        auto msg = eci::deserialize(bytes.data() + off, len, consumed);
        if (!msg || consumed != len)
            return false;
        records_.push_back(TraceRecord{when, *msg});
        off += len;
    }
    return off == bytes.size();
}

void
EciTrace::save(const std::string &path) const
{
    const auto bytes = toBytes();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        fatal("short write to '%s'", path.c_str());
}

void
EciTrace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '%s' for reading", path.c_str());
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    const std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        fatal("short read from '%s'", path.c_str());
    if (!fromBytes(bytes))
        fatal("'%s' is not a valid ECI trace", path.c_str());
}

} // namespace enzian::trace
