/**
 * @file
 * Runtime verification engine implementation.
 */

#include "trace/rtv.hh"

#include <cmath>

#include "base/logging.hh"

namespace enzian::trace {

AlwaysMonitor::AlwaysMonitor(std::string name, RtvPred p)
    : RtvMonitor(std::move(name)), pred_(std::move(p))
{
}

void
AlwaysMonitor::step(const RtvEvent &ev)
{
    if (!pred_(ev))
        fail(ev.when, format("event id=%u arg=%llx violates invariant",
                             ev.id,
                             static_cast<unsigned long long>(ev.arg)));
}

NeverMonitor::NeverMonitor(std::string name, RtvPred p)
    : RtvMonitor(std::move(name)), pred_(std::move(p))
{
}

void
NeverMonitor::step(const RtvEvent &ev)
{
    if (pred_(ev))
        fail(ev.when, format("forbidden event id=%u occurred", ev.id));
}

PrecedesMonitor::PrecedesMonitor(std::string name, RtvPred a, RtvPred b)
    : RtvMonitor(std::move(name)), a_(std::move(a)), b_(std::move(b))
{
}

void
PrecedesMonitor::step(const RtvEvent &ev)
{
    if (a_(ev))
        seenA_ = true;
    if (b_(ev) && !seenA_)
        fail(ev.when,
             format("event id=%u before its prerequisite", ev.id));
}

ResponseWithinMonitor::ResponseWithinMonitor(std::string name,
                                             RtvPred trigger,
                                             RtvPred response,
                                             Tick deadline)
    : RtvMonitor(std::move(name)), trigger_(std::move(trigger)),
      response_(std::move(response)), deadline_(deadline)
{
}

void
ResponseWithinMonitor::expire(Tick now)
{
    while (!outstanding_.empty() &&
           outstanding_.front() + deadline_ < now) {
        fail(outstanding_.front() + deadline_,
             "trigger not answered within its deadline");
        outstanding_.pop_front();
    }
}

void
ResponseWithinMonitor::step(const RtvEvent &ev)
{
    expire(ev.when);
    if (response_(ev) && !outstanding_.empty())
        outstanding_.pop_front(); // oldest obligation satisfied
    if (trigger_(ev))
        outstanding_.push_back(ev.when);
}

void
ResponseWithinMonitor::finish(Tick end)
{
    expire(end + deadline_ + 1);
    for (Tick t : outstanding_)
        fail(t, "trigger still unanswered at end of stream");
    outstanding_.clear();
}

RtvEngine::RtvEngine(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.clock_hz <= 0 || cfg_.events_per_cycle <= 0)
        fatal("RTV engine '%s': bad configuration",
              SimObject::name().c_str());
    retireInterval_ = static_cast<Tick>(std::llround(
        1e12 / (cfg_.clock_hz * cfg_.events_per_cycle)));
    stats().addCounter("events", &processed_);
    stats().addCounter("dropped", &dropped_);
}

RtvMonitor &
RtvEngine::addMonitor(std::unique_ptr<RtvMonitor> m)
{
    monitors_.push_back(std::move(m));
    return *monitors_.back();
}

void
RtvEngine::feed(const RtvEvent &ev)
{
    // Throughput model: the pipeline retires one event per interval;
    // a burst deeper than the input FIFO would drop events on real
    // hardware - report it rather than silently keeping up.
    const Tick start = std::max(ev.when, pipeFreeAt_);
    const Tick backlog =
        pipeFreeAt_ > ev.when ? pipeFreeAt_ - ev.when : 0;
    if (backlog / retireInterval_ > cfg_.fifo_depth) {
        dropped_.inc();
        return;
    }
    pipeFreeAt_ = start + retireInterval_;
    processed_.inc();
    for (auto &m : monitors_)
        m->step(ev);
}

void
RtvEngine::finish()
{
    for (auto &m : monitors_)
        m->finish(now());
}

std::vector<std::string>
RtvEngine::violations() const
{
    std::vector<std::string> out;
    for (const auto &m : monitors_)
        out.insert(out.end(), m->violations().begin(),
                   m->violations().end());
    return out;
}

bool
RtvEngine::clean() const
{
    for (const auto &m : monitors_)
        if (!m->clean())
            return false;
    return true;
}

void
RtvEngine::attachEciTap(eci::EciFabric &fabric)
{
    fabric.addTap([this](Tick when, const eci::EciMsg &msg) {
        RtvEvent ev;
        ev.when = when;
        ev.id = static_cast<std::uint32_t>(msg.op);
        ev.arg = msg.addr;
        feed(ev);
    });
}

} // namespace enzian::trace
