/**
 * @file
 * Protocol checker implementation.
 */

#include "trace/checker.hh"

#include "base/logging.hh"
#include "trace/decoder.hh"

namespace enzian::trace {

using cache::MoesiState;
using eci::Opcode;

void
ProtocolChecker::fail(const TraceRecord &rec, const std::string &why)
{
    violations_.push_back(why + " [" + decodeLine(rec) + "]");
}

cache::MoesiState
ProtocolChecker::inferredState(mem::NodeId node, Addr line) const
{
    auto it = lines_.find(cache::lineAlign(line));
    if (it == lines_.end())
        return MoesiState::Invalid;
    return it->second.st[static_cast<std::size_t>(node)];
}

void
ProtocolChecker::setState(const TraceRecord &rec, mem::NodeId node,
                          Addr line, MoesiState st)
{
    LineState &ls = lines_[cache::lineAlign(line)];
    ls.st[static_cast<std::size_t>(node)] = st;
    if (!cache::compatible(ls.st[0], ls.st[1])) {
        fail(rec, format("incompatible states %s/%s for line %llx",
                         cache::toString(ls.st[0]),
                         cache::toString(ls.st[1]),
                         static_cast<unsigned long long>(line)));
    }
}

void
ProtocolChecker::observe(const TraceRecord &rec)
{
    const eci::EciMsg &m = rec.msg;
    const int src = static_cast<int>(m.src);
    const int dst = static_cast<int>(m.dst);
    const Addr line = cache::lineAlign(m.addr);

    switch (m.op) {
      // ---- requests -------------------------------------------------
      case Opcode::RLDD:
      case Opcode::RLDX:
      case Opcode::RLDI:
      case Opcode::RSTT:
      case Opcode::RUPG:
      case Opcode::RUPD:
      case Opcode::RWBD:
      case Opcode::REVC:
      case Opcode::IOBLD:
      case Opcode::IOBST: {
        auto key = std::make_pair(src, m.tid);
        if (outstanding_.count(key)) {
            if (retryTolerant_) {
                // A retransmission of an in-flight request: do not
                // re-apply its state transitions (an RWBD already
                // moved the line to Invalid; replaying the dirty-state
                // check would false-fail).
                ++retransmits_;
                return;
            }
            fail(rec, format("tid %u reused while outstanding", m.tid));
        }
        outstanding_[key] = m.op;
        if (m.op == Opcode::RWBD) {
            const MoesiState s = inferredState(m.src, line);
            if (!cache::isDirty(s) && s != MoesiState::Exclusive)
                fail(rec, format("writeback from state %s",
                                 cache::toString(s)));
            setState(rec, m.src, line, MoesiState::Invalid);
        }
        if (m.op == Opcode::RSTT) {
            // A full-line store invalidates the home's copy.
            setState(rec, m.dst, line, MoesiState::Invalid);
        }
        if (m.op == Opcode::REVC)
            setState(rec, m.src, line, MoesiState::Invalid);
        return;
      }

      // ---- responses ------------------------------------------------
      case Opcode::PEMD:
      case Opcode::PACK:
      case Opcode::PNAK:
      case Opcode::IOBACK: {
        auto key = std::make_pair(dst, m.tid);
        auto it = outstanding_.find(key);
        if (it == outstanding_.end()) {
            if (retryTolerant_) {
                // A replayed response whose original already matched.
                ++dupResponses_;
                return;
            }
            fail(rec, format("response without outstanding request"));
            return;
        }
        const Opcode req = it->second;
        outstanding_.erase(it);
        if (m.op == Opcode::PEMD) {
            if (req != Opcode::RLDD && req != Opcode::RLDX &&
                req != Opcode::RLDI)
                fail(rec, "PEMD answering a non-read request");
            if (req != Opcode::RLDI) {
                setState(rec, m.dst, line,
                         m.grant == eci::Grant::Exclusive
                             ? MoesiState::Exclusive
                             : MoesiState::Shared);
                if (m.grant == eci::Grant::Exclusive) {
                    // Exclusivity implies the home gave up its copy.
                    setState(rec, m.src, line, MoesiState::Invalid);
                }
            }
        }
        if (m.op == Opcode::PACK &&
            (req == Opcode::RUPG || req == Opcode::RUPD)) {
            // Update protocols answer with Grant::Owned when other
            // copies survive the write.
            setState(rec, m.dst, line,
                     m.grant == eci::Grant::Owned ? MoesiState::Owned
                                                  : MoesiState::Modified);
        }
        return;
      }

      // ---- snoops ---------------------------------------------------
      case Opcode::SINV:
      case Opcode::SFWD: {
        auto key = std::make_pair(src, m.tid);
        if (snoops_.count(key)) {
            if (retryTolerant_) {
                ++retransmits_;
                return;
            }
            fail(rec, format("snoop tid %u reused", m.tid));
        }
        snoops_[key] = m.op;
        return;
      }
      case Opcode::SACKI:
      case Opcode::SACKS: {
        auto key = std::make_pair(dst, m.tid);
        auto it = snoops_.find(key);
        if (it == snoops_.end()) {
            if (retryTolerant_) {
                ++dupResponses_;
                return;
            }
            fail(rec, "snoop response without outstanding snoop");
            return;
        }
        snoops_.erase(it);
        setState(rec, m.src, line,
                 m.op == Opcode::SACKI ? MoesiState::Invalid
                                       : MoesiState::Shared);
        return;
      }

      case Opcode::IPI:
        return;
    }
    fail(rec, "unknown opcode");
}

void
ProtocolChecker::check(const EciTrace &trace)
{
    for (const auto &rec : trace.records())
        observe(rec);
}

void
ProtocolChecker::finalize()
{
    for (const auto &[key, op] : outstanding_) {
        violations_.push_back(
            format("request %s tid=%u from node %d never answered",
                   eci::toString(op), key.second, key.first));
    }
    for (const auto &[key, op] : snoops_) {
        violations_.push_back(
            format("snoop %s tid=%u from node %d never answered",
                   eci::toString(op), key.second, key.first));
    }
}

} // namespace enzian::trace
