/**
 * @file
 * Hardware runtime verification (paper section 6).
 *
 * "...we perform runtime verification of a combined hardware/software
 * system at scale with zero overhead, by using the FPGA to process
 * events from the program trace units on the ThunderX-1 cores, and
 * compiling temporal logic assertions about the behavior of the
 * hardware, OS, and application software into reconfigurable logic."
 *
 * RtvEngine consumes a stream of (tick, event-id, argument) records -
 * from the CPU's trace units, from an ECI link tap, or from any other
 * instrumented component - and evaluates a set of compiled temporal
 * monitors online:
 *
 *   Always(p)               every event satisfies p
 *   Never(p)                no event satisfies p
 *   Precedes(a, b)          no b before the first a
 *   ResponseWithin(a, b, d) every a is followed by a b within d ticks
 *
 * Monitors are pure state machines (exactly what synthesizes to
 * logic); the engine also models its fabric throughput so the
 * "zero overhead" claim is checkable: verification keeps up as long
 * as the event rate stays below the fabric's events-per-cycle
 * capacity, and the engine reports when it would have dropped events.
 */

#ifndef ENZIAN_TRACE_RTV_HH
#define ENZIAN_TRACE_RTV_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "eci/eci_link.hh"
#include "sim/sim_object.hh"

namespace enzian::trace {

/** One trace event fed to the engine. */
struct RtvEvent
{
    Tick when = 0;
    std::uint32_t id = 0;
    std::uint64_t arg = 0;
};

/** Predicate over events (compiled comparator in the fabric). */
using RtvPred = std::function<bool(const RtvEvent &)>;

/** A compiled temporal monitor. */
class RtvMonitor
{
  public:
    explicit RtvMonitor(std::string name) : name_(std::move(name)) {}
    virtual ~RtvMonitor() = default;

    /** Process one event; record violations internally. */
    virtual void step(const RtvEvent &ev) = 0;

    /** End-of-stream check (liveness-style obligations). */
    virtual void finish(Tick /* end */) {}

    const std::string &name() const { return name_; }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    bool clean() const { return violations_.empty(); }

  protected:
    void
    fail(Tick when, const std::string &why)
    {
        violations_.push_back(
            format("[%s @ %.3f us] %s", name_.c_str(),
                   units::toMicros(when), why.c_str()));
    }

  private:
    std::string name_;
    std::vector<std::string> violations_;
};

/** Always(p): every event satisfies p. */
class AlwaysMonitor : public RtvMonitor
{
  public:
    AlwaysMonitor(std::string name, RtvPred p);
    void step(const RtvEvent &ev) override;

  private:
    RtvPred pred_;
};

/** Never(p): no event satisfies p. */
class NeverMonitor : public RtvMonitor
{
  public:
    NeverMonitor(std::string name, RtvPred p);
    void step(const RtvEvent &ev) override;

  private:
    RtvPred pred_;
};

/** Precedes(a, b): no b-event before the first a-event. */
class PrecedesMonitor : public RtvMonitor
{
  public:
    PrecedesMonitor(std::string name, RtvPred a, RtvPred b);
    void step(const RtvEvent &ev) override;

  private:
    RtvPred a_;
    RtvPred b_;
    bool seenA_ = false;
};

/** ResponseWithin(a, b, d): every a followed by b within d ticks. */
class ResponseWithinMonitor : public RtvMonitor
{
  public:
    ResponseWithinMonitor(std::string name, RtvPred trigger,
                          RtvPred response, Tick deadline);
    void step(const RtvEvent &ev) override;
    void finish(Tick end) override;

  private:
    void expire(Tick now);

    RtvPred trigger_;
    RtvPred response_;
    Tick deadline_;
    std::deque<Tick> outstanding_; // trigger ticks awaiting response
};

/** The fabric verification engine. */
class RtvEngine : public SimObject
{
  public:
    /** Engine configuration. */
    struct Config
    {
        /** Fabric clock (Hz). */
        double clock_hz = 250e6;
        /** Events the compiled pipeline retires per cycle. */
        double events_per_cycle = 1.0;
        /** Input FIFO depth before events would be dropped. */
        std::uint64_t fifo_depth = 4096;
    };

    RtvEngine(std::string name, EventQueue &eq, const Config &cfg);

    /** Install a monitor; the engine owns it. */
    RtvMonitor &addMonitor(std::unique_ptr<RtvMonitor> m);

    /** Feed one event (functionally exact, throughput-modelled). */
    void feed(const RtvEvent &ev);

    /** Run end-of-stream obligations. */
    void finish();

    /** Collected violations across all monitors. */
    std::vector<std::string> violations() const;
    bool clean() const;

    /** Events that arrived faster than the pipeline could retire. */
    std::uint64_t eventsDropped() const { return dropped_.value(); }
    std::uint64_t eventsProcessed() const { return processed_.value(); }

    /**
     * Tap an ECI fabric: every protocol message becomes an event with
     * id = opcode and arg = line address - the "detailed cache
     * tracing" instrument of paper section 3.
     */
    void attachEciTap(eci::EciFabric &fabric);

  private:
    Config cfg_;
    std::vector<std::unique_ptr<RtvMonitor>> monitors_;
    Tick pipeFreeAt_ = 0;
    Tick retireInterval_;
    Counter processed_;
    Counter dropped_;
};

} // namespace enzian::trace

#endif // ENZIAN_TRACE_RTV_HH
