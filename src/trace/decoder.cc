/**
 * @file
 * Trace decoder implementation.
 */

#include "trace/decoder.hh"

#include "base/logging.hh"

namespace enzian::trace {

std::string
decodeLine(const TraceRecord &rec)
{
    const eci::EciMsg &m = rec.msg;
    std::string line = format(
        "%12.3f us  vc%u %-5s %s->%s tid=%-6u addr=%012llx",
        units::toMicros(rec.when), static_cast<unsigned>(m.vc()),
        eci::toString(m.op), mem::toString(m.src), mem::toString(m.dst),
        m.tid, static_cast<unsigned long long>(m.addr));
    if (m.op == eci::Opcode::PEMD) {
        const char *g = m.grant == eci::Grant::Exclusive ? "E"
                        : m.grant == eci::Grant::Owned   ? "O"
                                                         : "S";
        line += format(" grant=%s", g);
    }
    if (m.op == eci::Opcode::IOBLD || m.op == eci::Opcode::IOBST ||
        m.op == eci::Opcode::IOBACK) {
        line += format(" len=%u data=%llx", m.ioLen,
                       static_cast<unsigned long long>(m.ioData));
    }
    if (m.op == eci::Opcode::IPI)
        line += format(" vector=%u", m.ioLen);
    return line;
}

void
dumpText(const EciTrace &trace, std::ostream &os)
{
    for (const auto &rec : trace.records())
        os << decodeLine(rec) << '\n';
}

TraceSummary
summarize(const EciTrace &trace)
{
    TraceSummary s;
    bool first = true;
    for (const auto &rec : trace.records()) {
        ++s.messages;
        s.bytes += rec.msg.wireBytes();
        ++s.byOpcode[eci::toString(rec.msg.op)];
        ++s.byVc[static_cast<std::uint8_t>(rec.msg.vc())];
        if (first) {
            s.firstTick = rec.when;
            first = false;
        }
        s.lastTick = rec.when;
    }
    return s;
}

void
dumpSummary(const TraceSummary &s, std::ostream &os)
{
    os << "messages: " << s.messages << "\nbytes: " << s.bytes
       << "\nspan_us: "
       << units::toMicros(s.lastTick - s.firstTick) << '\n';
    for (const auto &[op, n] : s.byOpcode)
        os << "  " << op << ": " << n << '\n';
}

void
toChromeTrace(const EciTrace &trace, obs::SpanTracer &tracer)
{
    std::uint64_t bytes = 0;
    for (const auto &rec : trace.records()) {
        const std::string track =
            std::string("eci.vc.") + eci::toString(rec.msg.vc());
        tracer.instant(track, eci::toString(rec.msg.op), rec.when);
        bytes += rec.msg.wireBytes();
        tracer.counter("eci.wire", "bytes", rec.when,
                       static_cast<double>(bytes));
    }
}

} // namespace enzian::trace
