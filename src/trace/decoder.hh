/**
 * @file
 * Trace decoder: the Wireshark-dissector equivalent.
 *
 * Renders captured ECI traces as human-readable text and computes
 * per-VC / per-opcode summaries - the analysis side of the paper's
 * trace tooling [43].
 */

#ifndef ENZIAN_TRACE_DECODER_HH
#define ENZIAN_TRACE_DECODER_HH

#include <map>
#include <ostream>
#include <string>

#include "obs/span_tracer.hh"
#include "trace/eci_pcap.hh"

namespace enzian::trace {

/** Aggregate statistics over a trace. */
struct TraceSummary
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::map<std::string, std::uint64_t> byOpcode;
    std::map<std::uint8_t, std::uint64_t> byVc;
    Tick firstTick = 0;
    Tick lastTick = 0;
};

/** Decode one record to a display line. */
std::string decodeLine(const TraceRecord &rec);

/** Write the whole trace, one line per message. */
void dumpText(const EciTrace &trace, std::ostream &os);

/** Summarize a trace. */
TraceSummary summarize(const EciTrace &trace);

/** Write a summary table. */
void dumpSummary(const TraceSummary &s, std::ostream &os);

/**
 * Render a capture into @p tracer as Chrome-trace events: one instant
 * per message on a per-VC track (named after the opcode, so Perfetto
 * shows the protocol conversation per virtual circuit) plus a
 * cumulative wire-bytes counter track. Pair with
 * SpanTracer::writeChromeJson() to get a loadable trace file.
 */
void toChromeTrace(const EciTrace &trace, obs::SpanTracer &tracer);

} // namespace enzian::trace

#endif // ENZIAN_TRACE_DECODER_HH
