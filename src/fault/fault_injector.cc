/**
 * @file
 * Fault injector implementation.
 */

#include "fault/fault_injector.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "sim/domain_scheduler.hh"

namespace enzian::fault {

namespace {

/**
 * Subsystem stream ordinals; mixed into the plan seed with a
 * golden-ratio stride so per-subsystem streams are decorrelated.
 */
constexpr std::uint64_t streamStride = 0x9e3779b97f4a7c15ull;

std::uint64_t
streamSeed(std::uint64_t seed, std::uint64_t ordinal)
{
    return seed ^ (ordinal * streamStride);
}

/** Initial retry timeouts; generous against retrain-length stalls. */
constexpr double eciRetryUs = 30.0;
constexpr double netRtoUs = 150.0;
constexpr double rdmaRetryUs = 50.0;

/** A small pool of glitchable rails per domain. */
const char *const cpuRails[] = {"VDD_CORE", "VDD_09", "P1V8_CPU",
                                "VDD_DDR_C01"};
const char *const fpgaRails[] = {"VCCINT", "VCCAUX", "MGTAVCC",
                                 "VDD_DDR_F"};

} // namespace

FaultInjector::FaultInjector(std::string name, EventQueue &eq,
                             const FaultPlan &plan)
    : SimObject(std::move(name), eq), plan_(plan),
      eciRng_(streamSeed(plan.seed, 1)),
      dramRng_(streamSeed(plan.seed, 2)),
      netRng_(streamSeed(plan.seed, 3)),
      rdmaRng_(streamSeed(plan.seed, 4)),
      bmcRng_(streamSeed(plan.seed, 5))
{
    for (std::size_t k = 0; k < faultKindCount; ++k) {
        stats().addCounter(
            std::string("injected_") +
                toString(static_cast<FaultKind>(k)),
            &injected_[k]);
    }
}

bool
FaultInjector::eciLossy() const
{
    return plan_.hasKind(FaultKind::EciMsgDrop) ||
           plan_.hasKind(FaultKind::EciMsgCorrupt) ||
           plan_.hasKind(FaultKind::EciLinkFlap);
}

void
FaultInjector::attachEci(eci::EciFabric &fabric,
                         eci::HomeAgent &cpu_home,
                         eci::HomeAgent &fpga_home,
                         eci::RemoteAgent &cpu_remote,
                         eci::RemoteAgent &fpga_remote)
{
    fabric_ = &fabric;
    homes_[0] = &cpu_home;
    homes_[1] = &fpga_home;
    remotes_[0] = &cpu_remote;
    remotes_[1] = &fpga_remote;

    for (const auto &s : plan_.faults) {
        if (s.kind == FaultKind::EciMsgDrop ||
            s.kind == FaultKind::EciMsgCorrupt)
            eciMsgSpecs_.push_back(s);
    }
    if (!eciMsgSpecs_.empty()) {
        for (std::uint32_t i = 0; i < fabric.linkCount(); ++i) {
            fabric.link(i).setFaultFilter(
                [this](Tick t, const eci::EciMsg &m) {
                    return eciFilter(t, m);
                });
        }
    }
    if (eciLossy()) {
        // Loss anywhere on the fabric needs the full recovery stack:
        // requester same-tid retries, home-side dedup + replay, and
        // home snoop retries.
        cpu_remote.enableRecovery(eciRetryUs, 24);
        fpga_remote.enableRecovery(eciRetryUs, 24);
        cpu_home.enableRecovery(eciRetryUs, 24);
        fpga_home.enableRecovery(eciRetryUs, 24);
    }
}

eci::EciLink::FaultAction
FaultInjector::eciFilter(Tick t, const eci::EciMsg &msg)
{
    // IPIs have no retry path, so loss injection exempts them.
    if (msg.op == eci::Opcode::IPI)
        return eci::EciLink::FaultAction::Deliver;
    // In domain mode the filter runs concurrently from both domains;
    // each draws only from its own direction's stream and stages its
    // counts for the barrier fold.
    const auto dir = static_cast<std::size_t>(msg.src);
    Rng &rng = domainMode() ? eciDirRng_[dir] : eciRng_;
    for (const auto &s : eciMsgSpecs_) {
        if (t < s.at || (s.until != 0 && t >= s.until))
            continue;
        if (rng.chance(s.prob)) {
            if (domainMode())
                ++stagedCounts_[dir][static_cast<std::size_t>(s.kind)];
            else
                count(s.kind);
            return s.kind == FaultKind::EciMsgDrop
                       ? eci::EciLink::FaultAction::Drop
                       : eci::EciLink::FaultAction::Corrupt;
        }
    }
    return eci::EciLink::FaultAction::Deliver;
}

void
FaultInjector::bindDomains(sim::DomainScheduler &sched)
{
    ENZIAN_ASSERT(!armed_, "bindDomains() must precede arm()");
    stagedCounts_.arm();
    eciDirRng_[0] = Rng(streamSeed(plan_.seed, 16));
    eciDirRng_[1] = Rng(streamSeed(plan_.seed, 17));
    sched.addBarrierTask([this] { foldDomainCounts(); });
}

void
FaultInjector::foldDomainCounts()
{
    // Fixed fold order (direction 0 then 1) so the shared counters
    // are identical for every thread count.
    stagedCounts_.fold([this](std::array<std::uint64_t,
                                         faultKindCount> &dir) {
        for (std::size_t k = 0; k < faultKindCount; ++k) {
            if (dir[k] != 0) {
                injected_[k].inc(dir[k]);
                dir[k] = 0;
            }
        }
    });
}

void
FaultInjector::attachDram(mem::DramSystem &cpu_dram,
                          mem::DramSystem &fpga_dram)
{
    drams_[0] = &cpu_dram;
    drams_[1] = &fpga_dram;
}

void
FaultInjector::applyDramWindows(mem::DramSystem *dram, std::size_t node)
{
    const auto &cfg = eccNow_[node];
    const bool active =
        cfg.correctable_prob > 0.0 || cfg.uncorrectable_prob > 0.0;
    for (std::uint32_t i = 0; i < dram->channelCount(); ++i)
        dram->channel(i).armEcc(active ? &dramRng_ : nullptr, cfg);
}

void
FaultInjector::attachNet(net::TcpStack &a, net::TcpStack &b)
{
    tcp_[0] = &a;
    tcp_[1] = &b;
    if (plan_.hasKind(FaultKind::NetLoss) ||
        plan_.hasKind(FaultKind::NetReorder)) {
        // The sequenced wire format must be on before any flow opens.
        a.enableReliable(netRtoUs);
        b.enableReliable(netRtoUs);
    }
}

void
FaultInjector::applyNetWindows()
{
    Rng *rng =
        (netDropNow_ > 0.0 || netReorderNow_ > 0.0) ? &netRng_ : nullptr;
    for (auto *stack : tcp_) {
        stack->setLossFaults(rng, netDropNow_, netReorderNow_,
                             netReorderDelayUs_);
    }
}

void
FaultInjector::attachRdma(net::RdmaInitiator &ini, net::RdmaTarget &tgt,
                          bool abandon_after_retries)
{
    rdmaIni_ = &ini;
    rdmaTgt_ = &tgt;
    if (plan_.hasKind(FaultKind::RdmaDrop))
        ini.enableRecovery(rdmaRetryUs, 16, abandon_after_retries);
}

void
FaultInjector::applyRdmaWindows()
{
    Rng *rng = rdmaDropNow_ > 0.0 ? &rdmaRng_ : nullptr;
    rdmaIni_->setFaults(rng, rdmaDropNow_);
    rdmaTgt_->setFaults(rng, rdmaDropNow_);
}

void
FaultInjector::attachBmc(bmc::Bmc &bmc)
{
    bmc_ = &bmc;
}

void
FaultInjector::arm()
{
    ENZIAN_ASSERT(!armed_, "FaultInjector armed twice");
    armed_ = true;
    if (domainMode()) {
        // Every other kind mutates state shared across domains (DRAM
        // RNG, link retrain clocks, BMC sequencing) from timeline
        // events on one domain's queue — not safe in parallel runs.
        for (const auto &s : plan_.faults) {
            if (!kindDomainSafe(s.kind)) {
                fatal("fault kind '%s' cannot be armed in parallel "
                      "domain mode (only ECI msg drop/corrupt can)",
                      toString(s.kind));
            }
        }
    }
    Tick bmcAt = 0;
    bool haveGlitch = false;
    for (const auto &s : plan_.faults) {
        switch (s.kind) {
          case FaultKind::EciMsgDrop:
          case FaultKind::EciMsgCorrupt:
            break; // handled by the per-send filter
          case FaultKind::EciLaneFail: {
            if (!fabric_)
                break;
            auto &link =
                fabric_->link(s.target % fabric_->linkCount());
            const auto n = static_cast<std::uint32_t>(s.param);
            const std::uint32_t before = link.lanes();
            eventq().schedule(
                s.at,
                [this, &link, n, kind = s.kind]() {
                    count(kind);
                    link.failLanes(n);
                },
                "fault-lane-fail");
            if (s.until > s.at) {
                eventq().schedule(
                    s.until,
                    [&link, before]() { link.restoreLanes(before); },
                    "fault-lane-restore");
            }
            break;
          }
          case FaultKind::EciLinkFlap: {
            if (!fabric_)
                break;
            auto &link =
                fabric_->link(s.target % fabric_->linkCount());
            const Tick down = units::us(std::max(s.param, 0.5));
            eventq().schedule(
                s.at,
                [this, &link, down, kind = s.kind]() {
                    count(kind);
                    link.flap(down);
                },
                "fault-link-flap");
            break;
          }
          case FaultKind::DramEccCorrectable:
          case FaultKind::DramEccUncorrectable: {
            const std::size_t node = s.target % 2;
            if (!drams_[node])
                break;
            const bool corr = s.kind == FaultKind::DramEccCorrectable;
            eventq().schedule(
                s.at,
                [this, node, corr, p = s.prob, kind = s.kind]() {
                    count(kind);
                    auto &cfg = eccNow_[node];
                    (corr ? cfg.correctable_prob
                          : cfg.uncorrectable_prob) += p;
                    applyDramWindows(drams_[node], node);
                },
                "fault-ecc-on");
            if (s.until > s.at) {
                eventq().schedule(
                    s.until,
                    [this, node, corr, p = s.prob]() {
                        auto &cfg = eccNow_[node];
                        auto &slot = corr ? cfg.correctable_prob
                                          : cfg.uncorrectable_prob;
                        slot = std::max(0.0, slot - p);
                        applyDramWindows(drams_[node], node);
                    },
                    "fault-ecc-off");
            }
            break;
          }
          case FaultKind::NetLoss:
          case FaultKind::NetReorder: {
            if (!tcp_[0])
                break;
            const bool loss = s.kind == FaultKind::NetLoss;
            eventq().schedule(
                s.at,
                [this, loss, p = s.prob, d = s.param,
                 kind = s.kind]() {
                    count(kind);
                    if (loss) {
                        netDropNow_ += p;
                    } else {
                        netReorderNow_ += p;
                        if (d > 0.0)
                            netReorderDelayUs_ = d;
                    }
                    applyNetWindows();
                },
                "fault-net-on");
            if (s.until > s.at) {
                eventq().schedule(
                    s.until,
                    [this, loss, p = s.prob]() {
                        auto &slot =
                            loss ? netDropNow_ : netReorderNow_;
                        slot = std::max(0.0, slot - p);
                        applyNetWindows();
                    },
                    "fault-net-off");
            }
            break;
          }
          case FaultKind::RdmaDrop: {
            if (!rdmaIni_)
                break;
            eventq().schedule(
                s.at,
                [this, p = s.prob, kind = s.kind]() {
                    count(kind);
                    rdmaDropNow_ += p;
                    applyRdmaWindows();
                },
                "fault-rdma-on");
            if (s.until > s.at) {
                eventq().schedule(
                    s.until,
                    [this, p = s.prob]() {
                        rdmaDropNow_ = std::max(0.0, rdmaDropNow_ - p);
                        applyRdmaWindows();
                    },
                    "fault-rdma-off");
            }
            break;
          }
          case FaultKind::BmcRailGlitch: {
            if (!bmc_)
                break;
            const bool cpu = s.target % 2 == 0;
            const char *rail = cpu ? cpuRails[bmcRng_.below(4)]
                                   : fpgaRails[bmcRng_.below(4)];
            glitchRails_.emplace_back(rail);
            haveGlitch = true;
            bmcAt = std::max(bmcAt, s.at);
            break;
          }
        }
    }
    if (haveGlitch)
        scheduleBmcPowerUp(bmcAt);
}

void
FaultInjector::scheduleBmcPowerUp(Tick at)
{
    // Rail glitches need a powered board: sequence standby, then both
    // domains, then run the glitches strictly one after another so
    // power cycles of a domain never overlap.
    eventq().schedule(
        std::max(at, now() + units::us(1.0)),
        [this]() {
            const Tick standby = bmc_->domainUp(bmc::Domain::Standby)
                                     ? now()
                                     : bmc_->commonPowerUp();
            eventq().schedule(
                standby + units::us(1.0),
                [this]() {
                    Tick ready = now();
                    if (!bmc_->domainUp(bmc::Domain::Cpu))
                        ready = std::max(ready, bmc_->cpuPowerUp());
                    if (!bmc_->domainUp(bmc::Domain::Fpga))
                        ready = std::max(ready, bmc_->fpgaPowerUp());
                    eventq().schedule(
                        ready + units::us(1.0),
                        [this]() { runNextGlitch(0); },
                        "fault-bmc-glitches");
                },
                "fault-bmc-domains-up");
        },
        "fault-bmc-power-up");
}

void
FaultInjector::runNextGlitch(std::size_t i)
{
    if (i >= glitchRails_.size())
        return;
    count(FaultKind::BmcRailGlitch);
    const Tick settled = bmc_->injectRailGlitch(glitchRails_[i]);
    eventq().schedule(
        settled + units::us(10.0),
        [this, i]() { runNextGlitch(i + 1); }, "fault-bmc-next-glitch");
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : injected_)
        total += c.value();
    return total;
}

std::string
FaultInjector::report() const
{
    std::ostringstream os;
    os << "fault plan seed " << plan_.seed << ", "
       << plan_.faults.size() << " spec(s)\n";
    for (std::size_t k = 0; k < faultKindCount; ++k) {
        if (injected_[k].value() == 0)
            continue;
        os << "  " << toString(static_cast<FaultKind>(k)) << ": "
           << injected_[k].value() << " injected\n";
    }
    if (fabric_) {
        std::uint64_t dropped = 0, corrupted = 0, retrains = 0,
                      lost = 0;
        for (std::uint32_t i = 0; i < fabric_->linkCount(); ++i) {
            auto &l = fabric_->link(i);
            dropped += l.messagesDropped();
            corrupted += l.messagesCorrupted();
            retrains += l.retrains();
            lost += l.creditsReconciled();
        }
        os << "  eci: " << dropped << " dropped, " << corrupted
           << " corrupted, " << retrains << " retrain(s), " << lost
           << " lost in flaps\n";
        os << "  eci recovery: "
           << remotes_[0]->retriesSent() + remotes_[1]->retriesSent()
           << " request retries, "
           << homes_[0]->responsesReplayed() +
                  homes_[1]->responsesReplayed()
           << " replays, "
           << homes_[0]->snoopRetries() + homes_[1]->snoopRetries()
           << " snoop retries\n";
    }
    if (drams_[0]) {
        std::uint64_t corr = 0, uncorr = 0;
        for (auto *d : drams_) {
            for (std::uint32_t i = 0; i < d->channelCount(); ++i) {
                corr += d->channel(i).eccCorrectable();
                uncorr += d->channel(i).eccUncorrectable();
            }
        }
        os << "  dram: " << corr << " correctable, " << uncorr
           << " uncorrectable (all scrubbed/retried)\n";
    }
    if (tcp_[0]) {
        os << "  tcp: "
           << tcp_[0]->segmentsDropped() + tcp_[1]->segmentsDropped()
           << " dropped, "
           << tcp_[0]->segmentsReordered() +
                  tcp_[1]->segmentsReordered()
           << " reordered, "
           << tcp_[0]->retransmits() + tcp_[1]->retransmits()
           << " retransmits\n";
    }
    if (rdmaIni_) {
        os << "  rdma: " << rdmaIni_->requestsDropped()
           << " requests dropped, " << rdmaTgt_->responsesDropped()
           << " responses dropped, " << rdmaIni_->retriesSent()
           << " retries\n";
    }
    if (bmc_) {
        os << "  bmc: " << bmc_->railGlitches() << " glitch(es), "
           << bmc_->railRecoveries() << " recovered\n";
    }
    return os.str();
}

} // namespace enzian::fault
