/**
 * @file
 * Reusable chaos scenario: a small Enzian machine under a FaultPlan.
 *
 * Drives randomized coherent traffic (cached remote writes, home-local
 * writes that force invalidations, uncached remote stores) plus
 * optional TCP and RDMA side traffic against a machine with a
 * FaultInjector armed and the coherence invariant monitor attached.
 * After the event queue drains, every acked write is read back through
 * the line's home agent and compared byte-for-byte, the caches are
 * flushed, and the monitor's machine-wide invariants are checked.
 *
 * Shared by the chaos soak test (tests/test_fault_chaos.cc) and the
 * enzchaos CLI.
 */

#ifndef ENZIAN_FAULT_CHAOS_SCENARIO_HH
#define ENZIAN_FAULT_CHAOS_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"

namespace enzian::fault {

/** Scenario knobs. */
struct ChaosConfig
{
    /** Traffic stream seed (independent of the plan seed). */
    std::uint64_t seed = 1;
    /** Coherent line operations to issue. */
    std::uint32_t ops = 400;
    /** Lines per pool (three pools: cached, snooped, uncached). */
    std::uint32_t lines = 32;
    /** Run TCP side traffic (with loss faults if planned). */
    bool with_net = true;
    /** Run RDMA side traffic (with drop faults if planned). */
    bool with_rdma = true;
    /** Attach the BMC for rail glitches (slow: ~100 ms sim time). */
    bool with_bmc = false;
    /**
     * Coherence protocol the machine under chaos runs (any name from
     * eci::proto::allProtocols()); unknown names are fatal.
     */
    std::string protocol = "moesi";
};

/** Scenario outcome. */
struct ChaosResult
{
    bool ok = false;
    /** Invariant violations + data-integrity mismatches. */
    std::vector<std::string> violations;
    std::uint64_t opsIssued = 0;
    std::uint64_t opsCompleted = 0;
    std::uint64_t faultsInjected = 0;
    /** The injector's per-kind summary. */
    std::string report;
    /**
     * Full obs::Registry JSON captured while the machine was alive;
     * the determinism regression compares two runs byte-for-byte.
     */
    std::string registryJson;
};

/** Run one chaos scenario to completion. */
ChaosResult runChaos(const FaultPlan &plan, const ChaosConfig &cfg);

/**
 * True when every fault in @p plan injects without touching state
 * shared across timing domains (ECI message drop/corrupt only);
 * required by runChaosParallel().
 */
bool planParallelSafe(const FaultPlan &plan);

/**
 * Run the chaos scenario on a machine sharded into parallel timing
 * domains (threads >= 1; 1 runs the same domain semantics
 * sequentially). FPGA-side traffic crosses into the FPGA domain
 * through the scheduler's mailboxes, and side traffic (net/rdma/bmc)
 * is forced off because it drives FPGA DRAM from the CPU domain. The
 * result — including the captured registry JSON — is bit-identical
 * for every thread count.
 */
ChaosResult runChaosParallel(const FaultPlan &plan,
                             const ChaosConfig &cfg,
                             std::uint32_t threads);

} // namespace enzian::fault

#endif // ENZIAN_FAULT_CHAOS_SCENARIO_HH
