/**
 * @file
 * Fault plan parsing, rendering, and seeded random generation.
 */

#include "fault/fault_plan.hh"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

#include "base/rng.hh"

namespace enzian::fault {

namespace {

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr std::array<KindName, faultKindCount> kindNames = {{
    {FaultKind::EciLaneFail, "eci-lane-fail"},
    {FaultKind::EciLinkFlap, "eci-link-flap"},
    {FaultKind::EciMsgDrop, "eci-msg-drop"},
    {FaultKind::EciMsgCorrupt, "eci-msg-corrupt"},
    {FaultKind::DramEccCorrectable, "dram-ecc-correctable"},
    {FaultKind::DramEccUncorrectable, "dram-ecc-uncorrectable"},
    {FaultKind::NetLoss, "net-loss"},
    {FaultKind::NetReorder, "net-reorder"},
    {FaultKind::RdmaDrop, "rdma-drop"},
    {FaultKind::BmcRailGlitch, "bmc-rail-glitch"},
}};

double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

const char *
toString(FaultKind k)
{
    for (const auto &kn : kindNames) {
        if (kn.kind == k)
            return kn.name;
    }
    return "unknown";
}

std::optional<FaultKind>
faultKindFromString(std::string_view s)
{
    for (const auto &kn : kindNames) {
        if (s == kn.name)
            return kn.kind;
    }
    return std::nullopt;
}

bool
FaultSpec::probabilistic() const
{
    switch (kind) {
      case FaultKind::EciMsgDrop:
      case FaultKind::EciMsgCorrupt:
      case FaultKind::DramEccCorrectable:
      case FaultKind::DramEccUncorrectable:
      case FaultKind::NetLoss:
      case FaultKind::NetReorder:
      case FaultKind::RdmaDrop:
        return true;
      case FaultKind::EciLaneFail:
      case FaultKind::EciLinkFlap:
      case FaultKind::BmcRailGlitch:
        return false;
    }
    return false;
}

std::string
FaultSpec::toString() const
{
    char buf[192];
    // %.6f renders microseconds to picosecond precision (Tick is
    // integer ps) and %.17g round-trips doubles exactly, so a dumped
    // plan reproduces the original injection schedule bit-for-bit.
    std::snprintf(buf, sizeof(buf),
                  "fault kind=%s at_us=%.6f until_us=%.6f prob=%.17g "
                  "param=%.17g target=%u",
                  fault::toString(kind), ticksToUs(at), ticksToUs(until),
                  prob, param, target);
    return buf;
}

std::optional<FaultPlan>
FaultPlan::parse(std::istream &in, std::string &error)
{
    FaultPlan plan;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue; // blank / comment-only line
        if (word == "seed") {
            if (!(ls >> plan.seed)) {
                error = "line " + std::to_string(lineno) +
                        ": expected integer after 'seed'";
                return std::nullopt;
            }
            continue;
        }
        if (word != "fault") {
            error = "line " + std::to_string(lineno) +
                    ": unknown directive '" + word + "'";
            return std::nullopt;
        }
        FaultSpec spec;
        bool haveKind = false;
        std::string kv;
        while (ls >> kv) {
            const auto eq = kv.find('=');
            if (eq == std::string::npos) {
                error = "line " + std::to_string(lineno) +
                        ": expected key=value, got '" + kv + "'";
                return std::nullopt;
            }
            const std::string key = kv.substr(0, eq);
            const std::string val = kv.substr(eq + 1);
            if (key == "kind") {
                const auto k = faultKindFromString(val);
                if (!k) {
                    error = "line " + std::to_string(lineno) +
                            ": unknown fault kind '" + val + "'";
                    return std::nullopt;
                }
                spec.kind = *k;
                haveKind = true;
                continue;
            }
            char *end = nullptr;
            const double num = std::strtod(val.c_str(), &end);
            if (end == val.c_str() || *end != '\0') {
                error = "line " + std::to_string(lineno) + ": bad value '" +
                        val + "' for key '" + key + "'";
                return std::nullopt;
            }
            if (key == "at_us") {
                spec.at = units::us(num);
            } else if (key == "until_us") {
                spec.until = units::us(num);
            } else if (key == "prob") {
                spec.prob = num;
            } else if (key == "param") {
                spec.param = num;
            } else if (key == "target") {
                spec.target = static_cast<std::uint32_t>(num);
            } else {
                error = "line " + std::to_string(lineno) +
                        ": unknown key '" + key + "'";
                return std::nullopt;
            }
        }
        if (!haveKind) {
            error = "line " + std::to_string(lineno) +
                    ": fault directive needs kind=...";
            return std::nullopt;
        }
        if (spec.prob < 0.0 || spec.prob > 1.0) {
            error = "line " + std::to_string(lineno) +
                    ": prob must be in [0, 1]";
            return std::nullopt;
        }
        plan.faults.push_back(spec);
    }
    return plan;
}

std::optional<FaultPlan>
FaultPlan::parseFile(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    return parse(in, error);
}

FaultPlan
FaultPlan::random(std::uint64_t seed, double horizon_us)
{
    // A dedicated generator stream: plan shape must not depend on (or
    // perturb) the injection-time draws, which use the subsystem
    // streams forked from the same seed.
    Rng rng(seed ^ 0xc4a05f4d13aa9137ull);
    FaultPlan plan;
    plan.seed = seed;
    const auto nfaults = 2 + rng.below(4); // 2..5
    for (std::uint64_t i = 0; i < nfaults; ++i) {
        FaultSpec spec;
        spec.kind = static_cast<FaultKind>(rng.below(faultKindCount));
        // Probabilistic windows start somewhere in the first half of
        // the horizon and close before it ends, so recovery has time
        // to drain before the scenario's quiescent check.
        const double start_us = rng.uniform(1.0, horizon_us * 0.5);
        const double end_us = rng.uniform(start_us, horizon_us);
        spec.at = units::us(start_us);
        spec.until = units::us(end_us);
        switch (spec.kind) {
          case FaultKind::EciLaneFail:
            spec.param = 1.0 + static_cast<double>(rng.below(4)); // lanes
            spec.target = static_cast<std::uint32_t>(rng.below(2)); // link
            break;
          case FaultKind::EciLinkFlap:
            spec.param = rng.uniform(2.0, 10.0); // down-time us
            spec.target = static_cast<std::uint32_t>(rng.below(2));
            break;
          case FaultKind::EciMsgDrop:
          case FaultKind::EciMsgCorrupt:
            spec.prob = rng.uniform(0.01, 0.08);
            break;
          case FaultKind::DramEccCorrectable:
            spec.prob = rng.uniform(0.01, 0.2);
            spec.target = static_cast<std::uint32_t>(rng.below(2)); // node
            break;
          case FaultKind::DramEccUncorrectable:
            spec.prob = rng.uniform(0.005, 0.05);
            spec.target = static_cast<std::uint32_t>(rng.below(2));
            break;
          case FaultKind::NetLoss:
            spec.prob = rng.uniform(0.02, 0.15);
            break;
          case FaultKind::NetReorder:
            spec.prob = rng.uniform(0.02, 0.15);
            spec.param = rng.uniform(5.0, 40.0); // reorder delay us
            break;
          case FaultKind::RdmaDrop:
            spec.prob = rng.uniform(0.02, 0.12);
            break;
          case FaultKind::BmcRailGlitch:
            spec.target = static_cast<std::uint32_t>(rng.below(2));
            break;
        }
        plan.faults.push_back(spec);
    }
    return plan;
}

bool
FaultPlan::hasKind(FaultKind k) const
{
    for (const auto &f : faults) {
        if (f.kind == k)
            return true;
    }
    return false;
}

std::string
FaultPlan::toString() const
{
    std::string out = "seed " + std::to_string(seed) + "\n";
    for (const auto &f : faults)
        out += f.toString() + "\n";
    return out;
}

} // namespace enzian::fault
