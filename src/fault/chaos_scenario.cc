/**
 * @file
 * Chaos scenario implementation.
 */

#include "fault/chaos_scenario.hh"

#include <cstring>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "base/logging.hh"
#include "base/rng.hh"
#include "fault/fault_injector.hh"
#include "net/rdma_engine.hh"
#include "net/switch.hh"
#include "net/tcp_stack.hh"
#include "obs/registry.hh"
#include "platform/enzian_machine.hh"
#include "sim/domain_scheduler.hh"
#include "verif/invariant_monitor.hh"

namespace enzian::fault {

namespace {

constexpr std::uint64_t lineBytes = cache::lineSize;

/** Deterministic per-(line, version) 128-byte pattern. */
void
fillPattern(std::uint8_t *buf, Addr line, std::uint32_t version)
{
    const std::uint64_t h = (line * 0x9e3779b97f4a7c15ull) ^
                            (std::uint64_t(version) * 0xff51afd7ed558ccdull);
    for (std::uint64_t i = 0; i < lineBytes; ++i)
        buf[i] = static_cast<std::uint8_t>((h >> ((i % 8) * 8)) + i);
}

/** One pool of lines with a single designated writer. */
struct Pool
{
    Addr base = 0;
    std::vector<std::uint32_t> version;  // last ISSUED write per line
    std::vector<bool> inflight;          // an op is outstanding

    Addr lineAt(std::uint32_t i) const { return base + i * lineBytes; }
};

/**
 * The shared scenario body. @p par switches on parallel domain mode:
 * the machine is sharded, FPGA-side traffic and its completions cross
 * through the scheduler's mailboxes, and the verification sweep keeps
 * per-domain accumulators merged in fixed order afterwards. The
 * legacy (par == false) path is byte-for-byte the classic scenario.
 */
ChaosResult
runChaosImpl(const FaultPlan &plan, const ChaosConfig &cfg_in,
             std::uint32_t threads, bool par)
{
    ChaosResult result;
    ChaosConfig cfg = cfg_in;
    if (par) {
        // Side traffic drives FPGA DRAM / the BMC from CPU-domain
        // events; not domain-safe, so parallel runs shed it.
        cfg.with_net = false;
        cfg.with_rdma = false;
        cfg.with_bmc = false;
    }

    platform::EnzianMachine::Config mc;
    mc.cpu_dram_bytes = 64ull << 20;
    mc.fpga_dram_bytes = 64ull << 20;
    mc.cores = 4;
    mc.protocol = cfg.protocol;
    mc.name = "chaos";
    mc.threads = par ? std::max(threads, 1u) : 0;
    platform::EnzianMachine m(mc);
    EventQueue &eq = m.eventq();
    EventQueue &feq = m.fpgaEventq();

    sim::DomainScheduler *sched = m.scheduler();
    sim::CrossDomainChannel *toFpga = nullptr;
    sim::CrossDomainChannel *toCpu = nullptr;
    Tick cross = 0;
    if (par) {
        toFpga = &sched->channel(sched->domain(0), sched->domain(1));
        toCpu = &sched->channel(sched->domain(1), sched->domain(0));
        cross = sched->lookahead();
    }

    verif::InvariantMonitor::Hooks hooks;
    hooks.cpuCache = &m.l2();
    hooks.cpuHome = &m.cpuHome();
    hooks.fpgaHome = &m.fpgaHome();
    hooks.map = &m.map();
    verif::InvariantMonitor monitor(hooks);
    monitor.attach(m.fabric());

    FaultInjector inj("chaos.fault", eq, plan);
    inj.attachEci(m.fabric(), m.cpuHome(), m.fpgaHome(), m.cpuRemote(),
                  m.fpgaRemote());
    inj.attachDram(m.cpuMem().dram(), m.fpgaMem().dram());
    if (inj.eciLossy()) {
        // Same-tid retransmissions are protocol-legal under recovery;
        // the checker must not flag them.
        monitor.setRetryTolerant(true);
    }

    // Optional network side traffic: a TCP pair through a 4-port
    // switch, plus an RDMA initiator/target against FPGA DRAM.
    std::unique_ptr<net::Switch> sw;
    std::unique_ptr<net::TcpStack> tcpA, tcpB;
    std::unique_ptr<net::DirectDramPath> rdmaPath;
    std::unique_ptr<net::RdmaTarget> rdmaTgt;
    std::unique_ptr<net::RdmaInitiator> rdmaIni;
    if (cfg.with_net || cfg.with_rdma) {
        sw = std::make_unique<net::Switch>("chaos.sw", eq, 4,
                                           net::Switch::Config{});
    }
    if (cfg.with_net) {
        tcpA = std::make_unique<net::TcpStack>("chaos.tcp0", eq, *sw,
                                               net::hostTcpConfig(0));
        tcpB = std::make_unique<net::TcpStack>("chaos.tcp1", eq, *sw,
                                               net::hostTcpConfig(1));
        inj.attachNet(*tcpA, *tcpB); // before connect()
    }
    if (cfg.with_rdma) {
        rdmaPath = std::make_unique<net::DirectDramPath>(m.fpgaMem());
        net::RdmaTarget::Config tc;
        tc.port = 3;
        rdmaTgt = std::make_unique<net::RdmaTarget>("chaos.rdma.tgt",
                                                    eq, *sw, *rdmaPath,
                                                    tc);
        rdmaIni = std::make_unique<net::RdmaInitiator>("chaos.rdma.ini",
                                                       eq, *sw, 2, 3);
        inj.attachRdma(*rdmaIni, *rdmaTgt);
    }
    if (cfg.with_bmc)
        inj.attachBmc(m.bmc());
    if (par)
        inj.bindDomains(*sched);
    inj.arm();

    // Three pools, each with exactly one writer so the last issued
    // write per line is well-defined:
    //  A: FPGA-homed, written by the CPU remote agent (cached, M in L2)
    //  B: FPGA-homed, written at the FPGA home (SINVs any CPU copy)
    //  C: CPU-homed, written by the FPGA remote agent (uncached RSTT)
    Pool poolA{mem::AddressMap::fpgaDramBase, {}, {}};
    Pool poolB{mem::AddressMap::fpgaDramBase + cfg.lines * lineBytes,
               {},
               {}};
    Pool poolC{0, {}, {}};
    for (Pool *p : {&poolA, &poolB, &poolC}) {
        p->version.assign(cfg.lines, 0);
        p->inflight.assign(cfg.lines, false);
    }

    Rng traffic(cfg.seed ^ 0x5851f42d4c957f2dull);
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::vector<std::string> mismatches;

    // Pick a line with no op in flight (deterministic linear probe);
    // issuing two ops on one line would make "last write" ambiguous.
    auto pickFree = [&](Pool &p) -> int {
        const auto start = traffic.below(cfg.lines);
        for (std::uint32_t k = 0; k < cfg.lines; ++k) {
            const auto i = (start + k) % cfg.lines;
            if (!p.inflight[i])
                return static_cast<int>(i);
        }
        return -1;
    };

    const Tick gap = units::ns(350.0);
    // Parallel mode: FPGA-side issues hop into the FPGA domain, and
    // their completions hop back, so pool bookkeeping stays CPU-local.
    // Both hops must respect the channels' lookahead floor.
    const Tick hop = std::max(gap, cross);

    auto issueWrite = [&](Pool &p, std::uint32_t i, int role) {
        p.inflight[i] = true;
        const Addr line = p.lineAt(i);
        const std::uint32_t v = ++p.version[i];
        auto buf = std::make_shared<std::vector<std::uint8_t>>(lineBytes);
        fillPattern(buf->data(), line, v);
        if (par && role != 0) {
            auto done = [&p, i, &completed, buf, toCpu, &feq,
                         cross](Tick) {
                toCpu->push(feq.now() + cross,
                            [&p, i, &completed]() {
                                p.inflight[i] = false;
                                ++completed;
                            });
            };
            if (role == 1) {
                toFpga->push(eq.now() + hop, [&m, line, buf, done]() {
                    m.fpgaHome().localWrite(line, buf->data(), done);
                });
            } else {
                toFpga->push(eq.now() + hop, [&m, line, buf, done]() {
                    m.fpgaRemote().writeLineUncached(line, buf->data(),
                                                     done);
                });
            }
            ++issued;
            return;
        }
        auto done = [&p, i, &completed, buf](Tick) {
            p.inflight[i] = false;
            ++completed;
        };
        if (role == 0)
            m.cpuRemote().writeLine(line, buf->data(), done);
        else if (role == 1)
            m.fpgaHome().localWrite(line, buf->data(), done);
        else
            m.fpgaRemote().writeLineUncached(line, buf->data(), done);
        ++issued;
    };

    auto issueRead = [&](Pool &p, std::uint32_t i, int role) {
        p.inflight[i] = true;
        const Addr line = p.lineAt(i);
        auto buf = std::make_shared<std::vector<std::uint8_t>>(lineBytes);
        auto done = [&p, i, &completed, buf](Tick) {
            p.inflight[i] = false;
            ++completed;
        };
        if (role == 0)
            m.cpuRemote().readLine(line, buf->data(), done);
        else
            m.cpuHome().localRead(line, buf->data(), done);
        ++issued;
    };

    std::function<void(std::uint32_t)> step =
        [&](std::uint32_t remaining) {
            if (remaining == 0)
                return;
            const auto r = traffic.below(6);
            int i = -1;
            switch (r) {
              case 0:
                if ((i = pickFree(poolA)) >= 0)
                    issueWrite(poolA, i, 0);
                break;
              case 1:
                if ((i = pickFree(poolB)) >= 0)
                    issueWrite(poolB, i, 1);
                break;
              case 2:
                if ((i = pickFree(poolC)) >= 0)
                    issueWrite(poolC, i, 2);
                break;
              case 3:
                if ((i = pickFree(poolA)) >= 0)
                    issueRead(poolA, i, 0);
                break;
              case 4:
                if ((i = pickFree(poolB)) >= 0)
                    issueRead(poolB, i, 0);
                break;
              default:
                if ((i = pickFree(poolC)) >= 0)
                    issueRead(poolC, i, 1);
                break;
            }
            eq.scheduleDelta(gap,
                             [&step, remaining]() { step(remaining - 1); },
                             "chaos-step");
        };
    eq.scheduleDelta(gap, [&step, &cfg]() { step(cfg.ops); },
                     "chaos-start");

    // TCP side traffic: several jobs on one flow; every byte must be
    // delivered in order despite loss/reordering.
    std::uint32_t tcpJobs = 0, tcpJobsDone = 0;
    std::uint64_t tcpBytes = 0;
    std::uint32_t tcpFlow = 0;
    if (cfg.with_net) {
        tcpFlow = tcpA->connect(*tcpB);
        tcpJobs = 6;
        for (std::uint32_t j = 0; j < tcpJobs; ++j) {
            const std::uint64_t bytes = 16 * 1024 + j * 4096;
            tcpBytes += bytes;
            eq.schedule(units::us(2.0 + 5.0 * j),
                        [&tcpA, &tcpJobsDone, tcpFlow, bytes]() {
                            tcpA->send(tcpFlow, bytes,
                                       [&tcpJobsDone](Tick) {
                                           ++tcpJobsDone;
                                       });
                        },
                        "chaos-tcp-send");
        }
    }

    // RDMA side traffic: write buffers into FPGA DRAM (offsets far
    // above the coherent pools), read them back, compare.
    std::uint32_t rdmaJobs = 0, rdmaJobsDone = 0;
    std::vector<std::shared_ptr<std::vector<std::uint8_t>>> rdmaBufs;
    if (cfg.with_rdma) {
        rdmaJobs = 4;
        const std::uint64_t len = 4096;
        for (std::uint32_t j = 0; j < rdmaJobs; ++j) {
            const Addr off = (1ull << 20) + j * 2 * len;
            auto src =
                std::make_shared<std::vector<std::uint8_t>>(len);
            auto dst = std::make_shared<std::vector<std::uint8_t>>(
                len, std::uint8_t(0));
            for (std::uint64_t b = 0; b < len; ++b)
                (*src)[b] = static_cast<std::uint8_t>(b * 31 + j);
            rdmaBufs.push_back(src);
            rdmaBufs.push_back(dst);
            eq.schedule(
                units::us(3.0 + 7.0 * j),
                [&rdmaIni, &rdmaJobsDone, &mismatches, off, len, src,
                 dst]() {
                    rdmaIni->write(
                        off, src->data(), len,
                        [&rdmaIni, &rdmaJobsDone, &mismatches, off,
                         len, src, dst](Tick) {
                            rdmaIni->read(
                                off, dst->data(), len,
                                [&rdmaJobsDone, &mismatches, off, src,
                                 dst](Tick) {
                                    if (*src != *dst) {
                                        std::ostringstream os;
                                        os << "rdma data mismatch at "
                                              "offset 0x"
                                           << std::hex << off;
                                        mismatches.push_back(os.str());
                                    }
                                    ++rdmaJobsDone;
                                });
                        });
                },
                "chaos-rdma-job");
        }
    }

    m.run();

    // Quiescent data-integrity sweep: every line a write was acked on
    // must read back the last issued pattern through its home agent
    // (which snoops any cached copy, so this sees the coherent truth).
    // In parallel mode the FPGA-homed reads complete on the FPGA
    // domain, so they get their own accumulators, merged after the
    // run in fixed order (CPU first) for thread-count determinism.
    std::uint32_t checksLeft = 0;
    std::uint32_t fpgaChecksLeft = 0;
    std::vector<std::string> fpgaMismatches;
    auto verifyPool = [&](Pool &p, bool fpga_homed) {
        for (std::uint32_t i = 0; i < cfg.lines; ++i) {
            if (p.version[i] == 0)
                continue;
            const bool onFpga = fpga_homed && par;
            auto &mis = onFpga ? fpgaMismatches : mismatches;
            auto &left = onFpga ? fpgaChecksLeft : checksLeft;
            ++left;
            const Addr line = p.lineAt(i);
            const std::uint32_t v = p.version[i];
            auto got =
                std::make_shared<std::vector<std::uint8_t>>(lineBytes);
            auto done = [&mis, &left, line, v, got](Tick) {
                std::uint8_t want[lineBytes];
                fillPattern(want, line, v);
                if (std::memcmp(want, got->data(), lineBytes) != 0) {
                    std::ostringstream os;
                    os << "data mismatch at line 0x" << std::hex << line
                       << std::dec << " (version " << v << ")";
                    mis.push_back(os.str());
                }
                --left;
            };
            if (fpga_homed)
                m.fpgaHome().localRead(line, got->data(), done);
            else
                m.cpuHome().localRead(line, got->data(), done);
        }
    };
    verifyPool(poolA, true);
    verifyPool(poolB, true);
    verifyPool(poolC, false);
    m.run();
    mismatches.insert(mismatches.end(), fpgaMismatches.begin(),
                      fpgaMismatches.end());
    if (checksLeft + fpgaChecksLeft != 0)
        mismatches.push_back("verification reads did not all complete");

    bool flushed = false;
    m.cpuRemote().flushAll([&flushed](Tick) { flushed = true; });
    m.run();
    if (!flushed)
        mismatches.push_back("flushAll did not complete");

    monitor.checkAllLines();
    monitor.finalize();

    result.violations = monitor.violations();
    result.violations.insert(result.violations.end(),
                             mismatches.begin(), mismatches.end());
    if (completed != issued) {
        std::ostringstream os;
        os << "only " << completed << " of " << issued
           << " ops completed (livelock?)";
        result.violations.push_back(os.str());
    }
    if (cfg.with_net) {
        if (tcpJobsDone != tcpJobs)
            result.violations.push_back("tcp jobs did not complete");
        else if (tcpB->bytesReceived(tcpFlow) != tcpBytes)
            result.violations.push_back("tcp byte count mismatch");
    }
    if (cfg.with_rdma && rdmaJobsDone != rdmaJobs)
        result.violations.push_back("rdma jobs did not complete");

    result.opsIssued = issued;
    result.opsCompleted = completed;
    result.faultsInjected = inj.injectedTotal();
    result.report = inj.report();
    {
        std::ostringstream js;
        obs::Registry::global().exportJson(js);
        result.registryJson = js.str();
    }
    result.ok = result.violations.empty();
    return result;
}

} // namespace

ChaosResult
runChaos(const FaultPlan &plan, const ChaosConfig &cfg)
{
    return runChaosImpl(plan, cfg, 0, false);
}

bool
planParallelSafe(const FaultPlan &plan)
{
    for (const auto &s : plan.faults) {
        if (!FaultInjector::kindDomainSafe(s.kind))
            return false;
    }
    return true;
}

ChaosResult
runChaosParallel(const FaultPlan &plan, const ChaosConfig &cfg,
                 std::uint32_t threads)
{
    if (!planParallelSafe(plan)) {
        fatal("runChaosParallel: plan contains fault kinds that are "
              "not domain-safe (only ECI msg drop/corrupt are)");
    }
    return runChaosImpl(plan, cfg, threads, true);
}

} // namespace enzian::fault
