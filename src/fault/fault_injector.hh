/**
 * @file
 * Seeded, sim-time-scheduled fault injection.
 *
 * The injector turns a declarative FaultPlan into scheduled events and
 * per-message fault filters against an attached set of subsystems. Two
 * properties are load-bearing:
 *
 *  - Determinism: every subsystem draws from its own Rng stream forked
 *    from the plan seed, so enabling (or reordering) faults in one
 *    subsystem never perturbs another's draws, and the same plan +
 *    seed reproduces the same injection schedule bit-for-bit.
 *
 *  - Zero overhead when off: nothing here touches a subsystem unless
 *    the plan names it; with no plan the simulated machine's event
 *    stream is untouched (golden-file tests enforce this).
 *
 * The injector also flips on the recovery machinery the faults
 * require (ECI same-tid retry + reply cache, TCP sequenced mode, RDMA
 * fresh-id retry), since injecting loss without recovery would simply
 * hang the run.
 */

#ifndef ENZIAN_FAULT_FAULT_INJECTOR_HH
#define ENZIAN_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "bmc/bmc.hh"
#include "eci/home_agent.hh"
#include "eci/remote_agent.hh"
#include "fault/fault_plan.hh"
#include "mem/dram_channel.hh"
#include "net/rdma_engine.hh"
#include "net/tcp_stack.hh"
#include "sim/domain_binding.hh"

namespace enzian::fault {

/** Executes a FaultPlan against an attached machine. */
class FaultInjector : public SimObject
{
  public:
    FaultInjector(std::string name, EventQueue &eq,
                  const FaultPlan &plan);

    /**
     * Attach the ECI fabric and its four protocol agents. Installs a
     * fault filter per link (drop/corrupt windows; IPIs are exempt
     * from loss because they have no retry path) and enables the
     * agents' recovery machinery when the plan contains any ECI loss
     * kind. Call before arm().
     */
    void attachEci(eci::EciFabric &fabric, eci::HomeAgent &cpu_home,
                   eci::HomeAgent &fpga_home,
                   eci::RemoteAgent &cpu_remote,
                   eci::RemoteAgent &fpga_remote);

    /** Attach both nodes' DRAM systems for ECC injection. */
    void attachDram(mem::DramSystem &cpu_dram,
                    mem::DramSystem &fpga_dram);

    /**
     * Attach a TCP stack pair for loss/reorder injection. Switches
     * both stacks to the reliable wire format when the plan contains
     * a net fault kind, so call before connect().
     */
    void attachNet(net::TcpStack &a, net::TcpStack &b);

    /**
     * Attach an RDMA initiator/target pair for request/response loss.
     * @p abandon_after_retries makes the initiator drop (and count) a
     * request once retries are exhausted instead of panicking — for
     * open-loop load harnesses where overload-induced retry storms
     * are an expected outcome, not a livelock bug.
     */
    void attachRdma(net::RdmaInitiator &ini, net::RdmaTarget &tgt,
                    bool abandon_after_retries = false);

    /**
     * Attach the BMC for rail-glitch injection. The injector brings
     * the board up first (standby, then CPU + FPGA domains) if the
     * harness has not, and serializes glitches so power cycles of one
     * domain never overlap.
     */
    void attachBmc(bmc::Bmc &bmc);

    /**
     * Parallel domain mode: ECI message faults draw from one RNG
     * stream per link direction (each touched only by its source
     * domain) and stage their injection counts per direction, folded
     * into the reported counters at every epoch barrier — so counts
     * and draws are bit-identical for any thread count. Only
     * domain-local fault kinds (EciMsgDrop / EciMsgCorrupt) may be
     * armed in this mode; arm() rejects the rest. Call before arm().
     */
    void bindDomains(sim::DomainScheduler &sched);

    /** True when bindDomains() has switched to per-direction streams. */
    bool domainMode() const { return stagedCounts_.armed(); }

    /** Can @p k inject without cross-domain shared state? */
    static bool kindDomainSafe(FaultKind k)
    {
        return k == FaultKind::EciMsgDrop ||
               k == FaultKind::EciMsgCorrupt;
    }

    /** Schedule every fault in the plan. Call once, after attaching. */
    void arm();

    /** True if the plan can lose ECI messages (drop/corrupt/flap). */
    bool eciLossy() const;

    /** Injections performed so far for @p k. */
    std::uint64_t injected(FaultKind k) const
    {
        return injected_[static_cast<std::size_t>(k)].value();
    }

    /** Total injections across all kinds. */
    std::uint64_t injectedTotal() const;

    /** Human-readable per-kind injection/recovery summary. */
    std::string report() const;

    const FaultPlan &plan() const { return plan_; }

  private:
    eci::EciLink::FaultAction eciFilter(Tick t, const eci::EciMsg &msg);
    void applyDramWindows(mem::DramSystem *dram, std::size_t node);
    void applyNetWindows();
    void applyRdmaWindows();
    void scheduleBmcPowerUp(Tick at);
    void runNextGlitch(std::size_t i);
    void count(FaultKind k) { injected_[static_cast<std::size_t>(k)].inc(); }
    void foldDomainCounts();

    FaultPlan plan_;
    bool armed_ = false;

    /** Per-subsystem streams forked from the plan seed. */
    Rng eciRng_;
    Rng dramRng_;
    Rng netRng_;
    Rng rdmaRng_;
    Rng bmcRng_;
    /**
     * Domain mode: one ECI stream per link direction (index =
     * source node), touched only by that direction's source domain,
     * plus per-direction staged injection counts folded into the
     * shared counters at epoch barriers (dir 0 first, then dir 1);
     * arming the stage is the domain-mode flag.
     */
    std::array<Rng, 2> eciDirRng_;
    sim::DirStaged<std::array<std::uint64_t, faultKindCount>>
        stagedCounts_;

    // Attached subsystems (null = not attached).
    eci::EciFabric *fabric_ = nullptr;
    eci::HomeAgent *homes_[2] = {nullptr, nullptr};
    eci::RemoteAgent *remotes_[2] = {nullptr, nullptr};
    mem::DramSystem *drams_[2] = {nullptr, nullptr};
    net::TcpStack *tcp_[2] = {nullptr, nullptr};
    net::RdmaInitiator *rdmaIni_ = nullptr;
    net::RdmaTarget *rdmaTgt_ = nullptr;
    bmc::Bmc *bmc_ = nullptr;

    /** Message-loss specs the per-send filter scans. */
    std::vector<FaultSpec> eciMsgSpecs_;
    /** Open-window accumulation per node for DRAM ECC. */
    mem::DramChannel::EccConfig eccNow_[2];
    /** Open-window accumulation for net/rdma loss. */
    double netDropNow_ = 0.0;
    double netReorderNow_ = 0.0;
    double netReorderDelayUs_ = 20.0;
    double rdmaDropNow_ = 0.0;
    /** Rail glitches, run strictly one after the other. */
    std::vector<std::string> glitchRails_;

    std::array<Counter, faultKindCount> injected_;
};

} // namespace enzian::fault

#endif // ENZIAN_FAULT_FAULT_INJECTOR_HH
