/**
 * @file
 * Fault plans: the declarative description of a fault-injection run.
 *
 * A FaultPlan is a seed plus a list of FaultSpecs. Each spec names a
 * fault kind (the taxonomy spans the subsystems a real Enzian breaks
 * in: ECI lanes and links, protocol messages, DRAM ECC, the Ethernet
 * path, and power rails), a one-shot injection tick or a probabilistic
 * window, and kind-specific magnitude/target fields. Plans are plain
 * data: they can be parsed from a small text spec (tools/enzchaos),
 * generated pseudo-randomly from a seed (the chaos soak test), and
 * rendered back to text.
 *
 * Determinism contract: a plan + seed fully determines every injection
 * decision. The injector derives one RNG stream per subsystem by
 * mixing the plan seed with a fixed subsystem ordinal, so enabling a
 * fault in one subsystem never perturbs another subsystem's draws.
 */

#ifndef ENZIAN_FAULT_FAULT_PLAN_HH
#define ENZIAN_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/units.hh"

namespace enzian::fault {

/** The fault taxonomy. */
enum class FaultKind : std::uint8_t {
    EciLaneFail = 0,      ///< fail `param` lanes of link `target`
    EciLinkFlap,          ///< link `target` down for `param` us
    EciMsgDrop,           ///< drop ECI messages with prob in window
    EciMsgCorrupt,        ///< corrupt (CRC-kill) with prob in window
    DramEccCorrectable,   ///< correctable ECC hits on node `target`
    DramEccUncorrectable, ///< uncorrectable ECC hits on node `target`
    NetLoss,              ///< drop TCP segments/acks with prob
    NetReorder,           ///< delay TCP segments with prob
    RdmaDrop,             ///< drop RDMA requests/responses with prob
    BmcRailGlitch,        ///< glitch power rail index `target`
};

/** Number of fault kinds (for per-kind accounting arrays). */
constexpr std::size_t faultKindCount = 10;

/** Readable kind name ("eci-msg-drop", ...). */
const char *toString(FaultKind k);

/** Parse a kind name; nullopt if unknown. */
std::optional<FaultKind> faultKindFromString(std::string_view s);

/** One fault declaration. */
struct FaultSpec
{
    FaultKind kind = FaultKind::EciMsgDrop;
    /** Injection tick (one-shot kinds) or window start. */
    Tick at = 0;
    /** Window end for probabilistic kinds (0 = whole run). */
    Tick until = 0;
    /** Per-event probability (probabilistic kinds). */
    double prob = 0.0;
    /** Kind-specific magnitude (lanes to fail, flap down-time us). */
    double param = 0.0;
    /** Kind-specific target (link index, node 0/1, rail index). */
    std::uint32_t target = 0;

    /** True for kinds whose effect is a per-event probability. */
    bool probabilistic() const;

    /** One-line rendering, parseable back by FaultPlan::parse. */
    std::string toString() const;
};

/** A seeded set of fault declarations. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultSpec> faults;

    /**
     * Parse a plan from text: one directive per line, '#' comments.
     *
     *   seed 42
     *   fault kind=eci-msg-drop prob=0.05 at_us=10 until_us=300
     *   fault kind=eci-lane-fail param=3 target=0 at_us=50
     *
     * @param error set to a human-readable reason on failure
     */
    static std::optional<FaultPlan> parse(std::istream &in,
                                          std::string &error);

    /** Parse from a file path. */
    static std::optional<FaultPlan> parseFile(const std::string &path,
                                              std::string &error);

    /**
     * Deterministic pseudo-random plan for chaos soaking: 2..5 faults
     * drawn from the full taxonomy, windows confined to the first
     * @p horizon_us so recovery always completes before the run
     * drains.
     */
    static FaultPlan random(std::uint64_t seed,
                            double horizon_us = 300.0);

    /** True if any spec has kind @p k. */
    bool hasKind(FaultKind k) const;

    /** Render the plan in the parse() format. */
    std::string toString() const;
};

} // namespace enzian::fault

#endif // ENZIAN_FAULT_FAULT_PLAN_HH
