/**
 * @file
 * Implementation of logging and error reporting.
 */

#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace enzian {

namespace {
LogLevel g_level = LogLevel::Info;

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
vlogPrefixed(LogLevel level, const char *prefix, const char *fmt,
             va_list ap)
{
    if (g_level > level)
        return;
    const char *tag = "info: ";
    switch (level) {
      case LogLevel::Debug:
        tag = "debug: ";
        break;
      case LogLevel::Info:
        tag = "info: ";
        break;
      case LogLevel::Warn:
        tag = "warn: ";
        break;
      case LogLevel::Error:
        tag = "error: ";
        break;
    }
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s%s%s\n", tag, prefix, msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn: ", fmt, ap);
    va_end(ap);
}

void
logDebug(const char *fmt, ...)
{
    if (g_level > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug: ", fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

} // namespace enzian
