/**
 * @file
 * Logging and error-reporting primitives for the Enzian reproduction.
 *
 * Follows the gem5 convention: panic() is for internal simulator bugs
 * (conditions that must never happen regardless of user input) and
 * aborts; fatal() is for user errors (bad configuration, invalid
 * arguments) and exits cleanly with an error code. warn()/inform()
 * report conditions without stopping the simulation.
 */

#ifndef ENZIAN_BASE_LOGGING_HH
#define ENZIAN_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace enzian {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Minimum level that is actually printed. Defaults to Info; tests can
 * raise it to keep output quiet.
 */
void setLogLevel(LogLevel level);

/** Current minimum printed level. */
LogLevel logLevel();

/** printf-style message at Info level. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style message at Warn level. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style message at Debug level. */
void logDebug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort. Never returns.
 *
 * @param fmt printf-style message describing the impossible condition.
 */
[[noreturn]]
void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1). Never returns.
 *
 * @param fmt printf-style message describing the configuration problem.
 */
[[noreturn]]
void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Emit a message at @p level with @p prefix between the severity tag
 * and the text (e.g. "info: [1200 ns enzian.eci.link0] ..."); used by
 * SimObject::logInfo and friends to make interleaved multi-component
 * logs attributable. Respects the minimum level like inform()/warn().
 */
void vlogPrefixed(LogLevel level, const char *prefix, const char *fmt,
                  va_list ap);

/** Format a printf-style string into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Format a printf-style string into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assertion macro that survives NDEBUG builds; use for protocol
 * invariants whose violation indicates a simulator bug.
 */
#define ENZIAN_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::enzian::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                            __FILE__, __LINE__,                           \
                            ::enzian::format(__VA_ARGS__).c_str());       \
        }                                                                 \
    } while (0)

} // namespace enzian

#endif // ENZIAN_BASE_LOGGING_HH
