/**
 * @file
 * In-process "wire" payload ledger.
 *
 * Several models move metadata and payloads out of band: a frame on
 * the simulated wire carries only an opaque id in its tag, and the
 * actual request/response record travels through an id-keyed map on
 * the side. Historically those maps were file-scope globals, which
 * broke twice over: two service instances in one process collided ids
 * and leaked entries across tests, and under DomainScheduler the
 * producer (client domain) and consumer (server domain) raced on the
 * map in the same epoch.
 *
 * WireLedger fixes both. Each owning instance holds its own ledger
 * (no cross-instance collisions; entries die with the owner), and the
 * map is mutex-protected so concurrent domain threads are safe. The
 * epoch barrier's release/acquire handshake already orders "register
 * before send" against "take after receive"; the mutex only guards
 * the map structure itself. Ids are opaque — they never feed timing
 * or statistics — so thread-dependent id values cannot perturb the
 * bit-identical determinism guarantee.
 */

#ifndef ENZIAN_BASE_WIRE_LEDGER_HH
#define ENZIAN_BASE_WIRE_LEDGER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace enzian {

/** Thread-safe id → record ledger (see file comment). */
template <typename T>
class WireLedger
{
  public:
    /** Register @p record under a fresh nonzero id. */
    std::uint64_t put(T record)
    {
        const std::uint64_t id =
            next_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(mu_);
        map_.emplace(id, std::move(record));
        return id;
    }

    /** Register @p record under the caller-chosen @p id. */
    void putAt(std::uint64_t id, T record)
    {
        std::lock_guard<std::mutex> lk(mu_);
        map_.insert_or_assign(id, std::move(record));
    }

    /** Remove and return the record for @p id (nullopt if absent). */
    std::optional<T> take(std::uint64_t id)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(id);
        if (it == map_.end())
            return std::nullopt;
        T out = std::move(it->second);
        map_.erase(it);
        return out;
    }

    /** Copy the record for @p id without removing it. */
    std::optional<T> peek(std::uint64_t id) const
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(id);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    /** Drop the record for @p id, if present. */
    void erase(std::uint64_t id)
    {
        std::lock_guard<std::mutex> lk(mu_);
        map_.erase(id);
    }

    /** Entries currently registered (stopped-world only). */
    std::size_t size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return map_.size();
    }

  private:
    std::atomic<std::uint64_t> next_{1};
    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, T> map_;
};

} // namespace enzian

#endif // ENZIAN_BASE_WIRE_LEDGER_HH
