/**
 * @file
 * Deterministic random number generation.
 *
 * Every component that needs randomness owns an Rng seeded from its
 * parent, so simulations are bit-reproducible across runs and hosts.
 * The core generator is xoshiro256**, which is small, fast, and has no
 * libstdc++ distribution-implementation dependence.
 */

#ifndef ENZIAN_BASE_RNG_HH
#define ENZIAN_BASE_RNG_HH

#include <cstdint>

namespace enzian {

/** Deterministic xoshiro256** generator with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x456e7a69616e2101ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform in [0, bound). @pre bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Gaussian draw via Box-Muller (mean/stddev). */
    double gaussian(double mean, double stddev);

    /** Derive an independent child seed (for sub-components). */
    std::uint64_t fork();

  private:
    std::uint64_t s_[4];
    bool haveSpareGauss_ = false;
    double spareGauss_ = 0.0;
};

} // namespace enzian

#endif // ENZIAN_BASE_RNG_HH
