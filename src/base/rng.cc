/**
 * @file
 * xoshiro256** implementation (public-domain algorithm by Blackman &
 * Vigna), seeded via splitmix64.
 */

#include "base/rng.hh"

#include <cmath>

#include "base/logging.hh"

namespace enzian {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    ENZIAN_ASSERT(bound > 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    ENZIAN_ASSERT(lo <= hi, "Rng::range lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::gaussian(double mean, double stddev)
{
    if (haveSpareGauss_) {
        haveSpareGauss_ = false;
        return mean + stddev * spareGauss_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-12);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareGauss_ = r * std::sin(theta);
    haveSpareGauss_ = true;
    return mean + stddev * r * std::cos(theta);
}

std::uint64_t
Rng::fork()
{
    return next() ^ 0xa5a5a5a55a5a5a5aull;
}

} // namespace enzian
