/**
 * @file
 * Units and literal helpers used throughout the simulator.
 *
 * Simulated time is measured in Ticks; one Tick is one picosecond.
 * Data sizes are bytes; rates are expressed in bytes/second (double) at
 * model boundaries and converted to ticks-per-byte internally.
 */

#ifndef ENZIAN_BASE_UNITS_HH
#define ENZIAN_BASE_UNITS_HH

#include <cstdint>

namespace enzian {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Physical address in the simulated machine. */
using Addr = std::uint64_t;

namespace units {

// --- time ---------------------------------------------------------------
constexpr Tick psPerNs = 1000;
constexpr Tick psPerUs = 1000 * 1000;
constexpr Tick psPerMs = 1000ull * 1000 * 1000;
constexpr Tick psPerSec = 1000ull * 1000 * 1000 * 1000;

/** Nanoseconds to ticks. */
constexpr Tick ns(double v) { return static_cast<Tick>(v * psPerNs); }
/** Microseconds to ticks. */
constexpr Tick us(double v) { return static_cast<Tick>(v * psPerUs); }
/** Milliseconds to ticks. */
constexpr Tick ms(double v) { return static_cast<Tick>(v * psPerMs); }
/** Seconds to ticks. */
constexpr Tick sec(double v) { return static_cast<Tick>(v * psPerSec); }

/** Ticks to seconds (double, for reporting). */
constexpr double toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(psPerSec);
}
/** Ticks to microseconds (double, for reporting). */
constexpr double toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(psPerUs);
}
/** Ticks to nanoseconds (double, for reporting). */
constexpr double toNanos(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(psPerNs);
}

// --- sizes ----------------------------------------------------------------
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;
constexpr std::uint64_t TiB = 1024 * GiB;

// --- rates ----------------------------------------------------------------
/** Gigabits/second to bytes/second. */
constexpr double gbps(double v) { return v * 1e9 / 8.0; }
/** Gigabytes/second (decimal) to bytes/second. */
constexpr double gBps(double v) { return v * 1e9; }
/** GiB/second (binary) to bytes/second. */
constexpr double giBps(double v) { return v * static_cast<double>(GiB); }

/** Bytes/second to GiB/s for reporting. */
constexpr double toGiBps(double bytes_per_sec)
{
    return bytes_per_sec / static_cast<double>(GiB);
}
/** Bytes/second to Gbit/s for reporting. */
constexpr double toGbps(double bytes_per_sec)
{
    return bytes_per_sec * 8.0 / 1e9;
}

/**
 * Ticks it takes to move @p bytes at @p bytes_per_sec. Rounds up so a
 * nonzero transfer always takes at least one tick.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0)
        return 0;
    double secs = static_cast<double>(bytes) / bytes_per_sec;
    Tick t = static_cast<Tick>(secs * static_cast<double>(psPerSec));
    return t == 0 ? 1 : t;
}

} // namespace units
} // namespace enzian

#endif // ENZIAN_BASE_UNITS_HH
