/**
 * @file
 * Statistics implementation.
 */

#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace enzian {

void
Accumulator::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    // Welford's online variance.
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double n = na + nb;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ += delta * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    ENZIAN_ASSERT(buckets > 0 && hi > lo, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1; // fp edge case at hi_
        ++counts_[idx];
    }
}

void
Histogram::merge(const Histogram &other)
{
    ENZIAN_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                      counts_.size() == other.counts_.size(),
                  "histogram merge with mismatched shape");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    count_ += other.count_;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the quantile sample (1-based, nearest rank). Targeting
    // a rank rather than a fractional count keeps exact cumulative
    // boundaries inside the bucket that actually holds the sample:
    // the old fractional form returned the previous bucket's upper
    // edge there, which on sparse histograms lands arbitrarily far
    // below the containing bucket.
    const double target = std::min(
        std::floor(q * static_cast<double>(count_)) + 1.0,
        static_cast<double>(count_));
    double running = static_cast<double>(underflow_);
    if (running >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = running + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            // Interpolate within this bucket only; the clamp pins the
            // result to [lower edge, upper edge] of the bucket that
            // contains the target rank.
            const double frac = std::clamp(
                (target - running) / static_cast<double>(counts_[i]),
                0.0, 1.0);
            return lo_ + (static_cast<double>(i) + frac) * width_;
        }
        running = next;
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
}

void
StatGroup::addCounter(const std::string &name, Counter *c)
{
    counters_.emplace_back(name, c);
}

void
StatGroup::addGauge(const std::string &name, Gauge *g)
{
    gauges_.emplace_back(name, g);
}

void
StatGroup::addAccumulator(const std::string &name, Accumulator *a)
{
    accums_.emplace_back(name, a);
}

void
StatGroup::addHistogram(const std::string &name, Histogram *h)
{
    hists_.emplace_back(name, h);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[n, c] : counters_)
        os << name_ << '.' << n << ' ' << c->value() << '\n';
    for (const auto &[n, g] : gauges_)
        os << name_ << '.' << n << ' ' << g->value() << '\n';
    for (const auto &[n, a] : accums_) {
        os << name_ << '.' << n << ".count " << a->count() << '\n';
        os << name_ << '.' << n << ".mean " << a->mean() << '\n';
        os << name_ << '.' << n << ".min " << a->min() << '\n';
        os << name_ << '.' << n << ".max " << a->max() << '\n';
    }
    for (const auto &[n, h] : hists_) {
        os << name_ << '.' << n << ".count " << h->count() << '\n';
        os << name_ << '.' << n << ".p50 " << h->quantile(0.50) << '\n';
        os << name_ << '.' << n << ".p90 " << h->quantile(0.90) << '\n';
        os << name_ << '.' << n << ".p99 " << h->quantile(0.99) << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (const auto &[n, c] : counters_)
        c->reset();
    for (const auto &[n, g] : gauges_)
        g->reset();
    for (const auto &[n, a] : accums_)
        a->reset();
    for (const auto &[n, h] : hists_)
        h->reset();
}

} // namespace enzian
