/**
 * @file
 * Lightweight statistics collection: scalar counters, gauges,
 * min/max/mean accumulators, and fixed-bucket histograms. Components
 * expose their counters through a StatGroup so tests, benches, and the
 * global obs::Registry can read, dump, export, and reset them
 * uniformly.
 */

#ifndef ENZIAN_BASE_STATS_HH
#define ENZIAN_BASE_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace enzian {

/** Monotonic event counter. */
class Counter
{
  public:
    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }
    /** Current count. */
    std::uint64_t value() const { return value_; }
    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-value gauge for levels that move both ways (depth, rate, V). */
class Gauge
{
  public:
    /** Set the current level. */
    void set(double v) { value_ = v; }
    /** Adjust the current level by @p d (may be negative). */
    void add(double d) { value_ += d; }
    /** Current level. */
    double value() const { return value_; }
    /** Reset to zero. */
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Accumulates samples and reports count/sum/min/max/mean/variance. */
class Accumulator
{
  public:
    /** Record one sample. */
    void sample(double v);

    /**
     * Fold another accumulator's samples into this one, as if every
     * sample of @p other had been recorded here. Variance combines via
     * the parallel Welford formula (Chan et al.), so merging staged
     * per-thread accumulators in a fixed order is deterministic.
     */
    void merge(const Accumulator &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance (Welford). */
    double variance() const { return count_ ? m2_ / count_ : 0.0; }
    double stddev() const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Linear-bucket histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo lower bound of first bucket
     * @param hi upper bound of last bucket
     * @param buckets number of equal-width buckets (> 0)
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample. */
    void sample(double v);

    /**
     * Add another histogram's buckets into this one. Both histograms
     * must have identical bounds and bucket counts.
     */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Approximate quantile q in [0,1] by linear interpolation. */
    double quantile(double q) const;

    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Named collection of statistics for one component; supports a
 * human-readable dump, group-wide reset, and typed iteration (used by
 * the global obs::Registry for machine-readable exports). Registration
 * stores pointers, so registered stats must outlive the group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, Counter *c);
    void addGauge(const std::string &name, Gauge *g);
    void addAccumulator(const std::string &name, Accumulator *a);
    void addHistogram(const std::string &name, Histogram *h);

    /**
     * Write "group.stat value" lines to @p os. Accumulators expand to
     * .count/.mean/.min/.max, histograms to .count/.p50/.p90/.p99.
     */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic to its initial state. */
    void resetAll();

    const std::string &name() const { return name_; }

    // Typed access for exporters.
    const std::vector<std::pair<std::string, Counter *>> &
    counters() const
    {
        return counters_;
    }
    const std::vector<std::pair<std::string, Gauge *>> &gauges() const
    {
        return gauges_;
    }
    const std::vector<std::pair<std::string, Accumulator *>> &
    accumulators() const
    {
        return accums_;
    }
    const std::vector<std::pair<std::string, Histogram *>> &
    histograms() const
    {
        return hists_;
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, Counter *>> counters_;
    std::vector<std::pair<std::string, Gauge *>> gauges_;
    std::vector<std::pair<std::string, Accumulator *>> accums_;
    std::vector<std::pair<std::string, Histogram *>> hists_;
};

} // namespace enzian

#endif // ENZIAN_BASE_STATS_HH
