/**
 * @file
 * The coherent data-reduction pipeline (paper section 5.4, Figure 10).
 *
 * The offload engine sits behind the FPGA's ECI home agent. It
 * receives the CPU L2's refill requests (RLDD) for a "logical view"
 * address range, transforms each into a larger sequential burst read
 * from FPGA DRAM, converts RGB to luminance (optionally quantizing to
 * 4 bits per pixel), packs the result into a single 128-byte cache
 * line, and returns it as the PEMD payload. Loads on the CPU look
 * exactly like NUMA-remote L2 refills; only the latency changes.
 *
 *   reduction   pixels per 128 B line   DRAM burst per line
 *   None        32  (4 B/px)            128 B (identity view)
 *   Y8          128 (1 B/px)            512 B
 *   Y4          256 (4 bit/px)          1 KiB
 */

#ifndef ENZIAN_ACCEL_RGB2Y_PIPELINE_HH
#define ENZIAN_ACCEL_RGB2Y_PIPELINE_HH

#include <cstdint>

#include "accel/pipeline.hh"
#include "eci/home_agent.hh"
#include "mem/memory_controller.hh"
#include "sim/clock_domain.hh"

namespace enzian::accel {

/** Data-reduction mode of the pipeline. */
enum class Reduction : std::uint8_t {
    None = 0, ///< identity view, CPU does the conversion in software
    Y8,       ///< 8-bit luminance per pixel
    Y4,       ///< 4-bit quantized luminance, two pixels per byte
};

/** Readable reduction name. */
const char *toString(Reduction r);

/** Pixels packed into one 128-byte line under @p r. */
std::uint32_t pixelsPerLine(Reduction r);

/** Input DRAM bytes consumed per produced line under @p r. */
std::uint32_t burstBytesPerLine(Reduction r);

/**
 * Scalar reference RGB->Y conversion (BT.601 integer approximation:
 * Y = (77 R + 150 G + 29 B) >> 8). @p rgba holds 4-byte pixels.
 */
void rgb2yReference(const std::uint8_t *rgba, std::uint64_t pixels,
                    std::uint8_t *y);

/** Quantize 8-bit luminance to packed 4-bit (two pixels per byte). */
void quantize4Reference(const std::uint8_t *y, std::uint64_t pixels,
                        std::uint8_t *packed);

/**
 * The conversion engine as an accel::Pipeline: one burst of RGBA in,
 * one reduced line out, through a single rgb2y(+quantize) stage of
 * `pipeline_cycles` fill latency. Concurrent line fills overlap (the
 * DRAM controller is the serialization point), matching the
 * free-running hardware pipeline.
 */
class Rgb2yPipeline : public Pipeline
{
  public:
    /**
     * @param reduction Y8 or Y4 (None never reaches the pipeline)
     * @param pipeline_cycles fill latency burst-complete -> line-ready
     */
    Rgb2yPipeline(std::string name, mem::MemoryController &mc,
                  const mem::AddressMap &map, ClockDomain &clock,
                  Reduction reduction, std::uint32_t pipeline_cycles);
};

/**
 * The FPGA home agent's LineSource adapter. The view region
 * [view_base, view_base + view_size) exposes the reduced data; reads
 * outside it (and all writes) pass through to DRAM. Each view-line
 * refill becomes one pipeline job whose writeback is the PEMD reply
 * buffer itself.
 */
class Rgb2yLineSource : public eci::LineSource
{
  public:
    /** Pipeline configuration. */
    struct Config
    {
        Reduction reduction = Reduction::Y8;
        /** Physical base of the logical view window. */
        Addr view_base = 0;
        /** Size of the view window in bytes (of reduced data). */
        std::uint64_t view_size = 0;
        /** Physical base of the raw RGBA input data. */
        Addr input_base = 0;
        /** Pipeline cycles from burst-complete to line-ready. */
        std::uint32_t pipeline_cycles = 24;
    };

    /**
     * @param mc the FPGA node's memory controller
     * @param map the machine's address partition
     * @param clock the fabric clock (latency contribution)
     */
    Rgb2yLineSource(mem::MemoryController &mc,
                    const mem::AddressMap &map, ClockDomain &clock,
                    const Config &cfg);

    void readLine(Tick when, Addr addr, std::uint8_t *out,
                  Done done) override;
    void writeLine(Tick when, Addr addr, const std::uint8_t *data,
                   Done done) override;

    /** Lines served through the transform (vs passthrough). */
    std::uint64_t linesTransformed() const { return transformed_; }

    /** The underlying conversion pipeline (stats, occupancy). */
    Rgb2yPipeline &pipeline() { return pipe_; }

  private:
    bool inView(Addr addr) const;

    Config cfg_;
    eci::DramLineSource passthrough_;
    Rgb2yPipeline pipe_;
    std::uint64_t transformed_ = 0;
};

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_RGB2Y_PIPELINE_HH
