/**
 * @file
 * Hardware-accelerated key-value store (paper section 5.2).
 *
 * "It also shows how Enzian can be used to implement, e.g.,
 * hardware-accelerated key-value stores [KV-Direct]". The store is a
 * KV-Direct-style FPGA-resident open-addressing hash table living in
 * FPGA DRAM: GET/PUT/DELETE requests arrive over 100 GbE, the fabric
 * pipeline hashes and probes DRAM (one 64-byte slot per beat), and
 * responses go straight back out - the host CPU is never on the data
 * path. With up to 1 TiB of DRAM behind the FPGA, the table can be
 * orders of magnitude larger than on PCIe accelerator cards.
 */

#ifndef ENZIAN_ACCEL_KV_STORE_HH
#define ENZIAN_ACCEL_KV_STORE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/memory_controller.hh"
#include "net/switch.hh"

namespace enzian::accel {

/** Maximum value size storable inline in one slot. */
constexpr std::uint32_t kvMaxValueBytes = 46;
/** Slot size: one DRAM beat. */
constexpr std::uint32_t kvSlotBytes = 64;

/** The FPGA-resident store engine + network front-end. */
class KvStoreServer : public SimObject
{
  public:
    /** Engine configuration. */
    struct Config
    {
        std::uint32_t port = 0;
        /** Table placement in FPGA DRAM. */
        Addr table_base = 0;
        /** Number of slots (power of two). */
        std::uint64_t slots = 1ull << 20;
        /** Pipeline cost per request (hash + dispatch), fabric ns. */
        double request_proc_ns = 60.0;
        /** Linear-probe limit before PUT fails / GET gives up. */
        std::uint32_t max_probes = 64;
    };

    KvStoreServer(std::string name, EventQueue &eq, net::Switch &sw,
                  mem::MemoryController &fpga_mem, const Config &cfg);

    // --- direct (in-fabric) functional operations -------------------
    /** Insert or update; false if the probe window is full. */
    bool put(std::uint64_t key, const std::uint8_t *value,
             std::uint32_t len);
    /** Look up; nullopt on miss. */
    std::optional<std::vector<std::uint8_t>> get(std::uint64_t key);
    /** Delete; false on miss. */
    bool erase(std::uint64_t key);

    /** Timed DRAM cost of the probes the last operation performed. */
    Tick lastOpDramDone() const { return lastDramDone_; }

    std::uint64_t gets() const { return gets_.value(); }
    std::uint64_t puts() const { return puts_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t probes() const { return probes_.value(); }

    /** Occupied slots (for load-factor checks). */
    std::uint64_t occupied() const { return occupied_; }

    const Config &config() const { return cfg_; }

    /** @internal wire request registry (shared with clients). */
    struct WireRequest
    {
        enum class Op : std::uint8_t { Get, Put, Del };
        Op op = Op::Get;
        std::uint64_t key = 0;
        std::vector<std::uint8_t> value;
        std::uint32_t srcPort = 0;
    };
    struct WireResponse
    {
        bool ok = false;
        std::vector<std::uint8_t> value;
    };

    static std::uint32_t registerRequest(WireRequest req);
    static WireResponse takeResponse(std::uint32_t id);

  private:
    enum : std::uint8_t { slotEmpty = 0, slotUsed = 1, slotDead = 2 };

    std::uint64_t hash(std::uint64_t key) const;
    Addr slotAddr(std::uint64_t index) const;
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);
    void serve(std::uint32_t id);

    net::Switch &sw_;
    mem::MemoryController &mem_;
    Config cfg_;
    std::uint64_t occupied_ = 0;
    Tick lastDramDone_ = 0;
    Counter gets_;
    Counter puts_;
    Counter hits_;
    Counter misses_;
    Counter probes_;
};

/** Client-side stub issuing KV operations over the network. */
class KvClient : public SimObject
{
  public:
    /** GET completion: (tick, found, value). */
    using GetDone = std::function<void(Tick, bool,
                                       std::vector<std::uint8_t>)>;
    /** PUT/DEL completion: (tick, ok). */
    using AckDone = std::function<void(Tick, bool)>;

    KvClient(std::string name, EventQueue &eq, net::Switch &sw,
             std::uint32_t port, std::uint32_t server_port);

    void get(std::uint64_t key, GetDone done);
    void put(std::uint64_t key, const std::uint8_t *value,
             std::uint32_t len, AckDone done);
    void erase(std::uint64_t key, AckDone done);

  private:
    void onFrame(Tick when, std::uint64_t payload, std::uint64_t user);

    struct Pending
    {
        GetDone get_done;
        AckDone ack_done;
    };

    net::Switch &sw_;
    std::uint32_t port_;
    std::uint32_t serverPort_;
    std::unordered_map<std::uint32_t, Pending> pending_;
};

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_KV_STORE_HH
