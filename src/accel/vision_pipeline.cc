/**
 * @file
 * Vision pipeline reference implementations and Figure 11 kernels.
 */

#include "accel/vision_pipeline.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace enzian::accel {

namespace {

std::uint8_t
clampAt(const std::uint8_t *y, std::int64_t x, std::int64_t yy,
        std::uint32_t width, std::uint32_t height)
{
    x = std::clamp<std::int64_t>(x, 0, width - 1);
    yy = std::clamp<std::int64_t>(yy, 0, height - 1);
    return y[static_cast<std::size_t>(yy) * width +
             static_cast<std::size_t>(x)];
}

} // namespace

void
gaussianBlur3x3(const std::uint8_t *y, std::uint32_t width,
                std::uint32_t height, std::uint8_t *out)
{
    static const int k[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};
    for (std::uint32_t r = 0; r < height; ++r) {
        for (std::uint32_t c = 0; c < width; ++c) {
            int acc = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    acc += k[dy + 1][dx + 1] *
                           clampAt(y, static_cast<std::int64_t>(c) + dx,
                                   static_cast<std::int64_t>(r) + dy,
                                   width, height);
            out[static_cast<std::size_t>(r) * width + c] =
                static_cast<std::uint8_t>(acc >> 4);
        }
    }
}

void
sobelEdge(const std::uint8_t *y, std::uint32_t width,
          std::uint32_t height, std::uint8_t *out)
{
    for (std::uint32_t r = 0; r < height; ++r) {
        for (std::uint32_t c = 0; c < width; ++c) {
            const auto at = [&](int dx, int dy) {
                return static_cast<int>(
                    clampAt(y, static_cast<std::int64_t>(c) + dx,
                            static_cast<std::int64_t>(r) + dy, width,
                            height));
            };
            const int gx = -at(-1, -1) - 2 * at(-1, 0) - at(-1, 1) +
                           at(1, -1) + 2 * at(1, 0) + at(1, 1);
            const int gy = -at(-1, -1) - 2 * at(0, -1) - at(1, -1) +
                           at(-1, 1) + 2 * at(0, 1) + at(1, 1);
            const int mag = std::abs(gx) + std::abs(gy);
            out[static_cast<std::size_t>(r) * width + c] =
                static_cast<std::uint8_t>(std::min(mag, 255));
        }
    }
}

void
unpack4(const std::uint8_t *packed, std::uint64_t pixels,
        std::uint8_t *y)
{
    for (std::uint64_t i = 0; i < pixels; ++i) {
        const std::uint8_t b = packed[i / 2];
        const std::uint8_t v = (i % 2 == 0) ? (b >> 4) : (b & 0x0f);
        y[i] = static_cast<std::uint8_t>(v << 4);
    }
}

std::vector<std::uint8_t>
softwarePipeline(const Frame &frame)
{
    std::vector<std::uint8_t> y(frame.pixels());
    rgb2yReference(frame.rgba.data(), frame.pixels(), y.data());
    std::vector<std::uint8_t> blurred(frame.pixels());
    gaussianBlur3x3(y.data(), frame.width, frame.height,
                    blurred.data());
    return blurred;
}

double
interconnectBytesPerPixel(Reduction r)
{
    switch (r) {
      case Reduction::None:
        return 4.0;
      case Reduction::Y8:
        return 1.0;
      case Reduction::Y4:
        return 0.5;
    }
    panic("bad reduction");
}

cpu::StreamKernel
fig11Kernel(Reduction r)
{
    // Calibration, working back from the paper's own numbers:
    //
    //  * Baseline (None) runs at 33 Mpx/s/core on a 2 GHz core
    //    => ~60.6 cycles/px total. Table 1 reports 0.025 memory
    //    stalls/cycle => 1.5 exposed stall cycles/px, leaving
    //    ~59.1 compute cycles/px for soft RGB2Y + blur (blur has ~5x
    //    the arithmetic intensity of the conversion).
    //  * One 128 B line covers 32/128/256 px for None/Y8/Y4; refill
    //    latency grows with the DRAM burst the FPGA performs per line
    //    (128 B / 512 B / 1 KiB) - the paper attributes Y4's small
    //    regression vs Y8 to exactly this.
    //  * Y8 gains +39% => ~43.6 cycles/px; Table 1's 0.005
    //    stalls/cycle => 0.22 exposed cycles/px => ~43.4 compute
    //    (blur only, on byte-packed input).
    //  * Y4 gains +33% => ~45.5 cycles/px; the extra ~2 cycles/px
    //    over Y8 is the 4-bit unpack.
    //
    // Table 1 check: cycles per L1 refill = cycles/px * px/line
    // => ~1.9k / 5.6k / 11.6k versus the paper's 1.84k/5.16k/10.5k.
    cpu::StreamKernel k;
    switch (r) {
      case Reduction::None:
        k.compute_cycles_per_item = 59.1;
        k.instructions_per_item = 46.0; // rgb2y ~8 + blur ~38
        k.items_per_line = 32.0;
        k.refill_latency_ns = 140.0;
        k.prefetch_coverage = 0.822;
        break;
      case Reduction::Y8:
        k.compute_cycles_per_item = 43.4;
        k.instructions_per_item = 38.0; // blur only
        k.items_per_line = 128.0;
        k.refill_latency_ns = 300.0;
        k.prefetch_coverage = 0.954;
        break;
      case Reduction::Y4:
        k.compute_cycles_per_item = 45.3;
        k.instructions_per_item = 40.0; // blur + unpack
        k.items_per_line = 256.0;
        k.refill_latency_ns = 450.0;
        k.prefetch_coverage = 0.935;
        break;
    }
    k.interconnect_bytes_per_item = interconnectBytesPerPixel(r);
    return k;
}

} // namespace enzian::accel
