/**
 * @file
 * GBDT engine implementation.
 */

#include "accel/gbdt_engine.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/units.hh"
#include "obs/request_context.hh"
#include "obs/span_tracer.hh"

namespace enzian::accel {

GbdtEngine::GbdtEngine(std::string name, EventQueue &eq,
                       const GbdtEnsemble &ensemble, const Config &cfg)
    : SimObject(std::move(name), eq), ensemble_(ensemble), cfg_(cfg)
{
    if (cfg_.engines == 0 || cfg_.clock_hz <= 0 ||
        cfg_.cycles_per_tuple <= 0)
        fatal("GBDT engine '%s': bad configuration",
              SimObject::name().c_str());
    stats().addCounter("served_batches", &served_);
    stats().addAccumulator("serve_queue_wait_ns", &queueWaitNs_);
    stats().addAccumulator("serve_service_ns", &serviceNs_);
}

double
GbdtEngine::steadyIntervalSeconds(bool *transfer_bound) const
{
    // Steady state: one tuple retires per interval, where the
    // interval is the slower of the (parallel) compute pipelines and
    // the host link streaming tuples in and results out.
    const double compute_interval_s =
        cfg_.cycles_per_tuple / (cfg_.clock_hz * cfg_.engines);
    const double wire_bytes = tupleBytes() + sizeof(float); // in + out
    const double transfer_interval_s = wire_bytes / cfg_.host_bw;
    if (transfer_bound)
        *transfer_bound = transfer_interval_s > compute_interval_s;
    return std::max(compute_interval_s, transfer_interval_s);
}

double
GbdtEngine::serviceSeconds(std::uint64_t count) const
{
    return cfg_.fill_latency_ns * 1e-9 +
           steadyIntervalSeconds() * static_cast<double>(count);
}

GbdtEngine::Result
GbdtEngine::infer(const float *tuples, std::uint64_t count) const
{
    Result r;
    r.scores.resize(count);
    for (std::uint64_t i = 0; i < count; ++i)
        r.scores[i] = ensemble_.predict(tuples + i * cfg_.features);

    const double interval_s = steadyIntervalSeconds(&r.transferBound);
    const double total_s = cfg_.fill_latency_ns * 1e-9 +
                           interval_s * static_cast<double>(count);
    r.elapsed = units::sec(total_s);
    r.tuplesPerSecond = 1.0 / interval_s;
    return r;
}

void
GbdtEngine::serve(const float *tuples, std::uint64_t count,
                  std::vector<float> *scores_out, ServeDone done)
{
    if (scores_out) {
        scores_out->resize(count);
        for (std::uint64_t i = 0; i < count; ++i)
            (*scores_out)[i] =
                ensemble_.predict(tuples + i * cfg_.features);
    }

    const Tick submit = now();
    const Tick start = std::max(submit, freeAt_);
    Tick svc = units::sec(serviceSeconds(count));
    if (svc == 0)
        svc = 1;
    const Tick end = start + svc;
    freeAt_ = end;

    served_.inc();
    queueWaitNs_.sample(units::toNanos(start - submit));
    serviceNs_.sample(units::toNanos(svc));

    ENZIAN_SPAN(name(), "serve", start, end);
    ENZIAN_FLOW_STEP(name(), "serve", end, obs::currentFlowId());

    eventq().schedule(end,
                      [done = std::move(done), start, end] {
                          done(start, end);
                      },
                      "gbdt serve done");
}

} // namespace enzian::accel
