/**
 * @file
 * GBDT engine implementation.
 */

#include "accel/gbdt_engine.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/units.hh"

namespace enzian::accel {

GbdtEngine::GbdtEngine(std::string name, EventQueue &eq,
                       const GbdtEnsemble &ensemble, const Config &cfg)
    : SimObject(std::move(name), eq), ensemble_(ensemble), cfg_(cfg)
{
    if (cfg_.engines == 0 || cfg_.clock_hz <= 0 ||
        cfg_.cycles_per_tuple <= 0)
        fatal("GBDT engine '%s': bad configuration",
              SimObject::name().c_str());
}

GbdtEngine::Result
GbdtEngine::infer(const float *tuples, std::uint64_t count) const
{
    Result r;
    r.scores.resize(count);
    for (std::uint64_t i = 0; i < count; ++i)
        r.scores[i] = ensemble_.predict(tuples + i * cfg_.features);

    // Steady state: one tuple retires per interval, where the
    // interval is the slower of the (parallel) compute pipelines and
    // the host link streaming tuples in and results out.
    const double compute_interval_s =
        cfg_.cycles_per_tuple / (cfg_.clock_hz * cfg_.engines);
    const double wire_bytes = tupleBytes() + sizeof(float); // in + out
    const double transfer_interval_s = wire_bytes / cfg_.host_bw;
    const double interval_s =
        std::max(compute_interval_s, transfer_interval_s);
    r.transferBound = transfer_interval_s > compute_interval_s;

    const double total_s = cfg_.fill_latency_ns * 1e-9 +
                           interval_s * static_cast<double>(count);
    r.elapsed = units::sec(total_s);
    r.tuplesPerSecond = 1.0 / interval_s;
    return r;
}

} // namespace enzian::accel
