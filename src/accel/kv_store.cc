/**
 * @file
 * KV store implementation.
 *
 * Slot layout (64 bytes, one DRAM beat):
 *   0   u64  key
 *   8   u8   state (0 empty, 1 used, 2 tombstone)
 *   9   u8   value length
 *   10  u8[46] value
 *   56  u64  (reserved)
 */

#include "accel/kv_store.hh"

#include <bit>
#include <cstring>

#include "base/logging.hh"

namespace enzian::accel {

namespace {

constexpr std::uint32_t wireHeaderBytes = 48;

std::uint32_t g_next_id = 1;
std::unordered_map<std::uint32_t, KvStoreServer::WireRequest>
    g_requests;
std::unordered_map<std::uint32_t, KvStoreServer::WireResponse>
    g_responses;

} // namespace

std::uint32_t
KvStoreServer::registerRequest(WireRequest req)
{
    const std::uint32_t id = g_next_id++;
    g_requests.emplace(id, std::move(req));
    return id;
}

KvStoreServer::WireResponse
KvStoreServer::takeResponse(std::uint32_t id)
{
    auto it = g_responses.find(id);
    ENZIAN_ASSERT(it != g_responses.end(), "no KV response %u", id);
    auto out = std::move(it->second);
    g_responses.erase(it);
    return out;
}

KvStoreServer::KvStoreServer(std::string name, EventQueue &eq,
                             net::Switch &sw,
                             mem::MemoryController &fpga_mem,
                             const Config &cfg)
    : SimObject(std::move(name), eq), sw_(sw), mem_(fpga_mem), cfg_(cfg)
{
    if (!std::has_single_bit(cfg_.slots))
        fatal("KV store '%s': slot count must be a power of two",
              SimObject::name().c_str());
    if (cfg_.table_base + cfg_.slots * kvSlotBytes >
        mem_.store().size())
        fatal("KV store '%s': table does not fit in FPGA DRAM",
              SimObject::name().c_str());
    sw_.setEndpoint(cfg_.port,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload,
                                net::Switch::userOf(tag));
                    });
    stats().addCounter("gets", &gets_);
    stats().addCounter("puts", &puts_);
    stats().addCounter("hits", &hits_);
    stats().addCounter("misses", &misses_);
    stats().addCounter("probes", &probes_);
}

std::uint64_t
KvStoreServer::hash(std::uint64_t key) const
{
    // splitmix64 finalizer: good avalanche for sequential keys.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return (z ^ (z >> 31)) & (cfg_.slots - 1);
}

Addr
KvStoreServer::slotAddr(std::uint64_t index) const
{
    return cfg_.table_base + index * kvSlotBytes;
}

bool
KvStoreServer::put(std::uint64_t key, const std::uint8_t *value,
                   std::uint32_t len)
{
    ENZIAN_ASSERT(len <= kvMaxValueBytes, "value of %u bytes", len);
    puts_.inc();
    lastDramDone_ = now();
    std::uint64_t idx = hash(key);
    std::int64_t first_dead = -1;
    for (std::uint32_t p = 0; p < cfg_.max_probes; ++p) {
        probes_.inc();
        std::uint8_t slot[kvSlotBytes];
        lastDramDone_ =
            mem_.read(lastDramDone_, slotAddr(idx), slot, kvSlotBytes)
                .done;
        std::uint64_t k = 0;
        std::memcpy(&k, slot, 8);
        const std::uint8_t state = slot[8];
        if (state == slotUsed && k == key) {
            // Update in place.
            slot[9] = static_cast<std::uint8_t>(len);
            std::memset(slot + 10, 0, kvMaxValueBytes);
            std::memcpy(slot + 10, value, len);
            lastDramDone_ = mem_.write(lastDramDone_, slotAddr(idx),
                                       slot, kvSlotBytes)
                                .done;
            return true;
        }
        if (state == slotDead && first_dead < 0)
            first_dead = static_cast<std::int64_t>(idx);
        if (state == slotEmpty) {
            const std::uint64_t target =
                first_dead >= 0 ? static_cast<std::uint64_t>(first_dead)
                                : idx;
            std::uint8_t fresh[kvSlotBytes] = {};
            std::memcpy(fresh, &key, 8);
            fresh[8] = slotUsed;
            fresh[9] = static_cast<std::uint8_t>(len);
            std::memcpy(fresh + 10, value, len);
            lastDramDone_ = mem_.write(lastDramDone_,
                                       slotAddr(target), fresh,
                                       kvSlotBytes)
                                .done;
            ++occupied_;
            return true;
        }
        idx = (idx + 1) & (cfg_.slots - 1);
    }
    if (first_dead >= 0) {
        std::uint8_t fresh[kvSlotBytes] = {};
        std::memcpy(fresh, &key, 8);
        fresh[8] = slotUsed;
        fresh[9] = static_cast<std::uint8_t>(len);
        std::memcpy(fresh + 10, value, len);
        lastDramDone_ =
            mem_.write(lastDramDone_,
                       slotAddr(static_cast<std::uint64_t>(first_dead)),
                       fresh, kvSlotBytes)
                .done;
        ++occupied_;
        return true;
    }
    return false; // probe window exhausted
}

std::optional<std::vector<std::uint8_t>>
KvStoreServer::get(std::uint64_t key)
{
    gets_.inc();
    lastDramDone_ = now();
    std::uint64_t idx = hash(key);
    for (std::uint32_t p = 0; p < cfg_.max_probes; ++p) {
        probes_.inc();
        std::uint8_t slot[kvSlotBytes];
        lastDramDone_ =
            mem_.read(lastDramDone_, slotAddr(idx), slot, kvSlotBytes)
                .done;
        std::uint64_t k = 0;
        std::memcpy(&k, slot, 8);
        const std::uint8_t state = slot[8];
        if (state == slotEmpty)
            break;
        if (state == slotUsed && k == key) {
            hits_.inc();
            return std::vector<std::uint8_t>(slot + 10,
                                             slot + 10 + slot[9]);
        }
        idx = (idx + 1) & (cfg_.slots - 1);
    }
    misses_.inc();
    return std::nullopt;
}

bool
KvStoreServer::erase(std::uint64_t key)
{
    lastDramDone_ = now();
    std::uint64_t idx = hash(key);
    for (std::uint32_t p = 0; p < cfg_.max_probes; ++p) {
        probes_.inc();
        std::uint8_t slot[kvSlotBytes];
        lastDramDone_ =
            mem_.read(lastDramDone_, slotAddr(idx), slot, kvSlotBytes)
                .done;
        std::uint64_t k = 0;
        std::memcpy(&k, slot, 8);
        const std::uint8_t state = slot[8];
        if (state == slotEmpty)
            return false;
        if (state == slotUsed && k == key) {
            slot[8] = slotDead;
            lastDramDone_ = mem_.write(lastDramDone_, slotAddr(idx),
                                       slot, kvSlotBytes)
                                .done;
            --occupied_;
            return true;
        }
        idx = (idx + 1) & (cfg_.slots - 1);
    }
    return false;
}

void
KvStoreServer::onFrame(Tick, std::uint64_t, std::uint64_t user)
{
    const auto id = static_cast<std::uint32_t>(user);
    eventq().scheduleDelta(units::ns(cfg_.request_proc_ns),
                           [this, id]() { serve(id); }, "kv-serve");
}

void
KvStoreServer::serve(std::uint32_t id)
{
    auto it = g_requests.find(id);
    ENZIAN_ASSERT(it != g_requests.end(), "unknown KV request %u", id);
    WireRequest req = std::move(it->second);
    g_requests.erase(it);

    WireResponse rsp;
    using Op = WireRequest::Op;
    switch (req.op) {
      case Op::Get: {
        auto v = get(req.key);
        rsp.ok = v.has_value();
        if (v)
            rsp.value = std::move(*v);
        break;
      }
      case Op::Put:
        rsp.ok = put(req.key, req.value.data(),
                     static_cast<std::uint32_t>(req.value.size()));
        break;
      case Op::Del:
        rsp.ok = erase(req.key);
        break;
    }
    const std::uint64_t wire = wireHeaderBytes + rsp.value.size();
    const std::uint32_t src = req.srcPort;
    g_responses[id] = std::move(rsp);
    // Respond once the DRAM probes of this operation complete.
    eventq().schedule(
        std::max(lastDramDone_, now()),
        [this, id, src, wire]() {
            sw_.sendFrom(cfg_.port, wire,
                         net::Switch::makeTag(src, id));
        },
        "kv-respond");
}

KvClient::KvClient(std::string name, EventQueue &eq, net::Switch &sw,
                   std::uint32_t port, std::uint32_t server_port)
    : SimObject(std::move(name), eq), sw_(sw), port_(port),
      serverPort_(server_port)
{
    sw_.setEndpoint(port_,
                    [this](Tick when, std::uint64_t payload,
                           std::uint64_t tag) {
                        onFrame(when, payload,
                                net::Switch::userOf(tag));
                    });
}

void
KvClient::get(std::uint64_t key, GetDone done)
{
    KvStoreServer::WireRequest req;
    req.op = KvStoreServer::WireRequest::Op::Get;
    req.key = key;
    req.srcPort = port_;
    const auto id = KvStoreServer::registerRequest(std::move(req));
    Pending p;
    p.get_done = std::move(done);
    pending_[id] = std::move(p);
    sw_.sendFrom(port_, wireHeaderBytes,
                 net::Switch::makeTag(serverPort_, id));
}

void
KvClient::put(std::uint64_t key, const std::uint8_t *value,
              std::uint32_t len, AckDone done)
{
    KvStoreServer::WireRequest req;
    req.op = KvStoreServer::WireRequest::Op::Put;
    req.key = key;
    req.value.assign(value, value + len);
    req.srcPort = port_;
    const auto id = KvStoreServer::registerRequest(std::move(req));
    Pending p;
    p.ack_done = std::move(done);
    pending_[id] = std::move(p);
    sw_.sendFrom(port_, wireHeaderBytes + len,
                 net::Switch::makeTag(serverPort_, id));
}

void
KvClient::erase(std::uint64_t key, AckDone done)
{
    KvStoreServer::WireRequest req;
    req.op = KvStoreServer::WireRequest::Op::Del;
    req.key = key;
    req.srcPort = port_;
    const auto id = KvStoreServer::registerRequest(std::move(req));
    Pending p;
    p.ack_done = std::move(done);
    pending_[id] = std::move(p);
    sw_.sendFrom(port_, wireHeaderBytes,
                 net::Switch::makeTag(serverPort_, id));
}

void
KvClient::onFrame(Tick when, std::uint64_t, std::uint64_t user)
{
    const auto id = static_cast<std::uint32_t>(user);
    auto it = pending_.find(id);
    ENZIAN_ASSERT(it != pending_.end(), "KV completion for unknown %u",
                  id);
    Pending p = std::move(it->second);
    pending_.erase(it);
    auto rsp = KvStoreServer::takeResponse(id);
    if (p.get_done)
        p.get_done(when, rsp.ok, std::move(rsp.value));
    else if (p.ack_done)
        p.ack_done(when, rsp.ok);
}

} // namespace enzian::accel
