/**
 * @file
 * FPGA GBDT inference engine (the Figure 9 workload).
 *
 * Models the Owaida et al. decision-tree inference accelerator: the
 * model is offloaded once, then tuples stream from host memory
 * through a deep pipeline that retires one tuple every few cycles per
 * engine; results stream back. Double buffering overlaps transfer and
 * compute, so steady-state throughput is the slower of the compute
 * pipeline and the host link. The design deploys as one or two
 * parallel engines (paper Figure 9).
 */

#ifndef ENZIAN_ACCEL_GBDT_ENGINE_HH
#define ENZIAN_ACCEL_GBDT_ENGINE_HH

#include <functional>

#include "accel/gbdt.hh"
#include "sim/sim_object.hh"

namespace enzian::accel {

/** The streaming inference engine. */
class GbdtEngine : public SimObject
{
  public:
    /** Engine configuration. */
    struct Config
    {
        /** Parallel engines (1 or 2 in the paper). */
        std::uint32_t engines = 1;
        /** Fabric clock (Hz); the platform's speed grade sets this. */
        double clock_hz = 300e6;
        /** Pipeline retirement interval per engine (cycles/tuple). */
        double cycles_per_tuple = 6.25;
        /** Feature-vector width (floats per tuple). */
        std::uint32_t features = 8;
        /** Host link sustained bandwidth (bytes/s). */
        double host_bw = 12.8e9;
        /** Pipeline fill + batch setup latency (ns). */
        double fill_latency_ns = 2000.0;
    };

    GbdtEngine(std::string name, EventQueue &eq,
               const GbdtEnsemble &ensemble, const Config &cfg);

    /** Result of one inference run. */
    struct Result
    {
        /** Per-tuple ensemble scores (functional output). */
        std::vector<float> scores;
        /** End-to-end time. */
        Tick elapsed = 0;
        /** Steady-state tuples/second. */
        double tuplesPerSecond = 0.0;
        /** True if the host link, not compute, set the rate. */
        bool transferBound = false;
    };

    /**
     * Score @p count tuples from @p tuples (count * features floats).
     * Functional (real predictions) + timed (pipeline model).
     */
    Result infer(const float *tuples, std::uint64_t count) const;

    /** Completion callback: batch occupied the engine [start, end]. */
    using ServeDone = std::function<void(Tick start, Tick end)>;

    /**
     * Queued serving entry point for the load harness: score the
     * batch functionally (into @p scores_out if non-null) and occupy
     * the engine for its modeled service time, FIFO behind whatever
     * is already queued. @p done fires at the completion tick with
     * the batch's [start, end] occupancy, so callers can split
     * queue-wait from service time. The engine is a single FIFO
     * server: serve() may be called at any rate and requests simply
     * queue (the open-loop generator depends on that).
     */
    void serve(const float *tuples, std::uint64_t count,
               std::vector<float> *scores_out, ServeDone done);

    /** Modeled service seconds for a batch of @p count tuples. */
    double serviceSeconds(std::uint64_t count) const;

    /** Tick at which the engine next goes idle (serving only). */
    Tick freeAt() const { return freeAt_; }

    /** Bytes of one tuple on the wire. */
    std::uint32_t tupleBytes() const
    {
        return cfg_.features * sizeof(float);
    }

    const Config &config() const { return cfg_; }

  private:
    /** Steady-state seconds per tuple (compute vs host link). */
    double steadyIntervalSeconds(bool *transfer_bound = nullptr) const;

    const GbdtEnsemble &ensemble_;
    Config cfg_;

    // Serving-path state: a single FIFO server plus its telemetry.
    Tick freeAt_ = 0;
    Counter served_;
    Accumulator queueWaitNs_;
    Accumulator serviceNs_;
};

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_GBDT_ENGINE_HH
