/**
 * @file
 * Blocked LU factorization with partial pivoting (HPCC "HPL" /
 * LINPACK kernel).
 *
 * Models a right-looking blocked LU engine: a panel-factorization
 * unit (one column block at a time, pivot search over the column),
 * a row-interchange crossbar (laswp), and a systolic MAC array for
 * the trailing-matrix update — the stage that dominates and sets
 * the achievable flop rate at `macs` multiply-accumulates per
 * fabric cycle. The functional model runs the same blocked
 * algorithm in single precision, so the produced factors match what
 * the hardware would compute.
 *
 * Output layout: the n*n factors (L unit-lower / U upper, packed in
 * place, row-major float) followed by n int32 pivot indices.
 *
 * HPL convention: one factorization counts (2/3) n^3 flops.
 */

#ifndef ENZIAN_ACCEL_HPCC_LU_HH
#define ENZIAN_ACCEL_HPCC_LU_HH

#include <cstdint>
#include <vector>

#include "accel/pipeline.hh"

namespace enzian::accel::hpcc {

/**
 * Unblocked reference LU with partial pivoting, in place on the
 * row-major n*n matrix @p a. @p piv receives the n pivot row
 * indices (piv[k] = row swapped into position k at step k).
 */
void luReference(std::vector<float> &a, std::vector<std::int32_t> &piv,
                 std::uint32_t n);

/**
 * Solve A x = b given packed factors @p lu and pivots @p piv
 * (forward/back substitution); returns x.
 */
std::vector<float> luSolve(const std::vector<float> &lu,
                           const std::vector<std::int32_t> &piv,
                           std::vector<float> b, std::uint32_t n);

/** Max-norm residual ||A x - b|| / (||A|| ||x|| n eps) style check:
 *  returns ||A x - b||_inf computed in double. */
double residualInf(const std::vector<float> &a,
                   const std::vector<float> &x,
                   const std::vector<float> &b, std::uint32_t n);

/** The blocked LU engine. */
class LuPipeline : public Pipeline
{
  public:
    /** Kernel geometry. */
    struct Params
    {
        /** Matrix order. */
        std::uint32_t n = 256;
        /** Panel width (column-block size). */
        std::uint32_t block = 32;
        /** MAC units in the update array (MACs per fabric cycle). */
        std::uint32_t macs = 64;
        /** Row elements the interchange crossbar moves per cycle. */
        std::uint32_t swap_width = 16;
        /** Depth of the panel-factorization unit. */
        Cycles panel_depth = 16;
    };

    LuPipeline(std::string name, EventQueue &eq, const Config &cfg,
               const Params &p);

    std::uint32_t n() const { return p_.n; }
    const Params &params() const { return p_; }

    /** HPL flop count: (2/3) n^3 (leading term). */
    static std::uint64_t flops(std::uint32_t n);

    /** Input bytes of one job: the n*n float matrix. */
    std::uint64_t inputBytes() const
    {
        return 4ull * p_.n * p_.n;
    }

    /** Output bytes: factors plus the int32 pivot vector. */
    std::uint64_t outputBytes() const
    {
        return inputBytes() + 4ull * p_.n;
    }

    /** Job factorizing the matrix at @p input into @p output. */
    Job makeJob(Addr input, Addr output) const;

  private:
    Params p_;
};

} // namespace enzian::accel::hpcc

#endif // ENZIAN_ACCEL_HPCC_LU_HH
