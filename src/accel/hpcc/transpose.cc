/**
 * @file
 * Blocked transpose implementation.
 */

#include "accel/hpcc/transpose.hh"

#include <cstring>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::accel::hpcc {

std::vector<float>
transposeReference(const std::vector<float> &in, std::uint32_t rows,
                   std::uint32_t cols)
{
    ENZIAN_ASSERT(in.size() >= static_cast<std::size_t>(rows) * cols,
                  "matrix too small");
    std::vector<float> out(static_cast<std::size_t>(rows) * cols);
    for (std::uint32_t r = 0; r < rows; ++r)
        for (std::uint32_t c = 0; c < cols; ++c)
            out[static_cast<std::size_t>(c) * rows + r] =
                in[static_cast<std::size_t>(r) * cols + c];
    return out;
}

TransposePipeline::TransposePipeline(std::string name, EventQueue &eq,
                                     const Config &cfg,
                                     const Params &p)
    : Pipeline(std::move(name), eq, cfg), p_(p)
{
    ENZIAN_ASSERT(p_.tile > 0 && p_.rows % p_.tile == 0 &&
                      p_.cols % p_.tile == 0,
                  "tile must divide rows and cols");
    ENZIAN_ASSERT(p_.width > 0, "zero crossbar width");
    const std::uint32_t rows = p_.rows;
    const std::uint32_t cols = p_.cols;
    addStage("corner_turn", p_.turn_depth,
             1.0 / static_cast<double>(p_.width),
             [rows, cols](std::vector<std::uint8_t> &buf) {
                 auto *x = reinterpret_cast<float *>(buf.data());
                 std::vector<float> in(
                     x, x + static_cast<std::size_t>(rows) * cols);
                 const auto out = transposeReference(in, rows, cols);
                 std::memcpy(buf.data(), out.data(),
                             out.size() * sizeof(float));
             });
}

void
TransposePipeline::ingest(Tick when, const Job &job,
                          std::vector<std::uint8_t> &buf,
                          std::function<void(Tick)> done)
{
    if (job.input_remote) {
        Pipeline::ingest(when, job, buf, std::move(done));
        return;
    }

    // Tile walk: each tile is one strided access (tile rows of
    // tile*4 bytes, a full matrix row apart), gathered back into the
    // row-major batch buffer. All tiles issue at `when`; the DRAM
    // channels' bus occupancy serializes them.
    const std::uint32_t tile = p_.tile;
    const std::uint64_t row_pitch = 4ull * p_.cols;
    const Addr base = config().map->offsetInRegion(job.input);
    std::vector<std::uint8_t> tilebuf(4ull * tile * tile);
    Tick last = when;
    for (std::uint32_t ti = 0; ti < p_.rows; ti += tile) {
        for (std::uint32_t tj = 0; tj < p_.cols; tj += tile) {
            const Addr off = base + ti * row_pitch + 4ull * tj;
            const auto res = config().mc->readStrided(
                when, off, 4ull * tile, tile, row_pitch,
                tilebuf.data());
            last = std::max(last, res.done);
            for (std::uint32_t r = 0; r < tile; ++r)
                std::memcpy(buf.data() + (ti + r) * row_pitch +
                                4ull * tj,
                            tilebuf.data() + 4ull * r * tile,
                            4ull * tile);
        }
    }
    ENZIAN_SPAN(name() + ".ingest", "tile-walk", when, last);
    ENZIAN_FLOW_STEP(name() + ".ingest", "ingest", when, job.flow_id);
    done(last);
}

Pipeline::Job
TransposePipeline::makeJob(Addr input, Addr output) const
{
    Job job{};
    job.input = input;
    job.output = output;
    job.input_bytes = 4ull * p_.rows * p_.cols;
    job.output_bytes = job.input_bytes;
    job.items = static_cast<std::uint64_t>(p_.rows) * p_.cols;
    return job;
}

} // namespace enzian::accel::hpcc
