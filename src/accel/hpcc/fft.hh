/**
 * @file
 * Streaming radix-2 FFT accelerator (HPCC "FFT" kernel).
 *
 * Models the classic fully-streaming FPGA FFT: a bit-reversal
 * reorder buffer feeding log2(n) butterfly ranks, each rank a
 * pipelined array of `lanes` butterfly units consuming `lanes`
 * complex points per fabric cycle in steady state. The functional
 * model computes the exact radix-2 DIT FFT rank by rank in the
 * stage cascade, so the output is the same transform a hardware
 * implementation would produce (single-precision complex,
 * interleaved re/im).
 *
 * HPCC convention: one n-point transform counts 5 n log2(n) flops.
 */

#ifndef ENZIAN_ACCEL_HPCC_FFT_HH
#define ENZIAN_ACCEL_HPCC_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "accel/pipeline.hh"

namespace enzian::accel::hpcc {

/** O(n^2) reference DFT in double precision (test oracle). */
std::vector<std::complex<double>>
dftReference(const std::vector<std::complex<float>> &in);

/** RMS error of @p got against the double-precision oracle @p want,
 *  normalized by the oracle's RMS magnitude. */
double rmsError(const std::vector<std::complex<float>> &got,
                const std::vector<std::complex<double>> &want);

/** The streaming FFT engine. */
class FftPipeline : public Pipeline
{
  public:
    /** Kernel geometry. */
    struct Params
    {
        /** Transform size in complex points (power of two). */
        std::uint32_t n = 1024;
        /** Complex points consumed per cycle in steady state. */
        std::uint32_t lanes = 8;
        /** Pipeline depth of one butterfly rank (fabric cycles). */
        Cycles butterfly_depth = 12;
        /** Depth of the bit-reversal reorder buffer. */
        Cycles bitrev_depth = 8;
    };

    FftPipeline(std::string name, EventQueue &eq, const Config &cfg,
                const Params &p);

    std::uint32_t n() const { return p_.n; }
    const Params &params() const { return p_; }

    /** HPCC flop count of one transform: 5 n log2(n). */
    static std::uint64_t flops(std::uint32_t n);

    /**
     * Job for one batched run of @p transforms back-to-back
     * transforms (input/output are interleaved complex float).
     */
    Job makeJob(Addr input, Addr output,
                std::uint64_t transforms = 1) const;

  private:
    Params p_;
};

} // namespace enzian::accel::hpcc

#endif // ENZIAN_ACCEL_HPCC_FFT_HH
