/**
 * @file
 * Streaming FFT implementation.
 */

#include "accel/hpcc/fft.hh"

#include <cmath>
#include <cstring>

#include "base/logging.hh"

namespace enzian::accel::hpcc {

namespace {

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint32_t
log2u(std::uint32_t v)
{
    std::uint32_t l = 0;
    while ((1u << l) < v)
        ++l;
    return l;
}

/** Bit-reverse permute each n-point transform in @p buf in place. */
void
bitrev(std::complex<float> *buf, std::uint32_t n, std::uint32_t bits,
       std::uint64_t transforms)
{
    for (std::uint64_t t = 0; t < transforms; ++t) {
        std::complex<float> *x = buf + t * n;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t r = 0;
            for (std::uint32_t b = 0; b < bits; ++b)
                r |= ((i >> b) & 1u) << (bits - 1 - b);
            if (r > i)
                std::swap(x[i], x[r]);
        }
    }
}

/** Apply butterfly rank @p s (span m = 2^s) to every transform. */
void
butterflyRank(std::complex<float> *buf, std::uint32_t n,
              std::uint32_t s, std::uint64_t transforms)
{
    const std::uint32_t m = 1u << s;
    const std::uint32_t half = m / 2;
    for (std::uint64_t t = 0; t < transforms; ++t) {
        std::complex<float> *x = buf + t * n;
        for (std::uint32_t k = 0; k < n; k += m) {
            for (std::uint32_t j = 0; j < half; ++j) {
                // Twiddle in double, arithmetic in float: matches a
                // hardware ROM of rounded coefficients.
                const double ang =
                    -2.0 * M_PI * static_cast<double>(j) /
                    static_cast<double>(m);
                const std::complex<float> w(
                    static_cast<float>(std::cos(ang)),
                    static_cast<float>(std::sin(ang)));
                const std::complex<float> u = x[k + j];
                const std::complex<float> v = w * x[k + j + half];
                x[k + j] = u + v;
                x[k + j + half] = u - v;
            }
        }
    }
}

} // namespace

std::vector<std::complex<double>>
dftReference(const std::vector<std::complex<float>> &in)
{
    const std::size_t n = in.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * M_PI *
                               static_cast<double>(k * j % n) /
                               static_cast<double>(n);
            acc += std::complex<double>(in[j].real(), in[j].imag()) *
                   std::complex<double>(std::cos(ang), std::sin(ang));
        }
        out[k] = acc;
    }
    return out;
}

double
rmsError(const std::vector<std::complex<float>> &got,
         const std::vector<std::complex<double>> &want)
{
    ENZIAN_ASSERT(got.size() == want.size(), "size mismatch");
    double err2 = 0.0, ref2 = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        const std::complex<double> g(got[i].real(), got[i].imag());
        err2 += std::norm(g - want[i]);
        ref2 += std::norm(want[i]);
    }
    if (ref2 == 0.0)
        return std::sqrt(err2 / static_cast<double>(got.size()));
    return std::sqrt(err2 / ref2);
}

FftPipeline::FftPipeline(std::string name, EventQueue &eq,
                         const Config &cfg, const Params &p)
    : Pipeline(std::move(name), eq, cfg), p_(p)
{
    ENZIAN_ASSERT(isPow2(p_.n) && p_.n >= 2,
                  "FFT size must be a power of two >= 2, got %u",
                  p_.n);
    ENZIAN_ASSERT(p_.lanes > 0, "FFT needs at least one lane");
    const std::uint32_t bits = log2u(p_.n);
    const double ii = 1.0 / static_cast<double>(p_.lanes);
    const std::uint32_t n = p_.n;

    // Reorder buffer: must hold a full transform before the first
    // point can leave in bit-reversed order.
    addStage("bitrev", p_.bitrev_depth + n / p_.lanes, ii,
             [n, bits](std::vector<std::uint8_t> &buf) {
                 auto *x = reinterpret_cast<std::complex<float> *>(
                     buf.data());
                 bitrev(x, n, bits, buf.size() / (8ull * n));
             });

    // One pipelined butterfly rank per FFT stage.
    for (std::uint32_t s = 1; s <= bits; ++s) {
        addStage("rank" + std::to_string(s), p_.butterfly_depth, ii,
                 [n, s](std::vector<std::uint8_t> &buf) {
                     auto *x =
                         reinterpret_cast<std::complex<float> *>(
                             buf.data());
                     butterflyRank(x, n, s, buf.size() / (8ull * n));
                 });
    }
}

std::uint64_t
FftPipeline::flops(std::uint32_t n)
{
    return 5ull * n * log2u(n);
}

Pipeline::Job
FftPipeline::makeJob(Addr input, Addr output,
                     std::uint64_t transforms) const
{
    Job job{};
    job.input = input;
    job.output = output;
    job.input_bytes = 8ull * p_.n * transforms;
    job.output_bytes = job.input_bytes;
    job.items = static_cast<std::uint64_t>(p_.n) * transforms;
    return job;
}

} // namespace enzian::accel::hpcc
