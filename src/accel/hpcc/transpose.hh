/**
 * @file
 * Blocked all-to-all matrix transpose (HPCC "PTRANS" kernel).
 *
 * Models a tile-walking transpose engine: the address generator
 * reads the source matrix tile by tile — each tile a strided (2D)
 * DRAM access that pays the per-row activation cost a column walk
 * incurs — streams the tiles through a corner-turn crossbar, and
 * writes the transposed matrix back as one dense burst. The kernel
 * is bandwidth-bound by construction; its figure of merit is GB/s
 * moved (2 * rows * cols * 4 bytes per run), not flops.
 *
 * Host-memory input (job.input_remote) takes the ECI line-pull path
 * of the base pipeline instead of the strided DRAM walk.
 */

#ifndef ENZIAN_ACCEL_HPCC_TRANSPOSE_HH
#define ENZIAN_ACCEL_HPCC_TRANSPOSE_HH

#include <cstdint>
#include <vector>

#include "accel/pipeline.hh"

namespace enzian::accel::hpcc {

/** Reference transpose: row-major rows x cols @p in -> cols x rows. */
std::vector<float> transposeReference(const std::vector<float> &in,
                                      std::uint32_t rows,
                                      std::uint32_t cols);

/** The blocked transpose engine. */
class TransposePipeline : public Pipeline
{
  public:
    /** Kernel geometry. */
    struct Params
    {
        std::uint32_t rows = 256;
        std::uint32_t cols = 256;
        /** Square tile edge (must divide rows and cols). */
        std::uint32_t tile = 64;
        /** Elements the corner-turn crossbar moves per cycle. */
        std::uint32_t width = 16;
        /** Crossbar fill depth. */
        Cycles turn_depth = 8;
    };

    TransposePipeline(std::string name, EventQueue &eq,
                      const Config &cfg, const Params &p);

    const Params &params() const { return p_; }

    /** Bytes moved by one run (read + write). */
    std::uint64_t bytesMoved() const
    {
        return 2ull * 4ull * p_.rows * p_.cols;
    }

    /** Job transposing the matrix at @p input into @p output. */
    Job makeJob(Addr input, Addr output) const;

  protected:
    /** Tile-by-tile strided ingest (local DRAM jobs). */
    void ingest(Tick when, const Job &job,
                std::vector<std::uint8_t> &buf,
                std::function<void(Tick)> done) override;

  private:
    Params p_;
};

} // namespace enzian::accel::hpcc

#endif // ENZIAN_ACCEL_HPCC_TRANSPOSE_HH
