/**
 * @file
 * Blocked LU implementation.
 */

#include "accel/hpcc/lu.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/logging.hh"

namespace enzian::accel::hpcc {

namespace {

void
swapRows(float *a, std::uint32_t n, std::uint32_t r0, std::uint32_t r1)
{
    if (r0 == r1)
        return;
    for (std::uint32_t j = 0; j < n; ++j)
        std::swap(a[r0 * n + j], a[r1 * n + j]);
}

/**
 * Right-looking blocked LU with partial pivoting, panel width @p b.
 * Element updates are applied in increasing elimination-step order
 * in every phase, so the float results are bit-identical to the
 * unblocked reference.
 */
void
blockedLu(float *a, std::int32_t *piv, std::uint32_t n,
          std::uint32_t b)
{
    for (std::uint32_t k0 = 0; k0 < n; k0 += b) {
        const std::uint32_t kend = std::min(k0 + b, n);

        // Panel factorization: columns [k0, kend), pivoting over the
        // full column height, swaps applied to whole rows.
        for (std::uint32_t k = k0; k < kend; ++k) {
            std::uint32_t p = k;
            float amax = std::fabs(a[k * n + k]);
            for (std::uint32_t i = k + 1; i < n; ++i) {
                const float v = std::fabs(a[i * n + k]);
                if (v > amax) {
                    amax = v;
                    p = i;
                }
            }
            piv[k] = static_cast<std::int32_t>(p);
            swapRows(a, n, k, p);
            const float pivval = a[k * n + k];
            if (pivval == 0.0f)
                continue; // singular column, nothing to eliminate
            for (std::uint32_t i = k + 1; i < n; ++i) {
                const float l = a[i * n + k] / pivval;
                a[i * n + k] = l;
                for (std::uint32_t j = k + 1; j < kend; ++j)
                    a[i * n + j] -= l * a[k * n + j];
            }
        }

        // U12 = L11^{-1} A12 (unit lower triangular solve).
        for (std::uint32_t i = k0 + 1; i < kend; ++i)
            for (std::uint32_t k = k0; k < i; ++k) {
                const float l = a[i * n + k];
                for (std::uint32_t j = kend; j < n; ++j)
                    a[i * n + j] -= l * a[k * n + j];
            }

        // Trailing update: A22 -= L21 U12.
        for (std::uint32_t i = kend; i < n; ++i)
            for (std::uint32_t k = k0; k < kend; ++k) {
                const float l = a[i * n + k];
                for (std::uint32_t j = kend; j < n; ++j)
                    a[i * n + j] -= l * a[k * n + j];
            }
    }
}

} // namespace

void
luReference(std::vector<float> &a, std::vector<std::int32_t> &piv,
            std::uint32_t n)
{
    ENZIAN_ASSERT(a.size() >= static_cast<std::size_t>(n) * n,
                  "matrix too small");
    piv.assign(n, 0);
    for (std::uint32_t k = 0; k < n; ++k) {
        std::uint32_t p = k;
        float amax = std::fabs(a[k * n + k]);
        for (std::uint32_t i = k + 1; i < n; ++i) {
            const float v = std::fabs(a[i * n + k]);
            if (v > amax) {
                amax = v;
                p = i;
            }
        }
        piv[k] = static_cast<std::int32_t>(p);
        swapRows(a.data(), n, k, p);
        const float pivval = a[k * n + k];
        if (pivval == 0.0f)
            continue;
        for (std::uint32_t i = k + 1; i < n; ++i) {
            const float l = a[i * n + k] / pivval;
            a[i * n + k] = l;
            for (std::uint32_t j = k + 1; j < n; ++j)
                a[i * n + j] -= l * a[k * n + j];
        }
    }
}

std::vector<float>
luSolve(const std::vector<float> &lu,
        const std::vector<std::int32_t> &piv, std::vector<float> b,
        std::uint32_t n)
{
    // P b
    for (std::uint32_t k = 0; k < n; ++k)
        std::swap(b[k], b[static_cast<std::uint32_t>(piv[k])]);
    // L y = P b (unit lower)
    for (std::uint32_t i = 1; i < n; ++i) {
        float acc = b[i];
        for (std::uint32_t j = 0; j < i; ++j)
            acc -= lu[i * n + j] * b[j];
        b[i] = acc;
    }
    // U x = y
    for (std::uint32_t ii = n; ii-- > 0;) {
        float acc = b[ii];
        for (std::uint32_t j = ii + 1; j < n; ++j)
            acc -= lu[ii * n + j] * b[j];
        b[ii] = acc / lu[ii * n + ii];
    }
    return b;
}

double
residualInf(const std::vector<float> &a, const std::vector<float> &x,
            const std::vector<float> &b, std::uint32_t n)
{
    double worst = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        double acc = -static_cast<double>(b[i]);
        for (std::uint32_t j = 0; j < n; ++j)
            acc += static_cast<double>(a[i * n + j]) *
                   static_cast<double>(x[j]);
        worst = std::max(worst, std::fabs(acc));
    }
    return worst;
}

LuPipeline::LuPipeline(std::string name, EventQueue &eq,
                       const Config &cfg, const Params &p)
    : Pipeline(std::move(name), eq, cfg), p_(p)
{
    ENZIAN_ASSERT(p_.n > 0 && p_.block > 0 && p_.macs > 0 &&
                      p_.swap_width > 0,
                  "bad LU geometry");
    const double n = static_cast<double>(p_.n);
    const double b = static_cast<double>(p_.block);

    // Per-item (per-row) initiation intervals from the phase work:
    //   panel:  ~n^2 b / 4 MACs total over the run, `block` MACs wide
    //   laswp:  ~n^2 elements through a `swap_width`-wide crossbar
    //   update: ~n^3 / 3 MACs through the `macs`-wide systolic array
    // The update term dominates for any realistic geometry and sets
    // the HPL flop rate at 2 * macs flops per fabric cycle.
    const double ii_panel = n * b / (4.0 * p_.block);
    const double ii_swap = n / static_cast<double>(p_.swap_width);
    const double ii_update = n * n / (3.0 * p_.macs);

    const std::uint32_t order = p_.n;
    const std::uint32_t width = p_.block;
    // The cascade's functional transform runs once here: the blocked
    // algorithm interleaves panel/swap/update per column block, so
    // splitting the arithmetic across the stage fns would recompute
    // shared state. The later stages carry their timing share.
    addStage("panel", p_.panel_depth, ii_panel,
             [order, width](std::vector<std::uint8_t> &buf) {
                 buf.resize(4ull * order * order + 4ull * order);
                 auto *a = reinterpret_cast<float *>(buf.data());
                 auto *piv = reinterpret_cast<std::int32_t *>(
                     buf.data() + 4ull * order * order);
                 blockedLu(a, piv, order, width);
             });
    addStage("laswp", 2, ii_swap,
             [](std::vector<std::uint8_t> &) {});
    addStage("update", 4, ii_update,
             [](std::vector<std::uint8_t> &) {});
}

std::uint64_t
LuPipeline::flops(std::uint32_t n)
{
    const std::uint64_t nn = n;
    return 2ull * nn * nn * nn / 3ull;
}

Pipeline::Job
LuPipeline::makeJob(Addr input, Addr output) const
{
    Job job{};
    job.input = input;
    job.output = output;
    job.input_bytes = inputBytes();
    job.output_bytes = outputBytes();
    job.items = p_.n;
    return job;
}

} // namespace enzian::accel::hpcc
