/**
 * @file
 * Gradient-boosted decision tree ensembles.
 *
 * The functional side of the Figure 9 experiment (inference over
 * GBDT ensembles, Owaida et al. [52,53]): a real ensemble of binary
 * decision trees over dense float feature vectors, with deterministic
 * synthetic generation so the FPGA engine's outputs can be checked
 * bit-for-bit against this reference.
 */

#ifndef ENZIAN_ACCEL_GBDT_HH
#define ENZIAN_ACCEL_GBDT_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"

namespace enzian::accel {

/** One node of a complete binary decision tree. */
struct TreeNode
{
    /** Feature index compared at this node (internal nodes). */
    std::uint32_t feature = 0;
    /** Split threshold. */
    float threshold = 0.0f;
    /** Leaf contribution (leaves only). */
    float value = 0.0f;
    bool isLeaf = false;
    /** Children indices in the tree's node array. */
    std::int32_t left = -1;
    std::int32_t right = -1;
};

/** A single decision tree stored as a node array (root at 0). */
class DecisionTree
{
  public:
    explicit DecisionTree(std::vector<TreeNode> nodes);

    /** Additive score of @p features for this tree. */
    float score(const float *features) const;

    std::size_t nodeCount() const { return nodes_.size(); }
    std::uint32_t depth() const { return depth_; }

  private:
    std::vector<TreeNode> nodes_;
    std::uint32_t depth_;
};

/** A boosted ensemble: the prediction is the sum of tree scores. */
class GbdtEnsemble
{
  public:
    explicit GbdtEnsemble(std::vector<DecisionTree> trees);

    /** Sum of all tree scores. */
    float predict(const float *features) const;

    std::size_t treeCount() const { return trees_.size(); }
    std::size_t totalNodes() const;

  private:
    std::vector<DecisionTree> trees_;
};

/**
 * Build a deterministic synthetic ensemble.
 *
 * @param seed generator seed
 * @param trees number of trees
 * @param depth depth of each (complete) tree
 * @param features feature-vector width the trees index into
 */
GbdtEnsemble makeEnsemble(std::uint64_t seed, std::uint32_t trees,
                          std::uint32_t depth, std::uint32_t features);

/** Generate @p count feature vectors of width @p features. */
std::vector<float> makeTuples(std::uint64_t seed, std::uint64_t count,
                              std::uint32_t features);

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_GBDT_HH
