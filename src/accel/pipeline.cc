/**
 * @file
 * Pipeline base implementation.
 */

#include "accel/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/logging.hh"
#include "cache/moesi.hh"
#include "eci/remote_agent.hh"
#include "fpga/scheduler.hh"
#include "fpga/shell.hh"
#include "obs/request_context.hh"
#include "obs/span_tracer.hh"

namespace enzian::accel {

Pipeline::Pipeline(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    ENZIAN_ASSERT(cfg_.mc && cfg_.map && cfg_.clock,
                  "pipeline '%s' needs mc/map/clock",
                  SimObject::name().c_str());
    ENZIAN_ASSERT(cfg_.mem_bw > 0, "pipeline '%s': zero memory bw",
                  SimObject::name().c_str());
    stats().addCounter("jobs", &jobs_);
    stats().addCounter("bytes_in", &bytesIn_);
    stats().addCounter("bytes_out", &bytesOut_);
    stats().addAccumulator("service_ns", &serviceNs_);
}

Pipeline::~Pipeline() = default;

void
Pipeline::addStage(std::string name, Cycles fill_latency,
                   double cycles_per_item, StageFn fn)
{
    ENZIAN_ASSERT(!inflight_ && queue_.empty(),
                  "stage added to running pipeline '%s'",
                  SimObject::name().c_str());
    ENZIAN_ASSERT(cycles_per_item >= 0.0,
                  "negative initiation interval");
    Stage s;
    s.track = SimObject::name() + "." + name;
    s.name = std::move(name);
    s.fill = fill_latency;
    s.ii = cycles_per_item;
    s.fn = std::move(fn);
    stages_.push_back(std::move(s));
    stats().addAccumulator("stage_" + stages_.back().name +
                               "_busy_cycles",
                           &stages_.back().busy);
}

Cycles
Pipeline::serviceCycles(std::uint64_t items) const
{
    Cycles fill = 0;
    double steady = 0.0;
    for (const auto &s : stages_) {
        fill += s.fill;
        steady = std::max(steady, s.ii * static_cast<double>(items));
    }
    return fill + static_cast<Cycles>(std::ceil(steady));
}

Tick
Pipeline::serviceTicks(std::uint64_t items) const
{
    return cfg_.clock->cyclesToTicks(serviceCycles(items));
}

Tick
Pipeline::scheduledTicks(const Job &job) const
{
    // Ingest + writeback charged at the sustained DRAM bandwidth
    // (double buffering overlaps them with compute on real shells,
    // but the scheduler charges the un-overlapped bound: it has no
    // visibility into the batch interleaving).
    const std::uint64_t moved =
        job.input_bytes + (job.out ? 0 : job.output_bytes);
    const double xfer_s = static_cast<double>(moved) / cfg_.mem_bw;
    return units::sec(xfer_s) + serviceTicks(job.items);
}

double
Pipeline::stageOccupancy(std::size_t i) const
{
    const Accumulator &busy = stages_[i].busy;
    if (busy.count() == 0)
        return 0.0;
    // Each sample is busy cycles of one job; the cascade ran
    // serviceCycles for that job. Jobs in one pipeline share the
    // items profile in practice, so mean-over-mean is exact there
    // and a fair summary otherwise.
    const double cascade = serviceNs_.mean() *
                           cfg_.clock->frequencyHz() / 1e9;
    return cascade > 0.0 ? busy.mean() / cascade : 0.0;
}

void
Pipeline::bindSlot(fpga::Shell *shell, std::uint32_t slot)
{
    pinShell_ = shell;
    pinSlot_ = slot;
}

void
Pipeline::pin()
{
    if (pinShell_)
        pinShell_->pinSlot(pinSlot_);
}

void
Pipeline::unpin()
{
    if (pinShell_)
        pinShell_->unpinSlot(pinSlot_);
}

void
Pipeline::process(Tick when, Job job, std::function<void(Tick)> done)
{
    ENZIAN_ASSERT(!stages_.empty(), "pipeline '%s' has no stages",
                  name().c_str());
    ENZIAN_ASSERT(job.input_bytes > 0, "empty pipeline job");
    // Jobs issued under an ambient request context inherit its flow
    // id, stitching the pipeline's stage spans into that request.
    if (job.flow_id == 0)
        job.flow_id = obs::currentFlowId();
    ++backlog_;
    Pending p{when, std::move(job), std::move(done)};
    if (cfg_.serialize && inflight_) {
        queue_.push_back(std::move(p));
        return;
    }
    run(std::move(p));
}

void
Pipeline::run(Pending p)
{
    const Tick start =
        cfg_.serialize ? std::max(p.when, freeAt_) : p.when;
    inflight_ = true;
    pin();
    auto buf = std::vector<std::uint8_t>(p.job.input_bytes);
    // The ingest may resolve synchronously (local DRAM: the
    // completion tick carries the timing) or via the event queue
    // (ECI line fills); finish() handles both.
    auto shared = std::make_shared<Pending>(std::move(p));
    auto bufp = std::make_shared<std::vector<std::uint8_t>>(
        std::move(buf));
    ingest(start, shared->job, *bufp,
           [this, shared, bufp](Tick t0) {
               finish(t0, *shared, std::move(*bufp));
           });
}

void
Pipeline::ingest(Tick when, const Job &job,
                 std::vector<std::uint8_t> &buf,
                 std::function<void(Tick)> done)
{
    if (!job.input_remote) {
        const Tick t = cfg_.mc
                           ->read(when,
                                  cfg_.map->offsetInRegion(job.input),
                                  buf.data(), buf.size())
                           .done;
        ENZIAN_SPAN(name() + ".ingest", "dram-burst", when, t);
        ENZIAN_FLOW_STEP(name() + ".ingest", "ingest", when,
                         job.flow_id);
        done(t);
        return;
    }

    // Host-memory ingest: the shell's DMA engine pulls the batch
    // line by line over ECI (uncached: the batch is read once).
    ENZIAN_ASSERT(cfg_.remote,
                  "pipeline '%s': remote ingest without an agent",
                  name().c_str());
    ENZIAN_ASSERT(job.input_bytes % cache::lineSize == 0 &&
                      cache::isLineAligned(job.input),
                  "remote ingest must be line aligned");
    const std::uint64_t lines = job.input_bytes / cache::lineSize;
    auto remaining = std::make_shared<std::uint64_t>(lines);
    auto last = std::make_shared<Tick>(0);
    const Tick issued = when;
    const std::string track = name() + ".ingest";
    const std::uint64_t flow = job.flow_id;
    std::uint8_t *base = buf.data();
    for (std::uint64_t l = 0; l < lines; ++l) {
        cfg_.remote->readLineUncached(
            job.input + l * cache::lineSize,
            base + l * cache::lineSize,
            [this, remaining, last, issued, track, flow,
             done](Tick t) {
                *last = std::max(*last, t);
                if (--*remaining > 0)
                    return;
                ENZIAN_SPAN(track, "eci-pull", issued, *last);
                ENZIAN_FLOW_STEP(track, "ingest", issued, flow);
                done(*last);
            });
    }
}

Tick
Pipeline::writeback(Tick when, const Job &job,
                    const std::vector<std::uint8_t> &buf)
{
    if (job.out) {
        // Reply-buffer writeback (e.g. an ECI line fill): the
        // interconnect charges the transfer, not the pipeline.
        std::memcpy(job.out, buf.data(),
                    std::min<std::uint64_t>(buf.size(),
                                            job.output_bytes
                                                ? job.output_bytes
                                                : buf.size()));
        return when;
    }
    ENZIAN_ASSERT(job.output_bytes >= buf.size(),
                  "pipeline '%s': writeback overflows the output "
                  "region (%zu > %llu)",
                  name().c_str(), buf.size(),
                  static_cast<unsigned long long>(job.output_bytes));
    const Tick t = cfg_.mc
                       ->write(when,
                               cfg_.map->offsetInRegion(job.output),
                               buf.data(), buf.size())
                       .done;
    ENZIAN_SPAN(name() + ".writeback", "dram-burst", when, t);
    return t;
}

void
Pipeline::finish(Tick t0, const Pending &p,
                 std::vector<std::uint8_t> buf)
{
    const Job &job = p.job;
    bytesIn_.inc(job.input_bytes);

    // Stage cascade: functional transforms plus the pipelined timing
    // model. Stage s starts once the fills of the earlier stages have
    // drained and is busy for its own fill + ii * items.
    Tick stage_start = t0;
    for (auto &s : stages_) {
        s.fn(buf);
        const Cycles busy =
            s.fill + static_cast<Cycles>(std::ceil(
                         s.ii * static_cast<double>(job.items)));
        s.busy.sample(static_cast<double>(busy));
        const Tick end =
            stage_start + cfg_.clock->cyclesToTicks(busy);
        ENZIAN_SPAN(s.track, s.name.c_str(), stage_start, end);
        ENZIAN_FLOW_STEP(s.track, s.name.c_str(), stage_start,
                         job.flow_id);
        stage_start += cfg_.clock->cyclesToTicks(s.fill);
    }
    const Tick drained = t0 + serviceTicks(job.items);
    const Tick end = writeback(drained, job, buf);
    bytesOut_.inc(buf.size());
    jobs_.inc();
    serviceNs_.sample(units::toNanos(drained - t0));
    ENZIAN_FLOW_STEP(name() + ".writeback", "writeback", drained,
                     job.flow_id);

    freeAt_ = std::max(freeAt_, end);
    inflight_ = false;
    unpin();
    --backlog_;
    if (p.done)
        p.done(end);
    if (cfg_.serialize && !queue_.empty() && !inflight_) {
        Pending next = std::move(queue_.front());
        queue_.pop_front();
        run(std::move(next));
    }
}

std::uint64_t
Pipeline::runUnder(fpga::VfpgaScheduler &sched, Job job,
                   std::function<void(Tick)> done)
{
    ENZIAN_ASSERT(!job.input_remote,
                  "scheduled jobs ingest local DRAM only");
    ENZIAN_ASSERT(!stages_.empty(), "pipeline '%s' has no stages",
                  name().c_str());
    if (job.flow_id == 0)
        job.flow_id = obs::currentFlowId();
    const Tick runtime = scheduledTicks(job);
    const Tick submitted = now();
    ++backlog_;
    return sched.submit(
        name(), runtime,
        [this, job, submitted, done = std::move(done)](Tick t) {
            // Functional compute at completion: the batch's data is
            // consistent with the fabric having run it, and the
            // scheduler alone charged the time (incl. preemption).
            std::vector<std::uint8_t> buf(job.input_bytes);
            cfg_.mc->store().read(cfg_.map->offsetInRegion(job.input),
                                  buf.data(), buf.size());
            bytesIn_.inc(job.input_bytes);
            for (auto &s : stages_) {
                s.fn(buf);
                const Cycles busy =
                    s.fill +
                    static_cast<Cycles>(std::ceil(
                        s.ii * static_cast<double>(job.items)));
                s.busy.sample(static_cast<double>(busy));
            }
            if (job.out) {
                std::memcpy(job.out, buf.data(), buf.size());
            } else {
                ENZIAN_ASSERT(job.output_bytes >= buf.size(),
                              "scheduled job output region too small");
                cfg_.mc->store().write(
                    cfg_.map->offsetInRegion(job.output), buf.data(),
                    buf.size());
            }
            bytesOut_.inc(buf.size());
            jobs_.inc();
            serviceNs_.sample(units::toNanos(serviceTicks(job.items)));
            ENZIAN_SPAN(name() + ".sched", "job+queue", submitted, t);
            ENZIAN_FLOW_STEP(name() + ".sched", "complete", submitted,
                             job.flow_id);
            --backlog_;
            if (done)
                done(t);
        });
}

} // namespace enzian::accel
