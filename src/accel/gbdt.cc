/**
 * @file
 * GBDT ensemble implementation.
 */

#include "accel/gbdt.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::accel {

DecisionTree::DecisionTree(std::vector<TreeNode> nodes)
    : nodes_(std::move(nodes))
{
    if (nodes_.empty())
        fatal("empty decision tree");
    // Depth by traversal (trees are complete, but compute anyway).
    std::uint32_t max_depth = 0;
    std::vector<std::pair<std::int32_t, std::uint32_t>> stack{{0, 1}};
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const TreeNode &n = nodes_[static_cast<std::size_t>(idx)];
        if (!n.isLeaf) {
            ENZIAN_ASSERT(n.left >= 0 && n.right >= 0 &&
                              static_cast<std::size_t>(n.left) <
                                  nodes_.size() &&
                              static_cast<std::size_t>(n.right) <
                                  nodes_.size(),
                          "malformed tree node");
            stack.push_back({n.left, d + 1});
            stack.push_back({n.right, d + 1});
        }
    }
    depth_ = max_depth;
}

float
DecisionTree::score(const float *features) const
{
    const TreeNode *n = &nodes_[0];
    while (!n->isLeaf) {
        n = features[n->feature] < n->threshold
                ? &nodes_[static_cast<std::size_t>(n->left)]
                : &nodes_[static_cast<std::size_t>(n->right)];
    }
    return n->value;
}

GbdtEnsemble::GbdtEnsemble(std::vector<DecisionTree> trees)
    : trees_(std::move(trees))
{
    if (trees_.empty())
        fatal("empty GBDT ensemble");
}

float
GbdtEnsemble::predict(const float *features) const
{
    float sum = 0.0f;
    for (const auto &t : trees_)
        sum += t.score(features);
    return sum;
}

std::size_t
GbdtEnsemble::totalNodes() const
{
    std::size_t n = 0;
    for (const auto &t : trees_)
        n += t.nodeCount();
    return n;
}

GbdtEnsemble
makeEnsemble(std::uint64_t seed, std::uint32_t trees,
             std::uint32_t depth, std::uint32_t features)
{
    if (trees == 0 || depth == 0 || depth > 20 || features == 0)
        fatal("bad ensemble shape (%u trees, depth %u, %u features)",
              trees, depth, features);
    Rng rng(seed);
    std::vector<DecisionTree> out;
    out.reserve(trees);
    const std::uint32_t internal = (1u << (depth - 1)) - 1;
    const std::uint32_t total = (1u << depth) - 1;
    for (std::uint32_t t = 0; t < trees; ++t) {
        std::vector<TreeNode> nodes(total);
        for (std::uint32_t i = 0; i < total; ++i) {
            TreeNode &n = nodes[i];
            if (i < internal) {
                n.isLeaf = false;
                n.feature =
                    static_cast<std::uint32_t>(rng.below(features));
                n.threshold =
                    static_cast<float>(rng.uniform(-1.0, 1.0));
                n.left = static_cast<std::int32_t>(2 * i + 1);
                n.right = static_cast<std::int32_t>(2 * i + 2);
            } else {
                n.isLeaf = true;
                n.value =
                    static_cast<float>(rng.uniform(-0.1, 0.1));
            }
        }
        out.emplace_back(std::move(nodes));
    }
    return GbdtEnsemble(std::move(out));
}

std::vector<float>
makeTuples(std::uint64_t seed, std::uint64_t count,
           std::uint32_t features)
{
    Rng rng(seed ^ 0x74757065ull);
    std::vector<float> tuples(count * features);
    for (auto &v : tuples)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return tuples;
}

} // namespace enzian::accel
