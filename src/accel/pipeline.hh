/**
 * @file
 * Common base for streaming vFPGA accelerators: ingest -> N pipeline
 * stages -> writeback.
 *
 * Every accelerator on the shell moves data the same way: a batch is
 * ingested from memory (FPGA DRAM directly, or host memory line by
 * line over ECI), streams through a fixed cascade of compute stages,
 * and the result is written back (to DRAM, or straight into a reply
 * buffer such as an ECI line fill). The base class owns that skeleton
 * so a new accelerator is one derived class registering its stages;
 * it provides
 *
 *  - the timing model: a stage contributes a fill latency (pipeline
 *    depth) plus an initiation interval per item; stages overlap in
 *    steady state, so a batch of N items takes
 *        sum(fill_s) + max_s(ceil(ii_s * N)) cycles
 *    in the fabric clock, after the ingest completes;
 *  - per-stage occupancy statistics (busy cycles per job) and
 *    job/byte counters, published in the global registry;
 *  - Perfetto spans per stage (one track per stage, so each stage is
 *    a swim lane) and flow-id propagation: a job carries the flow id
 *    of the request that spawned it and every stage span is stitched
 *    into that flow;
 *  - two execution modes: process() walks the real memory system and
 *    returns exact completion ticks (used standalone and by the
 *    ECI-facing adapters), runUnder() submits the job to a
 *    fpga::VfpgaScheduler as a schedulable app with the analytic
 *    runtime, computing functionally at completion - so HPCC kernels
 *    run as multi-tenant jobs with preemption charged by the
 *    scheduler, not double-counted here.
 */

#ifndef ENZIAN_ACCEL_PIPELINE_HH
#define ENZIAN_ACCEL_PIPELINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "sim/clock_domain.hh"
#include "sim/sim_object.hh"

namespace enzian::eci {
class RemoteAgent;
} // namespace enzian::eci

namespace enzian::fpga {
class Shell;
class VfpgaScheduler;
} // namespace enzian::fpga

namespace enzian::accel {

/** Streaming accelerator skeleton: ingest -> stages -> writeback. */
class Pipeline : public SimObject
{
  public:
    /** Pipeline configuration. */
    struct Config
    {
        /** The node's memory controller (ingest + writeback). */
        mem::MemoryController *mc = nullptr;
        /** The machine's address partition. */
        const mem::AddressMap *map = nullptr;
        /** Fabric clock the stages are clocked in. */
        ClockDomain *clock = nullptr;
        /**
         * Remote agent for host-memory ingest over ECI (jobs with
         * input_remote). Null = local-DRAM ingest only.
         */
        eci::RemoteAgent *remote = nullptr;
        /**
         * FIFO-serialize jobs (one batch in the fabric at a time).
         * Line-fill adapters (rgb2y) turn this off: concurrent line
         * fills overlap in the real pipeline and the DRAM controller
         * is the serialization point.
         */
        bool serialize = true;
        /**
         * Sustained memory bandwidth charged for ingest + writeback
         * by the analytic model (runUnder); bytes/s.
         */
        double mem_bw = 19.2e9;
    };

    /** One batch of work through the pipeline. */
    struct Job
    {
        /** Physical input address (or host address if input_remote). */
        Addr input = 0;
        std::uint64_t input_bytes = 0;
        /** Physical output address (DRAM writeback) ... */
        Addr output = 0;
        std::uint64_t output_bytes = 0;
        /** ... or a direct reply buffer (no DRAM writeback cost). */
        std::uint8_t *out = nullptr;
        /** Elements for the steady-state timing term. */
        std::uint64_t items = 1;
        /** Ingest line by line over ECI from host memory. */
        bool input_remote = false;
        /** Perfetto flow id of the spawning request (0 = untraced). */
        std::uint64_t flow_id = 0;
    };

    /** In-place functional transform of one stage (may resize). */
    using StageFn = std::function<void(std::vector<std::uint8_t> &)>;

    Pipeline(std::string name, EventQueue &eq, const Config &cfg);
    ~Pipeline() override;

    /**
     * Run @p job through the timed pipeline starting no earlier than
     * @p when: timed ingest from the memory system, functional
     * stages with the pipeline timing model, timed writeback. @p done
     * fires with the completion tick. Local ingest resolves
     * synchronously (the completion tick carries the timing); remote
     * ingest completes through the event queue.
     */
    void process(Tick when, Job job, std::function<void(Tick)> done);

    /**
     * Submit @p job to @p sched as a schedulable vFPGA app with the
     * analytic runtime (scheduledTicks). The functional compute and
     * the writeback happen at the scheduler's completion tick, so
     * preemption and reconfiguration are charged by the scheduler
     * alone. Remote ingest is not supported here (the scheduler's
     * runtime model is local).
     */
    std::uint64_t runUnder(fpga::VfpgaScheduler &sched, Job job,
                           std::function<void(Tick)> done);

    /**
     * Pin vFPGA slot @p slot of @p shell while a job is in flight:
     * reconfiguring a slot under an active pipeline batch is a fatal
     * error (the fabric state would be torn mid-computation).
     */
    void bindSlot(fpga::Shell *shell, std::uint32_t slot);

    /** Stage-cascade cycles for @p items: sum(fill) + max(ii*items). */
    Cycles serviceCycles(std::uint64_t items) const;

    /** serviceCycles in ticks of the fabric clock. */
    Tick serviceTicks(std::uint64_t items) const;

    /** Analytic end-to-end runtime of @p job (runUnder's charge). */
    Tick scheduledTicks(const Job &job) const;

    // --- introspection / statistics ----------------------------------
    std::size_t stageCount() const { return stages_.size(); }
    const std::string &stageName(std::size_t i) const
    {
        return stages_[i].name;
    }
    /** Busy-cycles-per-job accumulator of stage @p i. */
    const Accumulator &stageBusy(std::size_t i) const
    {
        return stages_[i].busy;
    }
    /**
     * Occupancy of stage @p i: the fraction of the stage cascade's
     * cycles this stage's hardware was actually busy, averaged over
     * completed jobs (0 when no job completed yet).
     */
    double stageOccupancy(std::size_t i) const;

    std::uint64_t jobsCompleted() const { return jobs_.value(); }
    std::uint64_t bytesIn() const { return bytesIn_.value(); }
    std::uint64_t bytesOut() const { return bytesOut_.value(); }
    /** Jobs currently queued or in flight (serialized pipelines). */
    std::size_t backlog() const { return backlog_; }

    const Config &config() const { return cfg_; }

  protected:
    /**
     * Register the next stage of the cascade (constructor-time only).
     * @param fill_latency pipeline depth in fabric cycles
     * @param cycles_per_item steady-state initiation interval
     * @param fn functional transform applied to the batch buffer
     */
    void addStage(std::string name, Cycles fill_latency,
                  double cycles_per_item, StageFn fn);

    /**
     * Timed ingest hook: fill @p buf (already sized to input_bytes)
     * and invoke @p done with the tick of the last byte. The default
     * reads local DRAM in one burst, or line by line over ECI for
     * input_remote jobs. Overrides model access patterns (e.g. the
     * transpose's strided tile reads).
     */
    virtual void ingest(Tick when, const Job &job,
                        std::vector<std::uint8_t> &buf,
                        std::function<void(Tick)> done);

    /**
     * Timed writeback hook: store @p buf, return the completion tick.
     * Default: one DRAM burst to job.output, or a free copy into
     * job.out (the reply buffer is the interconnect's problem).
     */
    virtual Tick writeback(Tick when, const Job &job,
                           const std::vector<std::uint8_t> &buf);

  private:
    struct Stage
    {
        std::string name;
        Cycles fill = 0;
        double ii = 0.0; ///< cycles per item in steady state
        StageFn fn;
        Accumulator busy; ///< busy cycles per job
        std::string track; ///< Perfetto track ("<pipe>.<stage>")
    };

    struct Pending
    {
        Tick when;
        Job job;
        std::function<void(Tick)> done;
    };

    /** Dispatch @p p now (ingest + stages + writeback). */
    void run(Pending p);
    /** Stages + writeback once ingest finished at @p t0. */
    void finish(Tick t0, const Pending &p,
                std::vector<std::uint8_t> buf);
    void pin();
    void unpin();

    Config cfg_;
    // A deque, not a vector: each stage's busy Accumulator is
    // registered with the stats registry by address at addStage()
    // time, so element addresses must survive later insertions.
    std::deque<Stage> stages_;
    std::deque<Pending> queue_; ///< waiting jobs (serialized mode)
    bool inflight_ = false;
    std::size_t backlog_ = 0;
    Tick freeAt_ = 0;
    fpga::Shell *pinShell_ = nullptr;
    std::uint32_t pinSlot_ = 0;
    Counter jobs_;
    Counter bytesIn_;
    Counter bytesOut_;
    Accumulator serviceNs_;
};

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_PIPELINE_HH
