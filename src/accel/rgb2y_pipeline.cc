/**
 * @file
 * Coherent data-reduction pipeline implementation.
 */

#include "accel/rgb2y_pipeline.hh"

#include <utility>
#include <vector>

#include "base/logging.hh"
#include "cache/moesi.hh"

namespace enzian::accel {

const char *
toString(Reduction r)
{
    switch (r) {
      case Reduction::None:
        return "none";
      case Reduction::Y8:
        return "8bpp";
      case Reduction::Y4:
        return "4bpp";
    }
    return "?";
}

std::uint32_t
pixelsPerLine(Reduction r)
{
    switch (r) {
      case Reduction::None:
        return cache::lineSize / 4; // 32 raw pixels
      case Reduction::Y8:
        return cache::lineSize; // 128
      case Reduction::Y4:
        return cache::lineSize * 2; // 256
    }
    panic("bad reduction");
}

std::uint32_t
burstBytesPerLine(Reduction r)
{
    return pixelsPerLine(r) * 4;
}

void
rgb2yReference(const std::uint8_t *rgba, std::uint64_t pixels,
               std::uint8_t *y)
{
    for (std::uint64_t i = 0; i < pixels; ++i) {
        const std::uint32_t r = rgba[i * 4 + 0];
        const std::uint32_t g = rgba[i * 4 + 1];
        const std::uint32_t b = rgba[i * 4 + 2];
        y[i] = static_cast<std::uint8_t>((77 * r + 150 * g + 29 * b) >>
                                         8);
    }
}

void
quantize4Reference(const std::uint8_t *y, std::uint64_t pixels,
                   std::uint8_t *packed)
{
    for (std::uint64_t i = 0; i + 1 < pixels; i += 2) {
        const std::uint8_t hi = y[i] >> 4;
        const std::uint8_t lo = y[i + 1] >> 4;
        packed[i / 2] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
    if (pixels % 2)
        packed[pixels / 2] =
            static_cast<std::uint8_t>((y[pixels - 1] >> 4) << 4);
}

namespace {

Pipeline::Config
rgb2yConfig(mem::MemoryController &mc, const mem::AddressMap &map,
            ClockDomain &clock)
{
    Pipeline::Config c;
    c.mc = &mc;
    c.map = &map;
    c.clock = &clock;
    // The hardware pipeline is free running: concurrent refills
    // overlap, and the DRAM controller serializes their bursts.
    c.serialize = false;
    return c;
}

} // namespace

Rgb2yPipeline::Rgb2yPipeline(std::string name,
                             mem::MemoryController &mc,
                             const mem::AddressMap &map,
                             ClockDomain &clock, Reduction reduction,
                             std::uint32_t pipeline_cycles)
    : Pipeline(std::move(name), mc.eventq(),
               rgb2yConfig(mc, map, clock))
{
    const std::uint32_t npx = pixelsPerLine(reduction);
    addStage("rgb2y", pipeline_cycles, 0.0,
             [npx, reduction](std::vector<std::uint8_t> &buf) {
                 if (reduction == Reduction::None)
                     return; // identity view, line is the raw pixels
                 std::vector<std::uint8_t> y(npx);
                 rgb2yReference(buf.data(), npx, y.data());
                 if (reduction == Reduction::Y8) {
                     buf = std::move(y);
                 } else {
                     buf.resize(npx / 2);
                     quantize4Reference(y.data(), npx, buf.data());
                 }
             });
}

Rgb2yLineSource::Rgb2yLineSource(mem::MemoryController &mc,
                                 const mem::AddressMap &map,
                                 ClockDomain &clock, const Config &cfg)
    : cfg_(cfg), passthrough_(mc, map),
      pipe_(mc.name() + ".rgb2y", mc, map, clock, cfg.reduction,
            cfg.pipeline_cycles)
{
    ENZIAN_ASSERT(cache::isLineAligned(cfg_.view_base),
                  "view base must be line aligned");
}

bool
Rgb2yLineSource::inView(Addr addr) const
{
    return addr >= cfg_.view_base &&
           addr < cfg_.view_base + cfg_.view_size;
}

void
Rgb2yLineSource::readLine(Tick when, Addr addr, std::uint8_t *out,
                          Done done)
{
    if (!inView(addr) || cfg_.reduction == Reduction::None) {
        passthrough_.readLine(when, addr, out, std::move(done));
        return;
    }

    ++transformed_;
    // Which slice of the input does this view line cover?
    const std::uint64_t line_index =
        (addr - cfg_.view_base) / cache::lineSize;
    const std::uint32_t burst = burstBytesPerLine(cfg_.reduction);

    Pipeline::Job job{};
    job.input = cfg_.input_base +
                static_cast<std::uint64_t>(line_index) * burst;
    job.input_bytes = burst;
    job.out = out;
    job.output_bytes = cache::lineSize;
    job.items = pixelsPerLine(cfg_.reduction);
    pipe_.process(when, job, std::move(done));
}

void
Rgb2yLineSource::writeLine(Tick when, Addr addr,
                           const std::uint8_t *data, Done done)
{
    ENZIAN_ASSERT(!inView(addr) || cfg_.reduction == Reduction::None,
                  "write into the read-only logical view at %llx",
                  static_cast<unsigned long long>(addr));
    passthrough_.writeLine(when, addr, data, std::move(done));
}

} // namespace enzian::accel
