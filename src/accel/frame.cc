/**
 * @file
 * Synthetic frame generation.
 */

#include "accel/frame.hh"

namespace enzian::accel {

Frame
makeFrame(std::uint64_t seed, std::uint32_t frame_index,
          std::uint32_t width, std::uint32_t height)
{
    Frame f;
    f.width = width;
    f.height = height;
    f.rgba.resize(f.bytes());
    Rng rng(seed ^ (static_cast<std::uint64_t>(frame_index) << 32));

    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            const std::size_t idx =
                (static_cast<std::size_t>(y) * width + x) * 4;
            const auto noise =
                static_cast<std::uint8_t>(rng.below(32));
            f.rgba[idx + 0] = static_cast<std::uint8_t>(
                (x * 255 / width + frame_index) & 0xff);
            f.rgba[idx + 1] = static_cast<std::uint8_t>(
                (y * 255 / height) & 0xff);
            f.rgba[idx + 2] = static_cast<std::uint8_t>(
                ((x + y + noise) * 2) & 0xff);
            f.rgba[idx + 3] = 0; // padding byte
        }
    }
    return f;
}

void
preloadFrame(mem::BackingStore &store, Addr offset, const Frame &frame)
{
    store.write(offset, frame.rgba.data(), frame.rgba.size());
}

} // namespace enzian::accel
