/**
 * @file
 * Machine-vision pipeline of the custom-memory-controller experiment.
 *
 * The paper's workload (section 5.4) is RGB-to-luminance conversion
 * followed by a 3x3 gaussian blur ("roughly 5x the arithmetic
 * intensity of the conversion"), optionally edge detection. The FPGA
 * can substitute for the soft RGB2Y stage by pointing the blur input
 * at the FPGA-backed view addresses; nothing else changes.
 *
 * This header provides (a) functional reference implementations used
 * to verify the hardware pipeline bit-for-bit, and (b) the calibrated
 * StreamKernel descriptors that drive the Figure 11 / Table 1 timing
 * reproduction (calibration derivations in the .cc).
 */

#ifndef ENZIAN_ACCEL_VISION_PIPELINE_HH
#define ENZIAN_ACCEL_VISION_PIPELINE_HH

#include <vector>

#include "accel/frame.hh"
#include "accel/rgb2y_pipeline.hh"
#include "cpu/core.hh"

namespace enzian::accel {

/**
 * 3x3 gaussian blur (kernel 1 2 1 / 2 4 2 / 1 2 1, /16) over an 8-bit
 * luminance plane; borders are clamped.
 */
void gaussianBlur3x3(const std::uint8_t *y, std::uint32_t width,
                     std::uint32_t height, std::uint8_t *out);

/** 3x3 Sobel edge magnitude (the paper's optional third stage). */
void sobelEdge(const std::uint8_t *y, std::uint32_t width,
               std::uint32_t height, std::uint8_t *out);

/** Unpack 4-bit packed luminance back to 8-bit (value << 4). */
void unpack4(const std::uint8_t *packed, std::uint64_t pixels,
             std::uint8_t *y);

/**
 * Run the full software pipeline over an RGBA frame: rgb2y then blur.
 * Returns the blurred luminance plane (for functional checks).
 */
std::vector<std::uint8_t> softwarePipeline(const Frame &frame);

/**
 * The per-pixel stream kernel of the Figure 11 workload for a given
 * reduction variant. Parameters are calibrated from Table 1 and the
 * Fig 11 curves; derivations are documented in the implementation.
 */
cpu::StreamKernel fig11Kernel(Reduction r);

/** Interconnect bytes per pixel for a variant (4 / 1 / 0.5). */
double interconnectBytesPerPixel(Reduction r);

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_VISION_PIPELINE_HH
