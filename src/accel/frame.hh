/**
 * @file
 * Synthetic video frames for the custom-memory-controller experiment.
 *
 * The paper's section 5.4 input is "uncompressed 1024x576 RGB video
 * frames with 8 bits per channel pixels padded to 32 bits, preloaded
 * into FPGA-side DRAM". We generate deterministic synthetic frames
 * (smooth gradients plus seeded noise, so the blur stage has real
 * structure to work on) in that exact layout.
 */

#ifndef ENZIAN_ACCEL_FRAME_HH
#define ENZIAN_ACCEL_FRAME_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "mem/backing_store.hh"

namespace enzian::accel {

/** Default experiment frame geometry (paper section 5.4). */
constexpr std::uint32_t frameWidth = 1024;
constexpr std::uint32_t frameHeight = 576;
/** Bytes per input pixel (8bpc RGB padded to 32 bits). */
constexpr std::uint32_t bytesPerPixel = 4;

/** A frame of RGBA pixels in host memory. */
struct Frame
{
    std::uint32_t width = frameWidth;
    std::uint32_t height = frameHeight;
    std::vector<std::uint8_t> rgba; // width*height*4, R,G,B,X order

    std::uint64_t pixels() const
    {
        return static_cast<std::uint64_t>(width) * height;
    }
    std::uint64_t bytes() const { return pixels() * bytesPerPixel; }
};

/**
 * Generate a deterministic synthetic frame: horizontal/vertical color
 * gradients modulated by seeded noise.
 *
 * @param seed generator seed (same seed, same frame)
 * @param frame_index varies content between frames of a sequence
 */
Frame makeFrame(std::uint64_t seed, std::uint32_t frame_index,
                std::uint32_t width = frameWidth,
                std::uint32_t height = frameHeight);

/** Preload @p frame at @p offset of a backing store (FPGA DRAM). */
void preloadFrame(mem::BackingStore &store, Addr offset,
                  const Frame &frame);

} // namespace enzian::accel

#endif // ENZIAN_ACCEL_FRAME_HH
