/**
 * @file
 * PMU sample helpers.
 */

#include "cpu/pmu.hh"

#include "base/logging.hh"

namespace enzian::cpu {

double
PmuSample::memStallsPerCycle() const
{
    return cycles ? static_cast<double>(memStallCycles) /
                        static_cast<double>(cycles)
                  : 0.0;
}

double
PmuSample::cyclesPerL1Refill() const
{
    return l1Refills ? static_cast<double>(cycles) /
                           static_cast<double>(l1Refills)
                     : 0.0;
}

double
PmuSample::ipc() const
{
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
}

PmuSample &
PmuSample::operator+=(const PmuSample &o)
{
    cycles += o.cycles;
    instructions += o.instructions;
    memStallCycles += o.memStallCycles;
    l1Refills += o.l1Refills;
    l2RemoteRefills += o.l2RemoteRefills;
    return *this;
}

std::string
PmuSample::toString() const
{
    return format("cycles=%llu instr=%llu stalls=%llu l1refills=%llu",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(instructions),
                  static_cast<unsigned long long>(memStallCycles),
                  static_cast<unsigned long long>(l1Refills));
}

} // namespace enzian::cpu
