/**
 * @file
 * Performance monitoring unit counters.
 *
 * Mirrors the ThunderX-1 PMU events the paper's custom-memory-
 * controller experiment collects (section 5.4, Table 1): cycles,
 * instructions retired, memory-dependent stall cycles, and L1 refill
 * counts, plus the derived ratios the table reports.
 */

#ifndef ENZIAN_CPU_PMU_HH
#define ENZIAN_CPU_PMU_HH

#include <cstdint>
#include <string>

namespace enzian::cpu {

/** A sample of PMU counters over an interval. */
struct PmuSample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Cycles the pipeline was stalled waiting on memory. */
    std::uint64_t memStallCycles = 0;
    /** L1 data-cache refills (one per missed line). */
    std::uint64_t l1Refills = 0;
    /** L2 refills from the remote node (over ECI). */
    std::uint64_t l2RemoteRefills = 0;

    /** Memory stalls per cycle (Table 1, row 1). */
    double memStallsPerCycle() const;

    /** Cycles per L1 refill (Table 1, row 2). */
    double cyclesPerL1Refill() const;

    /** Instructions per cycle. */
    double ipc() const;

    /** Merge another sample (e.g. across cores). */
    PmuSample &operator+=(const PmuSample &o);

    /** Human-readable one-line summary. */
    std::string toString() const;
};

} // namespace enzian::cpu

#endif // ENZIAN_CPU_PMU_HH
