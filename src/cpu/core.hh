/**
 * @file
 * In-order core timing model.
 *
 * The ThunderX-1 cores are "mostly in-order" (paper section 3), so a
 * data-streaming kernel's per-item time decomposes into compute
 * cycles plus exposed memory-stall cycles: an in-order core stalls
 * for most of a remote refill's latency, with a hardware prefetcher
 * hiding a workload-dependent fraction (the coverage). This is the
 * model behind the Figure 11 / Table 1 reproduction; its parameters
 * per workload variant live in platform/params.hh with their
 * derivations.
 */

#ifndef ENZIAN_CPU_CORE_HH
#define ENZIAN_CPU_CORE_HH

#include <cstdint>

#include "cpu/pmu.hh"
#include "sim/clock_domain.hh"
#include "sim/sim_object.hh"

namespace enzian::cpu {

/**
 * A streaming kernel: per-item costs of a loop that walks a large
 * array (items), taking one L1/L2 refill every items_per_line items.
 */
struct StreamKernel
{
    /** Arithmetic + L1-hit cycles per item. */
    double compute_cycles_per_item = 1.0;
    /** Instructions retired per item (for IPC reporting). */
    double instructions_per_item = 1.0;
    /** Items covered by one cache line refill. */
    double items_per_line = 32.0;
    /** Latency of one refill in nanoseconds (full, unoverlapped). */
    double refill_latency_ns = 140.0;
    /**
     * Fraction of refill latency hidden by the prefetcher; the hidden
     * part still executes but is not counted as a PMU memory stall
     * and does not extend the critical path.
     */
    double prefetch_coverage = 0.0;
    /** Interconnect bytes transferred per item (remote refill data). */
    double interconnect_bytes_per_item = 0.0;
};

/** One 2.0 GHz in-order core. */
class Core : public SimObject
{
  public:
    Core(std::string name, EventQueue &eq, double clock_hz = 2.0e9);

    /** Result of running a kernel over a number of items. */
    struct RunResult
    {
        Tick elapsed = 0;
        PmuSample pmu;
        /** Items per second achieved. */
        double itemRate = 0.0;
        /** Interconnect bytes per second generated. */
        double interconnectRate = 0.0;
    };

    /**
     * Time @p items iterations of @p k on this core (analytic; does
     * not consume simulated time - callers advance the event queue if
     * they want wall-clock coupling).
     */
    RunResult run(const StreamKernel &k, std::uint64_t items) const;

    ClockDomain &clock() { return clock_; }
    const ClockDomain &clock() const { return clock_; }

  private:
    ClockDomain clock_;
};

} // namespace enzian::cpu

#endif // ENZIAN_CPU_CORE_HH
