/**
 * @file
 * Core timing implementation.
 */

#include "cpu/core.hh"

#include <cmath>

#include "base/logging.hh"

namespace enzian::cpu {

Core::Core(std::string name, EventQueue &eq, double clock_hz)
    : SimObject(std::move(name), eq),
      clock_(SimObject::name() + ".clk", clock_hz)
{
}

Core::RunResult
Core::run(const StreamKernel &k, std::uint64_t items) const
{
    ENZIAN_ASSERT(k.items_per_line > 0 && k.compute_cycles_per_item >= 0,
                  "bad kernel parameters");
    const double freq = clock_.frequencyHz();
    const double refill_cycles = k.refill_latency_ns * 1e-9 * freq;
    // An in-order core exposes the un-prefetched fraction of every
    // refill on its critical path.
    const double exposed_per_item =
        (1.0 - k.prefetch_coverage) * refill_cycles / k.items_per_line;
    const double cycles_per_item =
        k.compute_cycles_per_item + exposed_per_item;

    RunResult r;
    const double total_cycles =
        cycles_per_item * static_cast<double>(items);
    r.pmu.cycles = static_cast<std::uint64_t>(std::llround(total_cycles));
    r.pmu.instructions = static_cast<std::uint64_t>(
        std::llround(k.instructions_per_item *
                     static_cast<double>(items)));
    r.pmu.memStallCycles = static_cast<std::uint64_t>(
        std::llround(exposed_per_item * static_cast<double>(items)));
    r.pmu.l1Refills = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(items) / k.items_per_line));
    if (k.interconnect_bytes_per_item > 0)
        r.pmu.l2RemoteRefills = r.pmu.l1Refills;
    r.elapsed = clock_.cyclesToTicks(
        static_cast<Cycles>(std::llround(total_cycles)));
    r.itemRate = freq / cycles_per_item;
    r.interconnectRate = r.itemRate * k.interconnect_bytes_per_item;
    return r;
}

} // namespace enzian::cpu
