/**
 * @file
 * The 48-core ThunderX-1 cluster.
 *
 * Runs a stream kernel across 1..48 cores and applies the shared
 * resource ceilings: when the cores' aggregate interconnect demand
 * exceeds what the ECI links deliver, the workload becomes
 * bandwidth-bound and per-core throughput degrades proportionally
 * (additional stall cycles appear in the PMU).
 */

#ifndef ENZIAN_CPU_CORE_CLUSTER_HH
#define ENZIAN_CPU_CORE_CLUSTER_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"

namespace enzian::cpu {

/** Result of a parallel kernel run. */
struct ClusterResult
{
    Tick elapsed = 0;
    /** Aggregate PMU over all active cores. */
    PmuSample pmu;
    /** Aggregate items per second. */
    double itemRate = 0.0;
    /** Aggregate interconnect bytes per second. */
    double interconnectRate = 0.0;
    /** True if the interconnect ceiling limited the run. */
    bool bandwidthBound = false;
};

/** A cluster of identical in-order cores. */
class CoreCluster : public SimObject
{
  public:
    CoreCluster(std::string name, EventQueue &eq, std::uint32_t cores,
                double clock_hz = 2.0e9);

    /**
     * Run @p items of @p k split evenly over @p active cores.
     *
     * @param interconnect_bw ceiling in bytes/s the cores share for
     *        remote refills (0 = unlimited)
     */
    ClusterResult runParallel(const StreamKernel &k, std::uint32_t active,
                              std::uint64_t items,
                              double interconnect_bw) const;

    std::uint32_t coreCount() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    Core &core(std::uint32_t i) { return *cores_[i]; }

  private:
    std::vector<std::unique_ptr<Core>> cores_;

    // PMU exposure: the aggregate counters of the most recent
    // runParallel(), published as gauges so registry snapshots carry
    // the Table-1 quantities. Mutable because runParallel() is
    // logically const (it does not change the cluster's configuration).
    mutable Counter runs_;
    mutable Gauge pmuCycles_;
    mutable Gauge pmuInstructions_;
    mutable Gauge pmuMemStalls_;
    mutable Gauge pmuL1Refills_;
    mutable Gauge pmuL2RemoteRefills_;
    mutable Gauge pmuIpc_;
};

} // namespace enzian::cpu

#endif // ENZIAN_CPU_CORE_CLUSTER_HH
