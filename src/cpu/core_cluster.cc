/**
 * @file
 * CoreCluster implementation.
 */

#include "cpu/core_cluster.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::cpu {

CoreCluster::CoreCluster(std::string name, EventQueue &eq,
                         std::uint32_t cores, double clock_hz)
    : SimObject(std::move(name), eq)
{
    if (cores == 0)
        fatal("cluster '%s' with zero cores", SimObject::name().c_str());
    for (std::uint32_t i = 0; i < cores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            SimObject::name() + ".core" + std::to_string(i), eq,
            clock_hz));
    }
    stats().addCounter("runs", &runs_);
    stats().addGauge("pmu_cycles", &pmuCycles_);
    stats().addGauge("pmu_instructions", &pmuInstructions_);
    stats().addGauge("pmu_mem_stall_cycles", &pmuMemStalls_);
    stats().addGauge("pmu_l1_refills", &pmuL1Refills_);
    stats().addGauge("pmu_l2_remote_refills", &pmuL2RemoteRefills_);
    stats().addGauge("pmu_ipc", &pmuIpc_);
}

ClusterResult
CoreCluster::runParallel(const StreamKernel &k, std::uint32_t active,
                         std::uint64_t items,
                         double interconnect_bw) const
{
    ENZIAN_ASSERT(active >= 1 && active <= cores_.size(),
                  "bad active core count %u", active);

    const std::uint64_t per_core = items / active;
    const std::uint64_t extra = items % active;

    ClusterResult out;
    double demand = 0.0;
    Tick longest = 0;
    for (std::uint32_t i = 0; i < active; ++i) {
        const std::uint64_t n = per_core + (i < extra ? 1 : 0);
        if (n == 0)
            continue;
        Core::RunResult r = cores_[i]->run(k, n);
        out.pmu += r.pmu;
        demand += r.interconnectRate;
        longest = std::max(longest, r.elapsed);
    }

    double slowdown = 1.0;
    if (interconnect_bw > 0 && demand > interconnect_bw) {
        slowdown = demand / interconnect_bw;
        out.bandwidthBound = true;
        // Queueing for the interconnect shows up as extra memory
        // stall cycles: the cores still burn cycles while waiting.
        const auto extra_cycles = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(out.pmu.cycles) *
                         (slowdown - 1.0)));
        out.pmu.cycles += extra_cycles;
        out.pmu.memStallCycles += extra_cycles;
        longest = static_cast<Tick>(
            std::llround(static_cast<double>(longest) * slowdown));
    }

    out.elapsed = longest;
    const double secs = units::toSeconds(longest);
    out.itemRate =
        secs > 0 ? static_cast<double>(items) / secs : 0.0;
    out.interconnectRate = out.itemRate * k.interconnect_bytes_per_item;

    runs_.inc();
    pmuCycles_.set(static_cast<double>(out.pmu.cycles));
    pmuInstructions_.set(static_cast<double>(out.pmu.instructions));
    pmuMemStalls_.set(static_cast<double>(out.pmu.memStallCycles));
    pmuL1Refills_.set(static_cast<double>(out.pmu.l1Refills));
    pmuL2RemoteRefills_.set(
        static_cast<double>(out.pmu.l2RemoteRefills));
    pmuIpc_.set(out.pmu.ipc());
    ENZIAN_SPAN(name(), "run_parallel", now(), now() + longest);
    return out;
}

} // namespace enzian::cpu
