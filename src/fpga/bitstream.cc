/**
 * @file
 * Bitstream registry.
 */

#include "fpga/bitstream.hh"

#include "base/logging.hh"

namespace enzian::fpga {

const std::vector<Bitstream> &
allBitstreams()
{
    // Clocks follow the paper: the XCVU9P runs "at clock speeds
    // between 200 and 300 MHz, depending on the loaded bitstream"
    // (section 4); the Fig 5.1 microbenchmark image closes at 300 MHz.
    static const std::vector<Bitstream> images = {
        {"eci-bench", 300e6, 0.15, true, false, 8.0},
        {"coyote-shell", 250e6, 0.35, true, true, 8.0},
        {"tcp-stack", 250e6, 0.45, true, false, 8.0},
        {"strom-rdma", 250e6, 0.40, true, false, 8.0},
        {"gbdt-1engine", 300e6, 0.30, true, false, 8.0},
        {"gbdt-2engine", 300e6, 0.55, true, false, 8.0},
        {"rgb2y-8bpp", 300e6, 0.25, true, false, 8.0},
        {"rgb2y-4bpp", 300e6, 0.28, true, false, 8.0},
        {"memctrl-passthrough", 300e6, 0.20, true, false, 8.0},
        {"power-burn", 200e6, 1.00, false, false, 8.0},
    };
    return images;
}

const Bitstream &
findBitstream(const std::string &name)
{
    for (const auto &b : allBitstreams()) {
        if (b.name == name)
            return b;
    }
    fatal("unknown bitstream '%s'", name.c_str());
}

} // namespace enzian::fpga
