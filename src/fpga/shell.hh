/**
 * @file
 * Coyote-style FPGA shell.
 *
 * Enzian's default environment is a port of the open-source Coyote
 * shell (paper section 4.5): a static region with the ECI layers plus
 * a kernel of basic OS-like functionality - memory protection,
 * address translation, spatial multiplexing into virtual FPGAs
 * (vFPGAs), and named services (DRAM controllers, network stacks) -
 * with per-vFPGA partial reconfiguration driven by the CPU over ECI.
 */

#ifndef ENZIAN_FPGA_SHELL_HH
#define ENZIAN_FPGA_SHELL_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpga/fabric.hh"
#include "mem/address_map.hh"
#include "sim/sim_object.hh"

namespace enzian::fpga {

/**
 * One virtual FPGA: an isolated slot with its own virtual address
 * space mapped onto physical memory by the shell's TLB. An
 * application occupying the slot is represented by its name and the
 * regions it holds.
 */
class Vfpga
{
  public:
    /**
     * @param id slot index
     * @param name application name currently loaded
     */
    Vfpga(std::uint32_t id, std::string name);

    std::uint32_t id() const { return id_; }
    const std::string &appName() const { return name_; }

    /**
     * Map [vaddr, vaddr+len) to physical [paddr, paddr+len).
     * Mappings may not overlap existing ones.
     */
    void map(Addr vaddr, Addr paddr, std::uint64_t len, bool writable);

    /** Remove the mapping starting at @p vaddr. */
    void unmap(Addr vaddr);

    /**
     * Translate a virtual address.
     * @param write true for store accesses (checked against the
     *        mapping's protection)
     * @return the physical address; fatal() on a fault so tests can
     *         assert protection (see translateOrFault for a
     *         non-fatal probe).
     */
    Addr translate(Addr vaddr, bool write) const;

    /** Non-fatal translation probe; returns false on fault. */
    bool translateOrFault(Addr vaddr, bool write, Addr &paddr) const;

  private:
    struct Segment
    {
        Addr paddr;
        std::uint64_t len;
        bool writable;
    };

    std::uint32_t id_;
    std::string name_;
    std::map<Addr, Segment> segments_; // keyed by vaddr
};

/** The shell: static region managing vFPGAs and services. */
class Shell : public SimObject
{
  public:
    /** Shell configuration. */
    struct Config
    {
        /** Number of vFPGA slots the shell is built with. */
        std::uint32_t slots = 4;
        /** Seconds to partially reconfigure one slot. */
        double partial_reconfig_seconds = 0.35;
    };

    Shell(std::string name, EventQueue &eq, Fabric &fabric,
          const Config &cfg);

    /**
     * Load application @p app_name into slot @p slot via partial
     * reconfiguration.
     * @return tick at which the slot is usable.
     */
    Tick loadApp(std::uint32_t slot, const std::string &app_name);

    /** The vFPGA in @p slot; fatal() if empty. */
    Vfpga &vfpga(std::uint32_t slot);

    /** True if @p slot currently holds an application. */
    bool occupied(std::uint32_t slot) const;

    /**
     * Pin @p slot against reconfiguration while an accelerator batch
     * is in flight there: loadApp() on a pinned slot is fatal (the
     * partial bitstream would tear the fabric state mid-computation;
     * on the real shell the reconfiguration controller refuses).
     * Pins nest: unpin once per pin.
     */
    void pinSlot(std::uint32_t slot);

    /** Release one pin of @p slot. */
    void unpinSlot(std::uint32_t slot);

    /** Outstanding pins on @p slot. */
    std::uint32_t pins(std::uint32_t slot) const;

    /** Register a named shell service (network stack, DRAM mover). */
    void registerService(const std::string &name, void *service);

    /**
     * Look up a shell service by name.
     * @return the registered pointer or nullptr.
     */
    void *findService(const std::string &name) const;

    std::uint32_t slotCount() const { return cfg_.slots; }

    std::uint64_t reconfigurations() const { return reconfigs_.value(); }

  private:
    Fabric &fabric_;
    Config cfg_;
    std::vector<std::unique_ptr<Vfpga>> slots_;
    /** Outstanding in-flight-job pins per slot. */
    std::vector<std::uint32_t> pins_;
    std::map<std::string, void *> services_;
    Counter reconfigs_;
};

} // namespace enzian::fpga

#endif // ENZIAN_FPGA_SHELL_HH
