/**
 * @file
 * Fabric implementation.
 */

#include "fpga/fabric.hh"

#include <numeric>

#include "base/logging.hh"

namespace enzian::fpga {

Fabric::Fabric(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg),
      clock_(SimObject::name() + ".clk", cfg.initial_clock_hz),
      activity_(cfg.regions, 0.0)
{
    if (cfg_.regions == 0)
        fatal("fabric '%s' with zero regions", SimObject::name().c_str());
}

Tick
Fabric::loadBitstream(const Bitstream &bs)
{
    loaded_ = bs;
    clock_.setFrequencyHz(bs.clock_hz);
    std::fill(activity_.begin(), activity_.end(), 0.0);
    return now() + units::sec(bs.program_seconds);
}

void
Fabric::setRegionActivity(std::uint32_t r, double activity)
{
    ENZIAN_ASSERT(r < activity_.size(), "region %u out of range", r);
    if (activity < 0.0 || activity > 1.0)
        fatal("region activity %f out of [0,1]", activity);
    activity_[r] = activity;
}

void
Fabric::setAllActivity(double activity)
{
    for (std::uint32_t r = 0; r < cfg_.regions; ++r)
        setRegionActivity(r, activity);
}

double
Fabric::meanActivity() const
{
    const double sum =
        std::accumulate(activity_.begin(), activity_.end(), 0.0);
    return sum / static_cast<double>(activity_.size());
}

} // namespace enzian::fpga
