/**
 * @file
 * vFPGA scheduler: spatial + temporal multiplexing.
 *
 * Coyote's kernel provides "memory protection, address translation,
 * spatial and temporal multiplexing, and a standard execution
 * environment" (paper section 4.5); this is the multiplexing half.
 * Applications submit jobs with a known fabric runtime; the scheduler
 * packs them onto the shell's vFPGA slots (spatial) and, when jobs
 * outnumber slots, time-slices by partial reconfiguration (temporal),
 * charging the real reconfiguration cost - the quantity AmorphOS-style
 * systems fight to amortize (section 2.2).
 */

#ifndef ENZIAN_FPGA_SCHEDULER_HH
#define ENZIAN_FPGA_SCHEDULER_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fpga/shell.hh"

namespace enzian::fpga {

/** Scheduling policy. */
enum class SchedPolicy : std::uint8_t {
    Fifo = 0,      ///< run to completion in arrival order
    RoundRobin,    ///< preempt at the quantum via reconfiguration
};

/** Readable policy name. */
const char *toString(SchedPolicy p);

/** A job submitted to the scheduler. */
struct FpgaJob
{
    std::string app;
    /** Remaining fabric runtime. */
    Tick remaining = 0;
    /** Completion callback (tick of completion). */
    std::function<void(Tick)> done;
};

/** Multiplexes jobs over the shell's vFPGA slots. */
class VfpgaScheduler : public SimObject
{
  public:
    /** Scheduler configuration. */
    struct Config
    {
        SchedPolicy policy = SchedPolicy::Fifo;
        /** Round-robin time slice. */
        Tick quantum = units::ms(10.0);
    };

    VfpgaScheduler(std::string name, EventQueue &eq, Shell &shell,
                   const Config &cfg);

    /**
     * Submit a job needing @p runtime of fabric time.
     * @return a job id (for diagnostics).
     */
    std::uint64_t submit(const std::string &app, Tick runtime,
                         std::function<void(Tick)> done);

    /** Jobs waiting for a slot. */
    std::size_t queued() const { return queue_.size(); }

    /** Jobs currently resident in slots. */
    std::size_t running() const;

    std::uint64_t jobsCompleted() const { return completed_.value(); }
    std::uint64_t preemptions() const { return preempted_.value(); }
    /** Total fabric time spent reconfiguring (the multiplexing tax). */
    Tick reconfigTime() const { return reconfigTime_; }

  private:
    struct Slot
    {
        bool busy = false;
        FpgaJob job;
        /** Reusable completion / preemption event. */
        Event sliceEv;
        Tick sliceStart = 0;
    };

    /** Try to start queued jobs on free slots. */
    void dispatch();
    /** Place @p job on @p slot (pays partial reconfiguration). */
    void start(std::uint32_t slot, FpgaJob job);
    void onSliceEnd(std::uint32_t slot);

    Shell &shell_;
    Config cfg_;
    std::vector<Slot> slots_;
    std::deque<FpgaJob> queue_;
    std::uint64_t nextJob_ = 1;
    Tick reconfigTime_ = 0;
    Counter completed_;
    Counter preempted_;
    /** Queue depth sampled at each submit. */
    Accumulator queueDepth_;
    /** Executed slice length per slot occupancy, ns. */
    Accumulator sliceNs_;
};

} // namespace enzian::fpga

#endif // ENZIAN_FPGA_SCHEDULER_HH
