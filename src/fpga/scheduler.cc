/**
 * @file
 * vFPGA scheduler implementation.
 */

#include "fpga/scheduler.hh"

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::fpga {

const char *
toString(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::Fifo:
        return "fifo";
      case SchedPolicy::RoundRobin:
        return "round-robin";
    }
    return "?";
}

VfpgaScheduler::VfpgaScheduler(std::string name, EventQueue &eq,
                               Shell &shell, const Config &cfg)
    : SimObject(std::move(name), eq), shell_(shell), cfg_(cfg)
{
    if (cfg_.policy == SchedPolicy::RoundRobin && cfg_.quantum == 0)
        fatal("scheduler '%s': zero quantum", SimObject::name().c_str());
    slots_.resize(shell_.slotCount());
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
        slots_[i].sliceEv.init(eq, [this, i]() { onSliceEnd(i); },
                               "vfpga-slice");
    }
    stats().addCounter("jobs_completed", &completed_);
    stats().addCounter("preemptions", &preempted_);
    stats().addAccumulator("queue_depth", &queueDepth_);
    stats().addAccumulator("slice_ns", &sliceNs_);
}

std::uint64_t
VfpgaScheduler::submit(const std::string &app, Tick runtime,
                       std::function<void(Tick)> done)
{
    if (runtime == 0)
        fatal("job '%s' with zero runtime", app.c_str());
    FpgaJob job;
    job.app = app;
    job.remaining = runtime;
    job.done = std::move(done);
    queue_.push_back(std::move(job));
    queueDepth_.sample(static_cast<double>(queue_.size()));
    const std::uint64_t id = nextJob_++;
    dispatch();
    return id;
}

std::size_t
VfpgaScheduler::running() const
{
    std::size_t n = 0;
    for (const auto &s : slots_)
        if (s.busy)
            ++n;
    return n;
}

void
VfpgaScheduler::dispatch()
{
    for (std::uint32_t i = 0;
         i < slots_.size() && !queue_.empty(); ++i) {
        if (slots_[i].busy)
            continue;
        FpgaJob job = std::move(queue_.front());
        queue_.pop_front();
        start(i, std::move(job));
    }
}

void
VfpgaScheduler::start(std::uint32_t slot, FpgaJob job)
{
    Slot &s = slots_[slot];
    s.busy = true;
    // Loading the app into the region is a partial reconfiguration.
    const Tick ready = shell_.loadApp(slot, job.app);
    reconfigTime_ += ready - now();
    if (ready > now()) {
        ENZIAN_SPAN(format("%s.slot%u", name().c_str(), slot),
                    "reconfig", now(), ready);
    }
    s.job = std::move(job);
    s.sliceStart = ready;

    Tick slice = s.job.remaining;
    if (cfg_.policy == SchedPolicy::RoundRobin)
        slice = std::min(slice, cfg_.quantum);
    s.sliceEv.schedule(ready + slice);
}

void
VfpgaScheduler::onSliceEnd(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    ENZIAN_ASSERT(s.busy, "slice end on idle slot %u", slot);
    const Tick ran = now() - s.sliceStart;
    sliceNs_.sample(units::toNanos(ran));
    ENZIAN_SPAN(format("%s.slot%u", name().c_str(), slot),
                s.job.app.c_str(), s.sliceStart, now());
    s.job.remaining = s.job.remaining > ran ? s.job.remaining - ran : 0;

    if (s.job.remaining == 0) {
        completed_.inc();
        auto done = std::move(s.job.done);
        s.busy = false;
        if (done)
            done(now());
        dispatch();
        return;
    }
    // Quantum expired: preempt only if someone is waiting (otherwise
    // keep running - no point paying reconfiguration for nothing).
    if (queue_.empty()) {
        Tick slice = s.job.remaining;
        if (cfg_.policy == SchedPolicy::RoundRobin)
            slice = std::min(slice, cfg_.quantum);
        s.sliceStart = now();
        s.sliceEv.scheduleDelta(slice);
        return;
    }
    preempted_.inc();
    FpgaJob preempted_job = std::move(s.job);
    s.busy = false;
    queue_.push_back(std::move(preempted_job));
    dispatch();
}

} // namespace enzian::fpga
