/**
 * @file
 * FPGA fabric model: the reconfigurable device itself.
 *
 * Models the XCVU9P as a clock domain whose frequency follows the
 * loaded bitstream, a set of reconfigurable regions (used both for
 * Coyote-style partial reconfiguration and for the 1/24-area steps of
 * the Figure 12 power-burn stress test), and an activity level per
 * region that the power model converts to watts.
 */

#ifndef ENZIAN_FPGA_FABRIC_HH
#define ENZIAN_FPGA_FABRIC_HH

#include <optional>
#include <vector>

#include "fpga/bitstream.hh"
#include "sim/clock_domain.hh"
#include "sim/sim_object.hh"

namespace enzian::fpga {

/** The reconfigurable device. */
class Fabric : public SimObject
{
  public:
    /** Device configuration (defaults: XCVU9P). */
    struct Config
    {
        /** Reconfigurable regions (also the power-burn step count). */
        std::uint32_t regions = 24;
        /** Clock used before any bitstream is loaded (Hz). */
        double initial_clock_hz = 250e6;
    };

    Fabric(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Load a full bitstream: switches the clock, marks the whole
     * device configured, and occupies programming time.
     * @return tick at which the device is configured.
     */
    Tick loadBitstream(const Bitstream &bs);

    /** Currently loaded image, if any. */
    const std::optional<Bitstream> &loaded() const { return loaded_; }

    /** Fabric clock domain (frequency follows the bitstream). */
    ClockDomain &clock() { return clock_; }
    const ClockDomain &clock() const { return clock_; }

    /**
     * Set the switching-activity level of region @p r in [0,1]; the
     * power-burn test walks this up one region at a time.
     */
    void setRegionActivity(std::uint32_t r, double activity);

    /** Set all regions to @p activity. */
    void setAllActivity(double activity);

    /** Mean activity over all regions (for the power model). */
    double meanActivity() const;

    std::uint32_t regionCount() const { return cfg_.regions; }

    /** True once a bitstream with ECI support is loaded. */
    bool eciReady() const { return loaded_ && loaded_->has_eci; }

  private:
    Config cfg_;
    ClockDomain clock_;
    std::optional<Bitstream> loaded_;
    std::vector<double> activity_;
};

} // namespace enzian::fpga

#endif // ENZIAN_FPGA_FABRIC_HH
