/**
 * @file
 * Bitstream descriptions and registry.
 *
 * Enzian's FPGA is loaded with an initial image by the BMC before the
 * CPU boots (the image must contain the lower ECI layers so link
 * training succeeds, paper section 4.5). A bitstream here is a
 * description: the fabric clock it closes timing at (200-300 MHz on
 * the XCVU9P depending on the design), the logic it occupies, and
 * whether it carries the ECI shell. The registry holds the images the
 * evaluation uses.
 */

#ifndef ENZIAN_FPGA_BITSTREAM_HH
#define ENZIAN_FPGA_BITSTREAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace enzian::fpga {

/** A synthesized FPGA image. */
struct Bitstream
{
    std::string name;
    /** Fabric clock the design closes timing at (Hz). */
    double clock_hz = 250e6;
    /** Fraction of the device's logic the design occupies [0,1]. */
    double utilization = 0.3;
    /** True if the image contains the ECI link + protocol layers. */
    bool has_eci = true;
    /** True if the image is a partial-reconfiguration shell. */
    bool is_shell = false;
    /** Seconds to program the full device over the BMC path. */
    double program_seconds = 8.0;
};

/** Images used by the evaluation, by name; fatal() if unknown. */
const Bitstream &findBitstream(const std::string &name);

/** All registered images. */
const std::vector<Bitstream> &allBitstreams();

} // namespace enzian::fpga

#endif // ENZIAN_FPGA_BITSTREAM_HH
