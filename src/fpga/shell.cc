/**
 * @file
 * Shell implementation.
 */

#include "fpga/shell.hh"

#include "base/logging.hh"

namespace enzian::fpga {

Vfpga::Vfpga(std::uint32_t id, std::string name)
    : id_(id), name_(std::move(name))
{
}

void
Vfpga::map(Addr vaddr, Addr paddr, std::uint64_t len, bool writable)
{
    if (len == 0)
        fatal("vFPGA %u: zero-length mapping", id_);
    auto next = segments_.lower_bound(vaddr);
    if (next != segments_.end() && vaddr + len > next->first)
        fatal("vFPGA %u: mapping overlaps at %llx", id_,
              static_cast<unsigned long long>(next->first));
    if (next != segments_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second.len > vaddr)
            fatal("vFPGA %u: mapping overlaps at %llx", id_,
                  static_cast<unsigned long long>(prev->first));
    }
    segments_.emplace(vaddr, Segment{paddr, len, writable});
}

void
Vfpga::unmap(Addr vaddr)
{
    if (segments_.erase(vaddr) == 0)
        fatal("vFPGA %u: unmap of unmapped %llx", id_,
              static_cast<unsigned long long>(vaddr));
}

bool
Vfpga::translateOrFault(Addr vaddr, bool write, Addr &paddr) const
{
    auto it = segments_.upper_bound(vaddr);
    if (it == segments_.begin())
        return false;
    --it;
    const Segment &seg = it->second;
    if (vaddr >= it->first + seg.len)
        return false;
    if (write && !seg.writable)
        return false;
    paddr = seg.paddr + (vaddr - it->first);
    return true;
}

Addr
Vfpga::translate(Addr vaddr, bool write) const
{
    Addr paddr = 0;
    if (!translateOrFault(vaddr, write, paddr))
        fatal("vFPGA %u: %s fault at %llx", id_,
              write ? "write" : "read",
              static_cast<unsigned long long>(vaddr));
    return paddr;
}

Shell::Shell(std::string name, EventQueue &eq, Fabric &fabric,
             const Config &cfg)
    : SimObject(std::move(name), eq), fabric_(fabric), cfg_(cfg)
{
    if (cfg_.slots == 0)
        fatal("shell '%s' with zero slots", SimObject::name().c_str());
    slots_.resize(cfg_.slots);
    pins_.resize(cfg_.slots, 0);
    stats().addCounter("reconfigurations", &reconfigs_);
}

Tick
Shell::loadApp(std::uint32_t slot, const std::string &app_name)
{
    if (slot >= cfg_.slots)
        fatal("shell '%s': slot %u out of range", name().c_str(), slot);
    if (!fabric_.loaded() || !fabric_.loaded()->is_shell)
        fatal("shell '%s': fabric does not hold a shell bitstream",
              name().c_str());
    if (pins_[slot] > 0)
        fatal("shell '%s': reconfig of slot %u while a pipeline job "
              "is in flight",
              name().c_str(), slot);
    slots_[slot] = std::make_unique<Vfpga>(slot, app_name);
    reconfigs_.inc();
    return now() + units::sec(cfg_.partial_reconfig_seconds);
}

Vfpga &
Shell::vfpga(std::uint32_t slot)
{
    if (slot >= cfg_.slots || !slots_[slot])
        fatal("shell '%s': slot %u is empty", name().c_str(), slot);
    return *slots_[slot];
}

bool
Shell::occupied(std::uint32_t slot) const
{
    return slot < cfg_.slots && slots_[slot] != nullptr;
}

void
Shell::pinSlot(std::uint32_t slot)
{
    if (slot >= cfg_.slots)
        fatal("shell '%s': pin of slot %u out of range",
              name().c_str(), slot);
    ++pins_[slot];
}

void
Shell::unpinSlot(std::uint32_t slot)
{
    if (slot >= cfg_.slots || pins_[slot] == 0)
        fatal("shell '%s': unbalanced unpin of slot %u",
              name().c_str(), slot);
    --pins_[slot];
}

std::uint32_t
Shell::pins(std::uint32_t slot) const
{
    return slot < cfg_.slots ? pins_[slot] : 0;
}

void
Shell::registerService(const std::string &name, void *service)
{
    services_[name] = service;
}

void *
Shell::findService(const std::string &name) const
{
    auto it = services_.find(name);
    return it == services_.end() ? nullptr : it->second;
}

} // namespace enzian::fpga
