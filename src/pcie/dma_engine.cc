/**
 * @file
 * DMA engine implementation.
 */

#include "pcie/dma_engine.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "obs/span_tracer.hh"

namespace enzian::pcie {

DmaEngine::DmaEngine(std::string name, EventQueue &eq, PcieLink &link,
                     mem::MemoryController &host,
                     mem::MemoryController &device, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg), link_(link),
      host_(host), device_(device)
{
    stats().addCounter("transfers", &xfers_);
    stats().addCounter("bytes", &bytes_);
    stats().addAccumulator("latency_ns", &latency_);
}

Tick
DmaEngine::transferLatency(std::uint64_t len) const
{
    const Tick setup = units::ns(cfg_.doorbell_ns) +
                       units::ns(cfg_.descriptor_fetch_ns) +
                       units::ns(cfg_.engine_setup_ns);
    const std::uint64_t wire =
        wireBytesFor(len, link_.config().max_payload);
    return setup + units::transferTicks(wire, link_.wireBandwidth()) +
           link_.latency();
}

void
DmaEngine::transfer(Addr src_off, Addr dst_off, std::uint64_t len,
                    bool to_host, Done done)
{
    xfers_.inc();

    mem::MemoryController &src = to_host ? device_ : host_;
    mem::MemoryController &dst = to_host ? host_ : device_;

    // Functional copy.
    std::vector<std::uint8_t> buf(len);
    src.store().read(src_off, buf.data(), len);
    dst.store().write(dst_off, buf.data(), len);

    // Timing. The first transfer in a quiet engine pays the full
    // setup; pipelined transfers are gated by per-descriptor
    // processing plus link occupancy.
    const Tick setup = units::ns(cfg_.doorbell_ns) +
                       units::ns(cfg_.descriptor_fetch_ns) +
                       units::ns(cfg_.engine_setup_ns);
    Tick start;
    if (engineFreeAt_ <= now()) {
        start = now() + setup;
    } else {
        start = engineFreeAt_ + units::ns(cfg_.per_descriptor_ns);
    }
    // The three stages (source DRAM, wire, destination DRAM) stream
    // concurrently chunk by chunk; the slowest stage dominates.
    const Tick src_done = src.dram().access(start, len);
    const Tick wire_done = link_.transfer(start, len, to_host);
    const Tick dst_done = dst.dram().access(start, len);
    const Tick complete =
        std::max(src_done, std::max(wire_done, dst_done));
    engineFreeAt_ = std::max(engineFreeAt_, start);
    bytes_.inc(len);
    latency_.sample(units::toNanos(complete - now()));
    ENZIAN_SPAN(name(), to_host ? "d2h" : "h2d", now(), complete);

    eventq().schedule(
        complete, [done = std::move(done), complete]() { done(complete); },
        "dma-done");
}

void
DmaEngine::hostToDevice(Addr host_off, Addr dev_off, std::uint64_t len,
                        Done done)
{
    transfer(host_off, dev_off, len, /*to_host=*/false, std::move(done));
}

void
DmaEngine::deviceToHost(Addr dev_off, Addr host_off, std::uint64_t len,
                        Done done)
{
    transfer(dev_off, host_off, len, /*to_host=*/true, std::move(done));
}

} // namespace enzian::pcie
