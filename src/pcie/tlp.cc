/**
 * @file
 * TLP helpers.
 */

#include "pcie/tlp.hh"

namespace enzian::pcie {

std::uint64_t
wireBytesFor(std::uint64_t payload, std::uint32_t max_payload)
{
    if (payload == 0)
        return tlpOverheadBytes;
    const std::uint64_t packets =
        (payload + max_payload - 1) / max_payload;
    return payload + packets * tlpOverheadBytes;
}

} // namespace enzian::pcie
