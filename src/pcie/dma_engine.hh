/**
 * @file
 * Descriptor-ring DMA engine model.
 *
 * Captures the cost structure that separates PCIe accelerators from
 * ECI in Figure 6: every transfer pays a doorbell MMIO write, a
 * descriptor fetch, and engine setup before the wire time, so small
 * transfers are latency- and rate-limited, while large transfers
 * amortize the overheads and approach wire bandwidth. Back-to-back
 * transfers pipeline through the ring: sustained throughput is bound
 * by per-descriptor processing, not by the full setup latency.
 */

#ifndef ENZIAN_PCIE_DMA_ENGINE_HH
#define ENZIAN_PCIE_DMA_ENGINE_HH

#include <functional>

#include "mem/memory_controller.hh"
#include "pcie/pcie_link.hh"

namespace enzian::pcie {

/** DMA engine moving data between host and device memory over PCIe. */
class DmaEngine : public SimObject
{
  public:
    using Done = std::function<void(Tick)>;

    /** Engine cost configuration. */
    struct Config
    {
        /** Doorbell MMIO write latency (ns). */
        double doorbell_ns = 250.0;
        /** Descriptor fetch round trip (ns). */
        double descriptor_fetch_ns = 600.0;
        /** Engine start/teardown per transfer (ns). */
        double engine_setup_ns = 350.0;
        /** Per-descriptor processing when pipelined (ns). */
        double per_descriptor_ns = 450.0;
    };

    DmaEngine(std::string name, EventQueue &eq, PcieLink &link,
              mem::MemoryController &host, mem::MemoryController &device,
              const Config &cfg);

    /** Copy @p len bytes host->device (functional + timed). */
    void hostToDevice(Addr host_off, Addr dev_off, std::uint64_t len,
                      Done done);

    /** Copy @p len bytes device->host (functional + timed). */
    void deviceToHost(Addr dev_off, Addr host_off, std::uint64_t len,
                      Done done);

    /**
     * Unpipelined latency of one transfer of @p len bytes (for
     * latency-style microbenchmarks): full setup + wire + memory.
     */
    Tick transferLatency(std::uint64_t len) const;

    std::uint64_t transfers() const { return xfers_.value(); }

    /** Host-side memory behind this engine. */
    mem::MemoryController &host() { return host_; }

    /** Device-side memory behind this engine. */
    mem::MemoryController &device() { return device_; }

  private:
    void
    transfer(Addr src_off, Addr dst_off, std::uint64_t len, bool to_host,
             Done done);

    Config cfg_;
    PcieLink &link_;
    mem::MemoryController &host_;
    mem::MemoryController &device_;
    Tick engineFreeAt_ = 0;
    Counter xfers_;
    Counter bytes_;
    /** Submit-to-completion latency per transfer, ns. */
    Accumulator latency_;
};

} // namespace enzian::pcie

#endif // ENZIAN_PCIE_DMA_ENGINE_HH
