/**
 * @file
 * PCIe transaction layer packet (TLP) model.
 *
 * Only what the timing model needs: memory read/write TLPs with a
 * fixed per-packet header overhead and a maximum payload size, so the
 * protocol efficiency of large DMA bursts vs small transfers is
 * captured. This is the substrate for the commercial-accelerator
 * baselines the paper compares against (Alveo, F1, Mellanox).
 */

#ifndef ENZIAN_PCIE_TLP_HH
#define ENZIAN_PCIE_TLP_HH

#include <cstdint>

#include "base/units.hh"

namespace enzian::pcie {

/** TLP kinds the model distinguishes. */
enum class TlpKind : std::uint8_t {
    MemRead,     ///< read request (no payload)
    MemWrite,    ///< posted write (payload)
    Completion,  ///< read completion (payload)
};

/** One transaction-layer packet. */
struct Tlp
{
    TlpKind kind = TlpKind::MemWrite;
    Addr addr = 0;
    std::uint32_t len = 0; ///< payload length in bytes
    std::uint32_t tag = 0; ///< completion matching tag
};

/**
 * Physical/data-link/transaction header overhead per TLP in bytes:
 * 2 (framing) + 6 (DLLP seq + LCRC) + 16 (4-DW TLP header) = 24.
 */
constexpr std::uint32_t tlpOverheadBytes = 24;

/** Default maximum TLP payload (bytes) for the modeled root ports. */
constexpr std::uint32_t defaultMaxPayload = 256;

/** Default read-completion chunk size (bytes). */
constexpr std::uint32_t defaultReadCompletionBoundary = 256;

/**
 * Wire bytes needed to move @p payload bytes of data with @p
 * max_payload-sized TLPs, including per-packet overheads.
 */
std::uint64_t wireBytesFor(std::uint64_t payload,
                           std::uint32_t max_payload);

} // namespace enzian::pcie

#endif // ENZIAN_PCIE_TLP_HH
