/**
 * @file
 * PCIe link timing model.
 *
 * Models a Gen-N xM link: per-lane rate with encoding overhead, TLP
 * packetization cost, and a fixed round-trip latency contribution for
 * the root complex + switch path. Used by the DMA engine and by the
 * platform presets for Alveo/F1/Mellanox-style baselines.
 */

#ifndef ENZIAN_PCIE_PCIE_LINK_HH
#define ENZIAN_PCIE_PCIE_LINK_HH

#include <cstdint>

#include "pcie/tlp.hh"
#include "sim/sim_object.hh"

namespace enzian::pcie {

/** One full-duplex PCIe link. */
class PcieLink : public SimObject
{
  public:
    /** Link configuration. */
    struct Config
    {
        /** Lane count (x8, x16). */
        std::uint32_t lanes = 16;
        /** Per-lane raw rate in GT/s (Gen3: 8). */
        double gt_per_s = 8.0;
        /** Encoding efficiency (Gen3 128b/130b: ~0.985). */
        double encoding = 128.0 / 130.0;
        /** Max TLP payload bytes. */
        std::uint32_t max_payload = defaultMaxPayload;
        /** One-way latency: PHY + switch + root complex (ns). */
        double latency_ns = 400.0;
    };

    PcieLink(std::string name, EventQueue &eq, const Config &cfg);

    /**
     * Occupy the link in one direction with @p payload bytes of data
     * starting at @p when; returns the tick the last byte has crossed.
     *
     * @param upstream true for device-to-host, false host-to-device
     */
    Tick transfer(Tick when, std::uint64_t payload, bool upstream);

    /** One-way latency in ticks. */
    Tick latency() const { return units::ns(cfg_.latency_ns); }

    /** Effective per-direction data bandwidth in bytes/s (payload). */
    double effectiveBandwidth() const;

    /** Raw per-direction wire bandwidth in bytes/s. */
    double wireBandwidth() const { return wireBw_; }

    const Config &config() const { return cfg_; }

    std::uint64_t bytesTransferred() const { return bytes_.value(); }

  private:
    Config cfg_;
    double wireBw_;
    Tick busFreeAt_[2] = {0, 0};
    Counter bytes_;
};

} // namespace enzian::pcie

#endif // ENZIAN_PCIE_PCIE_LINK_HH
