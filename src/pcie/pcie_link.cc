/**
 * @file
 * PCIe link implementation.
 */

#include "pcie/pcie_link.hh"

#include <algorithm>

#include "base/logging.hh"

namespace enzian::pcie {

PcieLink::PcieLink(std::string name, EventQueue &eq, const Config &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    if (cfg_.lanes == 0)
        fatal("PCIe link '%s': zero lanes", SimObject::name().c_str());
    // GT/s counts raw symbols per lane; encoding leaves the data rate.
    wireBw_ = cfg_.lanes * cfg_.gt_per_s * 1e9 / 8.0 * cfg_.encoding;
    stats().addCounter("bytes", &bytes_);
}

Tick
PcieLink::transfer(Tick when, std::uint64_t payload, bool upstream)
{
    bytes_.inc(payload);
    const std::uint64_t wire = wireBytesFor(payload, cfg_.max_payload);
    Tick &free_at = busFreeAt_[upstream ? 0 : 1];
    const Tick start = std::max(when, free_at);
    const Tick stream = units::transferTicks(wire, wireBw_);
    free_at = start + stream;
    return start + stream + latency();
}

double
PcieLink::effectiveBandwidth() const
{
    const double per_packet =
        static_cast<double>(cfg_.max_payload) /
        (cfg_.max_payload + tlpOverheadBytes);
    return wireBw_ * per_packet;
}

} // namespace enzian::pcie
