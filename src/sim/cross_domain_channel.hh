/**
 * @file
 * Timestamped mailbox carrying events between timing domains.
 *
 * A CrossDomainChannel is the only legal way for activity in one
 * timing domain to cause activity in another while a parallel
 * simulation is running (see DomainScheduler). It is single-producer
 * (events executing in the source domain) / single-consumer (the
 * barrier coordinator), so the hot path is a plain vector append with
 * no atomics: the epoch barrier's acquire/release handshake provides
 * the happens-before edge between producer and consumer.
 *
 * The queue itself is an SoA batch: one stream of trivially-copyable
 * Entry{tick, lane, slot} records in push order, with payloads either
 * in the generic EventFn side array or in a typed ChannelLane slot
 * arena (see channel_lane.hh). The barrier drain walks the entry
 * stream linearly and schedules each record into the destination
 * queue; lane entries produce a two-word inline closure, so the hot
 * message types cross domains with zero per-message allocation.
 *
 * Conservative-lookahead contract: every push must carry a delivery
 * timestamp at least `lookahead()` ticks after the source domain's
 * current time. The lookahead is per-channel — derived from the
 * slowest-possible reaction time of the specific link the channel
 * models (ECI engine+wire floor, Ethernet cable latency, DRAM hop) —
 * and the scheduler sizes its fixed epoch step to the minimum over
 * all channels, so a message pushed during an epoch always delivers
 * after that epoch's end. When the source domain has published a
 * no-sends-before promise (see TimingDomain::promiseNoSendsBefore),
 * pushes before the promised tick are a contract violation and fail
 * fast: the adaptive scheduler may already have stretched an epoch
 * past the point where such a message could deliver safely.
 */

#ifndef ENZIAN_SIM_CROSS_DOMAIN_CHANNEL_HH
#define ENZIAN_SIM_CROSS_DOMAIN_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "sim/event_queue.hh"

namespace enzian::sim {

class ChannelLaneBase;
class DomainScheduler;

/** SPSC batched mailbox for cross-domain delivery (see file comment). */
class CrossDomainChannel
{
  public:
    CrossDomainChannel(const CrossDomainChannel &) = delete;
    CrossDomainChannel &operator=(const CrossDomainChannel &) = delete;

    /**
     * Enqueue @p fn for execution in the destination domain at
     * absolute time @p when. Must only be called from the source
     * domain (or from outside the simulation while it is stopped),
     * and @p when must be >= source now() + lookahead().
     */
    void push(Tick when, EventFn fn);

    /**
     * Register a typed payload lane; returns its lane id. Called by
     * ChannelLane::attach before the scheduler starts.
     */
    std::uint32_t addLane(ChannelLaneBase &lane);

    /**
     * Enqueue slot @p idx of lane @p lane for delivery at @p when.
     * Same contract as push(); called by ChannelLane::push.
     */
    void pushLane(Tick when, std::uint32_t lane, std::uint32_t idx);

    /** Destination queue (lanes schedule delivery closures into it). */
    EventQueue &dstQueue() { return dstq_; }

    /** Messages currently queued (consumer/stopped-world only). */
    std::size_t size() const { return entries_.size(); }

    /** Total messages ever forwarded through the barrier drain. */
    std::uint64_t messagesForwarded() const { return forwarded_; }

    std::uint32_t srcDomainId() const { return srcId_; }
    std::uint32_t dstDomainId() const { return dstId_; }

    /** Minimum source-now-to-delivery distance this channel enforces. */
    Tick lookahead() const { return lookahead_; }

  private:
    friend class DomainScheduler;

    CrossDomainChannel(EventQueue &srcq, EventQueue &dstq,
                       std::uint32_t src_id, std::uint32_t dst_id,
                       Tick lookahead, const Tick *src_promise)
        : srcq_(srcq), dstq_(dstq), srcId_(src_id), dstId_(dst_id),
          lookahead_(lookahead), srcPromise_(src_promise)
    {
    }

    /** Lookahead + promise contract shared by push and pushLane. */
    void checkPush(Tick when) const;

    /**
     * Recycle lane slots retired since the last barrier, then
     * schedule every queued entry into the destination queue, in push
     * (= source schedule) order. Barrier coordinator only.
     * @return number of entries forwarded.
     */
    std::uint64_t drain();

    /** One queued message: payload lives in fns_ or in a lane arena. */
    struct Entry
    {
        Tick when;
        std::uint32_t lane; ///< kGenericLane or an addLane() id.
        std::uint32_t idx;  ///< index into fns_ or the lane arena.
    };

    static constexpr std::uint32_t kGenericLane = ~std::uint32_t{0};

    EventQueue &srcq_;
    EventQueue &dstq_;
    std::uint32_t srcId_;
    std::uint32_t dstId_;
    Tick lookahead_;
    /** Source domain's no-sends-before promise (owned by the
     *  scheduler's TimingDomain; read under the push contract). */
    const Tick *srcPromise_;
    std::vector<Entry> entries_;
    std::vector<EventFn> fns_;
    std::vector<ChannelLaneBase *> lanes_;
    std::uint64_t forwarded_ = 0;
};

} // namespace enzian::sim

#endif // ENZIAN_SIM_CROSS_DOMAIN_CHANNEL_HH
